"""F6 — handshaking (Theorem 4.2): 2k−1 beats 4k−5 at identical tables."""

from __future__ import annotations

from conftest import run_once

from repro.analysis.experiments import exp_f6


def test_fig6_handshake(benchmark, show, bench_scale, bench_seed):
    result = run_once(
        benchmark, lambda: exp_f6(scale=bench_scale, seed=bench_seed)
    )
    show(result)

    for row in result.rows:
        assert row["hs_violations"] == 0, row
        assert row["hs_max"] <= row["hs_bound"] + 1e-9, row
        assert row["hs_bound"] <= row["base_bound"], row
        # Handshaking routes the same or better on average.
        assert row["hs_avg"] <= row["base_avg"] * 1.05, row
        # Alternation depth stays below k.
        assert row["avg_hs_steps"] <= row["k"] - 1 + 1e-9, row
