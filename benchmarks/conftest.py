"""Benchmark harness configuration.

Each ``bench_*`` file regenerates one artifact of DESIGN.md §4 (tables
T1, figures F2–F9, ablations A1–A2) through pytest-benchmark, printing
the same rows EXPERIMENTS.md records and asserting the acceptance
criteria.  Scale defaults to ``small`` so the suite stays minutes-scale;
set ``REPRO_BENCH_SCALE=full`` to regenerate the EXPERIMENTS.md numbers.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.reporting import render_table


@pytest.fixture(scope="session")
def bench_scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "small")


@pytest.fixture(scope="session")
def bench_seed() -> int:
    return int(os.environ.get("REPRO_BENCH_SEED", "0"))


@pytest.fixture
def show(capsys):
    """Print an experiment result table past pytest's capture."""

    def _show(result) -> None:
        with capsys.disabled():
            print()
            print(render_table(result.rows, title=result.title))
            if result.notes:
                print(f"note: {result.notes}")

    return _show


def best_of(fn, repeats: int = 1) -> float:
    """Best-of-N wall time of ``fn()``, in seconds.

    The shootout benchmarks (CSR kernel, batch router) gate on speedup
    *ratios*; taking the minimum over a few runs keeps one stalled run
    on a noisy shared CI runner from deciding the ratio.
    """
    import time

    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_once(benchmark, fn):
    """Run an experiment exactly once under the benchmark timer.

    The experiments are seconds-scale preprocessing+measurement pipelines;
    one timed round is the meaningful unit (pytest-benchmark still
    records the wall time for regression tracking).
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
