"""Scenario lab: multi-trial vectorized sweep vs per-trial reference.

The acceptance gate of the scenario-lab PR: a **32-trial** edge-failure
sweep (1k-node G(n, p), k = 2, 5k-pair uniform workload, 2% i.i.d. edge
death) through the vectorized resilience engine — scheme compiled once,
all trials advanced simultaneously by
:meth:`~repro.sim.engine.batch.BatchRouter.route_trials` — must be
**≥ 10×** faster than the per-trial reference path (one
:class:`~repro.sim.failures.FaultyNetwork` per trial, one Python hop
loop per pair), measured over the *full* 32 trials on both sides — no
extrapolation.

Before any clock is trusted, the two paths' (delivered, weight, hops)
matrices are compared bit-for-bit.  Results land in
``BENCH_scenarios.json`` (CI artifact, uploaded next to the router /
builder / store benches).

``REPRO_BENCH_N`` overrides the vertex count for local iteration.
"""

from __future__ import annotations

import os
import time

import numpy as np
from _emit import emit
from conftest import best_of

from repro.core.build import build_arrays
from repro.core.build.arrays import scheme_from_arrays
from repro.graphs import generators as gen
from repro.graphs.ports import assign_ports
from repro.rng import make_rng, sample_pairs
from repro.sim.engine.batch import BatchRouter
from repro.sim.engine.compile import compile_from_arrays
from repro.sim.failures import iid_edge_trials, survivability_sweep

SPEEDUP_FLOOR = 10.0
N_DEFAULT = 1024
K = 2
TRIALS = 32
PAIRS = 5000
RATE = 0.02
SEED = 2026
VEC_ROUNDS = 3


def test_scenario_sweep_speedup():
    n = int(os.environ.get("REPRO_BENCH_N", N_DEFAULT))
    graph = gen.gnp(n, 10.0 / n, rng=SEED, weights=(1, 8)).largest_component()
    ported = assign_ports(graph, "sorted")
    arrays = build_arrays(graph, K, ported=ported, rng=SEED)
    compiled = compile_from_arrays(arrays, ported)
    scheme = scheme_from_arrays(graph, ported, arrays)
    pairs = sample_pairs(make_rng(3), graph.n, PAIRS)
    masks = iid_edge_trials(graph, TRIALS, rate=RATE, rng=4)
    router = BatchRouter.from_compiled(compiled, ported)

    # -- no clock is trusted before the answers match bit-for-bit -------
    fast = survivability_sweep(ported, None, masks, pairs, router=router)
    slow = survivability_sweep(
        ported, scheme, masks, pairs, engine="reference"
    )
    for name in ("delivered", "weight", "hops", "connected"):
        assert np.array_equal(getattr(fast, name), getattr(slow, name)), name

    # -- the vectorized sweep: all trials as one array program ----------
    t_vec = best_of(
        lambda: survivability_sweep(ported, None, masks, pairs, router=router),
        repeats=VEC_ROUNDS,
    )

    # -- the per-trial reference path, full 32 trials (no extrapolation)
    t0 = time.perf_counter()
    survivability_sweep(ported, scheme, masks, pairs, engine="reference")
    t_ref = time.perf_counter() - t0

    speedup = t_ref / max(t_vec, 1e-9)
    rate = TRIALS * PAIRS / max(t_vec, 1e-9)
    print(
        f"\nscenario sweep (n={graph.n}, m={graph.m}, k={K}, "
        f"{TRIALS} trials x {PAIRS} pairs, iid rate {RATE}): "
        f"vectorized {t_vec:.3f}s ({rate:,.0f} trial-pairs/s); "
        f"per-trial reference {t_ref:.2f}s; speedup {speedup:.0f}x "
        f"(mean delivery {fast.delivery_rates.mean():.3f})"
    )

    out = emit(
        "scenarios",
        params={
            "n": graph.n,
            "m": graph.m,
            "k": K,
            "trials": TRIALS,
            "pairs": PAIRS,
            "iid_rate": RATE,
        },
        metrics={
            "vectorized_seconds": round(t_vec, 4),
            "reference_seconds": round(t_ref, 3),
            "trial_pairs_per_second": round(rate),
            "speedup": round(speedup, 1),
            "mean_delivery_rate": round(float(fast.delivery_rates.mean()), 4),
        },
        floors={"speedup": SPEEDUP_FLOOR},
    )
    print(f"wrote {out}")

    assert speedup >= SPEEDUP_FLOOR, (
        f"scenario sweep speedup {speedup:.1f}x below the "
        f"{SPEEDUP_FLOOR}x floor"
    )
