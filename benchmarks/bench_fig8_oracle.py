"""F8 — the distance-oracle companion: 2k−1 queries, k·n^{1+1/k} space."""

from __future__ import annotations

from conftest import run_once

from repro.analysis.experiments import exp_f8


def test_fig8_distance_oracle(benchmark, show, bench_scale, bench_seed):
    result = run_once(
        benchmark, lambda: exp_f8(scale=bench_scale, seed=bench_seed)
    )
    show(result)

    for row in result.rows:
        assert row["violations"] == 0, row
        assert row["max_query_stretch"] <= row["bound_2k-1"] + 1e-9, row
        # Space within a small factor of the k·n^{1+1/k} reference.
        assert row["size_words"] <= 4 * row["kn^(1+1/k)_ref"], row
