"""Micro-benchmarks of the hot primitives (true ops/sec measurements).

Unlike the figure benches (one timed experiment run each), these measure
the steady-state cost of the operations a deployed router would execute
per packet or per preprocessing step:

* the O(1) tree-routing forwarding decision,
* the TZ source commit (cluster lookup + pivot scan),
* a full simulated route,
* an oracle distance query,
* truncated-Dijkstra cluster growth,
* tree-router compilation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.scheme_k import build_tz_scheme
from repro.core.router import RouteHeader
from repro.graphs import generators as gen
from repro.graphs.ports import assign_ports
from repro.graphs.shortest_paths import truncated_dijkstra
from repro.oracles.distance_oracle import build_distance_oracle
from repro.sim.network import Network
from repro.graphs.shortest_paths import dijkstra
from repro.graphs.trees import tree_from_parents
from repro.trees.tz_tree import build_tree_router, decide_from_record


def rooted_from_graph(tree_graph, root: int = 0):
    _, parent = dijkstra(tree_graph, root)
    pmap = {v: int(parent[v]) for v in range(tree_graph.n)}
    pmap[root] = -1
    return tree_from_parents(root, pmap)


@pytest.fixture(scope="module")
def instance():
    g = gen.gnp(300, 0.03, rng=2024, weights=(1, 12))
    pg = assign_ports(g, "random", rng=1)
    scheme = build_tz_scheme(g, pg, k=3, rng=2)
    return g, pg, scheme


def test_tree_decide_op(benchmark):
    tree_graph = gen.random_tree(1024, rng=3)
    rooted = rooted_from_graph(tree_graph)
    pg = assign_ports(tree_graph, "sorted")
    router = build_tree_router(rooted, pg, port_model="fixed")
    record = router.records[17]
    label = router.labels[900]

    benchmark(decide_from_record, record, label)


def test_scheme_commit_op(benchmark, instance):
    g, pg, scheme = instance
    header = RouteHeader(dest=g.n - 1)

    benchmark(scheme._commit, 0, header)


def test_full_route_op(benchmark, instance):
    g, pg, scheme = instance
    net = Network(pg, scheme)
    pairs = [(int(a), int(b)) for a, b in np.random.default_rng(5).integers(0, g.n, (64, 2)) if a != b]

    def route_batch():
        for s, t in pairs:
            net.route(s, t, strict=True)

    benchmark(route_batch)


def test_oracle_query_op(benchmark, instance):
    g, _, _ = instance
    oracle = build_distance_oracle(g, 3, rng=7)

    benchmark(oracle.query, 0, g.n - 1)


def test_truncated_dijkstra_op(benchmark, instance):
    g, _, _ = instance
    from repro.graphs.shortest_paths import multi_source_dijkstra

    rng = np.random.default_rng(9)
    A = rng.choice(g.n, size=18, replace=False)
    thr, _ = multi_source_dijkstra(g, A)

    benchmark(truncated_dijkstra, g, 5, thr)


def test_tree_router_build_op(benchmark):
    tree_graph = gen.random_tree(2048, rng=11)
    rooted = rooted_from_graph(tree_graph)
    pg = assign_ports(tree_graph, "sorted")

    benchmark(build_tree_router, rooted, pg, port_model="fixed")
