"""Shared BENCH_*.json emitter: one schema for every benchmark artifact.

Every ``bench_*`` file that records numbers for CI writes them through
:func:`emit`, so all ``BENCH_*.json`` artifacts share one layout::

    {
      "schema": "tz-bench/v1",
      "name": "router",
      "timestamp": "2026-08-08T12:34:56+00:00",   # UTC, ISO-8601
      "params": {...},    # what was measured (graph size, k, pairs...)
      "metrics": {...},   # the measured numbers
      "floors": {...}     # the asserted gates (speedup floors etc.)
    }

The output path honours the same environment variables the emitters
always used (``BENCH_ROUTER_JSON`` etc. — derived as
``BENCH_<NAME>_JSON``, default ``BENCH_<name>.json``), so the CI
artifact upload step keeps working unchanged.
"""

from __future__ import annotations

import json
import os
from datetime import datetime, timezone
from typing import Dict, Optional

SCHEMA = "tz-bench/v1"


def emit(
    name: str,
    *,
    params: Dict[str, object],
    metrics: Dict[str, object],
    floors: Optional[Dict[str, object]] = None,
    env: Optional[str] = None,
    default: Optional[str] = None,
) -> str:
    """Write one benchmark document; returns the path written.

    ``env`` / ``default`` override the derived environment-variable name
    and fallback path (both default to the ``BENCH_<NAME>_JSON`` /
    ``BENCH_<name>.json`` convention).
    """
    env_name = env or f"BENCH_{name.upper()}_JSON"
    out = os.environ.get(env_name, default or f"BENCH_{name}.json")
    doc = {
        "schema": SCHEMA,
        "name": name,
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "params": params,
        "metrics": metrics,
        "floors": floors or {},
    }
    with open(out, "w") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
    return out
