"""Persistent scheme store: mmap-load vs vectorized rebuild.

The acceptance gate of the store PR: on a 20k-node G(n, p) graph
(k = 2), opening a saved scheme from the content-addressed store —
header parse + zero-copy memory map, ready to route — must be **≥ 50×**
faster than re-running the vectorized builder, which is itself the 11–
13× fast path.  This is the whole point of persisting: the paper's
"preprocess once, answer forever" stops being gated on a cold start in
every process.

Before any clock is trusted, a 10k-pair sample routed through the
mmap-loaded scheme is compared bit-for-bit (delivered, weight, hops,
header bits) against the freshly built one.  Results land in
``BENCH_store.json`` (CI artifact, uploaded next to the builder and
router benches).

``REPRO_BENCH_N`` overrides the vertex count for local iteration.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest
from _emit import emit
from conftest import best_of

from repro.core.build import build_arrays
from repro.graphs import generators as gen
from repro.graphs.ports import assign_ports
from repro.rng import make_rng, sample_pairs
from repro.sim.engine.batch import BatchRouter
from repro.sim.engine.compile import compile_from_arrays
from repro.store import SchemeStore

SPEEDUP_FLOOR = 50.0
N_DEFAULT = 20_000
K = 2
SEED = 2025
LOAD_ROUNDS = 5


@pytest.fixture(scope="module")
def setup():
    n = int(os.environ.get("REPRO_BENCH_N", N_DEFAULT))
    graph = gen.gnp(n, 10.0 / n, rng=SEED, weights=(1, 8)).largest_component()
    ported = assign_ports(graph, "sorted")
    return graph, ported


def test_store_load_speedup(setup, tmp_path):
    graph, ported = setup
    store = SchemeStore(tmp_path)

    # -- the cost a cold process pays today: rebuild + compile ----------
    t0 = time.perf_counter()
    arrays = build_arrays(graph, K, ported=ported, rng=SEED)
    compiled = compile_from_arrays(arrays, ported)
    t_rebuild = time.perf_counter() - t0

    path = store.save(graph, ported, arrays, seed=SEED, compiled=compiled)
    size_mb = path.stat().st_size / 1e6

    # -- the cost with the store: open + mmap, ready to route -----------
    t_load = best_of(
        lambda: store.load(path).router(), repeats=LOAD_ROUNDS
    )

    # -- no clock is trusted before the answers match bit-for-bit -------
    stored = store.load(path)
    pairs = sample_pairs(make_rng(7), graph.n, 100_000)
    fresh = BatchRouter.from_compiled(compiled).route_pairs(pairs)
    loaded = stored.router().route_pairs(pairs)
    for name in ("delivered", "weight", "hops", "max_header_bits", "failure_code"):
        assert np.array_equal(getattr(fresh, name), getattr(loaded, name)), name
    t0 = time.perf_counter()
    loaded_again = store.load(path).router().route_pairs(pairs)
    t_cold_route = time.perf_counter() - t0
    assert np.array_equal(loaded_again.delivered, fresh.delivered)

    speedup = t_rebuild / max(t_load, 1e-9)
    print(
        f"\nscheme store (n={graph.n}, m={graph.m}, k={K}, "
        f"entries={arrays.entry_count:,}, file {size_mb:.1f} MB): "
        f"rebuild {t_rebuild:.2f}s; mmap load {t_load * 1e3:.1f}ms; "
        f"speedup {speedup:.0f}x; cold load+100k-pair route "
        f"{t_cold_route * 1e3:.0f}ms"
    )

    out = emit(
        "store",
        params={"n": graph.n, "m": graph.m, "k": K},
        metrics={
            "entries": arrays.entry_count,
            "file_mb": round(size_mb, 1),
            "rebuild_seconds": round(t_rebuild, 3),
            "mmap_load_seconds": round(t_load, 5),
            "cold_load_route_100k_seconds": round(t_cold_route, 4),
            "speedup": round(speedup, 1),
        },
        floors={"speedup": SPEEDUP_FLOOR},
    )
    print(f"wrote {out}")

    assert speedup >= SPEEDUP_FLOOR, (
        f"store load speedup {speedup:.1f}x below the {SPEEDUP_FLOOR}x floor"
    )
