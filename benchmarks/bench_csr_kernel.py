"""Old-vs-new shootout for the CSR shortest-path kernel.

Measures the primitives the TZ pipeline spends its time in, comparing the
pure-Python heap paths (the pre-kernel implementation, still available as
``method="heap"``) against the batched C-level kernel:

* landmark-table construction — one multi-source sweep per hierarchy
  level over a 2k-node G(n, p) graph (the ``compute_pivots`` hot loop);
* single-source Dijkstra throughput;
* oracle query throughput — scalar ``query`` loop vs ``query_many``.

The ≥5× landmark-table speedup is asserted (the acceptance criterion of
the kernel PR); in practice the batched path is 1–2 orders of magnitude
faster.  Runs in seconds; ``REPRO_BENCH_SCALE=full`` raises n.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from conftest import best_of as _timed

from repro.core.landmarks import sample_hierarchy
from repro.graphs import generators as gen
from repro.oracles.distance_oracle import build_distance_oracle


@pytest.fixture(scope="module")
def bench_graph():
    n = 4000 if os.environ.get("REPRO_BENCH_SCALE") == "full" else 2000
    # Average degree ~10: sparse, internet-like regime.
    return gen.gnp(n, 10.0 / n, rng=2025, weights=(1, 8))


def test_landmark_table_construction_speedup(bench_graph):
    """k multi-source sweeps (the Hierarchy.dist table): heap vs kernel."""
    g = bench_graph
    levels = sample_hierarchy(g.n, 3, rng=11)
    kern = g.csr()
    kern.matrix()  # build the scipy handle outside the timed region

    def old_path():
        return [kern.multi_source(lvl, method="heap") for lvl in levels]

    def new_path():
        return [kern.multi_source(lvl, method="scipy") for lvl in levels]

    # Best-of-N on both sides: one stalled run on a noisy shared CI
    # runner must not decide the ratio.
    t_old = _timed(old_path, repeats=2)
    t_new = _timed(new_path, repeats=3)
    speedup = t_old / t_new
    print(
        f"\nlandmark tables (n={g.n}, m={g.m}, k={len(levels)}): "
        f"heap {t_old * 1e3:.1f} ms, kernel {t_new * 1e3:.1f} ms, "
        f"speedup {speedup:.1f}x"
    )
    # Cross-check before trusting the clock.
    for (d_old, w_old), (d_new, w_new) in zip(old_path(), new_path()):
        assert np.array_equal(d_old, d_new)
        assert np.array_equal(w_old, w_new)
    assert speedup >= 5.0, f"kernel speedup {speedup:.1f}x below the 5x floor"


def test_sssp_batch_speedup(bench_graph):
    """Batched per-landmark SSSP rows vs per-source heap runs."""
    g = bench_graph
    kern = g.csr()
    kern.matrix()
    rng = np.random.default_rng(3)
    sources = np.unique(rng.integers(0, g.n, size=16))

    t_old = _timed(lambda: [kern.sssp(int(s)) for s in sources])
    t_new = _timed(lambda: kern.sssp_batch(sources), repeats=3)
    batch, _ = kern.sssp_batch(sources)
    single = np.vstack([kern.sssp(int(s))[0] for s in sources])
    assert np.array_equal(batch, single)
    print(
        f"\nSSSP x{sources.size}: heap {t_old * 1e3:.1f} ms, "
        f"batch {t_new * 1e3:.1f} ms, speedup {t_old / max(t_new, 1e-9):.1f}x"
    )


def test_construction_cost(bench_graph):
    """Kernel wrap is O(1); the scipy matrix handle is built once."""
    g = bench_graph
    from repro.graphs.csr import CSRKernel

    t_wrap = _timed(lambda: CSRKernel.from_graph(g), repeats=5)
    fresh = CSRKernel.from_graph(g)
    t_matrix = _timed(fresh.matrix, repeats=1)
    t_cached = _timed(fresh.matrix, repeats=5)
    print(
        f"\nkernel wrap {t_wrap * 1e6:.1f} us, matrix build "
        f"{t_matrix * 1e3:.2f} ms, cached matrix {t_cached * 1e6:.1f} us"
    )
    assert t_cached <= t_matrix


def test_oracle_query_many_throughput(bench_graph):
    """Vectorized query path vs the scalar query loop (exact agreement)."""
    g = bench_graph
    oracle = build_distance_oracle(g, k=3, rng=7)
    rng = np.random.default_rng(1)
    q = 20_000
    s = rng.integers(0, g.n, size=q)
    t = rng.integers(0, g.n, size=q)

    oracle.query_many(s[:1], t[:1])  # warm the flat-bunch cache
    t_batch = _timed(lambda: oracle.query_many(s, t), repeats=3)
    t_scalar = _timed(
        lambda: [oracle.query(int(a), int(b)) for a, b in zip(s[:2000], t[:2000])]
    ) * (q / 2000)
    batch = oracle.query_many(s, t)
    scalar = np.array([oracle.query(int(a), int(b)) for a, b in zip(s[:2000], t[:2000])])
    assert np.array_equal(batch[:2000], scalar)
    print(
        f"\noracle queries x{q}: scalar ~{t_scalar * 1e3:.0f} ms "
        f"({q / t_scalar:,.0f}/s), query_many {t_batch * 1e3:.1f} ms "
        f"({q / t_batch:,.0f}/s), speedup {t_scalar / t_batch:.1f}x"
    )
