"""F4 — the §3 stretch-3 scheme: exact bound, Õ(√n) table scaling."""

from __future__ import annotations

import math

from conftest import run_once

from repro.analysis.experiments import exp_f4


def test_fig4_stretch3_scaling(benchmark, show, bench_scale, bench_seed):
    result = run_once(
        benchmark, lambda: exp_f4(scale=bench_scale, seed=bench_seed)
    )
    show(result)

    for row in result.rows:
        assert row["violations"] == 0, row
        assert row["max_stretch"] <= 3.0 + 1e-9, row

    # Table scaling shape: log-log slope of avg table bits vs n should be
    # ~0.5 plus polylog drift. At the small scale the n-range spans only
    # 3x and the log²n factor inflates the apparent slope, so the strict
    # sublinearity check applies to the full-scale regeneration.
    slope_cap = 0.95 if bench_scale == "full" else 1.45
    by_graph = {}
    for row in result.rows:
        by_graph.setdefault(row["graph"], []).append(row)
    for gname, rows in by_graph.items():
        rows.sort(key=lambda r: r["n"])
        if len(rows) < 2:
            continue
        first, last = rows[0], rows[-1]
        slope = math.log(last["avg_table_bits"] / first["avg_table_bits"]) / math.log(
            last["n"] / first["n"]
        )
        assert slope < slope_cap, (gname, slope)  # decisively sublinear
        assert slope > 0.1, (gname, slope)  # but genuinely growing
