"""Native compiled kernels vs their numpy references: the ≥5× gates.

The acceptance gate of the kernels PR: on a 20k-node G(n, p) graph the
native hop loop must advance a 100k-pair uniform matrix **≥ 5×** faster
than the numpy synchronized hop loop, and the native frontier sweep
must run a pruned cluster level **≥ 5×** faster than the numpy
label-correcting sweep.  Both pairs are cross-checked for bit-for-bit
agreement before any clock is trusted (the same differential contract
``tests/test_kernels.py`` enforces at property-test scale), and the
measured numbers land in ``BENCH_kernels.json``.

The hop gate times :meth:`BatchRouter._hop_loop` directly rather than
``route_pairs``: the tree-commit front end (``_commit``) is identical
vectorized numpy on both kernels, so timing it would dilute the very
loop the kernel replaces.  The committed state is copied inside the
timed callable because the hop loop mutates its ``fail`` column in
place (a few MB per repeat — noise next to the loop itself).

Skips cleanly when the native backend cannot build (no C toolchain, or
``REPRO_NATIVE_KERNELS=0``) — the numpy path is then the only path and
there is nothing to gate.

``REPRO_BENCH_SCALE=full`` doubles n; runs in tens of seconds otherwise.
"""

from __future__ import annotations

import os

import time

import numpy as np
import pytest
from _emit import emit

from repro.core.build import build_scheme
from repro.core.build.vectorized import _pruned_level
from repro.core.landmarks import build_hierarchy
from repro.graphs import generators as gen
from repro.graphs.ports import assign_ports
from repro.kernels import available, native_error
from repro.kernels.frontier import frontier_sweep_native
from repro.rng import make_rng
from repro.sim.engine import BatchRouter
from repro.sim.workloads import uniform_pairs

pytestmark = pytest.mark.skipif(
    not available(), reason=f"native kernels unavailable: {native_error()}"
)

HOP_SPEEDUP_FLOOR = 5.0
FRONTIER_SPEEDUP_FLOOR = 5.0
N_PAIRS = 100_000


def best_of_interleaved(fn_a, fn_b, repeats=5):
    """Best-of-N wall times of two callables, alternated A/B/A/B.

    The gate is a *ratio*, and single-core CI runners drift ±15% on
    second-scale timescales — long enough to skew one side if the two
    contenders run back-to-back in separate blocks.  Alternating the
    repeats exposes both sides to the same drift.
    """
    best_a = best_b = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn_a()
        best_a = min(best_a, time.perf_counter() - t0)
        t0 = time.perf_counter()
        fn_b()
        best_b = min(best_b, time.perf_counter() - t0)
    return best_a, best_b


@pytest.fixture(scope="module")
def setup():
    n = 40_000 if os.environ.get("REPRO_BENCH_SCALE") == "full" else 20_000
    graph = gen.gnp(n, 8.0 / n, rng=2026, weights=(1, 8)).largest_component()
    ported = assign_ports(graph, "random", rng=7)
    return graph, ported


def test_kernels_speedup(setup):
    graph, ported = setup

    # ---- hop loop: route the same matrix on both kernels -------------
    scheme = build_scheme(graph, 2, ported=ported, rng=11)
    pairs = uniform_pairs(graph, N_PAIRS, rng=3)
    routers = {
        kern: BatchRouter(ported, scheme, kernel=kern)
        for kern in ("numpy", "native")
    }

    # Cross-check before trusting the clock: bit-for-bit on the matrix.
    ref = routers["numpy"].route_pairs(pairs)
    nat = routers["native"].route_pairs(pairs)
    for name in ("delivered", "weight", "hops", "max_header_bits", "failure_code"):
        assert np.array_equal(getattr(ref, name), getattr(nat, name)), name

    # Time the hop loop itself; _commit is shared front-end work.  The
    # loop owns its state tuple (fail is mutated in place), so each
    # repeat hands it a fresh copy.
    src = np.ascontiguousarray(pairs[:, 0], dtype=np.int64)
    dst = np.ascontiguousarray(pairs[:, 1], dtype=np.int64)
    state = routers["numpy"]._commit(src, dst)

    def hop(kern):
        return routers[kern]._hop_loop(
            src, dst, tuple(a.copy() for a in state), None, None, None
        )

    t_numpy, t_native = best_of_interleaved(
        lambda: hop("numpy"), lambda: hop("native"), repeats=3
    )
    hop_speedup = t_numpy / t_native

    # ---- frontier sweep: the largest thresholded cluster level -------
    hierarchy = build_hierarchy(graph, 3, make_rng(13))
    level, centers, thr = None, None, None
    for i in range(hierarchy.k):
        lvl = hierarchy.levels[i]
        cand = np.asarray(lvl[hierarchy.level_of[lvl] == i], dtype=np.int64)
        t = hierarchy.dist[i + 1]
        if cand.size and not np.all(np.isinf(t)):
            if centers is None or cand.size > centers.size:
                level, centers, thr = i, cand, t
    assert centers is not None, "hierarchy has no thresholded level to sweep"

    keys_ref, dist_ref = _pruned_level(graph, centers, thr)
    keys_nat, dist_nat = frontier_sweep_native(graph, centers, thr)
    assert np.array_equal(keys_ref, keys_nat)
    assert np.array_equal(dist_ref, dist_nat)

    t_sweep_numpy, t_sweep_native = best_of_interleaved(
        lambda: _pruned_level(graph, centers, thr),
        lambda: frontier_sweep_native(graph, centers, thr),
        repeats=5,
    )
    frontier_speedup = t_sweep_numpy / t_sweep_native

    print(
        f"\nkernels (n={graph.n}, m={graph.m}): hop loop {N_PAIRS:,} pairs "
        f"numpy {t_numpy:.3f}s native {t_native:.3f}s ({hop_speedup:.1f}x); "
        f"frontier level={level} centers={centers.size:,} "
        f"numpy {t_sweep_numpy:.3f}s native {t_sweep_native:.3f}s "
        f"({frontier_speedup:.1f}x)"
    )

    out = emit(
        "kernels",
        params={
            "n": graph.n,
            "m": graph.m,
            "pairs": N_PAIRS,
            "frontier_level": level,
            "frontier_centers": int(centers.size),
        },
        metrics={
            "hop_numpy_seconds": round(t_numpy, 4),
            "hop_native_seconds": round(t_native, 4),
            "hop_speedup": round(hop_speedup, 1),
            "frontier_numpy_seconds": round(t_sweep_numpy, 4),
            "frontier_native_seconds": round(t_sweep_native, 4),
            "frontier_speedup": round(frontier_speedup, 1),
            "delivered": int(ref.delivered.sum()),
        },
        floors={
            "hop_speedup": HOP_SPEEDUP_FLOOR,
            "frontier_speedup": FRONTIER_SPEEDUP_FLOOR,
        },
    )
    print(f"wrote {out}")

    assert hop_speedup >= HOP_SPEEDUP_FLOOR, (
        f"hop-loop speedup {hop_speedup:.1f}x below the "
        f"{HOP_SPEEDUP_FLOOR}x floor"
    )
    assert frontier_speedup >= FRONTIER_SPEEDUP_FLOOR, (
        f"frontier-sweep speedup {frontier_speedup:.1f}x below the "
        f"{FRONTIER_SPEEDUP_FLOOR}x floor"
    )
