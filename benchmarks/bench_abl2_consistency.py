"""A2 — ablation: consistent pivots on/off (DESIGN.md §3).

Demonstrates *why* pivot consistency is load-bearing: with naive
nearest-witness pivots, label construction fails on graphs with distance
ties (a vertex ends up outside its own pivot's cluster).
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis.experiments import exp_a2


def test_abl2_pivot_consistency(benchmark, show, bench_scale, bench_seed):
    result = run_once(
        benchmark, lambda: exp_a2(scale=bench_scale, seed=bench_seed)
    )
    show(result)

    consistent = [r for r in result.rows if r["consistent_pivots"]]
    naive = [r for r in result.rows if not r["consistent_pivots"]]
    assert all(r["label_construction_failures"] == 0 for r in consistent)
    assert sum(r["label_construction_failures"] for r in naive) > 0
