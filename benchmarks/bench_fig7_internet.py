"""F7 — average stretch by topology: the Internet-motivation experiment.

The follow-on literature (Krioukov et al., Infocom'04) measured TZ
average stretch ≈1.1–1.3 on Internet-like graphs; this bench reproduces
the contrast between AS-like, G(n,p), and grid topologies.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis.experiments import exp_f7


def test_fig7_internet_like(benchmark, show, bench_scale, bench_seed):
    result = run_once(
        benchmark, lambda: exp_f7(scale=bench_scale, seed=bench_seed)
    )
    show(result)

    rows = {row["graph"]: row for row in result.rows}
    for row in result.rows:
        assert row["violations"] == 0, row
        assert row["max_stretch"] <= 3.0 + 1e-9, row
    # The headline of the follow-on literature: far-below-worst-case
    # average stretch on Internet-like topologies.
    assert rows["as-like"]["avg_stretch"] <= 1.5
    # And the heavy-tailed family routes no worse than G(n,p) on average.
    assert rows["as-like"]["avg_stretch"] <= rows["gnp"]["avg_stretch"] * 1.1
