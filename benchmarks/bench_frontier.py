"""Backend frontier: every registered backend completes, TZ stays fast.

The smoke gate of the backend-protocol PR: one small ``repro frontier``
grid (two families, k ∈ {2, 3}) must build and query **every**
registered backend — the protocol's promise is that new structures ride
the same sweep, so a backend that cannot finish the smoke grid is a
regression, not a configuration issue.  On top, the TZ scheme backend's
batch-engine query path must hold a throughput floor: routing answers
through :class:`~repro.sim.engine.batch.BatchRouter` is the whole point
of the adapter, and a silent fall-off to per-pair speed would hide
behind a passing correctness suite.

Results land in ``BENCH_frontier.json`` (CI artifact, uploaded next to
the router / builder / store / scenario benches).

``REPRO_BENCH_N`` overrides the vertex count for local iteration.
"""

from __future__ import annotations

import os

from _emit import emit

from repro.analysis.experiments import reference_graph
from repro.backends import backend_names
from repro.backends.frontier import run_frontier

TZ_PAIRS_PER_SECOND_FLOOR = 20_000.0
N_DEFAULT = 400
FAMILIES = ("gnp", "grid")
KS = (2, 3)
PAIRS = 1500
SEED = 2026


def test_frontier_smoke_all_backends_and_tz_floor():
    n = int(os.environ.get("REPRO_BENCH_N", N_DEFAULT))
    graphs = [
        (family, reference_graph(family, n, SEED).largest_component())
        for family in FAMILIES
    ]
    points = run_frontier(graphs, ks=KS, seed=SEED, n_pairs=PAIRS)

    # -- completeness: every registered backend finished every graph ----
    expected = set(backend_names())
    for family, graph in graphs:
        on_graph = {p.backend for p in points if p.family == family}
        assert on_graph == expected, (family, expected - on_graph)
    for p in points:
        assert p.size_bits > 0 and p.stretch_max >= 1.0 - 1e-9, p.row()

    # -- the scheme backend's throughput floor --------------------------
    tz = [p for p in points if p.backend == "tz"]
    tz_rate = min(p.pairs_per_second for p in tz)
    print(
        f"\nfrontier smoke ({len(points)} points over "
        f"{'/'.join(f for f, _ in graphs)} at n~{n}, k in {list(KS)}, "
        f"{PAIRS} pairs): tz min throughput {tz_rate:,.0f} pairs/s "
        f"(floor {TZ_PAIRS_PER_SECOND_FLOOR:,.0f}); "
        f"{sum(1 for p in points if p.pareto)} Pareto points"
    )
    assert tz_rate >= TZ_PAIRS_PER_SECOND_FLOOR, (
        f"tz backend throughput {tz_rate:,.0f} pairs/s is below the "
        f"{TZ_PAIRS_PER_SECOND_FLOOR:,.0f} floor — the adapter is no "
        "longer routing through the batch engine"
    )

    out = emit(
        "frontier",
        params={
            "n": n,
            "families": list(FAMILIES),
            "ks": list(KS),
            "pairs": PAIRS,
            "backends": sorted(expected),
        },
        metrics={
            "tz_min_pairs_per_second": round(tz_rate),
            "points": [p.to_dict() for p in points],
        },
        floors={"tz_pairs_per_second": TZ_PAIRS_PER_SECOND_FLOOR},
    )
    print(f"wrote {out}")
