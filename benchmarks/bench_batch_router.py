"""Batch routing engine vs the hop-by-hop loop: pair throughput.

The acceptance gate of the engine PR: on a 2k-node G(n, p) graph with a
100k-pair uniform traffic matrix, the vectorized
:class:`~repro.sim.engine.BatchRouter` must route **≥ 20×** more pairs
per second than the reference :class:`~repro.sim.network.Network` hop
loop (the reference rate is measured on a subset and extrapolated — at
hop-loop speed the full matrix would take minutes).  Both engines are
cross-checked for bit-for-bit agreement on the subset before any clock
is trusted, and the measured numbers land in ``BENCH_router.json`` (the
CI artifact that tracks router throughput across commits).

``REPRO_BENCH_SCALE=full`` raises n; runs in tens of seconds otherwise.
"""

from __future__ import annotations

import os
import time

import pytest
from _emit import emit
from conftest import best_of

from repro.core.scheme_k2 import build_stretch3_scheme
from repro.graphs import generators as gen
from repro.graphs.ports import assign_ports
from repro.sim.engine import BatchRouter
from repro.sim.network import Network
from repro.sim.workloads import uniform_pairs

SPEEDUP_FLOOR = 20.0
N_PAIRS = 100_000
REF_SAMPLE = 2_000  # hop-loop pairs actually routed (rate extrapolates)


@pytest.fixture(scope="module")
def setup():
    n = 4000 if os.environ.get("REPRO_BENCH_SCALE") == "full" else 2000
    graph = gen.gnp(n, 10.0 / n, rng=2025, weights=(1, 8)).largest_component()
    ported = assign_ports(graph, "random", rng=7)
    scheme = build_stretch3_scheme(graph, ported, rng=11)
    pairs = uniform_pairs(graph, N_PAIRS, rng=3)
    return graph, ported, scheme, pairs


def test_batch_router_throughput(setup):
    graph, ported, scheme, pairs = setup

    # Compile outside the timed region: it is preprocessing, paid once
    # per scheme (the hop loop pays nothing comparable, which is fair —
    # serving amortizes the compile over every matrix routed).
    t0 = time.perf_counter()
    router = BatchRouter(ported, scheme)
    t_compile = time.perf_counter() - t0

    t_batch = best_of(lambda: router.route_pairs(pairs), repeats=3)
    batch = router.route_pairs(pairs)
    assert batch.delivered.all(), "stretch-3 scheme must deliver every pair"
    batch_pps = N_PAIRS / t_batch

    subset = pairs[:REF_SAMPLE]
    net = Network(ported, scheme)
    ref = [net.route(int(s), int(t)) for s, t in subset]
    t_ref = best_of(
        lambda: [net.route(int(s), int(t)) for s, t in subset], repeats=2
    )
    ref_pps = REF_SAMPLE / t_ref

    # Cross-check before trusting the clock: bit-for-bit on the subset.
    for i, res in enumerate(ref):
        assert bool(batch.delivered[i]) == res.delivered
        assert float(batch.weight[i]) == res.weight
        assert int(batch.hops[i]) == res.hops

    speedup = batch_pps / ref_pps
    print(
        f"\nbatch router (n={graph.n}, m={graph.m}, pairs={N_PAIRS:,}): "
        f"compile {t_compile:.2f}s, route {t_batch:.2f}s "
        f"({batch_pps:,.0f} pairs/s); hop loop {ref_pps:,.0f} pairs/s "
        f"(measured on {REF_SAMPLE:,}); speedup {speedup:.1f}x"
    )

    out = emit(
        "router",
        params={
            "n": graph.n,
            "m": graph.m,
            "pairs": N_PAIRS,
            "reference_sample": REF_SAMPLE,
        },
        metrics={
            "engine_compile_seconds": round(t_compile, 3),
            "engine_route_seconds": round(t_batch, 3),
            "engine_pairs_per_second": round(batch_pps, 1),
            "reference_pairs_per_second": round(ref_pps, 1),
            "speedup": round(speedup, 1),
            "max_hops": int(batch.hops.max()),
            "avg_hops": round(float(batch.hops.mean()), 2),
        },
        floors={"speedup": SPEEDUP_FLOOR},
    )
    print(f"wrote {out}")

    assert speedup >= SPEEDUP_FLOOR, (
        f"batch-router speedup {speedup:.1f}x below the {SPEEDUP_FLOOR}x floor"
    )
