"""F5 — the general scheme (Theorem 4.1): stretch ≤ 4k−5, n^{1/k} space."""

from __future__ import annotations

from conftest import run_once

from repro.analysis.experiments import exp_f5


def test_fig5_general_k(benchmark, show, bench_scale, bench_seed):
    result = run_once(
        benchmark, lambda: exp_f5(scale=bench_scale, seed=bench_seed)
    )
    show(result)

    by_graph = {}
    for row in result.rows:
        assert row["violations"] == 0, row
        assert row["max_stretch"] <= row["bound_4k-5"] + 1e-9, row
        by_graph.setdefault(row["graph"], []).append(row)

    # The tradeoff direction: larger k must not *increase* table size
    # meaningfully (monotone within noise) while the stretch bound grows.
    for gname, rows in by_graph.items():
        rows.sort(key=lambda r: r["k"])
        for a, b in zip(rows, rows[1:]):
            assert b["max_table_bits"] <= a["max_table_bits"] * 1.35, (gname, a, b)
