"""T1 — the paper's comparison table: prior art vs TZ, stretch vs space.

Regenerates the introduction table of TZ SPAA'01 with measured columns:
shortest-path routing (stretch 1), single-tree routing (O(1) space),
Cowen stretch-3, TZ stretch-3, TZ general-k with and without handshake.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis.experiments import exp_t1


def test_table1_scheme_comparison(benchmark, show, bench_scale, bench_seed):
    result = run_once(
        benchmark, lambda: exp_t1(scale=bench_scale, seed=bench_seed)
    )
    show(result)

    # Acceptance: no scheme ever violates its proven stretch bound.
    for row in result.rows:
        assert row["violations"] == 0, row

    # The winners match the paper's table on every reference graph:
    by_graph = {}
    for row in result.rows:
        by_graph.setdefault(row["graph"], {})[row["scheme"]] = row
    for gname, schemes in by_graph.items():
        sp = schemes["shortest-path"]
        tz2 = schemes["tz-stretch3"]
        tree = schemes["single-tree"]
        assert sp["max_stretch"] <= 1.0 + 1e-9
        assert tz2["max_stretch"] <= 3.0 + 1e-9
        # Single-tree has the smallest table, SP the exact routes,
        # compact schemes sit in between on both axes.
        assert tree["max_table_bits"] < tz2["max_table_bits"]
        assert tree["avg_stretch"] >= tz2["avg_stretch"] * 0.99
