"""X1 — extension: distance labels (the distributed oracle corollary)."""

from __future__ import annotations

from conftest import run_once

from repro.analysis.experiments import exp_x1


def test_ext1_distance_labels(benchmark, show, bench_scale, bench_seed):
    result = run_once(
        benchmark, lambda: exp_x1(scale=bench_scale, seed=bench_seed)
    )
    show(result)

    by_graph = {}
    for row in result.rows:
        assert row["violations"] == 0, row
        assert row["max_ratio"] <= row["bound_2k-1"] + 1e-9, row
        assert row["avg_query_steps"] <= row["k"] - 1 + 1e-9, row
        by_graph.setdefault(row["graph"], []).append(row)

    # Labels shrink as k grows — the n^{1/k} tradeoff.
    for gname, rows in by_graph.items():
        rows.sort(key=lambda r: r["k"])
        for a, b in zip(rows, rows[1:]):
            assert b["avg_label_bits"] <= a["avg_label_bits"] * 1.15, (gname, a, b)
