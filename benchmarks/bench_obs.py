"""Telemetry overhead gate: disabled instrumentation must stay free.

The observability PR's acceptance gate, on the same 100k-pair route
setup as ``bench_batch_router``:

* **bit identity** — routing with telemetry enabled returns exactly the
  same result columns as routing with it disabled (instrumentation
  observes, never participates);
* **overhead ≤ 2%** — the *enabled* route time may exceed the
  *disabled* route time by at most 2% (best-of-N on both sides).
  Disabled mode does strictly less work than enabled mode (one
  attribute check vs attribute check + span/counter bookkeeping), so
  this single ratio also bounds the disabled-mode overhead the
  instrumented hot paths add.

The run also exports ``obs_trace.jsonl`` — the JSON-lines span trace of
one fully instrumented route — which CI uploads next to the
``BENCH_*.json`` artifacts, and ``BENCH_obs.json`` via the shared
emitter.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from _emit import emit
from conftest import best_of

from repro.core.scheme_k2 import build_stretch3_scheme
from repro.graphs import generators as gen
from repro.graphs.ports import assign_ports
from repro.obs import TELEMETRY, write_trace
from repro.sim.engine import BatchRouter
from repro.sim.workloads import uniform_pairs

OVERHEAD_CEILING = 1.02  # enabled/disabled route-time ratio
N_PAIRS = 100_000
REPEATS = 5


@pytest.fixture(scope="module")
def setup():
    n = 4000 if os.environ.get("REPRO_BENCH_SCALE") == "full" else 2000
    graph = gen.gnp(n, 10.0 / n, rng=2025, weights=(1, 8)).largest_component()
    ported = assign_ports(graph, "random", rng=7)
    scheme = build_stretch3_scheme(graph, ported, rng=11)
    pairs = uniform_pairs(graph, N_PAIRS, rng=3)
    router = BatchRouter(ported, scheme)
    return graph, router, pairs


def test_obs_overhead(setup):
    graph, router, pairs = setup

    TELEMETRY.disable()
    TELEMETRY.reset()
    base = router.route_pairs(pairs)
    t_off = best_of(lambda: router.route_pairs(pairs), repeats=REPEATS)

    TELEMETRY.reset()
    TELEMETRY.enable()
    try:
        instrumented = router.route_pairs(pairs)
        t_on = best_of(lambda: router.route_pairs(pairs), repeats=REPEATS)
        trace_out = os.environ.get("BENCH_OBS_TRACE", "obs_trace.jsonl")
        write_trace(trace_out)
        pops = TELEMETRY.counters.get("route.pairs_routed", 0)
    finally:
        TELEMETRY.disable()
        TELEMETRY.reset()

    # Bit identity: telemetry observes the route, never participates.
    for name in (
        "source", "dest", "delivered", "weight", "hops", "tree",
        "max_header_bits", "failure_code",
    ):
        assert np.array_equal(
            getattr(base, name), getattr(instrumented, name)
        ), f"telemetry changed result column {name!r}"
    assert pops >= N_PAIRS  # the instrumented run actually recorded

    ratio = t_on / max(t_off, 1e-9)
    print(
        f"\ntelemetry overhead (n={graph.n}, m={graph.m}, "
        f"pairs={N_PAIRS:,}): disabled {t_off:.3f}s, enabled {t_on:.3f}s, "
        f"ratio {ratio:.4f} (ceiling {OVERHEAD_CEILING}); "
        f"trace -> {trace_out}"
    )

    out = emit(
        "obs",
        params={"n": graph.n, "m": graph.m, "pairs": N_PAIRS, "repeats": REPEATS},
        metrics={
            "disabled_route_seconds": round(t_off, 4),
            "enabled_route_seconds": round(t_on, 4),
            "overhead_ratio": round(ratio, 4),
        },
        floors={"overhead_ratio_ceiling": OVERHEAD_CEILING},
    )
    print(f"wrote {out}")

    assert ratio <= OVERHEAD_CEILING, (
        f"enabled-telemetry route is {ratio:.3f}x the disabled time, "
        f"above the {OVERHEAD_CEILING}x ceiling"
    )
