"""Vectorized scheme builder vs the per-node reference: construction time.

The acceptance gate of the builder PR: on a 20k-node G(n, p) graph
(k = 2, Bernoulli hierarchy) the array-program pipeline of
:mod:`repro.core.build.vectorized` must construct the complete scheme —
clusters, bunches, heavy-light trees, ports, label structures —
**≥ 10×** faster than the per-node reference (truncated Dijkstra + tree
compile per center).

At 20k vertices the reference needs minutes, so its rate is measured on
a sampled subset of centers per hierarchy level and extrapolated by
center count, exactly like the router benchmark extrapolates the hop
loop.  The extrapolation is conservative: it only charges the reference
for cluster growth and tree compilation, not for the label/table
assembly it would also pay.  Before any clock is trusted, the sampled
reference clusters and records are cross-checked bit-for-bit against
the vectorized arrays.  Results land in ``BENCH_builder.json`` (the CI
artifact tracking construction throughput across commits).

``REPRO_BENCH_N`` overrides the vertex count for local iteration.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest
from _emit import emit
from conftest import best_of

from repro.core.build.vectorized import vectorized_arrays
from repro.core.clusters import compute_cluster
from repro.core.landmarks import build_hierarchy
from repro.graphs import generators as gen
from repro.graphs.ports import assign_ports
from repro.trees.tz_tree import build_tree_router

SPEEDUP_FLOOR = 10.0
N_DEFAULT = 20_000
K = 2
#: Reference centers actually built per level (rate extrapolates).
SAMPLE_PER_LEVEL = {0: 120, 1: 6}


@pytest.fixture(scope="module")
def setup():
    n = int(os.environ.get("REPRO_BENCH_N", N_DEFAULT))
    graph = gen.gnp(n, 10.0 / n, rng=2025, weights=(1, 8)).largest_component()
    ported = assign_ports(graph, "sorted")
    hierarchy = build_hierarchy(graph, K, rng=7)
    return graph, ported, hierarchy


def _reference_sample(graph, ported, hierarchy, rng):
    """Per-node construction cost, measured on sampled centers and
    extrapolated by level population.  Returns (seconds, sampled).

    Charges the reference for what :func:`repro.core.build.reference
    .reference_arrays` actually does per center: cluster growth, tree
    compilation, and the per-entry packing into arrays (extrapolated by
    entry count).  Label/table assembly is *not* charged — the estimate
    is conservative in the reference's favor.
    """
    total = 0.0
    sampled = []
    packed_entries = 0
    t_pack = 0.0
    for level in range(hierarchy.k):
        lvl = hierarchy.levels[level]
        centers = lvl[hierarchy.level_of[lvl] == level]
        if centers.size == 0:
            continue
        take = min(centers.size, SAMPLE_PER_LEVEL.get(level, 4))
        pick = centers[rng.choice(centers.size, size=take, replace=False)]
        thr = hierarchy.dist[level + 1]
        t0 = time.perf_counter()
        built = [
            (int(w), compute_cluster(graph, int(w), thr)) for w in pick
        ]
        routers = [
            (w, c, build_tree_router(c.tree(), ported, port_model="fixed"))
            for w, c in built
        ]
        elapsed = time.perf_counter() - t0
        total += elapsed * (centers.size / take)
        sampled.extend(routers)
        # Packing rate: the reference builder's per-entry append loop.
        t0 = time.perf_counter()
        for w, cluster, router in routers:
            tree = cluster.tree()
            rows = []
            for v in cluster.members():
                rec = router.records[v]
                rows.append(
                    (
                        v,
                        cluster.dist[v],
                        cluster.parent[v],
                        tree.heavy[v],
                        rec.f,
                        rec.finish,
                        rec.heavy_finish,
                        rec.light_depth,
                        router.labels[v].light_ports,
                    )
                )
            packed_entries += len(rows)
        t_pack += time.perf_counter() - t0
    return total, t_pack / max(packed_entries, 1), sampled


def _cross_check(arrays, sampled):
    """Sampled per-node output must match the vectorized arrays exactly."""
    for w, cluster, router in sampled:
        lo, hi = int(arrays.cl_indptr[w]), int(arrays.cl_indptr[w + 1])
        members = arrays.ent_member[lo:hi]
        assert np.array_equal(members, np.array(cluster.members())), w
        assert np.array_equal(
            arrays.ent_dist[lo:hi], np.array([cluster.dist[int(v)] for v in members])
        ), w
        assert np.array_equal(
            arrays.ent_parent[lo:hi],
            np.array([cluster.parent[int(v)] for v in members]),
        ), w
        for idx, v in enumerate(members.tolist()):
            rec = router.records[v]
            e = lo + idx
            assert (
                rec.f,
                rec.finish,
                rec.parent_port,
                rec.heavy_port,
                rec.heavy_finish,
                rec.light_depth,
            ) == (
                int(arrays.tr_f[e]),
                int(arrays.tr_finish[e]),
                int(arrays.tr_parent_port[e]),
                int(arrays.tr_heavy_port[e]),
                int(arrays.tr_heavy_finish[e]),
                int(arrays.tr_light_depth[e]),
            ), (w, v)
            assert router.labels[v].light_ports == tuple(
                arrays.lp_data[arrays.lp_indptr[e] : arrays.lp_indptr[e + 1]].tolist()
            ), (w, v)


def test_builder_speedup(setup):
    graph, ported, hierarchy = setup

    # Interleave best-of-2 rounds of the two builders: a transient CPU
    # stall (shared runners, noisy neighbors) then cannot penalize one
    # side of the ratio only.  Both passes sample the same centers — any
    # spread between them is the machine, not the algorithm.
    t_vec = np.inf
    t_grow = pack_rate = np.inf
    sampled = None
    for _ in range(2):
        t_vec = min(
            t_vec, best_of(lambda: vectorized_arrays(graph, ported, hierarchy))
        )
        grow, rate, sampled = _reference_sample(
            graph, ported, hierarchy, np.random.default_rng(3)
        )
        t_grow, pack_rate = min(t_grow, grow), min(pack_rate, rate)
    arrays = vectorized_arrays(graph, ported, hierarchy)
    _cross_check(arrays, sampled)
    t_ref = t_grow + pack_rate * arrays.entry_count

    speedup = t_ref / t_vec
    bunch = arrays.bunch_sizes()
    print(
        f"\nscheme builder (n={graph.n}, m={graph.m}, k={K}, "
        f"entries={arrays.entry_count:,}): vectorized {t_vec:.2f}s; "
        f"reference ~{t_ref:.1f}s (extrapolated from {len(sampled)} "
        f"sampled centers); speedup {speedup:.1f}x"
    )

    out = emit(
        "builder",
        params={
            "n": graph.n,
            "m": graph.m,
            "k": K,
            "sample_per_level": SAMPLE_PER_LEVEL,
        },
        metrics={
            "entries": arrays.entry_count,
            "bunch_mean": round(float(bunch.mean()), 2),
            "bunch_max": int(bunch.max()),
            "landmarks": int(hierarchy.top_level().size),
            "vectorized_seconds": round(t_vec, 3),
            "reference_seconds_extrapolated": round(t_ref, 2),
            "reference_grow_seconds": round(t_grow, 2),
            "reference_pack_seconds": round(pack_rate * arrays.entry_count, 2),
            "speedup": round(speedup, 1),
        },
        floors={"speedup": SPEEDUP_FLOOR},
    )
    print(f"wrote {out}")

    assert speedup >= SPEEDUP_FLOOR, (
        f"builder speedup {speedup:.1f}x below the {SPEEDUP_FLOOR}x floor"
    )
