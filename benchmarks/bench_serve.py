"""Serving daemon under Zipf load: end-to-end throughput and latency.

The acceptance gate of the serving PR: a real ``repro serve --daemon``
subprocess (separate interpreter, real TCP, real JSON framing) must
sustain at least :data:`PAIRS_PER_SECOND_FLOOR` routed pairs/s under
the Zipf load generator — N skewed users over M concurrent
connections, the daemon's production traffic model.  Client-observed
p50/p99 request latencies ride along in ``BENCH_serve.json``; the
latency numbers are recorded, the throughput is gated.

The floor is deliberately far below a healthy local measurement
(~10×): it exists to catch a serving-path collapse (accidental
per-request re-mmap, a serialization quadratic, an event-loop stall),
not to benchmark shared CI hardware.

``REPRO_BENCH_N`` overrides the vertex count for local iteration.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest
from _emit import emit

from repro.core.build import build_arrays
from repro.graphs import generators as gen
from repro.graphs.ports import assign_ports
from repro.serve import run_loadgen
from repro.store import SchemeStore

#: Routed pairs/s the daemon must sustain under Zipf load in CI.
PAIRS_PER_SECOND_FLOOR = 2_000.0

N_DEFAULT = 2_000
K = 2
USERS = 200
CONNECTIONS = 4
REQUESTS = 64
BATCH = 512
ZIPF_S = 1.2


@pytest.fixture(scope="module")
def published_store(tmp_path_factory):
    """Build and publish the served scheme lineage once."""
    store_dir = tmp_path_factory.mktemp("tzserve")
    n = int(os.environ.get("REPRO_BENCH_N", N_DEFAULT))
    graph = gen.gnp(n, 8.0 / n, rng=2026, weights=(1, 8)).largest_component()
    ported = assign_ports(graph, "sorted")
    arrays = build_arrays(graph, K, ported=ported, rng=13)
    store = SchemeStore(store_dir)
    key = store.publish(graph, ported, arrays, seed=13)
    return store_dir, key, graph


def test_daemon_sustains_zipf_load(published_store):
    store_dir, key, graph = published_store
    repo_root = Path(__file__).resolve().parent.parent
    port_file = store_dir / "port"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(repo_root / "src"), env.get("PYTHONPATH")) if p
    )
    # The daemon exports its telemetry on drain: serve.request spans to
    # the trace, latency histograms + queue/LRU gauges to the metrics
    # doc (both uploaded as CI artifacts next to BENCH_serve.json).
    trace_path = os.environ.get("BENCH_SERVE_TRACE", "serve_trace.jsonl")
    metrics_path = os.environ.get("BENCH_SERVE_METRICS", "serve_metrics.json")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve", "--daemon",
            "--store", str(store_dir), "--scheme", key,
            "--port", "0", "--port-file", str(port_file),
            "--queue-limit", str(CONNECTIONS * 4),
            "--trace", trace_path, "--metrics", metrics_path,
        ],
        cwd=repo_root,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        deadline = time.monotonic() + 120
        while not port_file.exists() and time.monotonic() < deadline:
            assert proc.poll() is None, proc.stdout.read()
            time.sleep(0.05)
        assert port_file.exists(), "daemon never wrote its port file"
        port = int(port_file.read_text())

        # One untimed warm-up request, then the measured run.
        run_loadgen(
            "127.0.0.1", port, users=USERS, connections=1, requests=2,
            batch=BATCH, zipf_s=ZIPF_S, seed=1,
        )
        report = run_loadgen(
            "127.0.0.1", port, users=USERS, connections=CONNECTIONS,
            requests=REQUESTS, batch=BATCH, zipf_s=ZIPF_S, seed=2,
        )
    finally:
        if proc.poll() is None:
            proc.send_signal(signal.SIGTERM)
            try:
                proc.communicate(timeout=60)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.communicate()

    assert proc.returncode == 0, "daemon did not drain to a clean exit"
    assert report.errors == 0, report.to_dict()["error_codes"]
    assert report.total_pairs == REQUESTS * BATCH

    pps = report.pairs_per_second
    print(
        f"\nserve @ n={graph.n} m={graph.m} k={K}: "
        f"{pps:,.0f} pairs/s over {CONNECTIONS} connections "
        f"({USERS} Zipf(s={ZIPF_S}) users, {REQUESTS}x{BATCH} pairs) | "
        f"latency p50 {report.p50 * 1e3:.1f} ms, "
        f"p99 {report.p99 * 1e3:.1f} ms"
    )

    emit(
        "serve",
        params={
            "n": int(graph.n),
            "m": int(graph.m),
            "k": K,
            "users": USERS,
            "connections": CONNECTIONS,
            "requests": REQUESTS,
            "batch": BATCH,
            "zipf_s": ZIPF_S,
        },
        metrics={
            "pairs_per_second": pps,
            "latency_p50_seconds": report.p50,
            "latency_p99_seconds": report.p99,
            "wall_seconds": report.wall_seconds,
            "delivered_fraction": report.delivered_pairs
            / max(report.total_pairs, 1),
        },
        floors={"pairs_per_second": PAIRS_PER_SECOND_FLOOR},
    )

    assert pps >= PAIRS_PER_SECOND_FLOOR, (
        f"daemon sustained only {pps:,.0f} pairs/s under Zipf load "
        f"(floor {PAIRS_PER_SECOND_FLOOR:,.0f})"
    )
