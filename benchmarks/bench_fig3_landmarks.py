"""F3 — the center algorithm (Theorem 3.1): |A| and the 4n/s cap."""

from __future__ import annotations

from conftest import run_once

from repro.analysis.experiments import exp_f3


def test_fig3_center_guarantees(benchmark, show, bench_scale, bench_seed):
    result = run_once(
        benchmark, lambda: exp_f3(scale=bench_scale, seed=bench_seed)
    )
    show(result)

    for row in result.rows:
        # The hard guarantee: every non-landmark cluster within 4n/s.
        assert row["cap_ok"] is True, row
        # |A| within a constant factor of the O(s·log n) expectation.
        assert row["|A|"] <= 4 * row["E|A|_ref"] + 8, row
        assert row["|A|"] >= 1
