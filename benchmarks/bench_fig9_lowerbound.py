"""F9 — lower-bound context (§1): measured space vs the stretch<3 bar.

Full shortest-path tables must grow Ω(n) bits per vertex (they achieve
stretch 1 < 3); the TZ stretch-3 tables grow ~√n — the separation the
Gavoille–Gengler bound says is impossible below stretch 3.
"""

from __future__ import annotations

import math

from conftest import run_once

from repro.analysis.experiments import exp_f9


def test_fig9_lower_bound_context(benchmark, show, bench_scale, bench_seed):
    result = run_once(
        benchmark, lambda: exp_f9(scale=bench_scale, seed=bench_seed)
    )
    show(result)

    rows = sorted(result.rows, key=lambda r: r["n"])
    for row in rows:
        # SP tables sit above the Ω(n)-bits-per-vertex bar...
        assert row["sp_table_bits"] >= row["n"] - 1, row
    if len(rows) >= 2:
        first, last = rows[0], rows[-1]
        ratio_n = last["n"] / first["n"]
        sp_growth = last["sp_table_bits"] / first["sp_table_bits"]
        tz_growth = last["tz2_avg_table_bits"] / first["tz2_avg_table_bits"]
        # ...and grow ~linearly, while TZ's *average* table grows
        # decisively slower (the max is dominated by landmark-count
        # variance at these sizes; EXPERIMENTS.md reports both). The
        # absolute-slope check needs the full n-range — polylog factors
        # dominate the 3x small-scale span.
        assert sp_growth >= 0.6 * ratio_n
        assert tz_growth <= sp_growth * 1.1
        if bench_scale == "full":
            assert math.log(tz_growth) / math.log(ratio_n) < 0.95
