"""X2 — extension: (2k−1)-spanners from the cluster trees."""

from __future__ import annotations

from conftest import run_once

from repro.analysis.experiments import exp_x2


def test_ext2_spanner(benchmark, show, bench_scale, bench_seed):
    result = run_once(
        benchmark, lambda: exp_x2(scale=bench_scale, seed=bench_seed)
    )
    show(result)

    by_graph = {}
    for row in result.rows:
        assert row["measured_stretch"] <= row["bound_2k-1"] + 1e-9, row
        assert row["spanner_edges"] <= 4 * row["kn^(1+1/k)_ref"], row
        by_graph.setdefault(row["graph"], []).append(row)

    # Spanners get sparser as k grows.
    for gname, rows in by_graph.items():
        rows.sort(key=lambda r: r["k"])
        for a, b in zip(rows, rows[1:]):
            assert b["spanner_edges"] <= a["spanner_edges"] * 1.1, (gname, a, b)
