"""Patch-based scheme maintenance vs full rebuild: update latency.

The acceptance gate of the incremental-maintenance PR: on a 20k-node
G(n, p) graph (k = 2) applying a single-edge weight delta (a bump on
a max-weight link) through :func:`repro.core.build.patch.patch_arrays`
must refresh the scheme **≥ 5×** faster than rebuilding it from
scratch with :func:`~repro.core.build.vectorized.vectorized_arrays`.
That ratio is the entire point of the subsystem: if patching is not
decisively cheaper than the (already heavily vectorized) full build,
churn maintenance would just rebuild.

Before any clock is trusted, the patched arrays are checked bit-exact
against the fresh rebuild through the store's
:func:`~repro.store.serialize_digest` — the same differential gate the
test suite enforces at small scale.  Results land in
``BENCH_update.json``.

``REPRO_BENCH_N`` overrides the vertex count for local iteration.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from _emit import emit
from conftest import best_of

from repro.core.build import build_arrays, patch_arrays
from repro.core.build.vectorized import vectorized_arrays
from repro.graphs import generators as gen
from repro.graphs.delta import GraphDelta
from repro.graphs.ports import assign_ports
from repro.store import serialize_digest

SPEEDUP_FLOOR = 5.0
N_DEFAULT = 20_000
K = 2
#: Edges whose weight the benchmark delta perturbs (the gate is about
#: single-edge churn; see ISSUE/ARCHITECTURE).
DELTA_EDGES = 1


@pytest.fixture(scope="module")
def setup():
    n = int(os.environ.get("REPRO_BENCH_N", N_DEFAULT))
    graph = gen.gnp(n, 10.0 / n, rng=2026, weights=(1, 8)).largest_component()
    ported = assign_ports(graph, "sorted")
    arrays = build_arrays(graph, K, ported=ported, rng=11)
    # The canonical *local* churn event: a weight bump on already-heavy
    # links.  Max-weight edges almost never carry shortest paths, so the
    # delta stays local and the gate measures the patch machinery, not
    # the (legitimate, rebuild-proportional) cost of re-growing every
    # landmark tree a tight edge feeds — that regime is the churn
    # scenario's territory.  The pick is structural (by stored weight),
    # not tuned against the built scheme.
    heavy = [int(e) for e in np.flatnonzero(graph.edge_weights == graph.edge_weights.max())]
    delta = GraphDelta(
        weight_updates=tuple(
            (
                int(graph.edges[eid, 0]),
                int(graph.edges[eid, 1]),
                float(graph.edge_weights[eid] + 3.0),
            )
            for eid in heavy[:DELTA_EDGES]
        )
    )
    return graph, ported, arrays, delta


def test_patch_beats_full_rebuild(setup):
    graph, ported, arrays, delta = setup

    patched = patch_arrays(arrays, graph, delta, ported=ported)

    # Differential gate before any timing: the patch must be bit-exact
    # against a fresh vectorized build of the mutated graph.
    fresh = vectorized_arrays(patched.graph, patched.ported, patched.hierarchy)
    assert serialize_digest(
        patched.graph, patched.ported, patched.arrays
    ) == serialize_digest(patched.graph, patched.ported, fresh)

    t_patch = best_of(
        lambda: patch_arrays(arrays, graph, delta, ported=ported), repeats=3
    )
    t_rebuild = best_of(
        lambda: vectorized_arrays(
            patched.graph, patched.ported, patched.hierarchy
        ),
        repeats=3,
    )
    speedup = t_rebuild / max(t_patch, 1e-9)

    stats = patched.stats
    reused = stats["entries_reused"] / max(
        stats["entries_reused"] + stats["entries_rebuilt"], 1
    )
    print(
        f"\nupdate @ n={graph.n} m={graph.m} k={K} "
        f"({DELTA_EDGES}-edge weight delta): "
        f"patch {t_patch * 1e3:.0f} ms vs rebuild {t_rebuild * 1e3:.0f} ms "
        f"-> {speedup:.1f}x (dirty {stats['dirty_clusters']}/{graph.n} "
        f"clusters, {reused:.1%} entries reused)"
    )

    emit(
        "update",
        params={
            "n": int(graph.n),
            "m": int(graph.m),
            "k": K,
            "delta_edges": DELTA_EDGES,
        },
        metrics={
            "patch_seconds": t_patch,
            "rebuild_seconds": t_rebuild,
            "speedup": speedup,
            "dirty_clusters": int(stats["dirty_clusters"]),
            "entries_reused_fraction": reused,
        },
        floors={"speedup": SPEEDUP_FLOOR},
    )

    assert speedup >= SPEEDUP_FLOOR, (
        f"patch only {speedup:.1f}x faster than a full rebuild "
        f"(floor {SPEEDUP_FLOOR}x)"
    )
