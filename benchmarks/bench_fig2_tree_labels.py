"""F2 — tree routing (Theorem 2.1): label/table bits across tree families.

The designer-port labels must track c·log₂n bits with a small constant
(the (1+o(1))·log n shape), fixed-port labels may grow toward log²n, and
TZ local records stay O(1) words while interval-routing tables grow with
the degree.
"""

from __future__ import annotations

import math

from conftest import run_once

from repro.analysis.experiments import exp_f2


def test_fig2_tree_labels(benchmark, show, bench_scale, bench_seed):
    result = run_once(
        benchmark, lambda: exp_f2(scale=bench_scale, seed=bench_seed)
    )
    show(result)

    for row in result.rows:
        n = row["n"]
        logn = math.log2(max(2, n))
        # (1+o(1))·log n shape: small multiple of log n, every family.
        assert row["designer_max_label"] <= 4 * logn + 16, row
        # Fixed-port labels stay within the O(log² n) regime.
        assert row["fixed_max_label"] <= 4 * logn * logn + 32, row
        # O(1)-word records: bounded by a few machine words.
        assert row["tz_max_record"] <= 6 * logn + 4 * 16, row

    # The designer constant trends down with n (the o(1) part): compare
    # label-bits/log2(n) at the smallest and largest size per family.
    by_family = {}
    for row in result.rows:
        by_family.setdefault(row["family"], []).append(row)
    for family, rows in by_family.items():
        rows.sort(key=lambda r: r["n"])
        first, last = rows[0], rows[-1]
        ratio_first = first["designer_avg_label"] / math.log2(max(2, first["n"]))
        ratio_last = last["designer_avg_label"] / math.log2(max(2, last["n"]))
        assert ratio_last <= ratio_first * 1.25, (family, ratio_first, ratio_last)
