"""A1 — ablation: bernoulli vs capped hierarchy sampling (DESIGN.md §2.5)."""

from __future__ import annotations

from conftest import run_once

from repro.analysis.experiments import exp_a1


def test_abl1_sampling_strategy(benchmark, show, bench_scale, bench_seed):
    result = run_once(
        benchmark, lambda: exp_a1(scale=bench_scale, seed=bench_seed)
    )
    show(result)

    rows = {row["sampling"]: row for row in result.rows}
    assert set(rows) == {"bernoulli", "capped"}
    for row in result.rows:
        # Whatever the sampling, the compiled schemes stayed within 4k−5.
        assert row["max_stretch_worst"] <= 7.0 + 1e-9, row
