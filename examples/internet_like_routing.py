#!/usr/bin/env python
"""Compact routing on an Internet-like topology (the paper's motivation).

Compiles TZ stretch-3 on a synthetic AS-level graph (heavy-tailed
degrees, high clustering) and shows the phenomenon the follow-on
literature made famous: worst-case stretch 3, but *average* stretch
close to 1 — with tables orders of magnitude below full routing tables.

Run:  python examples/internet_like_routing.py
"""

import numpy as np

from repro import (
    assign_ports,
    build_shortest_path_scheme,
    build_stretch3_scheme,
    space_stats,
)
from repro.graphs import generators as gen
from repro.graphs.shortest_paths import all_pairs_shortest_paths
from repro.rng import make_rng, sample_pairs
from repro.sim.runner import run_pairs


def main() -> None:
    graph = gen.internet_as_like(1500, rng=3)
    print(
        f"AS-like topology: n={graph.n}, m={graph.m}, "
        f"max degree {int(graph.degrees().max())} "
        f"(median {int(np.median(graph.degrees()))})"
    )
    ported = assign_ports(graph, "random", rng=4)

    tz = build_stretch3_scheme(graph, ported, rng=5)
    sp = build_shortest_path_scheme(graph, ported)

    D = all_pairs_shortest_paths(graph)
    pairs = sample_pairs(make_rng(6), graph.n, 3000)
    _, stretches = run_pairs(ported, tz, pairs, true_dist=D)
    arr = np.asarray(stretches)

    print(f"\nTZ stretch-3 over {len(arr)} random pairs:")
    print(f"  average stretch : {arr.mean():.3f}")
    print(f"  median  stretch : {np.median(arr):.3f}")
    print(f"  95th percentile : {np.percentile(arr, 95):.3f}")
    print(f"  worst observed  : {arr.max():.3f}  (bound: 3.0)")
    frac_exact = float((arr <= 1.0 + 1e-9).mean())
    print(f"  routed on exact shortest paths: {100*frac_exact:.1f}% of pairs")

    tz_space = space_stats(tz)
    sp_bits = [sp.table_bits(u) for u in range(graph.n)]
    print("\nspace (bits per vertex):")
    print(
        f"  TZ stretch-3   : avg {tz_space.avg_table_bits:,.0f}, "
        f"max {tz_space.max_table_bits:,}"
    )
    print(
        f"  full SP tables : avg {np.mean(sp_bits):,.0f}, "
        f"max {max(sp_bits):,}"
    )
    print(
        f"  TZ labels      : max {tz_space.max_label_bits} bits "
        "(the 'address' a destination advertises)"
    )


if __name__ == "__main__":
    main()
