#!/usr/bin/env python
"""The stretch/space tradeoff: sweep k with and without handshaking.

Regenerates the paper's central tradeoff on one graph: as k grows,
tables shrink toward Õ(n^{1/k}) while the stretch guarantee loosens from
3 to 4k−5 (2k−1 with handshaking).

Run:  python examples/stretch_vs_space_sweep.py
"""

from repro import (
    HandshakeRoutingScheme,
    assign_ports,
    build_tz_scheme,
    space_stats,
)
from repro.analysis.reporting import render_table
from repro.graphs import generators as gen
from repro.graphs.shortest_paths import all_pairs_shortest_paths
from repro.rng import make_rng, sample_pairs
from repro.sim.runner import run_pairs


def main() -> None:
    graph = gen.gnp(600, 0.012, rng=21, weights=(1, 16))
    ported = assign_ports(graph, "random", rng=22)
    D = all_pairs_shortest_paths(graph)
    pairs = sample_pairs(make_rng(23), graph.n, 1200)
    print(f"graph: n={graph.n}, m={graph.m}\n")

    rows = []
    for k in (1, 2, 3, 4):
        base = build_tz_scheme(graph, ported, k=k, rng=100 + k)
        _, st_base = run_pairs(ported, base, pairs, true_dist=D)
        hs = HandshakeRoutingScheme(base)
        _, st_hs = run_pairs(ported, hs, pairs, true_dist=D)
        sp = space_stats(base)
        rows.append(
            {
                "k": k,
                "bound(4k-5)": base.stretch_bound(),
                "measured_max": round(max(st_base), 3),
                "measured_avg": round(sum(st_base) / len(st_base), 3),
                "hs_bound(2k-1)": hs.stretch_bound(),
                "hs_max": round(max(st_hs), 3),
                "avg_table_bits": round(sp.avg_table_bits),
                "max_label_bits": sp.max_label_bits,
            }
        )
    print(render_table(rows, title="stretch vs space (one graph, k sweep)"))
    print(
        "\nreading: tables shrink with k, guarantees loosen — the paper's "
        "tradeoff;\nhandshaking halves the bound at identical tables."
    )


if __name__ == "__main__":
    main()
