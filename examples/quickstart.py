#!/usr/bin/env python
"""Quickstart: compile the TZ stretch-3 scheme and route a message.

Run:  python examples/quickstart.py
"""

from repro import Network, assign_ports, build_stretch3_scheme, space_stats
from repro.graphs import generators as gen
from repro.graphs.shortest_paths import all_pairs_shortest_paths


def main() -> None:
    # 1. A random weighted network (any connected Graph works).
    graph = gen.gnp(400, 0.02, rng=7, weights=(1, 10))
    print(f"graph: n={graph.n} vertices, m={graph.m} edges")

    # 2. Physical port numbers — the fixed-port model: the scheme must
    #    cope with an arbitrary (here: random) numbering.
    ported = assign_ports(graph, "random", rng=1)

    # 3. Preprocess: landmarks (the center algorithm), clusters, tree
    #    routers, per-vertex tables and labels. Stretch bound: 3.
    scheme = build_stretch3_scheme(graph, ported, rng=42)
    print(f"landmarks selected: {scheme.landmark_count()}")

    sp = space_stats(scheme)
    print(
        f"tables: max {sp.max_table_bits} bits, avg {sp.avg_table_bits:.0f} "
        f"bits; labels: max {sp.max_label_bits} bits"
    )

    # 4. Route a message hop by hop through the simulated network.
    net = Network(ported, scheme)
    D = all_pairs_shortest_paths(graph)
    for (s, t) in [(0, 399), (17, 230), (5, 6)]:
        res = net.route(s, t, strict=True)
        stretch = res.weight / D[s, t] if D[s, t] > 0 else 1.0
        print(
            f"route {s:>3} -> {t:>3}: {res.hops} hops, weight {res.weight:g} "
            f"(shortest {D[s, t]:g}, stretch {stretch:.3f}), "
            f"header ≤ {res.max_header_bits} bits"
        )
        assert stretch <= 3.0  # the paper's §3 guarantee

    print("every route within the stretch-3 guarantee ✓")


if __name__ == "__main__":
    main()
