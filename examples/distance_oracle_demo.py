#!/usr/bin/env python
"""The TZ approximate distance oracle (STOC'01 companion structure).

Builds the 2k−1 oracle that shares its bunch machinery with the routing
schemes, compares estimates against true distances, and shows the
size/stretch tradeoff across k.

Run:  python examples/distance_oracle_demo.py
"""

import numpy as np

from repro import build_distance_oracle
from repro.analysis.reporting import render_table
from repro.graphs import generators as gen
from repro.graphs.shortest_paths import all_pairs_shortest_paths
from repro.rng import make_rng, sample_pairs


def main() -> None:
    graph = gen.barabasi_albert(800, 3, rng=31, weights=(1, 12))
    D = all_pairs_shortest_paths(graph)
    pairs = sample_pairs(make_rng(32), graph.n, 2000)
    print(f"graph: n={graph.n}, m={graph.m}\n")

    rows = []
    for k in (1, 2, 3, 4):
        oracle = build_distance_oracle(graph, k, rng=300 + k)
        ratios = []
        for s, t in pairs:
            d = float(D[int(s), int(t)])
            if d > 0:
                ratios.append(oracle.query(int(s), int(t)) / d)
        arr = np.asarray(ratios)
        rows.append(
            {
                "k": k,
                "bound(2k-1)": oracle.stretch_bound(),
                "max_ratio": round(float(arr.max()), 3),
                "avg_ratio": round(float(arr.mean()), 3),
                "size_words": oracle.size_words(),
                "avg_bunch": round(oracle.avg_bunch_size(), 1),
            }
        )
    print(render_table(rows, title="distance oracle: stretch vs size by k"))
    print(
        "\nk=1 stores everything and answers exactly; each +1 in k trades "
        "answer quality\nfor a polynomial drop in stored words — the same "
        "tradeoff the routing tables make."
    )

    s, t = int(pairs[0][0]), int(pairs[0][1])
    oracle = build_distance_oracle(graph, 3, rng=303)
    print(
        f"\nexample query ({s}, {t}): oracle {oracle.query(s, t):g} "
        f"vs true {D[s, t]:g}"
    )


if __name__ == "__main__":
    main()
