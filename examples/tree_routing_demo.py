#!/usr/bin/env python
"""Tree routing (TZ §2): O(1)-word tables, (1+o(1))·log n-bit labels.

Builds one random tree twice — once with designer ports (the scheme
chooses the numbering; port = child rank) and once with adversarial
random fixed ports — and compares measured label sizes, then routes
messages with both.

Run:  python examples/tree_routing_demo.py
"""

import math

from repro import assign_ports, build_tree_router, designer_ports_for_tree
from repro.graphs import generators as gen
from repro.graphs.shortest_paths import dijkstra
from repro.graphs.trees import tree_from_parents


def route(router, ported, s, t):
    """Drive the O(1) forwarding rule hop by hop."""
    label = router.labels[t]
    path = [s]
    while True:
        port = router.decide(path[-1], label)
        if port is None:
            return path
        path.append(ported.step(path[-1], port))


def main() -> None:
    n = 2000
    tree_graph = gen.random_tree(n, rng=11)
    _, parent = dijkstra(tree_graph, 0)
    pmap = {v: int(parent[v]) for v in range(n)}
    pmap[0] = -1
    rooted = tree_from_parents(0, pmap)
    print(
        f"random tree: n={n}, depth={max(rooted.depth.values())}, "
        f"max light depth={rooted.max_light_depth()} "
        f"(≤ log2 n = {math.log2(n):.1f})"
    )

    designer = designer_ports_for_tree(tree_graph, rooted)
    fixed = assign_ports(tree_graph, "random", rng=5)
    r_designer = build_tree_router(rooted, designer, port_model="designer")
    r_fixed = build_tree_router(rooted, fixed, port_model="fixed")

    logn = math.ceil(math.log2(n))
    for name, router in (("designer", r_designer), ("fixed", r_fixed)):
        bits = [router.label_bits(v) for v in range(n)]
        print(
            f"{name:>8} ports: labels avg {sum(bits)/n:.1f} bits, "
            f"max {max(bits)} bits  (log2 n = {logn})"
        )

    # Per-vertex state is O(1) words regardless of degree:
    max_port = int(tree_graph.degrees().max())
    rec_bits = [r_fixed.record_bits(v, max_port) for v in range(n)]
    print(f"local records: max {max(rec_bits)} bits — O(1) words per vertex")

    # Route across the tree with both port models.
    for ported, router, name in (
        (designer, r_designer, "designer"),
        (fixed, r_fixed, "fixed"),
    ):
        path = route(router, ported, n - 1, n // 3)
        assert path[-1] == n // 3
        print(f"{name:>8}: routed {n-1} -> {n//3} in {len(path)-1} hops ✓")


if __name__ == "__main__":
    main()
