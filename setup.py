"""Setuptools shim.

The canonical metadata lives in ``pyproject.toml``.  This file exists so
that ``python setup.py develop`` works on offline machines where pip's
PEP-517 editable path is unavailable (it needs the ``wheel`` package);
``pip install -e .`` uses ``pyproject.toml`` directly when it can.
"""

from setuptools import setup

setup()
