"""Differential kernel suite: native compiled paths ≡ numpy reference.

The native hop loop and builder frontier sweep (:mod:`repro.kernels`)
must reproduce the numpy paths **bit-for-bit** — same delivered flags,
weights, hop counts, header bits and failure codes out of the router,
same :class:`SchemeArrays` out of the builder — across graph families ×
k × seeds, in the same spirit ``test_builder_equivalence.py`` gates the
vectorized builder against the per-node reference.

Four layers:

1. **selection** — ``resolve_kernel`` semantics: explicit ``native``
   raises :class:`KernelError` when unavailable, ``auto`` degrades to
   numpy with a ``kernel.fallback`` counter + one-shot warning, and
   ``REPRO_NATIVE_KERNELS=0`` disables the backend outright;
2. **router differential** — ``route_pairs``/``route_trials`` column
   equality between kernels, including dead-edge trials and tiny ttls;
3. **builder differential** — ``vectorized_arrays(mode="pruned")``
   field equality between kernels (``mode`` forced past
   ``FULL_CENTER_LIMIT`` so small graphs exercise the sweep);
4. **degenerate inputs** — zero-pair matrices, zero-trial sweeps,
   single-vertex/edgeless graphs and all-dead-edge masks return
   identically-shaped results instead of raising, on every kernel; and
   non-float64-exact weights fall back loudly on every kernel.

Native-only tests skip cleanly when no C toolchain is present.
"""

from __future__ import annotations

import dataclasses
import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from strategies import FAMILIES, family_from_seed, ks, seeds

from repro.core.build import SchemeArrays, build_arrays, build_scheme
from repro.core.build.vectorized import FULL_CENTER_LIMIT, vectorized_arrays
from repro.core.landmarks import build_hierarchy
from repro.errors import KernelError
from repro.graphs import generators as gen
from repro.graphs.graph import Graph
from repro.graphs.ports import assign_ports
from repro.kernels import (
    KERNELS,
    KernelFallbackWarning,
    _build,
    available,
    native_error,
    resolve_kernel,
)
from repro.obs import TELEMETRY
from repro.rng import derive, make_rng
from repro.sim.engine.batch import BatchRouter

needs_native = pytest.mark.skipif(
    not available(), reason=f"native kernels unavailable: {native_error()}"
)

RESULT_FIELDS = (
    "source",
    "dest",
    "delivered",
    "weight",
    "hops",
    "tree",
    "max_header_bits",
    "failure_code",
)

ARRAY_FIELDS = [
    f.name
    for f in dataclasses.fields(SchemeArrays)
    if f.name not in ("n", "k", "hierarchy")
]


def assert_results_equal(a, b, context=""):
    """Bitwise column equality between two route results."""
    for name in RESULT_FIELDS:
        x, y = getattr(a, name), getattr(b, name)
        assert x.dtype == y.dtype, f"{name} dtype differs {context}"
        assert np.array_equal(x, y), f"{name} differs {context}"


def routers_for(graph, k, seed, kernels=("numpy", "native")):
    """One scheme, one router per kernel (the scheme is shared)."""
    ported = assign_ports(graph, "sorted")
    scheme = build_scheme(graph, k, ported=ported, rng=seed, kernel="numpy")
    return ported, {kern: BatchRouter(ported, scheme, kernel=kern) for kern in kernels}


def sample_pairs(graph, count, seed):
    rng = make_rng(derive(seed, "kernel-pairs"))
    pairs = rng.integers(0, graph.n, size=(count, 2))
    pairs[: max(1, count // 8), 1] = pairs[: max(1, count // 8), 0]  # trivial rows
    return pairs


# ----------------------------------------------------------------------
# 1. Kernel selection
# ----------------------------------------------------------------------
class TestResolveKernel:
    def test_numpy_always_resolves(self):
        assert resolve_kernel("numpy") == "numpy"

    def test_unknown_kernel_raises(self):
        with pytest.raises(KernelError, match="unknown kernel"):
            resolve_kernel("fortran")

    def test_kernels_tuple_is_the_cli_choice_set(self):
        assert KERNELS == ("auto", "native", "numpy")

    @needs_native
    def test_native_and_auto_resolve_native(self):
        assert resolve_kernel("native") == "native"
        assert resolve_kernel("auto") == "native"

    def test_env_disable_forces_numpy(self, monkeypatch):
        monkeypatch.setenv(_build.ENV_DISABLE, "0")
        _build.reset_for_tests()
        try:
            assert not available()
            assert native_error() is not None
            with pytest.raises(KernelError, match="unavailable"):
                resolve_kernel("native")
            TELEMETRY.reset()
            TELEMETRY.enable()
            try:
                with warnings.catch_warnings():
                    warnings.simplefilter("ignore", KernelFallbackWarning)
                    assert resolve_kernel("auto") == "numpy"
                assert TELEMETRY.counters.get("kernel.fallback") == 1
            finally:
                TELEMETRY.disable()
                TELEMETRY.reset()
        finally:
            monkeypatch.delenv(_build.ENV_DISABLE)
            _build.reset_for_tests()

    def test_disabled_backend_routes_bit_identically(self, monkeypatch):
        graph = family_from_seed(3, "gnp", n=32)
        ported, routers = routers_for(graph, 2, 3, kernels=("numpy",))
        pairs = sample_pairs(graph, 64, 3)
        want = routers["numpy"].route_pairs(pairs)
        monkeypatch.setenv(_build.ENV_DISABLE, "0")
        _build.reset_for_tests()
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", KernelFallbackWarning)
                scheme = build_scheme(graph, 2, ported=ported, rng=3, kernel="auto")
                got = BatchRouter(ported, scheme, kernel="auto").route_pairs(pairs)
            assert_results_equal(want, got, "(auto degraded to numpy)")
        finally:
            monkeypatch.delenv(_build.ENV_DISABLE)
            _build.reset_for_tests()


# ----------------------------------------------------------------------
# 2. Router differential: native hop loop ≡ numpy hop loop
# ----------------------------------------------------------------------
@needs_native
class TestHopLoopDifferential:
    @given(seed=seeds(), family=st.sampled_from(FAMILIES), k=ks(1, 4))
    @settings(max_examples=25, deadline=None)
    def test_route_pairs_bitwise(self, seed, family, k):
        graph = family_from_seed(seed, family, n=40)
        _, routers = routers_for(graph, k, seed)
        pairs = sample_pairs(graph, 120, seed)
        assert_results_equal(
            routers["numpy"].route_pairs(pairs),
            routers["native"].route_pairs(pairs),
            f"(family={family} k={k} seed={seed})",
        )

    @given(seed=seeds(), k=ks(1, 3))
    @settings(max_examples=15, deadline=None)
    def test_route_trials_bitwise(self, seed, k):
        graph = family_from_seed(seed, "gnp", n=36)
        _, routers = routers_for(graph, k, seed)
        pairs = sample_pairs(graph, 40, seed)
        rng = make_rng(derive(seed, "kernel-masks"))
        masks = rng.random((4, graph.m)) < 0.15
        assert_results_equal(
            routers["numpy"].route_trials(pairs, masks),
            routers["native"].route_trials(pairs, masks),
            f"(trials k={k} seed={seed})",
        )

    @pytest.mark.parametrize("ttl", [0, 1, 3])
    def test_tiny_ttl_bitwise(self, ttl):
        graph = family_from_seed(7, "grid", n=36)
        _, routers = routers_for(graph, 2, 7)
        pairs = sample_pairs(graph, 80, 7)
        assert_results_equal(
            routers["numpy"].route_pairs(pairs, ttl=ttl),
            routers["native"].route_pairs(pairs, ttl=ttl),
            f"(ttl={ttl})",
        )

    def test_telemetry_counters_match(self):
        graph = family_from_seed(11, "ba", n=48)
        _, routers = routers_for(graph, 3, 11)
        pairs = sample_pairs(graph, 200, 11)
        counts = {}
        for kern in ("numpy", "native"):
            TELEMETRY.reset()
            TELEMETRY.enable()
            try:
                routers[kern].route_pairs(pairs)
                counts[kern] = {
                    name: TELEMETRY.counters.get(name)
                    for name in (
                        "route.hop_iterations",
                        "route.pairs_routed",
                        "route.delivered",
                    )
                }
            finally:
                TELEMETRY.disable()
                TELEMETRY.reset()
        assert counts["numpy"] == counts["native"]

    def test_hop_step_span_records_impl(self):
        graph = family_from_seed(5, "gnp", n=32)
        _, routers = routers_for(graph, 2, 5)
        pairs = sample_pairs(graph, 30, 5)
        TELEMETRY.reset()
        TELEMETRY.enable()
        try:
            routers["native"].route_pairs(pairs)
            impls = [
                sp.attrs["impl"]
                for sp, _ in TELEMETRY.spans()
                if sp.name == "kernel.hop_step"
            ]
        finally:
            TELEMETRY.disable()
            TELEMETRY.reset()
        assert impls == ["native"]


# ----------------------------------------------------------------------
# 3. Builder differential: native frontier sweep ≡ numpy sweep
# ----------------------------------------------------------------------
@needs_native
class TestFrontierSweepDifferential:
    @given(seed=seeds(), family=st.sampled_from(FAMILIES), k=ks(2, 4))
    @settings(max_examples=20, deadline=None)
    def test_pruned_arrays_bitwise(self, seed, family, k):
        graph = family_from_seed(seed, family, n=44)
        ported = assign_ports(graph, "sorted")
        hierarchy = build_hierarchy(graph, k, make_rng(seed))
        # mode="pruned" forces the sweep even below FULL_CENTER_LIMIT
        # (these graphs are far smaller than 32-center levels require).
        ref = vectorized_arrays(graph, ported, hierarchy, mode="pruned", kernel="numpy")
        nat = vectorized_arrays(graph, ported, hierarchy, mode="pruned", kernel="native")
        assert ref.n == nat.n and ref.k == nat.k
        for name in ARRAY_FIELDS:
            assert np.array_equal(getattr(ref, name), getattr(nat, name)), (
                f"{name} differs (family={family} k={k} seed={seed})"
            )

    def test_auto_mode_large_level_paths_agree(self):
        # A graph big enough that mode="auto" actually picks "pruned".
        graph = gen.gnp(3 * FULL_CENTER_LIMIT, 0.08, rng=5, weights=(1, 7))
        ported = assign_ports(graph, "sorted")
        hierarchy = build_hierarchy(graph, 3, make_rng(5))
        ref = vectorized_arrays(graph, ported, hierarchy, kernel="numpy")
        nat = vectorized_arrays(graph, ported, hierarchy, kernel="native")
        for name in ARRAY_FIELDS:
            assert np.array_equal(getattr(ref, name), getattr(nat, name)), name

    def test_frontier_span_and_counters(self):
        graph = family_from_seed(9, "gnp", n=40)
        ported = assign_ports(graph, "sorted")
        hierarchy = build_hierarchy(graph, 3, make_rng(9))
        TELEMETRY.reset()
        TELEMETRY.enable()
        try:
            vectorized_arrays(graph, ported, hierarchy, mode="pruned", kernel="native")
            impls = {
                sp.attrs["impl"]
                for sp, _ in TELEMETRY.spans()
                if sp.name == "kernel.frontier_sweep"
            }
            settled = TELEMETRY.counters.get("build.frontier_settled", 0)
        finally:
            TELEMETRY.disable()
            TELEMETRY.reset()
        assert impls == {"native"}
        assert settled > 0


# ----------------------------------------------------------------------
# 4a. Degenerate inputs: identical empty shapes, never a raise
# ----------------------------------------------------------------------
def kernel_params():
    return [
        pytest.param("numpy"),
        pytest.param("auto"),
        pytest.param("native", marks=needs_native),
    ]


@pytest.mark.parametrize("kernel", kernel_params())
class TestDegenerateInputs:
    def test_zero_pair_matrix(self, kernel):
        graph = family_from_seed(2, "gnp", n=30)
        _, routers = routers_for(graph, 2, 2, kernels=(kernel,))
        res = routers[kernel].route_pairs(np.zeros((0, 2), dtype=np.int64))
        for name in RESULT_FIELDS:
            assert getattr(res, name).shape == (0,), name
        assert res.attempted == 0

    def test_zero_trial_sweep(self, kernel):
        graph = family_from_seed(2, "gnp", n=30)
        _, routers = routers_for(graph, 2, 2, kernels=(kernel,))
        pairs = np.array([[0, 5], [3, 7]])
        res = routers[kernel].route_trials(
            pairs, np.zeros((0, graph.m), dtype=bool)
        )
        assert res.delivered.shape == (0, 2)
        assert res.weight.shape == (0, 2)
        assert res.failure_code.shape == (0, 2)
        assert res.source.shape == (2,)

    def test_zero_pairs_zero_trials(self, kernel):
        graph = family_from_seed(2, "gnp", n=30)
        _, routers = routers_for(graph, 2, 2, kernels=(kernel,))
        res = routers[kernel].route_trials(
            np.zeros((0, 2), dtype=np.int64), np.zeros((0, graph.m), dtype=bool)
        )
        assert res.delivered.shape == (0, 0)

    def test_single_vertex_edgeless_graph(self, kernel):
        graph = Graph(1, [], [])
        ported = assign_ports(graph, "sorted")
        for k in (1, 3):
            scheme = build_scheme(graph, k, ported=ported, rng=0, kernel=kernel)
            router = BatchRouter(ported, scheme, kernel=kernel)
            empty = router.route_pairs(np.zeros((0, 2), dtype=np.int64))
            assert empty.delivered.shape == (0,)
            res = router.route_pairs(np.array([[0, 0]]))
            assert res.delivered.tolist() == [True]
            assert res.weight.tolist() == [0.0]
            assert res.hops.tolist() == [0]
            trials = router.route_trials(
                np.array([[0, 0]]), np.zeros((3, 0), dtype=bool)
            )
            assert trials.delivered.all() and trials.delivered.shape == (3, 1)

    def test_single_vertex_pruned_builder(self, kernel):
        graph = Graph(1, [], [])
        ported = assign_ports(graph, "sorted")
        hierarchy = build_hierarchy(graph, 2, make_rng(0))
        arrays = vectorized_arrays(
            graph, ported, hierarchy, mode="pruned", kernel=kernel
        )
        assert arrays.entry_count == 1

    def test_all_dead_edge_masks(self, kernel):
        graph = family_from_seed(4, "gnp", n=30)
        _, routers = routers_for(graph, 2, 4, kernels=("numpy", kernel))
        pairs = np.array([[0, 5], [1, 9], [2, 2]])
        masks = np.ones((2, graph.m), dtype=bool)
        res = routers[kernel].route_trials(pairs, masks)
        # Non-trivial pairs can never move; trivial pairs still deliver.
        assert not res.delivered[:, :2].any()
        assert res.delivered[:, 2].all()
        assert (res.weight[:, :2] == 0.0).all()
        assert_results_equal(
            routers["numpy"].route_trials(pairs, masks), res, "(all-dead)"
        )


# ----------------------------------------------------------------------
# 4b. Non-float64-exact weights: loud fallback on every kernel
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kernel", kernel_params())
class TestWeightFallback:
    def test_integer_weights_stay_on_fast_path(self, kernel):
        graph = family_from_seed(6, "gnp", n=30)  # integer-valued (1, 7)
        ported = assign_ports(graph, "sorted")
        with warnings.catch_warnings():
            warnings.simplefilter("error", KernelFallbackWarning)
            build_arrays(graph, 2, ported=ported, rng=6, kernel=kernel)

    def test_fractional_weights_fall_back_loudly(self, kernel):
        base = family_from_seed(6, "gnp", n=24, weights=None)
        rng = make_rng(derive(6, "frac"))
        graph = Graph(base.n, base.edges, rng.uniform(0.1, 1.0, base.m))
        ported = assign_ports(graph, "sorted")
        TELEMETRY.reset()
        TELEMETRY.enable()
        try:
            with pytest.warns(KernelFallbackWarning, match="not float64-exact"):
                arrays = build_arrays(graph, 2, ported=ported, rng=6, kernel=kernel)
            assert TELEMETRY.counters.get("kernel.fallback", 0) >= 1
        finally:
            TELEMETRY.disable()
            TELEMETRY.reset()
        assert arrays.entry_count > 0

    def test_float32_weights_fall_back_loudly(self, kernel):
        base = family_from_seed(8, "gnp", n=24, weights=None)
        rng = make_rng(derive(8, "f32"))
        w32 = rng.uniform(0.5, 2.0, base.m).astype(np.float32)
        graph = Graph(base.n, base.edges, w32)
        ported = assign_ports(graph, "sorted")
        with pytest.warns(KernelFallbackWarning, match="not float64-exact"):
            ref = build_arrays(graph, 2, ported=ported, rng=8, kernel="numpy")
        with pytest.warns(KernelFallbackWarning, match="not float64-exact"):
            got = build_arrays(graph, 2, ported=ported, rng=8, kernel=kernel)
        for name in ARRAY_FIELDS:
            assert np.array_equal(getattr(ref, name), getattr(got, name)), name
