"""Shared hypothesis strategies and seed→instance builders for the suite.

Randomized tests across the suite follow one idiom: hypothesis draws a
*seed*, and a deterministic builder turns it into a graph/tree instance
(so failures shrink to a single reproducible integer).  The builders and
the strategy wrappers both live here; individual test modules pick the
graph family, size and weight range that stresses their subject.

Weight ranges are integer ``(lo, hi)`` pairs — integer-valued weights
keep all distance arithmetic exact in float64, which the deterministic
tie-breaking (and the builder-equivalence contract) relies on.
"""

from __future__ import annotations

from typing import Optional, Tuple

from hypothesis import strategies as st

from repro.graphs import generators as gen
from repro.graphs.graph import Graph
from repro.graphs.shortest_paths import dijkstra
from repro.graphs.trees import RootedTree, tree_from_parents

SEED_MAX = 10**6

WeightSpec = Optional[Tuple[int, int]]

#: Graph families used by family-sweep tests (builder equivalence et al.).
FAMILIES = ("gnp", "ba", "grid", "tree", "geometric")


def seeds(max_value: int = SEED_MAX) -> st.SearchStrategy[int]:
    """The canonical seed strategy: a shrink-friendly non-negative int."""
    return st.integers(min_value=0, max_value=max_value)


def ks(lo: int = 1, hi: int = 4) -> st.SearchStrategy[int]:
    """Hierarchy level counts."""
    return st.integers(min_value=lo, max_value=hi)


# ----------------------------------------------------------------------
# Deterministic seed -> instance builders
# ----------------------------------------------------------------------
def gnp_from_seed(
    seed: int,
    *,
    n: int = 40,
    p: float = 0.12,
    weights: WeightSpec = (1, 7),
    connected: bool = True,
) -> Graph:
    """The workhorse G(n, p) instance used by property tests."""
    return gen.gnp(n, p, rng=seed, connected=connected, weights=weights)


def family_from_seed(
    seed: int,
    family: str,
    *,
    n: int = 48,
    weights: WeightSpec = (1, 7),
) -> Graph:
    """A connected instance of one of :data:`FAMILIES`, sized ~``n``."""
    if family == "gnp":
        return gen.gnp(n, 2.5 / max(n - 1, 1), rng=seed, weights=weights)
    if family == "ba":
        return gen.barabasi_albert(n, 2, rng=seed, weights=weights)
    if family == "grid":
        side = max(2, int(round(n**0.5)))
        return gen.grid2d(side, side, rng=seed, weights=weights)
    if family == "tree":
        return gen.random_tree(n, rng=seed, weights=weights)
    if family == "geometric":
        return gen.random_geometric(n, 1.8 * (1.0 / n) ** 0.5, rng=seed, weights=weights)
    raise ValueError(f"unknown graph family {family!r}")


def rooted_from_graph(tree_graph: Graph, root: int = 0) -> RootedTree:
    """Root a tree-shaped graph at ``root`` via its SPT parents."""
    _, parent = dijkstra(tree_graph, root)
    pmap = {v: int(parent[v]) for v in range(tree_graph.n)}
    pmap[root] = -1
    return tree_from_parents(root, pmap)


def random_rooted(seed: int, n: int = 60) -> RootedTree:
    """A random rooted tree — the heavy-light test workhorse."""
    return rooted_from_graph(gen.random_tree(n, rng=seed))


# ----------------------------------------------------------------------
# Strategy wrappers
# ----------------------------------------------------------------------
def gnp_graphs(
    *,
    n: int = 40,
    p: float = 0.12,
    weights: WeightSpec = (1, 7),
    connected: bool = True,
) -> st.SearchStrategy[Graph]:
    return seeds().map(
        lambda s: gnp_from_seed(s, n=n, p=p, weights=weights, connected=connected)
    )


def family_graphs(
    *,
    n: int = 48,
    weights: WeightSpec = (1, 7),
    families: Tuple[str, ...] = FAMILIES,
) -> st.SearchStrategy[Graph]:
    """A connected graph drawn across generator families."""
    return st.tuples(seeds(), st.sampled_from(families)).map(
        lambda sf: family_from_seed(sf[0], sf[1], n=n, weights=weights)
    )


def rooted_trees(*, n: int = 60) -> st.SearchStrategy[RootedTree]:
    return seeds().map(lambda s: random_rooted(s, n=n))


# ----------------------------------------------------------------------
# Graph deltas (incremental maintenance)
# ----------------------------------------------------------------------
#: Delta classes the strategy can mix (node-add rides on edge-add).
DELTA_CLASSES = ("weight", "edge-add", "edge-drop", "node-drop", "node-add")


def delta_from_seed(
    graph: Graph,
    seed: int,
    *,
    classes: Tuple[str, ...] = DELTA_CLASSES,
    max_weight: int = 7,
):
    """A deterministic random :class:`~repro.graphs.GraphDelta` for
    ``graph`` mixing the requested ``classes``.

    Weights are integers (the float64-exact contract the patch builder
    requires).  The delta is *not* guaranteed to keep the graph
    connected — property tests accept either a successful patch or the
    patch builder's explicit ``PreprocessingError`` refusal; use
    :func:`repro.scenarios.random_delta` when connectivity must hold.
    """
    import numpy as np

    from repro.graphs.delta import GraphDelta

    rng = np.random.Generator(np.random.PCG64([seed, 0xDE17A]))
    used = set()
    w_upd, adds, drops, drop_nodes = [], [], [], ()
    add_nodes = 0

    def pick_edges(count):
        count = min(count, graph.m)
        if count <= 0:
            return []
        eids = rng.choice(graph.m, size=count, replace=False)
        out = []
        for eid in eids:
            u, v = (int(x) for x in graph.edges[eid])
            if (u, v) not in used:
                used.add((u, v))
                out.append((eid, u, v))
        return out

    if "weight" in classes:
        for eid, u, v in pick_edges(int(rng.integers(1, 4))):
            w = float(rng.integers(1, max_weight + 1))
            if w == float(graph.edge_weights[eid]):
                w += 1.0
            w_upd.append((u, v, w))
    if "edge-drop" in classes:
        drops = [(u, v) for _, u, v in pick_edges(int(rng.integers(1, 3)))]
    if "node-drop" in classes and graph.n > 4:
        drop_nodes = tuple(
            int(x) for x in rng.choice(graph.n, size=1, replace=False)
        )
    if "node-add" in classes:
        add_nodes = 1
    if "edge-add" in classes or add_nodes:
        existing = {tuple(int(x) for x in e) for e in graph.edges}
        want = int(rng.integers(1, 3)) if "edge-add" in classes else 0
        hi = graph.n + add_nodes
        for _ in range(4 * (want + add_nodes)):
            if len(adds) >= want + 2 * add_nodes:
                break
            u, v = (int(x) for x in rng.integers(0, hi, size=2))
            if u == v:
                continue
            key = (u, v) if u < v else (v, u)
            if key in existing or key in used:
                continue
            used.add(key)
            adds.append((*key, float(rng.integers(1, max_weight + 1))))
        if add_nodes and not any(
            max(u, v) >= graph.n for u, v, _ in adds
        ):
            # ensure the appended node is wired to something
            anchor = int(rng.integers(0, graph.n))
            adds.append((anchor, graph.n, float(rng.integers(1, max_weight + 1))))

    return GraphDelta(
        weight_updates=tuple(w_upd),
        add_edges=tuple(adds),
        drop_edges=tuple(drops),
        drop_nodes=drop_nodes,
        add_nodes=add_nodes,
    )


def graph_deltas(
    *,
    classes: Tuple[str, ...] = DELTA_CLASSES,
    max_weight: int = 7,
) -> st.SearchStrategy:
    """Strategy over non-empty deltas for a graph chosen by the test.

    Draws ``(seed, class-subset)`` and returns a builder closure
    ``make(graph) -> GraphDelta`` so one draw can be applied to any
    instance (tests typically pair it with :func:`family_graphs`).
    """
    subsets = st.sets(
        st.sampled_from(classes), min_size=1, max_size=len(classes)
    ).map(lambda s: tuple(sorted(s)))
    return st.tuples(seeds(), subsets).map(
        lambda sc: (
            lambda graph: delta_from_seed(
                graph, sc[0], classes=sc[1], max_weight=max_weight
            )
        )
    )
