"""Baselines: shortest-path exactness, single-tree delivery, Cowen."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.baselines.cowen import build_cowen_scheme, cowen_landmark_set
from repro.baselines.shortest_path_routing import build_shortest_path_scheme
from repro.baselines.tree_spanner import build_single_tree_scheme
from repro.errors import PreprocessingError
from repro.graphs import generators as gen
from repro.graphs.graph import Graph
from repro.graphs.ports import assign_ports
from repro.graphs.shortest_paths import all_pairs_shortest_paths
from repro.rng import all_pairs
from repro.sim.runner import run_pairs


class TestShortestPathRouting:
    def test_every_pair_exact(self, small_weighted_graph, ported_small, dist_small):
        scheme = build_shortest_path_scheme(small_weighted_graph, ported_small)
        pairs = all_pairs(small_weighted_graph.n, limit=2000, rng=1)
        results, stretches = run_pairs(
            ported_small, scheme, pairs, true_dist=dist_small
        )
        assert all(r.delivered for r in results)
        assert max(stretches) <= 1.0 + 1e-9

    def test_table_bits_linear_in_n(self, small_weighted_graph, ported_small):
        scheme = build_shortest_path_scheme(small_weighted_graph, ported_small)
        n = small_weighted_graph.n
        for u in (0, 5, n - 1):
            assert scheme.table_bits(u) >= n - 1  # at least 1 bit per dest

    def test_stretch_bound(self, small_weighted_graph, ported_small):
        scheme = build_shortest_path_scheme(small_weighted_graph, ported_small)
        assert scheme.stretch_bound() == 1.0

    def test_disconnected_rejected(self):
        with pytest.raises(PreprocessingError):
            build_shortest_path_scheme(Graph(4, [(0, 1), (2, 3)]))


class TestSingleTreeRouting:
    @pytest.mark.parametrize("kind", ["spt", "mst"])
    def test_all_pairs_delivered(
        self, small_weighted_graph, ported_small, dist_small, kind
    ):
        scheme = build_single_tree_scheme(
            small_weighted_graph, ported_small, tree=kind
        )
        pairs = all_pairs(small_weighted_graph.n, limit=1200, rng=2)
        results, _ = run_pairs(ported_small, scheme, pairs, true_dist=dist_small)
        assert all(r.delivered for r in results)

    def test_tables_are_constant_size(self, small_weighted_graph, ported_small):
        scheme = build_single_tree_scheme(small_weighted_graph, ported_small)
        n = small_weighted_graph.n
        bound = 8 * math.ceil(math.log2(n)) + 64
        for u in range(n):
            assert scheme.table_bits(u) <= bound

    def test_stretch_can_exceed_3(self):
        """On a ring, tree routing must go the long way around for some
        pair — the reason single-tree routing is not competitive."""
        g = gen.ring(40)
        pg = assign_ports(g, "sorted")
        scheme = build_single_tree_scheme(g, pg, tree="spt", root=0)
        D = all_pairs_shortest_paths(g)
        pairs = all_pairs(g.n)
        _, stretches = run_pairs(pg, scheme, pairs, true_dist=D)
        assert max(stretches) > 3.0

    def test_unbounded_stretch_bound(self, small_weighted_graph, ported_small):
        scheme = build_single_tree_scheme(small_weighted_graph, ported_small)
        assert scheme.stretch_bound() == float("inf")

    def test_bad_tree_kind(self, small_weighted_graph):
        with pytest.raises(PreprocessingError):
            build_single_tree_scheme(small_weighted_graph, tree="bogus")

    def test_disconnected_rejected(self):
        with pytest.raises(PreprocessingError):
            build_single_tree_scheme(Graph(4, [(0, 1), (2, 3)]))


class TestCowen:
    @pytest.fixture(scope="class")
    def cowen_setup(self, small_weighted_graph, ported_small, dist_small):
        scheme = build_cowen_scheme(small_weighted_graph, ported_small, rng=3)
        return scheme, dist_small

    def test_stretch_3_exact_bound(
        self, cowen_setup, small_weighted_graph, ported_small
    ):
        scheme, D = cowen_setup
        pairs = all_pairs(small_weighted_graph.n, limit=2000, rng=4)
        results, stretches = run_pairs(ported_small, scheme, pairs, true_dist=D)
        assert all(r.delivered for r in results)
        assert max(stretches) <= 3.0 + 1e-9

    def test_landmarks_dominate_balls(self, small_weighted_graph, dist_small):
        """Every vertex has a landmark among its q nearest."""
        g = small_weighted_graph
        q = 20
        L = cowen_landmark_set(g, q, dist_matrix=dist_small)
        for v in range(g.n):
            order = np.lexsort((np.arange(g.n), dist_small[v]))
            ball = set(order[:q].tolist())
            assert ball & set(L.tolist())

    def test_bunches_bounded_by_q(self, small_weighted_graph, ported_small):
        """The structural fact that gives Cowen its Õ(n^{2/3}) tables:
        |B(v)| ≤ q (every bunch member is among v's q nearest)."""
        g = small_weighted_graph
        q = 25
        scheme = build_cowen_scheme(g, ported_small, q=q, rng=5)
        landmark_count = scheme.landmark_count()
        for u in range(g.n):
            non_landmark_trees = len(scheme.tables[u].trees) - landmark_count
            assert non_landmark_trees <= q

    def test_tz_grows_slower_than_cowen(self):
        """The paper's improvement is asymptotic — Õ(√n) vs Õ(n^{2/3})
        — so we assert on the *growth rate* of average table entries
        between two sizes, not on absolute values at small n (where
        Cowen's smaller constants win; EXPERIMENTS.md records both)."""
        from repro.core.scheme_k2 import build_stretch3_scheme

        def avg_entries(scheme, n):
            return float(
                np.mean(
                    [
                        len(scheme.tables[u].trees)
                        + len(scheme.tables[u].members)
                        for u in range(n)
                    ]
                )
            )

        sizes = (100, 400)
        growth = {}
        for name in ("cowen", "tz"):
            vals = []
            for n in sizes:
                g = gen.gnp(n, min(1.0, 8.0 / (n - 1)), rng=777, weights=(1, 8))
                pg = assign_ports(g, "sorted")
                if name == "cowen":
                    scheme = build_cowen_scheme(g, pg, rng=8)
                else:
                    scheme = build_stretch3_scheme(g, pg, rng=8)
                vals.append(avg_entries(scheme, g.n))
            growth[name] = vals[1] / vals[0]
        # 4x the vertices: √n predicts ~2x entries, n^{2/3} predicts
        # ~2.5x. Allow generous noise, but TZ must not grow faster.
        assert growth["tz"] <= growth["cowen"] * 1.15

    def test_greedy_cover_small(self, small_weighted_graph, dist_small):
        g = small_weighted_graph
        L = cowen_landmark_set(g, 30, dist_matrix=dist_small)
        # Greedy cover of 30-balls needs at most ~ (n/30)·ln n landmarks.
        assert L.size <= (g.n / 30) * math.log(g.n) * 3 + 5
