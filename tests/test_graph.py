"""Tests for the CSR graph core."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs.graph import Graph, GraphBuilder
from repro.graphs.validation import check_graph


class TestConstruction:
    def test_empty_graph(self):
        g = Graph(0, [])
        assert g.n == 0 and g.m == 0
        check_graph(g)

    def test_isolated_vertices(self):
        g = Graph(5, [])
        assert g.n == 5 and g.m == 0
        assert g.degree(3) == 0

    def test_single_edge(self):
        g = Graph(2, [(0, 1)], [2.5])
        assert g.m == 1
        assert g.edge_weight(0, 1) == 2.5
        assert g.edge_weight(1, 0) == 2.5

    def test_default_unit_weights(self):
        g = Graph(3, [(0, 1), (1, 2)])
        assert g.total_weight() == 2.0

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            Graph(3, [(1, 1)])

    def test_parallel_edge_rejected(self):
        with pytest.raises(GraphError):
            Graph(3, [(0, 1), (1, 0)])

    def test_out_of_range_endpoint_rejected(self):
        with pytest.raises(GraphError):
            Graph(3, [(0, 5)])

    def test_negative_weight_rejected(self):
        with pytest.raises(GraphError):
            Graph(2, [(0, 1)], [-1.0])

    def test_zero_weight_rejected(self):
        with pytest.raises(GraphError):
            Graph(2, [(0, 1)], [0.0])

    def test_nan_weight_rejected(self):
        with pytest.raises(GraphError):
            Graph(2, [(0, 1)], [float("nan")])

    def test_wrong_weight_shape_rejected(self):
        with pytest.raises(GraphError):
            Graph(2, [(0, 1)], [1.0, 2.0])

    def test_negative_vertex_count_rejected(self):
        with pytest.raises(GraphError):
            Graph(-1, [])


class TestAccessors:
    def test_neighbors_sorted(self, small_weighted_graph):
        g = small_weighted_graph
        for u in range(g.n):
            row = g.neighbors(u)
            assert np.all(np.diff(row) > 0)

    def test_degrees_sum_to_2m(self, small_weighted_graph):
        g = small_weighted_graph
        assert int(g.degrees().sum()) == 2 * g.m

    def test_has_edge_and_edge_id(self, diamond_graph):
        g = diamond_graph
        assert g.has_edge(0, 2) and g.has_edge(2, 0)
        assert not g.has_edge(1, 3)
        assert g.edge_id(0, 2) == g.edge_id(2, 0)

    def test_edge_id_missing_raises(self, diamond_graph):
        with pytest.raises(GraphError):
            diamond_graph.edge_id(1, 3)

    def test_neighbor_weights_alignment(self, small_weighted_graph):
        g = small_weighted_graph
        u = 0
        for v, w in zip(g.neighbors(u), g.neighbor_weights(u)):
            assert g.edge_weight(u, int(v)) == w

    def test_csr_invariants_hold(self, small_weighted_graph, ba_graph, grid_graph):
        for g in (small_weighted_graph, ba_graph, grid_graph):
            check_graph(g)


class TestDerivedRepresentations:
    def test_scipy_round_trip_distances(self, diamond_graph):
        mat = diamond_graph.to_scipy()
        assert mat.shape == (4, 4)
        assert mat[0, 1] == 1.0 and mat[1, 0] == 1.0

    def test_networkx_round_trip(self, small_weighted_graph):
        g = small_weighted_graph
        nxg = g.to_networkx()
        back = Graph.from_networkx(nxg)
        assert back == g

    def test_equality_semantics(self):
        a = Graph(3, [(0, 1)], [2.0])
        b = Graph(3, [(1, 0)], [2.0])
        c = Graph(3, [(0, 1)], [3.0])
        assert a == b
        assert a != c


class TestConnectivity:
    def test_connected_components_counts(self):
        g = Graph(5, [(0, 1), (2, 3)])
        count, labels = g.connected_components()
        assert count == 3
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[4] not in (labels[0], labels[2])

    def test_is_connected(self, small_weighted_graph):
        assert small_weighted_graph.is_connected()

    def test_largest_component_extraction(self):
        g = Graph(6, [(0, 1), (1, 2), (3, 4)])
        lc = g.largest_component()
        assert lc.n == 3 and lc.m == 2 and lc.is_connected()

    def test_subgraph_relabels(self, diamond_graph):
        sub = diamond_graph.subgraph([0, 2, 3])
        assert sub.n == 3
        # Edges (0,2),(2,3),(3,0) survive under relabeling 0->0,2->1,3->2.
        assert sub.m == 3

    def test_subgraph_duplicate_rejected(self, diamond_graph):
        with pytest.raises(GraphError):
            diamond_graph.subgraph([0, 0, 1])


class TestGraphBuilder:
    def test_deduplicates(self):
        b = GraphBuilder(3)
        assert b.add_edge(0, 1)
        assert not b.add_edge(1, 0)
        assert b.m == 1

    def test_ignores_self_loops(self):
        b = GraphBuilder(3)
        assert not b.add_edge(2, 2)
        assert b.m == 0

    def test_keeps_first_weight(self):
        b = GraphBuilder(2)
        b.add_edge(0, 1, 5.0)
        b.add_edge(0, 1, 9.0)
        g = b.build()
        assert g.edge_weight(0, 1) == 5.0

    def test_out_of_range_raises(self):
        with pytest.raises(GraphError):
            GraphBuilder(2).add_edge(0, 4)

    def test_has_edge_either_direction(self):
        b = GraphBuilder(3)
        b.add_edge(2, 0)
        assert b.has_edge(0, 2)
