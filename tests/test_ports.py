"""Port model tests: assignments, step/port inverses, designer ports."""

from __future__ import annotations

import pytest

from repro.errors import GraphError, PortError
from repro.graphs import generators as gen
from repro.graphs.ports import PortedGraph, assign_ports, designer_ports_for_tree
from repro.graphs.validation import check_ports

from test_trees import rooted_from_graph


class TestAssignments:
    @pytest.mark.parametrize("kind", ["sorted", "random", "reversed"])
    def test_valid_permutations(self, small_weighted_graph, kind):
        pg = assign_ports(small_weighted_graph, kind, rng=3)
        check_ports(pg)

    def test_unknown_kind_rejected(self, small_weighted_graph):
        with pytest.raises(GraphError):
            assign_ports(small_weighted_graph, "bogus")

    def test_sorted_assignment_is_identity_on_rank(self, small_weighted_graph):
        g = small_weighted_graph
        pg = assign_ports(g, "sorted")
        for u in range(g.n):
            for rank, v in enumerate(g.neighbors(u), start=1):
                assert pg.port(u, int(v)) == rank

    def test_random_assignments_deterministic_in_seed(self, small_weighted_graph):
        a = assign_ports(small_weighted_graph, "random", rng=5)
        b = assign_ports(small_weighted_graph, "random", rng=5)
        assert (a.port_of_arc == b.port_of_arc).all()

    def test_step_port_inverse(self, ported_small):
        g = ported_small.graph
        for u in range(g.n):
            for v in g.neighbors(u):
                assert ported_small.step(u, ported_small.port(u, int(v))) == int(v)

    def test_step_weight_matches_edge_weight(self, ported_small):
        g = ported_small.graph
        u = 0
        for v in g.neighbors(u):
            p = ported_small.port(u, int(v))
            assert ported_small.step_weight(u, p) == g.edge_weight(u, int(v))

    def test_invalid_port_raises(self, ported_small):
        with pytest.raises(PortError):
            ported_small.step(0, 0)
        with pytest.raises(PortError):
            ported_small.step(0, ported_small.degree(0) + 1)

    def test_port_of_non_edge_raises(self, ported_small):
        g = ported_small.graph
        u = 0
        non_neighbor = next(
            v for v in range(g.n) if v != u and not g.has_edge(u, v)
        )
        with pytest.raises(PortError):
            ported_small.port(u, non_neighbor)

    def test_max_port_bits(self, ported_small):
        assert ported_small.max_port_bits() >= 1


class TestDesignerPorts:
    def test_designer_port_equals_child_rank(self):
        tree_graph = gen.random_tree(60, rng=9)
        rooted = rooted_from_graph(tree_graph)
        pg = designer_ports_for_tree(tree_graph, rooted)
        check_ports(pg)
        for v in rooted.vertices:
            for rank, c in enumerate(rooted.children[v], start=1):
                assert pg.port(v, c) == rank

    def test_designer_parent_port_after_children(self):
        tree_graph = gen.star_tree(10)
        rooted = rooted_from_graph(tree_graph)
        pg = designer_ports_for_tree(tree_graph, rooted)
        for leaf in range(1, 10):
            # A leaf's only edge is to its parent: port 1.
            assert pg.port(leaf, 0) == 1

    def test_designer_on_graph_with_non_tree_edges(self, small_weighted_graph):
        g = small_weighted_graph
        rooted = rooted_from_graph(g)  # SPT of a non-tree graph
        pg = designer_ports_for_tree(g, rooted)
        check_ports(pg)
        for v in rooted.vertices:
            for rank, c in enumerate(rooted.children[v], start=1):
                assert pg.port(v, c) == rank


class TestPortedGraphValidation:
    def test_bad_port_range_rejected(self, small_weighted_graph):
        import numpy as np

        bad = np.zeros(2 * small_weighted_graph.m, dtype=np.int64)
        with pytest.raises(PortError):
            PortedGraph(small_weighted_graph, bad)

    def test_duplicate_port_rejected(self):
        from repro.graphs.graph import Graph
        import numpy as np

        g = Graph(3, [(0, 1), (0, 2)])
        port_of_arc = np.array([1, 1, 1, 1], dtype=np.int64)  # dup at vertex 0
        with pytest.raises(PortError):
            PortedGraph(g, port_of_arc)

    def test_wrong_shape_rejected(self, small_weighted_graph):
        import numpy as np

        with pytest.raises(GraphError):
            PortedGraph(small_weighted_graph, np.ones(3, dtype=np.int64))
