"""Differential construction suite: vectorized builder ≡ per-node reference.

The vectorized pipeline (:mod:`repro.core.build.vectorized`) must
reproduce the per-node reference **bit-for-bit** — same cluster sets and
distances, same SPT parents, same heavy-light records and ports, same
light-port sequences, same member maps and encoded labels — across a
sweep of generator families × k × seeds, in the same spirit
``test_batch_engine.py`` gates the batch router against the hop-by-hop
simulator.

Three layers of comparison:

1. **arrays** — ``reference_arrays`` vs ``vectorized_arrays`` (both
   cluster engines), every :class:`SchemeArrays` field via
   ``np.array_equal``;
2. **schemes** — ``build_scheme(builder=...)`` outputs: records, tree
   labels, member maps, pivots, destination labels, measured *and
   encoded* label bits, table bits;
3. **engine export** — ``compile_scheme`` of a vectorized-builder scheme
   (the array fast path) vs the reference dict walk, field by field.

Plus construction-invariant property tests: bunch/cluster duality,
subpath closure on vectorized clusters, and the Õ(n^{1/k}) size bounds
from :mod:`repro.analysis.bounds`.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np
import pytest
from hypothesis import given, settings
from strategies import FAMILIES, family_from_seed, family_graphs, ks, seeds

from repro.analysis.bounds import tz_table_bound_bits
from repro.core.build import SchemeArrays, build_arrays, build_scheme
from repro.core.build.reference import reference_arrays
from repro.core.build.vectorized import vectorized_arrays
from repro.core.labels import encode_label
from repro.core.landmarks import build_hierarchy
from repro.errors import PreprocessingError
from repro.graphs import generators as gen
from repro.graphs.ports import assign_ports
from repro.sim.engine.compile import compile_scheme

ARRAY_FIELDS = [
    f.name
    for f in dataclasses.fields(SchemeArrays)
    if f.name not in ("n", "k", "hierarchy")
]


def assert_arrays_equal(ref, vec, context=""):
    assert ref.n == vec.n and ref.k == vec.k
    for name in ARRAY_FIELDS:
        a, b = getattr(ref, name), getattr(vec, name)
        assert np.array_equal(a, b), f"{name} differs {context}"


def _instance(family, seed, n=48):
    g = family_from_seed(seed, family, n=n)
    return g, assign_ports(g, "random", rng=seed + 1)


# ----------------------------------------------------------------------
# Layer 1: array-by-array, generator families × k × seeds × engines
# ----------------------------------------------------------------------
class TestArrayEquivalence:
    @pytest.mark.parametrize("family", FAMILIES)
    @pytest.mark.parametrize("k", [1, 2, 3])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_sweep(self, family, k, seed):
        g, pg = _instance(family, 10 * seed + k)
        hierarchy = build_hierarchy(g, k, seed)
        ref = reference_arrays(g, pg, hierarchy)
        ref.validate()
        for mode in ("auto", "full", "pruned"):
            vec = vectorized_arrays(g, pg, hierarchy, mode=mode)
            assert_arrays_equal(ref, vec, f"({family}, k={k}, seed={seed}, {mode})")

    @given(family_graphs(n=40), ks(1, 4), seeds())
    @settings(max_examples=15, deadline=None)
    def test_property_random_instances(self, g, k, seed):
        pg = assign_ports(g, "random", rng=seed)
        hierarchy = build_hierarchy(g, k, seed)
        ref = reference_arrays(g, pg, hierarchy)
        vec = vectorized_arrays(g, pg, hierarchy)
        assert_arrays_equal(ref, vec, f"(k={k}, seed={seed})")

    def test_k4_deep_hierarchy(self):
        g, pg = _instance("gnp", 7, n=90)
        hierarchy = build_hierarchy(g, 4, 3)
        ref = reference_arrays(g, pg, hierarchy)
        for mode in ("full", "pruned"):
            assert_arrays_equal(ref, vectorized_arrays(g, pg, hierarchy, mode=mode))

    def test_unit_weights_maximal_ties(self):
        # Unit weights maximize equal-distance ties: the tie-break
        # replication (min-id tight parents, (-size, id) child order)
        # is what this instance stresses.
        g = gen.grid2d(7, 7)
        pg = assign_ports(g, "random", rng=2)
        hierarchy = build_hierarchy(g, 3, 5)
        ref = reference_arrays(g, pg, hierarchy)
        for mode in ("full", "pruned"):
            assert_arrays_equal(ref, vectorized_arrays(g, pg, hierarchy, mode=mode))

    def test_inexact_weights_fall_back_to_reference(self):
        from repro.graphs.graph import Graph

        g = gen.gnp(30, 0.15, rng=4)
        g2 = Graph(g.n, g.edges, np.full(g.m, math.pi))
        pg = assign_ports(g2, "sorted")
        hierarchy = build_hierarchy(g2, 2, 1)
        ref = reference_arrays(g2, pg, hierarchy)
        vec = vectorized_arrays(g2, pg, hierarchy)  # silently delegates
        assert_arrays_equal(ref, vec, "(pi weights)")

    def test_bad_method_and_mode_rejected(self):
        g, pg = _instance("gnp", 0)
        with pytest.raises(PreprocessingError):
            build_arrays(g, 2, ported=pg, builder="quantum")
        hierarchy = build_hierarchy(g, 2, 0)
        with pytest.raises(PreprocessingError):
            vectorized_arrays(g, pg, hierarchy, mode="bogus")

    def test_build_arrays_same_rng_same_hierarchy(self):
        g, pg = _instance("ba", 3)
        ref = build_arrays(g, 3, ported=pg, builder="reference", rng=123)
        vec = build_arrays(g, 3, ported=pg, builder="vectorized", rng=123)
        assert_arrays_equal(ref, vec, "(front door)")


# ----------------------------------------------------------------------
# Layer 2: materialized schemes, including encoded label bits
# ----------------------------------------------------------------------
class TestSchemeEquivalence:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_structures_and_encodings(self, k, small_weighted_graph, ported_small):
        g, pg = small_weighted_graph, ported_small
        ref = build_scheme(g, k, ported=pg, builder="reference", rng=500 + k)
        vec = build_scheme(g, k, ported=pg, builder="vectorized", rng=500 + k)
        assert ref.tree_sizes == vec.tree_sizes
        assert ref.tree_labels == vec.tree_labels
        for u in range(g.n):
            a, b = ref.tables[u], vec.tables[u]
            assert a.trees == b.trees
            assert a.own_labels == b.own_labels
            assert a.members == b.members
            assert a.pivots == b.pivots
            assert ref.labels[u] == vec.labels[u]
            assert ref.table_bits(u) == vec.table_bits(u)
            assert ref.label_bits(u) == vec.label_bits(u)
            # The actual encoded bit stream, not just its measured size.
            assert (
                encode_label(ref.labels[u], g.n, ref.tree_sizes).getvalue()
                == encode_label(vec.labels[u], g.n, vec.tree_sizes).getvalue()
            )

    def test_vectorized_label_bits_match_scalar(self, small_weighted_graph, ported_small):
        vec = build_scheme(small_weighted_graph, 3, ported=ported_small, builder="vectorized", rng=9)
        bits = vec._arrays.label_bits()
        for u in range(vec.n):
            assert int(bits[u]) == vec.label_bits(u)

    def test_routing_identical(self, small_weighted_graph, ported_small, dist_small):
        from repro.rng import all_pairs
        from repro.sim.runner import run_pairs

        g, pg = small_weighted_graph, ported_small
        ref = build_scheme(g, 3, ported=pg, builder="reference", rng=77)
        vec = build_scheme(g, 3, ported=pg, builder="vectorized", rng=77)
        pairs = all_pairs(g.n, limit=800, rng=5)
        res_a, str_a = run_pairs(pg, ref, pairs, true_dist=dist_small)
        res_b, str_b = run_pairs(pg, vec, pairs, true_dist=dist_small)
        assert str_a == str_b
        for x, y in zip(res_a, res_b):
            assert (x.delivered, x.weight, x.hops) == (y.delivered, y.weight, y.hops)

    def test_stretch3_scheme_builder_param(self, small_weighted_graph, ported_small):
        from repro.core.scheme_k2 import build_stretch3_scheme

        g, pg = small_weighted_graph, ported_small
        ref = build_stretch3_scheme(g, pg, rng=3, cluster_method="sparse")
        vec = build_stretch3_scheme(g, pg, rng=3, builder="vectorized")
        assert ref.tree_sizes == vec.tree_sizes
        for u in range(g.n):
            assert ref.tables[u].trees == vec.tables[u].trees
            assert ref.labels[u] == vec.labels[u]


# ----------------------------------------------------------------------
# Layer 3: the batch-engine export fast path
# ----------------------------------------------------------------------
class TestCompiledExport:
    @pytest.mark.parametrize("k", [2, 3])
    def test_compile_from_arrays_matches_dict_walk(self, k):
        g, pg = _instance("gnp", 11 + k, n=70)
        ref = build_scheme(g, k, ported=pg, builder="reference", rng=k)
        vec = build_scheme(g, k, ported=pg, builder="vectorized", rng=k)
        assert vec._arrays is not None and ref._arrays is None
        ca, cb = compile_scheme(vec, pg), compile_scheme(ref, pg)
        for f in dataclasses.fields(ca):
            a, b = getattr(ca, f.name), getattr(cb, f.name)
            if isinstance(a, np.ndarray):
                assert np.array_equal(a, b), f.name
            else:
                assert a == b, f.name

    def test_foreign_port_assignment(self):
        # Compiling against a port assignment the scheme was not built on
        # must resolve through the same physical links on both paths.
        g, pg = _instance("gnp", 21, n=60)
        other = assign_ports(g, "reversed")
        ref = build_scheme(g, 2, ported=pg, builder="reference", rng=2)
        vec = build_scheme(g, 2, ported=pg, builder="vectorized", rng=2)
        ca, cb = compile_scheme(vec, other), compile_scheme(ref, other)
        for f in dataclasses.fields(ca):
            a, b = getattr(ca, f.name), getattr(cb, f.name)
            if isinstance(a, np.ndarray):
                assert np.array_equal(a, b), f.name


# ----------------------------------------------------------------------
# Construction invariants (property tests)
# ----------------------------------------------------------------------
class TestConstructionInvariants:
    @given(family_graphs(n=44), ks(2, 3), seeds())
    @settings(max_examples=10, deadline=None)
    def test_bunch_cluster_duality(self, g, k, seed):
        """v ∈ C(w) ⇔ w ∈ B(v), with identical distances."""
        pg = assign_ports(g, "sorted")
        arrays = build_arrays(g, k, ported=pg, rng=seed)
        # The bunch CSR is a permutation of the entries...
        assert np.array_equal(np.sort(arrays.bunch_epos), np.arange(arrays.entry_count))
        # ...that preserves (center, member, dist) triples exactly.
        assert np.array_equal(arrays.bunch_centers, arrays.ent_center[arrays.bunch_epos])
        assert np.array_equal(arrays.bunch_dist, arrays.ent_dist[arrays.bunch_epos])
        members_of_bunches = np.repeat(np.arange(g.n), arrays.bunch_sizes())
        assert np.array_equal(members_of_bunches, arrays.ent_member[arrays.bunch_epos])
        # Spot-check against the set definition via dict-world bunches.
        from repro.core.clusters import bunches as bunches_dict
        from repro.core.clusters import compute_all_clusters

        clusters = compute_all_clusters(
            g,
            list(range(g.n)),
            np.stack([arrays.hierarchy.dist[arrays.hierarchy.level_of[w] + 1] for w in range(g.n)]),
            method="sparse",
        )
        B = bunches_dict(clusters)
        for v in range(0, g.n, max(1, g.n // 6)):
            lo, hi = arrays.bunch_indptr[v], arrays.bunch_indptr[v + 1]
            got = dict(zip(arrays.bunch_centers[lo:hi].tolist(), arrays.bunch_dist[lo:hi].tolist()))
            assert got == B[v]

    @given(family_graphs(n=44), ks(2, 4), seeds())
    @settings(max_examples=10, deadline=None)
    def test_subpath_closure_on_vectorized_clusters(self, g, k, seed):
        """Every SPT parent is a member at strictly smaller distance, and
        the parent chain reaches the center (no cycles)."""
        pg = assign_ports(g, "sorted")
        arrays = build_arrays(g, k, ported=pg, rng=seed, builder="vectorized")
        arrays.validate()
        rest = arrays.ent_parent >= 0
        pe = arrays.ent_parent_epos[rest]
        assert np.array_equal(arrays.ent_member[pe], arrays.ent_parent[rest])
        assert np.array_equal(arrays.ent_center[pe], arrays.ent_center[rest])
        assert np.all(arrays.ent_dist[pe] < arrays.ent_dist[rest])
        # Tree edges are graph edges with consistent weights.
        from repro.core.build.arrays import port_lookup

        port = port_lookup(pg)
        assert np.all(
            arrays.tr_parent_port[rest]
            == port(arrays.ent_member[rest], arrays.ent_parent[rest])
        )

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("k", [2, 3])
    def test_label_size_within_bound(self, seed, k):
        """Measured label and table bits stay under the Õ(n^{1/k}) curve
        of analysis.bounds (generous constant; fixed seeds keep the
        w.h.p. statement deterministic)."""
        g = gen.gnp(128, 0.05, rng=seed, weights=(1, 9))
        pg = assign_ports(g, "sorted")
        scheme = build_scheme(g, k, ported=pg, builder="vectorized", rng=seed)
        bound = tz_table_bound_bits(g.n, k, c_polylog=24.0)
        assert max(scheme.label_bits(v) for v in range(g.n)) <= bound
        mean_table = sum(scheme.table_bits(v) for v in range(g.n)) / g.n
        assert mean_table <= bound

    @given(seeds())
    @settings(max_examples=8, deadline=None)
    def test_bunch_sizes_near_expectation(self, seed):
        """E|B(v)| = O(k·n^{1/k}): the mean bunch size of a k=2 scheme
        stays within a small multiple of 2·sqrt(n)."""
        g = gen.gnp(100, 0.08, rng=seed, weights=(1, 5))
        arrays = build_arrays(g, 2, rng=seed)
        assert float(arrays.bunch_sizes().mean()) <= 8.0 * 2.0 * math.sqrt(g.n)
