"""RootedTree invariants: heavy-light structure, DFS intervals, ranks."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from strategies import random_rooted, rooted_from_graph, seeds

from repro.errors import GraphError
from repro.graphs import generators as gen
from repro.graphs.trees import RootedTree, tree_from_parents, tree_from_predecessors


class TestConstruction:
    def test_single_vertex(self):
        t = tree_from_parents(0, {0: -1})
        assert len(t) == 1 and t.size[0] == 1 and t.dfs[0] == 0

    def test_path_structure(self, path_graph):
        t = rooted_from_graph(path_graph)
        t.validate()
        assert t.max_light_depth() == 0  # a path is one heavy chain
        assert t.depth[path_graph.n - 1] == path_graph.n - 1

    def test_star_structure(self):
        t = rooted_from_graph(gen.star_tree(20))
        t.validate()
        # Every leaf except the heavy one is a light child.
        assert t.max_light_depth() == 1
        assert t.child_rank[t.children[0][-1]] == 19

    def test_cycle_in_parent_map_rejected(self):
        with pytest.raises(GraphError):
            RootedTree(0, {0: -1, 1: 2, 2: 1})

    def test_disconnected_parent_map_rejected(self):
        with pytest.raises(GraphError):
            RootedTree(0, {0: -1, 1: 0, 2: 5, 5: 2})

    def test_missing_parent_vertex_rejected(self):
        with pytest.raises(GraphError):
            RootedTree(0, {0: -1, 1: 7})

    def test_bad_root_rejected(self):
        with pytest.raises(GraphError):
            RootedTree(0, {0: 1, 1: -1})

    def test_from_predecessors_with_members(self):
        parent_row = np.array([-1, 0, 1, 1, -9999])
        t = tree_from_predecessors(0, parent_row, members=[0, 1, 2, 3])
        assert len(t) == 4
        t.validate()

    def test_from_predecessors_member_without_parent_rejected(self):
        parent_row = np.array([-1, -9999])
        with pytest.raises(GraphError):
            tree_from_predecessors(0, parent_row, members=[0, 1])


class TestHeavyLight:
    @given(seeds())
    @settings(max_examples=30, deadline=None)
    def test_invariants_on_random_trees(self, seed):
        t = random_rooted(seed)
        t.validate()

    @given(seeds())
    @settings(max_examples=30, deadline=None)
    def test_light_depth_log_bound(self, seed):
        t = random_rooted(seed, n=100)
        assert t.max_light_depth() <= math.log2(len(t)) + 1

    @given(seeds())
    @settings(max_examples=20, deadline=None)
    def test_rank_product_at_most_n(self, seed):
        t = random_rooted(seed, n=80)
        for v in t.vertices:
            product = 1
            for p, c in t.light_edges_to(v):
                product *= t.child_rank[c]
            assert product <= len(t)

    def test_heavy_child_is_first_in_dfs(self):
        t = random_rooted(3, n=50)
        for v in t.vertices:
            h = t.heavy[v]
            if h != -1:
                assert t.dfs[h] == t.dfs[v] + 1

    def test_deep_path_no_recursion_error(self):
        # 50_000-vertex path: iterative traversals must not blow the stack.
        n = 50_000
        pmap = {0: -1}
        for v in range(1, n):
            pmap[v] = v - 1
        t = RootedTree(0, pmap)
        assert t.size[0] == n
        assert t.depth[n - 1] == n - 1


class TestQueries:
    def test_interval_contains_descendants_exactly(self):
        t = random_rooted(11, n=60)
        for a in t.vertices:
            lo, hi = t.interval(a)
            desc = {v for v in t.vertices if lo <= t.dfs[v] <= hi}
            # Descendants = vertices whose root path passes through a.
            expected = {v for v in t.vertices if a in t.path_to_root(v)}
            assert desc == expected

    def test_is_ancestor(self):
        t = random_rooted(12, n=40)
        for v in t.vertices:
            for a in t.path_to_root(v):
                assert t.is_ancestor(a, v)

    def test_path_endpoints_and_adjacency(self):
        t = random_rooted(13, n=40)
        p = t.path(5, 17)
        assert p[0] == 5 and p[-1] == 17
        for a, b in zip(p, p[1:]):
            assert t.parent[a] == b or t.parent[b] == a

    def test_path_same_vertex(self):
        t = random_rooted(14, n=20)
        assert t.path(7, 7) == [7]

    def test_light_edges_count_matches_light_depth(self):
        t = random_rooted(15, n=60)
        for v in t.vertices:
            assert len(t.light_edges_to(v)) == t.light_depth[v]

    def test_vertex_by_dfs_inverse(self):
        t = random_rooted(16, n=30)
        for v in t.vertices:
            assert t.vertex_by_dfs(t.dfs[v]) == v

    def test_edges_count(self):
        t = random_rooted(17, n=45)
        assert len(t.edges()) == len(t) - 1
