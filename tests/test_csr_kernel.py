"""CSR kernel: cross-checks against the pure-Python reference paths.

The kernel's fast paths (scipy sweep + vectorized witness propagation)
must be *bit-identical* to the heap-based reference on integer-weighted
graphs — landmark tables, pivots, and cluster thresholds all assume one
consistent distance/witness field.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from strategies import gnp_from_seed, seeds

from repro.errors import GraphError
from repro.graphs.csr import CSRKernel
from repro.graphs.graph import Graph
from repro.graphs.shortest_paths import (
    all_pairs_shortest_paths,
    dijkstra,
    multi_source_dijkstra,
)


@pytest.fixture(
    params=["small_weighted_graph", "small_unit_graph", "grid_graph"]
)
def fixture_graph(request) -> Graph:
    return request.getfixturevalue(request.param)


class TestConstruction:
    def test_from_graph_shares_arrays(self, small_weighted_graph):
        g = small_weighted_graph
        k = CSRKernel.from_graph(g)
        assert k.indptr is g.indptr
        assert k.indices is g.adj
        assert k.weights is g.adj_weights
        assert k.n == g.n and k.nnz == 2 * g.m

    def test_graph_csr_cached(self, small_weighted_graph):
        g = small_weighted_graph
        assert g.csr() is g.csr()
        assert g.to_scipy() is g.to_scipy()

    def test_validation_rejects_bad_indptr(self):
        with pytest.raises(GraphError):
            CSRKernel(2, np.array([0, 2, 1]), np.array([1, 0]), np.ones(2))

    def test_validation_rejects_bad_target(self):
        with pytest.raises(GraphError):
            CSRKernel(2, np.array([0, 1, 2]), np.array([1, 5]), np.ones(2))

    def test_validation_rejects_nonpositive_weight(self):
        with pytest.raises(GraphError):
            CSRKernel(2, np.array([0, 1, 2]), np.array([1, 0]), np.array([1.0, 0.0]))

    def test_empty_graph(self):
        k = CSRKernel(0, np.zeros(1, dtype=np.int64), np.zeros(0), np.zeros(0))
        assert k.all_pairs().shape == (0, 0)
        d, w = k.multi_source([])
        assert d.shape == (0,) and w.shape == (0,)


class TestSSSP:
    def test_matches_wrapper_and_scipy(self, fixture_graph):
        g = fixture_graph
        kern = g.csr()
        D = all_pairs_shortest_paths(g)
        for src in (0, g.n // 2, g.n - 1):
            dist, parent = kern.sssp(src)
            assert np.array_equal(dist, D[src])
            legacy_dist, legacy_parent = dijkstra(g, src)
            assert np.array_equal(dist, legacy_dist)
            assert np.array_equal(parent, legacy_parent)

    def test_batch_matches_single_source(self, fixture_graph):
        g = fixture_graph
        kern = g.csr()
        sources = [0, 1, g.n // 2, g.n - 1]
        batch, _ = kern.sssp_batch(sources)
        assert batch.shape == (len(sources), g.n)
        for row, src in zip(batch, sources):
            single, _ = kern.sssp(src)
            assert np.array_equal(row, single)

    def test_batch_empty(self, small_weighted_graph):
        batch, pred = small_weighted_graph.csr().sssp_batch([])
        assert batch.shape == (0, small_weighted_graph.n)
        assert pred.shape == (0, small_weighted_graph.n)

    def test_batch_out_of_range(self, small_weighted_graph):
        with pytest.raises(GraphError):
            small_weighted_graph.csr().sssp_batch([10**6])


class TestBatchedMultiSource:
    """The tentpole primitive: one sweep == n independent runs."""

    def test_matches_independent_single_source_runs(self, fixture_graph):
        g = fixture_graph
        kern = g.csr()
        rng = np.random.default_rng(42)
        sources = np.unique(rng.integers(0, g.n, size=8))
        dist, witness = kern.multi_source(sources)
        singles = np.vstack([kern.sssp(int(a))[0] for a in sources])
        assert np.array_equal(dist, singles.min(axis=0))
        # The witness realizes the distance and is the smallest such id.
        for v in range(g.n):
            realizing = sources[singles[:, v] == dist[v]]
            assert witness[v] == realizing.min()

    def test_scipy_and_heap_methods_identical(self, fixture_graph):
        g = fixture_graph
        rng = np.random.default_rng(7)
        sources = np.unique(rng.integers(0, g.n, size=6))
        d_fast, w_fast = g.csr().multi_source(sources, method="scipy")
        d_ref, w_ref = g.csr().multi_source(sources, method="heap")
        assert np.array_equal(d_fast, d_ref)
        assert np.array_equal(w_fast, w_ref)

    def test_witness_priority_respected(self, fixture_graph):
        g = fixture_graph
        sources = [0, g.n - 1]
        # Reverse the default preference: the larger id now wins ties.
        prio = {0: 1, g.n - 1: 0}
        for method in ("scipy", "heap"):
            d, w = g.csr().multi_source(
                sources, witness_priority=prio, method=method
            )
            D = np.vstack([g.csr().sssp(a)[0] for a in sources])
            tied = D[0] == D[1]
            assert np.all(w[tied] == g.n - 1)

    def test_disconnected_inf_and_negative_witness(self):
        # Two components plus an isolated vertex; sources in one component.
        g = Graph(6, [(0, 1), (1, 2), (3, 4)], [2.0, 3.0, 1.0])
        dist, witness = g.csr().multi_source([0, 2])
        assert np.array_equal(dist[:3], [0.0, 2.0, 0.0])
        assert np.all(np.isinf(dist[3:]))
        assert np.array_equal(witness[:3], [0, 0, 2])
        assert np.all(witness[3:] == -1)
        assert np.array_equal(
            dist, g.csr().multi_source_distances([0, 2])
        )

    def test_empty_sources(self, small_weighted_graph):
        g = small_weighted_graph
        d, w = g.csr().multi_source([])
        assert np.all(np.isinf(d)) and np.all(w == -1)
        assert np.all(np.isinf(g.csr().multi_source_distances([])))

    def test_duplicate_sources_allowed(self, small_weighted_graph):
        g = small_weighted_graph
        d1, w1 = g.csr().multi_source([3, 3, 5])
        d2, w2 = g.csr().multi_source([3, 5])
        assert np.array_equal(d1, d2) and np.array_equal(w1, w2)

    def test_out_of_range_source(self, small_weighted_graph):
        with pytest.raises(GraphError):
            small_weighted_graph.csr().multi_source([-1])

    def test_unknown_method_rejected(self, small_weighted_graph):
        with pytest.raises(GraphError):
            small_weighted_graph.csr().multi_source([0], method="quantum")

    def test_wrapper_delegates(self, fixture_graph):
        g = fixture_graph
        sources = [0, g.n // 3, g.n - 1]
        d_wrap, w_wrap = multi_source_dijkstra(g, sources)
        d_kern, w_kern = g.csr().multi_source(sources)
        assert np.array_equal(d_wrap, d_kern)
        assert np.array_equal(w_wrap, w_kern)

    @given(seeds())
    @settings(max_examples=25, deadline=None)
    def test_property_fast_equals_reference(self, seed):
        g = gnp_from_seed(seed, n=40, p=0.08, connected=False, weights=(1, 7))
        rng = np.random.default_rng(seed)
        k = int(rng.integers(1, 6))
        sources = np.unique(rng.integers(0, g.n, size=k))
        d_fast, w_fast = g.csr().multi_source(sources, method="scipy")
        d_ref, w_ref = g.csr().multi_source(sources, method="heap")
        assert np.array_equal(d_fast, d_ref)
        assert np.array_equal(w_fast, w_ref)
