"""TZ approximate distance oracle: soundness, 2k−1 bound, size."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from strategies import gnp_from_seed, seeds

from repro.errors import PreprocessingError
from repro.graphs.graph import Graph
from repro.graphs.shortest_paths import all_pairs_shortest_paths
from repro.oracles.distance_oracle import build_distance_oracle


@pytest.fixture(scope="module", params=[1, 2, 3])
def oracle_setup(request, small_weighted_graph, dist_small):
    k = request.param
    oracle = build_distance_oracle(small_weighted_graph, k, rng=900 + k)
    return k, oracle, dist_small


class TestQueries:
    def test_never_underestimates(self, oracle_setup):
        k, oracle, D = oracle_setup
        n = oracle.n
        for s in range(0, n, 3):
            for t in range(0, n, 5):
                assert oracle.query(s, t) >= D[s, t] - 1e-9

    def test_within_2k_minus_1(self, oracle_setup):
        k, oracle, D = oracle_setup
        n = oracle.n
        bound = oracle.stretch_bound()
        for s in range(0, n, 3):
            for t in range(0, n, 5):
                if s != t:
                    assert oracle.query(s, t) <= bound * D[s, t] + 1e-9

    def test_symmetric_pairs_both_bounded(self, oracle_setup):
        k, oracle, D = oracle_setup
        for s, t in [(0, 10), (10, 0), (3, 50), (50, 3)]:
            assert oracle.query(s, t) <= oracle.stretch_bound() * D[s, t] + 1e-9

    def test_self_distance_zero(self, oracle_setup):
        k, oracle, D = oracle_setup
        assert oracle.query(7, 7) == 0.0

    def test_k1_is_exact(self, small_weighted_graph, dist_small):
        oracle = build_distance_oracle(small_weighted_graph, 1, rng=1)
        for s in range(0, oracle.n, 7):
            for t in range(0, oracle.n, 11):
                assert oracle.query(s, t) == pytest.approx(dist_small[s, t])

    @given(seeds())
    @settings(max_examples=10, deadline=None)
    def test_property_random_graphs(self, seed):
        g = gnp_from_seed(seed, n=40, p=0.15, weights=(1, 6))
        D = all_pairs_shortest_paths(g)
        k = 2 + seed % 2
        oracle = build_distance_oracle(g, k, rng=seed)
        rng_pairs = [(seed % g.n, (seed // 7) % g.n), (1, g.n - 1), (0, 2)]
        for s, t in rng_pairs:
            if s == t:
                continue
            est = oracle.query(s, t)
            assert D[s, t] - 1e-9 <= est <= oracle.stretch_bound() * D[s, t] + 1e-9


class TestQueryMany:
    def test_matches_scalar_on_full_grid(self, oracle_setup):
        k, oracle, D = oracle_setup
        n = oracle.n
        S = np.arange(n)[:, None]
        T = np.arange(n)[None, :]
        grid = oracle.query_many(S, T)
        assert grid.shape == (n, n)
        for s in range(0, n, 3):
            for t in range(0, n, 5):
                assert grid[s, t] == oracle.query(s, t)
        assert np.all(np.diag(grid) == 0.0)

    def test_1d_pairs_and_broadcasting(self, oracle_setup):
        k, oracle, D = oracle_setup
        rng = np.random.default_rng(4)
        s = rng.integers(0, oracle.n, size=200)
        t = rng.integers(0, oracle.n, size=200)
        batch = oracle.query_many(s, t)
        assert np.array_equal(
            batch, [oracle.query(int(a), int(b)) for a, b in zip(s, t)]
        )
        # Scalar source against an array of targets broadcasts.
        row = oracle.query_many(3, t)
        assert np.array_equal(row, [oracle.query(3, int(b)) for b in t])

    def test_empty_batch(self, oracle_setup):
        k, oracle, D = oracle_setup
        assert oracle.query_many([], []).shape == (0,)

    def test_out_of_range_rejected(self, oracle_setup):
        k, oracle, D = oracle_setup
        with pytest.raises(PreprocessingError):
            oracle.query_many([0], [oracle.n])
        with pytest.raises(PreprocessingError):
            oracle.query_many([-1], [0])


class TestStructure:
    def test_bunches_contain_self(self, oracle_setup):
        k, oracle, D = oracle_setup
        for v in range(oracle.n):
            assert v in oracle.bunch[v]
            assert oracle.bunch[v][v] == 0.0

    def test_bunch_distances_exact(self, oracle_setup):
        k, oracle, D = oracle_setup
        for v in range(0, oracle.n, 9):
            for w, d in oracle.bunch[v].items():
                assert d == D[w, v]

    def test_bunch_definition(self, oracle_setup):
        k, oracle, D = oracle_setup
        h = oracle.hierarchy
        for v in range(0, oracle.n, 13):
            for w in range(oracle.n):
                i = int(h.level_of[w])
                expected = D[w, v] < h.dist[i + 1, v] or w == v
                assert (w in oracle.bunch[v]) == expected

    def test_size_accounting(self, oracle_setup):
        k, oracle, D = oracle_setup
        assert oracle.size_words() == sum(
            len(b) for b in oracle.bunch.values()
        ) + 2 * k * oracle.n
        assert oracle.size_bits() > oracle.size_words()
        assert oracle.max_bunch_size() >= oracle.avg_bunch_size()

    def test_k1_bunches_are_everything(self, small_weighted_graph):
        oracle = build_distance_oracle(small_weighted_graph, 1, rng=2)
        for v in range(oracle.n):
            assert len(oracle.bunch[v]) == oracle.n

    def test_higher_k_smaller_bunches(self, small_weighted_graph):
        sizes = {}
        for k in (1, 2, 3):
            oracle = build_distance_oracle(small_weighted_graph, k, rng=4)
            sizes[k] = oracle.avg_bunch_size()
        assert sizes[1] > sizes[2] > sizes[3] * 0.8

    def test_disconnected_rejected(self):
        with pytest.raises(PreprocessingError):
            build_distance_oracle(Graph(4, [(0, 1), (2, 3)]), 2)
