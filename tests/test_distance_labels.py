"""Distance labels: soundness, 2k−1 bound, locality, sizes."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LabelError, PreprocessingError
from repro.graphs import generators as gen
from repro.graphs.graph import Graph
from repro.graphs.shortest_paths import all_pairs_shortest_paths
from repro.oracles.distance_labels import (
    build_distance_labels,
    query_labels,
    query_steps,
)


@pytest.fixture(scope="module", params=[1, 2, 3])
def labeling_setup(request, small_weighted_graph, dist_small):
    k = request.param
    labeling = build_distance_labels(small_weighted_graph, k, rng=700 + k)
    return k, labeling, dist_small


class TestQueries:
    def test_sound_and_bounded(self, labeling_setup):
        k, labeling, D = labeling_setup
        bound = labeling.stretch_bound()
        for s in range(0, labeling.n, 4):
            for t in range(0, labeling.n, 7):
                est = labeling.query(s, t)
                assert est >= D[s, t] - 1e-9
                if s != t:
                    assert est <= bound * D[s, t] + 1e-9

    def test_self_query_zero(self, labeling_setup):
        k, labeling, D = labeling_setup
        assert labeling.query(3, 3) == 0.0

    def test_query_uses_labels_only(self, labeling_setup):
        """The estimate is a pure function of the two label objects."""
        k, labeling, D = labeling_setup
        lu, lv = labeling.labels[0], labeling.labels[9]
        assert query_labels(lu, lv) == labeling.query(0, 9)

    def test_query_symmetric_within_bound(self, labeling_setup):
        k, labeling, D = labeling_setup
        for s, t in [(0, 5), (5, 0), (10, 90), (90, 10)]:
            est = labeling.query(s, t)
            assert est <= labeling.stretch_bound() * D[s, t] + 1e-9

    def test_query_many_matches_scalar(self, labeling_setup):
        k, labeling, D = labeling_setup
        rng = np.random.default_rng(11)
        s = rng.integers(0, labeling.n, size=300)
        t = rng.integers(0, labeling.n, size=300)
        batch = labeling.query_many(s, t)
        assert np.array_equal(
            batch, [labeling.query(int(a), int(b)) for a, b in zip(s, t)]
        )

    def test_query_many_grid_and_broadcast(self, labeling_setup):
        k, labeling, D = labeling_setup
        n = labeling.n
        sub = np.arange(0, n, 9)
        grid = labeling.query_many(sub[:, None], sub[None, :])
        assert grid.shape == (sub.size, sub.size)
        for i, s in enumerate(sub):
            for j, t in enumerate(sub):
                assert grid[i, j] == labeling.query(int(s), int(t))

    def test_query_many_out_of_range_rejected(self, labeling_setup):
        k, labeling, D = labeling_setup
        with pytest.raises(LabelError):
            labeling.query_many([0], [labeling.n])

    def test_query_many_stray_pivot_is_a_miss_not_an_alias(self, labeling_setup):
        """A -1 pivot sentinel must behave exactly like the scalar path (a
        bunch miss), never alias the packed composite keys of a neighboring
        vertex into a fabricated hit."""
        k, labeling, D = labeling_setup
        import copy

        from repro.oracles.distance_labels import DistanceLabel, DistanceLabeling

        labels = copy.deepcopy(labeling.labels)
        broken = labels[1]
        labels[1] = DistanceLabel(
            broken.v,
            tuple((-1, 0.0) for _ in broken.pivots),
            broken.bunch,
        )
        crippled = DistanceLabeling(labeling.k, labeling.n, labels)
        try:
            expected = query_labels(labels[1], labels[2])
        except LabelError:
            with pytest.raises(LabelError):
                crippled.query_many([1], [2])
        else:
            assert crippled.query_many([1], [2])[0] == expected

    def test_steps_bounded(self, labeling_setup):
        k, labeling, D = labeling_setup
        for s in range(0, labeling.n, 9):
            for t in range(0, labeling.n, 11):
                if s != t:
                    lu, lv = labeling.labels[s], labeling.labels[t]
                    assert query_steps(lu, lv) <= k - 1

    def test_mismatched_k_rejected(self, small_weighted_graph):
        a = build_distance_labels(small_weighted_graph, 2, rng=1)
        b = build_distance_labels(small_weighted_graph, 3, rng=1)
        with pytest.raises(LabelError):
            query_labels(a.labels[0], b.labels[1])

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=8, deadline=None)
    def test_property_random_graphs(self, seed):
        g = gen.gnp(40, 0.15, rng=seed, weights=(1, 6))
        D = all_pairs_shortest_paths(g)
        labeling = build_distance_labels(g, 2, rng=seed)
        for s, t in [(0, g.n - 1), (1, g.n // 2)]:
            est = labeling.query(s, t)
            assert D[s, t] - 1e-9 <= est <= 3 * D[s, t] + 1e-9


class TestStructure:
    def test_pivot_column_realizes_distances(self, labeling_setup):
        k, labeling, D = labeling_setup
        for v in range(0, labeling.n, 13):
            for w, d in labeling.labels[v].pivots:
                assert D[w, v] == pytest.approx(d)

    def test_bunch_distances_exact(self, labeling_setup):
        k, labeling, D = labeling_setup
        for v in range(0, labeling.n, 13):
            for w, d in labeling.labels[v].bunch.items():
                assert D[w, v] == pytest.approx(d)

    def test_level0_pivot_is_self(self, labeling_setup):
        k, labeling, D = labeling_setup
        for v in range(labeling.n):
            w, d = labeling.labels[v].pivots[0]
            assert d == 0.0

    def test_label_sizes_shrink_with_k(self, small_weighted_graph):
        sizes = {}
        for k in (1, 2, 3):
            labeling = build_distance_labels(small_weighted_graph, k, rng=9)
            sizes[k] = labeling.avg_label_bits()
        assert sizes[1] > sizes[2] > sizes[3] * 0.8

    def test_size_bits_formula(self, labeling_setup):
        k, labeling, D = labeling_setup
        lab = labeling.labels[0]
        id_bits = max(1, (labeling.n - 1).bit_length())
        expected = id_bits + (id_bits + 32) * (len(lab.pivots) + len(lab.bunch))
        assert lab.size_bits(labeling.n) == expected

    def test_disconnected_rejected(self):
        with pytest.raises(PreprocessingError):
            build_distance_labels(Graph(4, [(0, 1), (2, 3)]), 2)
