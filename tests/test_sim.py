"""Simulator semantics: TTL, strict mode, failure reporting, runner."""

from __future__ import annotations


import numpy as np
import pytest

from repro.core.router import RouteHeader, RoutingScheme
from repro.errors import DeliveryError
from repro.graphs import generators as gen
from repro.graphs.ports import assign_ports
from repro.rng import sample_pairs
from repro.sim.network import Network
from repro.sim.runner import measure_scheme, run_pairs
from repro.sim.stats import space_stats, stretch_stats


class LoopingScheme(RoutingScheme):
    """Pathological scheme: always forwards on port 1, looping forever —
    used to verify the simulator's TTL protection."""

    name = "looper"

    def __init__(self, n: int) -> None:
        self.n = n

    def initial_header(self, source: int, dest: int) -> RouteHeader:
        return RouteHeader(dest=dest)

    def decide(self, u: int, header: RouteHeader):
        return 1, header

    def table_bits(self, u: int) -> int:
        return 1

    def label_bits(self, v: int) -> int:
        return 1

    def stretch_bound(self) -> float:
        return float("inf")


class LyingScheme(LoopingScheme):
    """Declares arrival immediately, wherever it is."""

    name = "liar"

    def decide(self, u: int, header: RouteHeader):
        return None, header


class TestNetworkProtection:
    @pytest.fixture(scope="class")
    def net_setup(self):
        g = gen.ring(12)
        pg = assign_ports(g, "sorted")
        return g, pg

    def test_ttl_catches_loops(self, net_setup):
        g, pg = net_setup
        net = Network(pg, LoopingScheme(g.n))
        res = net.route(0, 5)
        assert not res.delivered
        assert "TTL" in res.failure

    def test_strict_mode_raises(self, net_setup):
        g, pg = net_setup
        net = Network(pg, LoopingScheme(g.n))
        with pytest.raises(DeliveryError):
            net.route(0, 5, strict=True)

    def test_lying_scheme_detected(self, net_setup):
        g, pg = net_setup
        net = Network(pg, LyingScheme(g.n))
        res = net.route(0, 5)
        assert not res.delivered
        assert "declared delivery" in res.failure

    def test_custom_ttl(self, net_setup):
        g, pg = net_setup
        net = Network(pg, LoopingScheme(g.n))
        res = net.route(0, 5, ttl=3)
        assert not res.delivered and res.hops == 3

    def test_route_result_fields(self, small_weighted_graph, ported_small):
        from repro.core.scheme_k2 import build_stretch3_scheme

        scheme = build_stretch3_scheme(small_weighted_graph, ported_small, rng=1)
        net = Network(ported_small, scheme)
        res = net.route(0, 9, strict=True)
        assert res.source == 0 and res.dest == 9
        assert res.path[0] == 0 and res.path[-1] == 9
        assert res.hops == len(res.path) - 1
        assert res.weight > 0
        assert res.max_header_bits > 0


class TestRunner:
    def test_strict_run_pairs_raises_on_failure(self):
        g = gen.ring(10)
        pg = assign_ports(g, "sorted")
        pairs = np.array([[0, 5]])
        with pytest.raises(DeliveryError):
            run_pairs(pg, LoopingScheme(g.n), pairs)

    def test_non_strict_collects_failures(self):
        g = gen.ring(10)
        pg = assign_ports(g, "sorted")
        pairs = np.array([[0, 5], [1, 6]])
        results, stretches = run_pairs(
            pg, LoopingScheme(g.n), pairs, strict=False
        )
        assert len(results) == 2 and not any(r.delivered for r in results)
        assert stretches == []

    def test_measure_scheme_stats(self, small_weighted_graph, ported_small):
        from repro.core.scheme_k2 import build_stretch3_scheme

        scheme = build_stretch3_scheme(small_weighted_graph, ported_small, rng=1)
        st = measure_scheme(ported_small, scheme, n_pairs=100, rng=5)
        assert st.count == 100 and st.delivered == 100
        assert st.violations == 0
        assert 1.0 <= st.mean <= st.max <= 3.0 + 1e-9


class TestStats:
    def test_stretch_stats_empty(self):
        st = stretch_stats([])
        assert st.count == 0 and st.max == 0.0

    def test_stretch_stats_percentiles(self):
        vals = [1.0] * 98 + [2.0, 10.0]
        st = stretch_stats(vals, bound=3.0)
        assert st.max == 10.0
        assert st.violations == 1
        assert st.p99 <= 10.0
        assert st.median == 1.0

    def test_stretch_stats_row_keys(self):
        row = stretch_stats([1.0, 2.0], bound=3.0).row()
        assert {"pairs", "max_stretch", "avg_stretch", "violations"} <= set(row)

    HOP_KEYS = {"avg_hops", "p50_hops", "p95_hops", "p99_hops", "max_hops"}

    def test_all_zero_hops_still_reported(self):
        """Regression: a delivered workload whose routes all took 0 hops
        (self-pairs, single-node graphs) must still emit hop columns —
        the gate is "were hops provided", not ``hop_max != 0``."""
        st = stretch_stats([1.0, 1.0, 1.0], hops=[0, 0, 0])
        assert st.has_hops
        row = st.row()
        assert self.HOP_KEYS <= set(row)
        assert row["max_hops"] == 0 and row["avg_hops"] == 0.0

    def test_hops_omitted_when_not_provided(self):
        row = stretch_stats([1.0, 2.0]).row()
        assert not (self.HOP_KEYS & set(row))

    def test_empty_hops_provided(self):
        st = stretch_stats([], delivered=0, attempted=5, hops=[])
        assert st.has_hops and self.HOP_KEYS <= set(st.row())

    def test_space_stats(self, small_weighted_graph, ported_small):
        from repro.core.scheme_k2 import build_stretch3_scheme

        scheme = build_stretch3_scheme(small_weighted_graph, ported_small, rng=1)
        sp = space_stats(scheme)
        assert sp.n == small_weighted_graph.n
        assert sp.max_table_bits >= sp.avg_table_bits
        assert sp.total_table_bits >= sp.max_table_bits
        assert "max_table_bits" in sp.row()


class TestPairSampling:
    def test_sample_pairs_distinct(self):
        from repro.rng import make_rng

        pairs = sample_pairs(make_rng(1), 10, 500)
        assert pairs.shape == (500, 2)
        assert np.all(pairs[:, 0] != pairs[:, 1])

    def test_sample_pairs_tiny_n_rejected(self):
        from repro.rng import make_rng

        with pytest.raises(ValueError):
            sample_pairs(make_rng(1), 1, 5)

    def test_all_pairs_complete(self):
        from repro.rng import all_pairs

        pairs = all_pairs(5)
        assert pairs.shape == (20, 2)
        assert len({(int(a), int(b)) for a, b in pairs}) == 20

    def test_all_pairs_limited(self):
        from repro.rng import all_pairs

        pairs = all_pairs(30, limit=50, rng=3)
        assert pairs.shape == (50, 2)
        assert np.all(pairs[:, 0] != pairs[:, 1])
