"""Power-law fitting utilities used by the acceptance criteria."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.scaling import (
    PowerLawFit,
    doubling_ratio,
    fit_power_law,
    polylog_corrected_fit,
)


class TestFitPowerLaw:
    def test_recovers_exact_exponent(self):
        ns = [64, 128, 256, 512, 1024]
        values = [3.0 * n**0.5 for n in ns]
        fit = fit_power_law(ns, values)
        assert fit.exponent == pytest.approx(0.5, abs=1e-9)
        assert fit.coeff == pytest.approx(3.0, rel=1e-9)
        assert fit.r_squared == pytest.approx(1.0)

    def test_predict(self):
        fit = PowerLawFit(0.5, 2.0, 1.0)
        assert fit.predict(100) == pytest.approx(20.0)

    def test_describe_mentions_theory(self):
        fit = PowerLawFit(0.52, 1.0, 0.99)
        s = fit.describe(0.5)
        assert "0.52" in s and "0.50" in s

    def test_noisy_data_reasonable(self):
        rng = np.random.default_rng(3)
        ns = [2**i for i in range(6, 14)]
        values = [n**0.33 * float(rng.uniform(0.9, 1.1)) for n in ns]
        fit = fit_power_law(ns, values)
        assert 0.25 <= fit.exponent <= 0.42
        assert fit.r_squared > 0.9

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            fit_power_law([10], [5])

    def test_identical_n_rejected(self):
        with pytest.raises(ValueError):
            fit_power_law([10, 10], [5, 6])

    def test_nonpositive_values_rejected(self):
        with pytest.raises(ValueError):
            fit_power_law([10, 20], [1.0, 0.0])


class TestPolylogCorrection:
    def test_strips_log_factor(self):
        ns = [2**i for i in range(6, 15)]
        values = [n**0.5 * math.log2(n) ** 2 for n in ns]
        raw = fit_power_law(ns, values)
        corrected = polylog_corrected_fit(ns, values, log_power=2.0)
        assert corrected.exponent == pytest.approx(0.5, abs=1e-6)
        assert raw.exponent > corrected.exponent  # the drift being removed


class TestDoublingRatio:
    def test_exact_power(self):
        ns = [100, 200, 400]
        values = [n**0.5 for n in ns]
        assert doubling_ratio(ns, values) == pytest.approx(2**0.5)

    def test_requires_growth_in_n(self):
        with pytest.raises(ValueError):
            doubling_ratio([100, 100], [1, 2])

    def test_requires_two_points(self):
        with pytest.raises(ValueError):
            doubling_ratio([100], [1])
