"""Shortest-path primitives: correctness against scipy and the
truncated-Dijkstra cluster semantics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graphs import generators as gen
from repro.graphs.graph import Graph
from repro.graphs.shortest_paths import (
    all_pairs_shortest_paths,
    dijkstra,
    multi_source_dijkstra,
    path_from_parents,
    path_weight,
    sssp_from_set,
    truncated_dijkstra,
)


def random_graph(seed: int, n: int = 40, weighted: bool = True) -> Graph:
    return gen.gnp(
        n, 0.12, rng=seed, weights=(1, 7) if weighted else None
    )


class TestDijkstra:
    def test_source_distance_zero(self, small_weighted_graph):
        d, _ = dijkstra(small_weighted_graph, 0)
        assert d[0] == 0.0

    def test_matches_scipy(self, small_weighted_graph, dist_small):
        d, _ = dijkstra(small_weighted_graph, 3)
        assert np.allclose(d, dist_small[3])

    def test_parent_array_reconstructs_shortest_paths(self, small_weighted_graph):
        g = small_weighted_graph
        d, parent = dijkstra(g, 0)
        for t in range(1, min(25, g.n)):
            p = path_from_parents(parent, 0, t)
            assert p[0] == 0 and p[-1] == t
            assert path_weight(g, p) == pytest.approx(d[t])

    def test_unreachable_marked_inf(self):
        g = Graph(4, [(0, 1)])
        d, parent = dijkstra(g, 0)
        assert d[2] == np.inf and parent[2] == -1
        with pytest.raises(GraphError):
            path_from_parents(parent, 0, 2)

    def test_early_stop_target(self, small_weighted_graph):
        d, _ = dijkstra(small_weighted_graph, 0, target=5)
        full, _ = dijkstra(small_weighted_graph, 0)
        assert d[5] == full[5]

    def test_source_out_of_range(self, small_weighted_graph):
        with pytest.raises(GraphError):
            dijkstra(small_weighted_graph, 10**6)

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=20, deadline=None)
    def test_property_matches_scipy_on_random_graphs(self, seed):
        g = random_graph(seed)
        D = all_pairs_shortest_paths(g)
        src = seed % g.n
        d, _ = dijkstra(g, src)
        assert np.allclose(d, D[src])


class TestMultiSourceDijkstra:
    def test_empty_sources_all_inf(self, small_weighted_graph):
        d, w = multi_source_dijkstra(small_weighted_graph, [])
        assert np.all(np.isinf(d)) and np.all(w == -1)

    def test_distances_are_minima(self, small_weighted_graph, dist_small):
        sources = [0, 7, 13]
        d, _ = multi_source_dijkstra(small_weighted_graph, sources)
        assert np.allclose(d, dist_small[sources].min(axis=0))

    def test_witness_realizes_distance(self, small_weighted_graph, dist_small):
        sources = [0, 7, 13]
        d, w = multi_source_dijkstra(small_weighted_graph, sources)
        for v in range(small_weighted_graph.n):
            assert dist_small[w[v], v] == d[v]

    def test_witness_deterministic_tie_break(self):
        # Path 0-1-2; sources 0 and 2 tie at vertex 1: smaller id wins.
        g = Graph(3, [(0, 1), (1, 2)])
        _, w = multi_source_dijkstra(g, [0, 2])
        assert w[1] == 0

    def test_all_vertices_as_sources_self_witness(self, small_unit_graph):
        g = small_unit_graph
        d, w = multi_source_dijkstra(g, list(range(g.n)))
        assert np.all(d == 0)
        assert np.array_equal(w, np.arange(g.n))

    def test_source_out_of_range(self, small_weighted_graph):
        with pytest.raises(GraphError):
            multi_source_dijkstra(small_weighted_graph, [10**6])


class TestTruncatedDijkstra:
    def test_infinite_threshold_equals_full_dijkstra(self, small_weighted_graph):
        g = small_weighted_graph
        thr = np.full(g.n, np.inf)
        dist, parent, capped = truncated_dijkstra(g, 4, thr)
        full, _ = dijkstra(g, 4)
        assert not capped
        assert len(dist) == g.n
        for v, dv in dist.items():
            assert dv == full[v]

    def test_membership_matches_definition(self, small_weighted_graph, dist_small):
        g = small_weighted_graph
        thr = dist_small[[2, 9, 21]].min(axis=0)
        dist, _, _ = truncated_dijkstra(g, 5, thr)
        expected = {
            v for v in range(g.n) if dist_small[5, v] < thr[v] or v == 5
        }
        assert set(dist) == expected

    def test_distances_exact_inside_cluster(self, small_weighted_graph, dist_small):
        g = small_weighted_graph
        thr = dist_small[[2, 9, 21]].min(axis=0)
        dist, _, _ = truncated_dijkstra(g, 5, thr)
        for v, dv in dist.items():
            assert dv == dist_small[5, v]

    def test_parents_stay_in_cluster(self, small_weighted_graph, dist_small):
        g = small_weighted_graph
        thr = dist_small[[2, 9, 21]].min(axis=0)
        dist, parent, _ = truncated_dijkstra(g, 5, thr)
        for v, p in parent.items():
            if v != 5:
                assert p in dist

    def test_cap_aborts_early(self, small_weighted_graph):
        g = small_weighted_graph
        thr = np.full(g.n, np.inf)
        dist, _, capped = truncated_dijkstra(g, 0, thr, cap=5)
        assert capped and len(dist) == 6  # cap + 1 settles then abort

    def test_source_always_member_even_with_zero_threshold(
        self, small_weighted_graph
    ):
        g = small_weighted_graph
        thr = np.zeros(g.n)
        dist, _, _ = truncated_dijkstra(g, 3, thr)
        assert set(dist) == {3}

    def test_bad_threshold_shape_rejected(self, small_weighted_graph):
        with pytest.raises(GraphError):
            truncated_dijkstra(small_weighted_graph, 0, np.zeros(3))

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=15, deadline=None)
    def test_property_cluster_semantics(self, seed):
        g = random_graph(seed, n=30, weighted=False)
        D = all_pairs_shortest_paths(g)
        rng = np.random.default_rng(seed)
        sources = rng.choice(g.n, size=3, replace=False)
        thr = D[sources].min(axis=0)
        w = int(rng.integers(0, g.n))
        dist, parent, _ = truncated_dijkstra(g, w, thr)
        expected = {v for v in range(g.n) if D[w, v] < thr[v] or v == w}
        assert set(dist) == expected
        for v, dv in dist.items():
            assert dv == D[w, v]
        for v, p in parent.items():
            if v != w:
                assert p in dist


class TestVectorizedHelpers:
    def test_sssp_from_set_shapes(self, small_weighted_graph):
        d, pred, src = sssp_from_set(small_weighted_graph, [0, 5])
        assert d.shape == (2, small_weighted_graph.n)
        assert pred.shape == (2, small_weighted_graph.n)

    def test_sssp_from_empty_set(self, small_weighted_graph):
        d, pred, src = sssp_from_set(small_weighted_graph, [])
        assert d.shape == (0, small_weighted_graph.n)

    def test_all_pairs_symmetry(self, small_weighted_graph, dist_small):
        assert np.allclose(dist_small, dist_small.T)

    def test_all_pairs_empty_graph(self):
        assert all_pairs_shortest_paths(Graph(0, [])).shape == (0, 0)
