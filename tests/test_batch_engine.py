"""The batch engine's exact-equivalence gate.

The vectorized :class:`~repro.sim.engine.BatchRouter` is only allowed to
exist because it agrees with the hop-by-hop
:class:`~repro.sim.network.Network` **bit-for-bit** on
``(delivered, weight, hops)`` — weights included, since both accumulate
the same float64 edge weights in the same per-hop order.  This module is
that gate: every generator family × every workload × both the §3
stretch-3 scheme and the general §4 scheme, plus the handshake wrapper,
failure injection, and the runner/stats plumbing around the engine.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.handshake import HandshakeRoutingScheme
from repro.core.scheme_k import build_tz_scheme
from repro.core.scheme_k2 import build_stretch3_scheme
from repro.errors import DeliveryError, RoutingError
from repro.graphs import generators as gen
from repro.graphs.ports import assign_ports
from repro.graphs.shortest_paths import all_pairs_shortest_paths
from repro.oracles.distance_oracle import build_distance_oracle
from repro.rng import derive
from repro.sim.engine import BatchRouter
from repro.sim.failures import sample_edge_failures, survivability
from repro.sim.network import Network
from repro.sim.runner import measure_scheme, pair_true_distances, run_pairs

# ---------------------------------------------------------------------------
# One representative instance per generator family (small, connected).
# ---------------------------------------------------------------------------
FAMILIES = {
    "gnp": lambda: gen.gnp(70, 0.08, rng=1, weights=(1, 9)),
    "gnm": lambda: gen.gnm(70, 180, rng=2, weights=(1, 5)),
    "geometric": lambda: gen.random_geometric(60, 0.35, rng=3, weights=(1, 9)),
    "barabasi_albert": lambda: gen.barabasi_albert(70, 3, rng=4, weights=(1, 9)),
    "powerlaw_cluster": lambda: gen.powerlaw_cluster(70, 3, 0.4, rng=5),
    "waxman": lambda: gen.waxman(60, rng=6, weights=(1, 5)),
    "internet_as_like": lambda: gen.internet_as_like(80, rng=7),
    "grid2d": lambda: gen.grid2d(7, 7, rng=8, weights=(1, 4)),
    "hypercube": lambda: gen.hypercube(5, rng=9, weights=(1, 9)),
    "ring": lambda: gen.ring(40, rng=10, weights=(1, 5)),
    "complete": lambda: gen.complete(24, rng=11, weights=(1, 9)),
    "path_tree": lambda: gen.path_tree(40, rng=12, weights=(1, 5)),
    "star_tree": lambda: gen.star_tree(40, rng=13),
    "random_tree": lambda: gen.random_tree(60, rng=14, weights=(1, 5)),
    "caterpillar": lambda: gen.caterpillar(16, 2, rng=15),
    "balanced_binary_tree": lambda: gen.balanced_binary_tree(5, rng=16),
    "broom": lambda: gen.broom(20, 20, rng=17),
    "spider": lambda: gen.spider(6, 7, rng=18, weights=(1, 5)),
}

WORKLOADS = ("uniform", "gravity", "all_to_one", "locality", "adversarial")

_SETUPS: dict = {}


def _setup(family: str):
    """Graph + ports + both schemes + APSP for one family, built once."""
    if family not in _SETUPS:
        graph = FAMILIES[family]().largest_component()
        ported = assign_ports(graph, "random", rng=derive(0, "eqports", family))
        schemes = {
            "scheme_k2": build_stretch3_scheme(
                graph, ported, rng=derive(0, "eqk2", family)
            ),
            "scheme_k": build_tz_scheme(
                graph, ported, k=3, rng=derive(0, "eqk3", family)
            ),
        }
        dist = all_pairs_shortest_paths(graph)
        _SETUPS[family] = (graph, ported, schemes, dist)
    return _SETUPS[family]


def _workload_pairs(name: str, graph, dist, seed_key: str) -> np.ndarray:
    from repro.sim import workloads

    rng = derive(0, "eqwl", seed_key)
    count = 40
    if name == "uniform":
        return workloads.uniform_pairs(graph, count, rng)
    if name == "gravity":
        return workloads.gravity_pairs(graph, count, rng)
    if name == "all_to_one":
        return workloads.all_to_one(graph, rng=rng)
    if name == "locality":
        radius = float(np.median(dist[dist > 0]))
        return workloads.locality_pairs(
            graph, count, radius, rng, dist_matrix=dist
        )
    if name == "adversarial":
        oracle = build_distance_oracle(graph, 2, rng=derive(0, "eqo", seed_key))
        return workloads.adversarial_pairs(
            graph, count, oracle, rng, candidates=256, dist_matrix=dist
        )
    raise AssertionError(name)


def _assert_equivalent(ported, scheme, pairs, *, dead=None):
    """Batch output must equal the reference hop-by-hop simulator."""
    router = BatchRouter(ported, scheme)
    batch = router.route_pairs(pairs, dead_edges=dead)
    if dead:
        from repro.sim.failures import FaultyNetwork

        net = FaultyNetwork(ported, scheme, dead)
    else:
        net = Network(ported, scheme)
    for i, (s, t) in enumerate(np.asarray(pairs, dtype=np.int64)):
        ref = net.route(int(s), int(t))
        assert bool(batch.delivered[i]) == ref.delivered, (s, t, ref.failure)
        assert float(batch.weight[i]) == ref.weight, (s, t)  # bit-for-bit
        assert int(batch.hops[i]) == ref.hops, (s, t)
        if ref.delivered:
            assert int(batch.max_header_bits[i]) == ref.max_header_bits, (s, t)
    return batch


# ---------------------------------------------------------------------------
# The full equivalence matrix: families x workloads x schemes
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("family", sorted(FAMILIES))
@pytest.mark.parametrize("workload", WORKLOADS)
def test_engine_matches_reference(family, workload):
    graph, ported, schemes, dist = _setup(family)
    pairs = _workload_pairs(workload, graph, dist, f"{family}/{workload}")
    for scheme in schemes.values():
        _assert_equivalent(ported, scheme, pairs)


@pytest.mark.parametrize("family", ["gnp", "internet_as_like", "grid2d"])
def test_engine_matches_reference_handshake(family):
    graph, ported, schemes, dist = _setup(family)
    hs = HandshakeRoutingScheme(schemes["scheme_k"])
    pairs = _workload_pairs("uniform", graph, dist, f"hs/{family}")
    _assert_equivalent(ported, hs, pairs)


def test_engine_matches_reference_k1_and_k4():
    """Degenerate (k=1, full tables) and deep (k=4) hierarchies."""
    graph = FAMILIES["gnp"]().largest_component()
    ported = assign_ports(graph, "sorted")
    dist = all_pairs_shortest_paths(graph)
    pairs = _workload_pairs("uniform", graph, dist, "kdepth")
    for k in (1, 4):
        scheme = build_tz_scheme(graph, ported, k=k, rng=derive(0, "kd", k))
        _assert_equivalent(ported, scheme, pairs)


def test_engine_matches_reference_on_mismatched_ports():
    """Routing over a port assignment the scheme was NOT compiled for.

    Messages step onto wrong neighbors and leave their trees; the
    reference crosses the edge before discovering the missing record
    (and even delivers when it lands on the destination).  The engine
    must reproduce those failure prefixes — weight and hops included —
    not just the happy path.
    """
    graph = FAMILIES["gnp"]().largest_component()
    compiled_on = assign_ports(graph, "sorted")
    routed_on = assign_ports(graph, "random", rng=derive(0, "mismatch"))
    dist = all_pairs_shortest_paths(graph)
    pairs = _workload_pairs("uniform", graph, dist, "mismatch")
    for k in (2, 3):
        scheme = build_tz_scheme(graph, compiled_on, k=k, rng=derive(0, "mm", k))
        _assert_equivalent(routed_on, scheme, pairs)


def test_engine_empty_pair_set():
    graph, ported, schemes, _ = _setup("gnp")
    router = BatchRouter(ported, schemes["scheme_k2"])
    batch = router.route_pairs(np.zeros((0, 2), dtype=np.int64))
    assert batch.attempted == 0 and batch.delivered_count == 0
    results, stretches = run_pairs(
        ported, schemes["scheme_k2"], [], engine="batch"
    )
    assert results == [] and stretches == []


def test_reference_records_label_faults_instead_of_crashing():
    """A corrupted destination label (too few light ports) must yield a
    recorded failure from BOTH engines, not an uncaught LabelError."""
    from repro.core.router import RouteHeader
    from repro.trees.label_codec import TreeLabel

    graph, ported, schemes, _ = _setup("gnp")
    scheme = schemes["scheme_k"]

    class CorruptedLabels(type(scheme)):
        def __init__(self):  # bypass preprocessing; share compiled state
            self.__dict__.update(scheme.__dict__)

        def _commit(self, u, header):
            committed = scheme._commit(u, header)
            return RouteHeader(
                dest=committed.dest,
                tree=committed.tree,
                tree_label=TreeLabel(committed.tree_label.f, ()),
            )

    bad = CorruptedLabels()
    net = Network(ported, bad)
    undelivered = 0
    for s in range(graph.n):
        res = net.route(s, (s + 17) % graph.n)  # must not raise
        undelivered += not res.delivered
    assert undelivered > 0  # the corruption actually bites somewhere


def test_engine_guards_severed_heavy_links():
    """A heavy move whose link is gone must fail the row cleanly
    (FAIL_PORT, the reference's port-0 PortError analog) — never route
    through ``ent_f[-1]`` via negative indexing."""
    from repro.sim.engine.batch import FAIL_PORT

    graph = FAMILIES["gnp"]().largest_component()
    ported = assign_ports(graph, "sorted")
    scheme = build_tz_scheme(graph, ported, k=2, rng=derive(0, "sever"))
    router = BatchRouter(ported, scheme)
    pairs = _workload_pairs("uniform", graph, None, "sever")
    clean = router.route_pairs(pairs)
    assert clean.delivered.all()

    cs = router.compiled
    backup = cs.ent_heavy_epos.copy()
    try:
        cs.ent_heavy_epos[:] = -1  # sever every heavy link
        broken = router.route_pairs(pairs)
    finally:
        cs.ent_heavy_epos[:] = backup
    hit = ~broken.delivered
    assert hit.any()  # heavy edges are on real routes; corruption bites
    # Failed rows stop exactly at the severed link: the clean failure
    # code, and a strict prefix of the healthy route.
    assert set(broken.failure_code[hit].tolist()) == {FAIL_PORT}
    assert np.all(broken.weight[hit] <= clean.weight[hit])
    assert np.all(broken.hops[hit] <= clean.hops[hit])
    # Rows untouched by heavy edges are byte-identical.
    ok = broken.delivered
    assert np.array_equal(broken.weight[ok], clean.weight[ok])
    assert np.array_equal(broken.hops[ok], clean.hops[ok])


def test_engine_self_pairs_and_duplicates():
    graph, ported, schemes, _ = _setup("gnp")
    pairs = np.array([[3, 3], [0, 7], [0, 7], [5, 5]], dtype=np.int64)
    batch = _assert_equivalent(ported, schemes["scheme_k2"], pairs)
    assert batch.delivered.all()
    assert batch.weight[0] == 0.0 and batch.hops[0] == 0


def test_engine_dead_edges_match_faulty_network():
    graph, ported, schemes, dist = _setup("gnp")
    dead = sample_edge_failures(graph, 12, rng=derive(0, "dead"))
    pairs = _workload_pairs("uniform", graph, dist, "dead")
    for scheme in schemes.values():
        _assert_equivalent(ported, scheme, pairs, dead=dead)


def test_survivability_engines_agree():
    graph, ported, schemes, _ = _setup("barabasi_albert")
    scheme = schemes["scheme_k2"]
    dead = sample_edge_failures(graph, 10, rng=derive(0, "surv"))
    pairs = _workload_pairs("uniform", graph, None, "surv")
    fast = survivability(ported, scheme, dead, pairs)
    slow = survivability(ported, scheme, dead, pairs, engine="reference")
    assert fast.delivered == slow.delivered
    assert fast.connected_pairs == slow.connected_pairs
    assert fast.delivery_rate == slow.delivery_rate


# ---------------------------------------------------------------------------
# Runner plumbing around the engine
# ---------------------------------------------------------------------------
class TestRunnerEngines:
    def test_run_pairs_engines_agree(self):
        graph, ported, schemes, dist = _setup("gnp")
        pairs = _workload_pairs("uniform", graph, dist, "runner")
        fast, st_fast = run_pairs(ported, schemes["scheme_k2"], pairs, engine="batch")
        slow, st_slow = run_pairs(
            ported, schemes["scheme_k2"], pairs, engine="reference"
        )
        assert st_fast == st_slow  # bit-for-bit, not approx
        for a, b in zip(fast, slow):
            assert (a.delivered, a.weight, a.hops) == (b.delivered, b.weight, b.hops)

    def test_auto_prefers_batch_and_falls_back(self):
        from repro.baselines.shortest_path_routing import build_shortest_path_scheme

        graph, ported, schemes, _ = _setup("gnp")
        assert schemes["scheme_k2"].compile_batch(ported) is not None
        sp = build_shortest_path_scheme(graph, ported)
        if sp.compile_batch(ported) is None:
            # Falls back to the reference loop without error.
            pairs = np.array([[0, 5], [5, 0]], dtype=np.int64)
            results, _ = run_pairs(ported, sp, pairs, engine="auto")
            assert all(r.delivered for r in results)
            with pytest.raises(RoutingError):
                run_pairs(ported, sp, pairs, engine="batch")

    def test_batch_strict_raises_on_failure(self):
        graph, ported, schemes, _ = _setup("gnp")
        pairs = _workload_pairs("uniform", graph, None, "strict")
        # ttl=1 allows one forwarding decision: no (s != t) pair can both
        # cross an edge and declare arrival, so every row must fail.
        with pytest.raises(DeliveryError):
            run_pairs(ported, schemes["scheme_k2"], pairs, ttl=1)
        results, stretches = run_pairs(
            ported, schemes["scheme_k2"], pairs, ttl=1, strict=False
        )
        assert stretches == [] and not any(r.delivered for r in results)
        assert all("TTL" in r.failure for r in results)

    def test_ttl_semantics_match_reference(self):
        graph, ported, schemes, _ = _setup("gnp")
        scheme = schemes["scheme_k2"]
        net = Network(ported, scheme)
        router = BatchRouter(ported, scheme)
        pairs = np.array([[0, 9]], dtype=np.int64)
        for ttl in (1, 2, 3, 30):
            ref = net.route(0, 9, ttl=ttl)
            batch = router.route_pairs(pairs, ttl=ttl)
            assert bool(batch.delivered[0]) == ref.delivered
            assert int(batch.hops[0]) == ref.hops
            assert float(batch.weight[0]) == ref.weight

    def test_pair_true_distances_unique_sources(self):
        graph, _, _, dist = _setup("gnp")
        pairs = np.array([[0, 5], [0, 9], [3, 1], [3, 3]], dtype=np.int64)
        got = pair_true_distances(graph, pairs)
        want = dist[pairs[:, 0], pairs[:, 1]]
        assert np.array_equal(got, want)
        # With an explicit matrix it is a pure gather.
        assert np.array_equal(pair_true_distances(graph, pairs, dist), want)

    def test_measure_scheme_reports_hop_percentiles(self):
        graph, ported, schemes, dist = _setup("gnp")
        st = measure_scheme(
            ported, schemes["scheme_k2"], n_pairs=200, rng=3, true_dist=dist
        )
        assert st.delivered == 200 and st.violations == 0
        assert 1 <= st.hop_p50 <= st.hop_p95 <= st.hop_p99 <= st.hop_max
        row = st.row()
        assert {"p50_stretch", "p95_stretch", "p99_stretch"} <= set(row)
        assert {"p50_hops", "p99_hops", "max_hops"} <= set(row)

    def test_measure_scheme_engines_agree(self):
        graph, ported, schemes, dist = _setup("grid2d")
        kwargs = dict(n_pairs=150, rng=9, true_dist=dist)
        fast = measure_scheme(ported, schemes["scheme_k"], engine="batch", **kwargs)
        slow = measure_scheme(
            ported, schemes["scheme_k"], engine="reference", **kwargs
        )
        assert fast == slow  # dataclass equality: every field identical

    def test_unknown_engine_rejected(self):
        graph, ported, schemes, _ = _setup("gnp")
        with pytest.raises(ValueError):
            run_pairs(
                ported,
                schemes["scheme_k2"],
                np.array([[0, 1]]),
                engine="warp",
            )


class TestCompiledSchemeShape:
    def test_compile_is_cached_per_ports(self):
        graph, ported, schemes, _ = _setup("gnp")
        scheme = schemes["scheme_k2"]
        first = scheme.compile_batch(ported)
        assert scheme.compile_batch(ported) is first
        other = assign_ports(graph, "sorted")
        assert scheme.compile_batch(other) is not first

    def test_entry_arrays_consistent(self):
        graph, ported, schemes, _ = _setup("gnp")
        cs = schemes["scheme_k"].compile_batch(ported)
        assert cs.entry_count == sum(
            len(t) for t in schemes["scheme_k"].tree_labels.values()
        )
        assert np.all(np.diff(cs.entry_keys) > 0)  # strictly sorted keys
        assert cs.lp_indptr[-1] == cs.lp_data.shape[0]
        assert cs.mem_keys.shape == cs.mem_epos.shape
        # Every member-map entry points at its own (tree, member) row.
        assert np.array_equal(cs.entry_keys[cs.mem_epos], cs.mem_keys)

    def test_label_bits_match_scalar_codec(self):
        from repro.trees.label_codec import tree_label_bits

        graph, ported, schemes, _ = _setup("gnp")
        scheme = schemes["scheme_k"]
        cs = scheme.compile_batch(ported)
        pos = 0
        for w in sorted(scheme.tree_labels):
            for u in sorted(scheme.tree_labels[w]):
                want = tree_label_bits(
                    scheme.tree_labels[w][u], scheme.tree_sizes[w]
                )
                assert int(cs.ent_label_bits[pos]) == want
                pos += 1
