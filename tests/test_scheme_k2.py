"""The §3 stretch-3 scheme: delivery, the exact stretch-3 bound, space."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.scheme_k2 import build_stretch3_scheme, default_s
from repro.errors import PreprocessingError
from repro.graphs import generators as gen
from repro.graphs.graph import Graph
from repro.graphs.ports import assign_ports
from repro.graphs.shortest_paths import all_pairs_shortest_paths
from repro.rng import all_pairs
from repro.sim.network import Network
from repro.sim.runner import run_pairs


@pytest.fixture(scope="module")
def compiled(small_weighted_graph, ported_small):
    return build_stretch3_scheme(small_weighted_graph, ported_small, rng=31)


class TestDeliveryAndStretch:
    def test_every_ordered_pair_delivered_within_3x(
        self, small_weighted_graph, ported_small, dist_small, compiled
    ):
        """Exhaustive: all n(n-1) pairs delivered, stretch ≤ 3 exactly."""
        pairs = all_pairs(small_weighted_graph.n)
        results, stretches = run_pairs(
            ported_small, compiled, pairs, true_dist=dist_small
        )
        assert all(r.delivered for r in results)
        assert max(stretches) <= 3.0 + 1e-9

    def test_in_cluster_pairs_routed_exactly(
        self, small_weighted_graph, ported_small, dist_small, compiled
    ):
        """v ∈ C(u) must route along an exact shortest path (stretch 1)."""
        net = Network(ported_small, compiled)
        checked = 0
        for u in range(small_weighted_graph.n):
            for v in compiled.tables[u].members:
                if v == u:
                    continue
                res = net.route(u, v, strict=True)
                assert res.weight == pytest.approx(dist_small[u, v])
                checked += 1
        assert checked > 0

    def test_self_route_is_trivial(self, ported_small, compiled):
        net = Network(ported_small, compiled)
        res = net.route(5, 5, strict=True)
        assert res.delivered and res.weight == 0 and res.hops == 0

    def test_unit_weight_graph(self, small_unit_graph):
        pg = assign_ports(small_unit_graph, "random", rng=3)
        scheme = build_stretch3_scheme(small_unit_graph, pg, rng=4)
        D = all_pairs_shortest_paths(small_unit_graph)
        pairs = all_pairs(small_unit_graph.n, limit=2000, rng=5)
        _, stretches = run_pairs(pg, scheme, pairs, true_dist=D)
        assert max(stretches) <= 3.0 + 1e-9

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_multiple_seeds_never_violate(self, seed):
        g = gen.gnp(70, 0.09, rng=seed + 100, weights=(1, 7))
        pg = assign_ports(g, "random", rng=seed)
        scheme = build_stretch3_scheme(g, pg, rng=seed)
        D = all_pairs_shortest_paths(g)
        pairs = all_pairs(g.n, limit=1500, rng=seed)
        _, stretches = run_pairs(pg, scheme, pairs, true_dist=D)
        assert max(stretches) <= 3.0 + 1e-9

    def test_grid_graph(self, grid_graph):
        pg = assign_ports(grid_graph, "random", rng=9)
        scheme = build_stretch3_scheme(grid_graph, pg, rng=10)
        D = all_pairs_shortest_paths(grid_graph)
        pairs = all_pairs(grid_graph.n, limit=1500, rng=11)
        _, stretches = run_pairs(pg, scheme, pairs, true_dist=D)
        assert max(stretches) <= 3.0 + 1e-9


class TestStructure:
    def test_landmark_trees_span_everything(self, compiled):
        for a in compiled.hierarchy.levels[1]:
            assert compiled.tree_sizes[int(a)] == compiled.n

    def test_cluster_cap_respected(self, compiled):
        """Theorem 3.1 cap: non-landmark clusters ≤ 4n/s."""
        s = default_s(compiled.n)
        landmarks = set(compiled.hierarchy.levels[1].tolist())
        for w in range(compiled.n):
            if w not in landmarks:
                assert compiled.tree_sizes[w] <= 4 * compiled.n / s

    def test_bunch_contains_all_landmarks(self, compiled):
        """Every vertex participates in every landmark tree."""
        landmarks = set(compiled.hierarchy.levels[1].tolist())
        for u in range(compiled.n):
            assert landmarks <= set(compiled.tables[u].trees)

    def test_label_entry_is_nearest_landmark(self, compiled, dist_small):
        A = compiled.hierarchy.levels[1]
        for v in range(compiled.n):
            a_v = compiled.labels[v].entry(1).pivot
            assert dist_small[a_v, v] == dist_small[A, v].min()

    def test_stretch_bound_value(self, compiled):
        assert compiled.stretch_bound() == 3.0

    def test_bernoulli_landmarks_also_work(self, small_weighted_graph):
        pg = assign_ports(small_weighted_graph, "sorted")
        scheme = build_stretch3_scheme(
            small_weighted_graph, pg, rng=5, landmark_method="bernoulli"
        )
        D = all_pairs_shortest_paths(small_weighted_graph)
        pairs = all_pairs(small_weighted_graph.n, limit=800, rng=6)
        _, stretches = run_pairs(pg, scheme, pairs, true_dist=D)
        assert max(stretches) <= 3.0 + 1e-9

    def test_unknown_landmark_method(self, small_weighted_graph):
        with pytest.raises(ValueError):
            build_stretch3_scheme(
                small_weighted_graph, landmark_method="bogus"
            )

    def test_disconnected_graph_rejected(self):
        g = Graph(4, [(0, 1), (2, 3)])
        with pytest.raises(PreprocessingError):
            build_stretch3_scheme(g)


class TestSpace:
    def test_tables_are_sublinear(self, compiled):
        """Sanity: stretch-3 tables ≪ the n·log n of full tables."""
        n = compiled.n
        full_table_bits = (n - 1) * 8  # next-hop tables at ~8 bits/entry
        assert compiled.avg_table_bits() < 4 * full_table_bits
        # And the Õ(sqrt n) shape: entries, not bits, scale with sqrt(n).
        avg_entries = np.mean(
            [
                len(compiled.tables[u].trees) + len(compiled.tables[u].members)
                for u in range(n)
            ]
        )
        assert avg_entries <= 40 * math.sqrt(n)

    def test_labels_polylog(self, compiled):
        assert compiled.max_label_bits() <= 4 * math.log2(compiled.n) ** 2

    def test_header_bits_bounded(self, compiled, ported_small):
        net = Network(ported_small, compiled)
        res = net.route(0, compiled.n - 1, strict=True)
        assert 0 < res.max_header_bits <= 8 * math.log2(compiled.n) ** 2
