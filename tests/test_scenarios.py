"""Scenario lab + multi-trial resilience engine differential suite.

The load-bearing guarantee: one vectorized
:meth:`BatchRouter.route_trials` call over ``T`` dead-edge masks is
**bit-for-bit identical** — per (trial, pair), on (delivered, weight,
hops) — to routing each trial separately through the hop-by-hop
:class:`FaultyNetwork` reference.  Enforced here across graph families
× k ∈ {2, 3} × failure models, as the acceptance criteria require.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.scheme_k import build_tz_scheme
from repro.graphs import generators as gen
from repro.graphs.ports import assign_ports
from repro.rng import all_pairs, derive
from repro.sim.engine import BatchRouter
from repro.sim.failures import (
    FAILURE_MODELS,
    churn_trials,
    dead_edge_mask,
    edges_from_mask,
    failure_trials,
    geographic_failure_trials,
    iid_edge_trials,
    node_failure_trials,
    survivability,
    survivability_sweep,
)

FAMILIES = {
    "gnp": lambda: gen.gnp(70, 0.09, rng=21, weights=(1, 6)),
    "grid": lambda: gen.grid2d(8, 8, rng=22),
    "ba": lambda: gen.barabasi_albert(70, 3, rng=23, weights=(1, 6)),
}

MODELS = {
    "iid-edges": lambda g: iid_edge_trials(g, 3, f=5, rng=31),
    "churn": lambda g: churn_trials(g, 3, f_final=max(1, g.m // 8), rng=32),
    "geo-ball": lambda g: geographic_failure_trials(
        g, 3, radius=float(np.median(g.edge_weights)), rng=33
    ),
    "node-down": lambda g: node_failure_trials(g, 3, f=2, rng=34),
}


@pytest.fixture(scope="module", params=sorted(FAMILIES))
def family(request):
    g = FAMILIES[request.param]().largest_component()
    pg = assign_ports(g, "random", rng=derive(7, "ports", request.param))
    pairs = all_pairs(g.n, limit=220, rng=derive(7, "pairs", request.param))
    schemes = {
        k: build_tz_scheme(g, pg, k=k, rng=derive(7, "scheme", request.param, k))
        for k in (2, 3)
    }
    return g, pg, schemes, pairs


class TestSweepDifferential:
    """Batch sweep == per-trial FaultyNetwork, bit for bit."""

    @pytest.mark.parametrize("k", [2, 3])
    @pytest.mark.parametrize("model", sorted(MODELS))
    def test_bit_identical_to_reference(self, family, model, k):
        g, pg, schemes, pairs = family
        masks = MODELS[model](g)
        fast = survivability_sweep(pg, schemes[k], masks, pairs, engine="batch")
        slow = survivability_sweep(pg, schemes[k], masks, pairs, engine="reference")
        assert fast.engine == "batch" and slow.engine == "reference"
        np.testing.assert_array_equal(fast.delivered, slow.delivered)
        np.testing.assert_array_equal(fast.weight, slow.weight)
        np.testing.assert_array_equal(fast.hops, slow.hops)
        np.testing.assert_array_equal(fast.connected, slow.connected)

    @pytest.mark.parametrize("k", [2, 3])
    def test_reports_match_survivability(self, family, k):
        """Per-trial reports reproduce the classic survivability() path."""
        g, pg, schemes, pairs = family
        masks = iid_edge_trials(g, 4, f=6, rng=41)
        sweep = survivability_sweep(pg, schemes[k], masks, pairs)
        for t in range(sweep.trials):
            old = survivability(
                pg, schemes[k], edges_from_mask(g, masks[t]), pairs
            )
            rep = sweep.report(t)
            assert rep.attempted == old.attempted
            assert rep.connected_pairs == old.connected_pairs
            assert rep.delivered == old.delivered
            assert rep.delivery_rate == old.delivery_rate
            assert set(rep.failed_edges) == set(old.failed_edges)
        rates = sweep.delivery_rates
        assert rates.shape == (4,)
        assert np.all((rates >= 0) & (rates <= 1))


class TestRouteTrials:
    """The trial axis itself: slices, shapes, degenerate inputs."""

    def test_trial_slices_equal_single_routes(self, family):
        g, pg, schemes, pairs = family
        router = BatchRouter(pg, schemes[2])
        masks = iid_edge_trials(g, 4, f=4, rng=51)
        sweep = router.route_trials(pairs, masks)
        assert sweep.trials == 4 and sweep.pair_count == len(pairs)
        for t in range(4):
            single = router.route_pairs(
                pairs, dead_edges=edges_from_mask(g, masks[t])
            )
            sl = sweep.trial(t)
            for name in (
                "delivered", "weight", "hops", "tree",
                "max_header_bits", "failure_code",
            ):
                np.testing.assert_array_equal(
                    getattr(single, name), getattr(sl, name), err_msg=name
                )

    def test_zero_trials_and_zero_pairs(self, family):
        g, pg, schemes, pairs = family
        router = BatchRouter(pg, schemes[2])
        empty_t = router.route_trials(pairs, np.zeros((0, g.m), dtype=bool))
        assert empty_t.trials == 0
        assert empty_t.delivered.shape == (0, len(pairs))
        empty_p = router.route_trials(
            np.zeros((0, 2), dtype=np.int64), np.zeros((2, g.m), dtype=bool)
        )
        assert empty_p.trials == 2 and empty_p.pair_count == 0
        assert np.array_equal(empty_p.delivered_per_trial, [0, 0])

    def test_all_edges_dead_delivers_nothing_nontrivial(self, family):
        g, pg, schemes, pairs = family
        router = BatchRouter(pg, schemes[2])
        masks = np.ones((1, g.m), dtype=bool)
        sweep = router.route_trials(pairs, masks)
        nontrivial = sweep.source != sweep.dest
        assert not sweep.delivered[0][nontrivial].any()

    def test_bad_mask_shape_rejected(self, family):
        g, pg, schemes, pairs = family
        from repro.errors import RoutingError

        router = BatchRouter(pg, schemes[2])
        with pytest.raises(RoutingError):
            router.route_trials(pairs, np.zeros(g.m, dtype=bool))
        with pytest.raises(RoutingError):
            router.route_trials(pairs, np.zeros((2, g.m + 3), dtype=bool))

    def test_mask_permutation_permutes_results(self, family):
        g, pg, schemes, pairs = family
        router = BatchRouter(pg, schemes[3])
        masks = iid_edge_trials(g, 3, f=5, rng=52)
        fwd = router.route_trials(pairs, masks)
        rev = router.route_trials(pairs, masks[::-1])
        np.testing.assert_array_equal(fwd.delivered[::-1], rev.delivered)
        np.testing.assert_array_equal(fwd.weight[::-1], rev.weight)


class TestFailureModels:
    """Mask-matrix invariants of every registered failure model."""

    def test_registry_covers_all_models(self):
        assert set(FAILURE_MODELS) == {"iid-edges", "geo-ball", "node-down", "churn"}

    @pytest.mark.parametrize("model", sorted(MODELS))
    def test_shapes_and_determinism(self, family, model):
        g = family[0]
        a = MODELS[model](g)
        b = MODELS[model](g)
        assert a.shape == (3, g.m) and a.dtype == bool
        np.testing.assert_array_equal(a, b)

    def test_churn_is_nested_and_monotone(self, family):
        g = family[0]
        masks = churn_trials(g, 5, f_final=g.m // 2, rng=61)
        counts = masks.sum(axis=1)
        assert counts[0] == 0 and counts[-1] == g.m // 2
        assert np.all(np.diff(counts) >= 0)
        for t in range(4):
            assert not (masks[t] & ~masks[t + 1]).any()  # nested sets

    def test_geo_ball_kills_a_ball(self, family):
        g = family[0]
        center = np.array([0, 0], dtype=np.int64)
        masks = geographic_failure_trials(
            g, 2, radius=float(g.edge_weights.max()), epicenters=center
        )
        np.testing.assert_array_equal(masks[0], masks[1])
        dist, _ = g.csr().sssp_batch(np.array([0]))
        in_ball = dist[0] <= float(g.edge_weights.max())
        expect = in_ball[g.edges[:, 0]] & in_ball[g.edges[:, 1]]
        np.testing.assert_array_equal(masks[0], expect)

    def test_node_down_kills_incident_edges_only(self, family):
        g = family[0]
        masks = node_failure_trials(g, 3, f=1, rng=62)
        for t in range(3):
            dead = np.flatnonzero(masks[t])
            # all dead edges share one endpoint (a single crashed vertex)
            touched = set(g.edges[dead].ravel().tolist())
            common = set(g.edges[dead[0]].tolist())
            for e in dead[1:]:
                common &= set(g.edges[e].tolist())
            assert len(common) == 1
            v = common.pop()
            assert len(dead) == g.degree(v)
            assert touched <= set(g.neighbors(v).tolist()) | {v}

    def test_failure_trials_dispatch(self, family):
        g = family[0]
        got = failure_trials(g, "iid-edges", 3, rng=31, f=5)
        np.testing.assert_array_equal(got, MODELS["iid-edges"](g))
        with pytest.raises(ValueError, match="unknown failure model"):
            failure_trials(g, "meteor", 3)


class TestScenarioLab:
    """Spec round-trips, grid expansion, store reuse, reporting."""

    def test_spec_roundtrip_and_name(self):
        from repro.scenarios import ScenarioSpec

        spec = ScenarioSpec(
            graph="grid", n=100, k=3, handshake=True, workload="gravity",
            failure_model="geo-ball", failure_params=(("radius", 2.0),),
            trials=8, seed=5,
        )
        assert spec.name == "grid-n100-k3-hs-gravity-geo-ball-x8"
        clone = ScenarioSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert clone == spec
        assert clone.params == {"radius": 2.0}

    def test_expand_grid_product_order(self):
        from repro.scenarios import expand_grid

        specs = expand_grid(
            graphs=("gnp", "ba"), ks=(2, 3), failure_models=("iid-edges", "churn"),
            n=64, trials=4,
        )
        assert len(specs) == 8
        assert [s.graph for s in specs[:4]] == ["gnp"] * 4
        assert specs[0].failure_model == "iid-edges"
        assert specs[1].failure_model == "churn"

    def test_run_scenario_store_hit_is_bit_identical(self, tmp_path):
        from repro.scenarios import ScenarioSpec, run_scenario
        from repro.store import SchemeStore

        store = SchemeStore(tmp_path / "store")
        spec = ScenarioSpec(graph="gnp", n=96, k=2, trials=4, pairs=150, seed=3)
        miss = run_scenario(spec, store=store)
        hit = run_scenario(spec, store=store)
        fresh = run_scenario(spec)
        assert miss.store_hit is False and hit.store_hit is True
        assert fresh.store_hit is None
        assert miss.delivery_rates == hit.delivery_rates == fresh.delivery_rates

    def test_run_scenario_engines_agree(self):
        from repro.scenarios import ScenarioSpec, run_scenario

        base = dict(graph="grid", n=64, k=2, trials=3, pairs=120, seed=9,
                    failure_model="churn")
        fast = run_scenario(ScenarioSpec(**base, engine="batch"))
        slow = run_scenario(ScenarioSpec(**base, engine="reference"))
        assert fast.engine == "batch" and slow.engine == "reference"
        assert fast.delivery_rates == slow.delivery_rates

    def test_default_failure_params_cover_registry(self, family):
        from repro.scenarios import default_failure_params

        g = family[0]
        for model in FAILURE_MODELS:
            params = default_failure_params(g, model)
            assert params, model
            masks = failure_trials(g, model, 2, rng=1, **params)
            assert masks.shape == (2, g.m)

    def test_reports_json_and_markdown(self, tmp_path):
        from repro.analysis.scenario_report import (
            render_scenario_markdown,
            scenario_report_dict,
            write_scenario_json,
            write_scenario_markdown,
        )
        from repro.scenarios import ScenarioSpec, run_scenario

        results = [
            run_scenario(ScenarioSpec(graph="gnp", n=80, k=2, trials=3, pairs=100))
        ]
        doc = scenario_report_dict(results)
        assert doc["kind"] == "tz-scenario-report"
        assert len(doc["scenarios"]) == 1
        assert len(doc["scenarios"][0]["delivery_rates"]) == 3

        jp = write_scenario_json(results, tmp_path / "r.json")
        assert json.loads(jp.read_text())["kind"] == "tz-scenario-report"
        md = render_scenario_markdown(results, title="T")
        assert md.startswith("# T") and results[0].spec.name in md
        mp = write_scenario_markdown(results, tmp_path / "r.md")
        assert results[0].spec.name in mp.read_text()


class TestDeadEdgeMask:
    """Mask/edge-list round trips and canonicalization."""

    def test_roundtrip(self, family):
        g = family[0]
        masks = iid_edge_trials(g, 1, f=7, rng=71)
        edges = edges_from_mask(g, masks[0])
        assert len(edges) == 7
        np.testing.assert_array_equal(dead_edge_mask(g, edges), masks[0])

    def test_orientation_invariance(self, family):
        g = family[0]
        u, v = int(g.edges[0, 0]), int(g.edges[0, 1])
        np.testing.assert_array_equal(
            dead_edge_mask(g, [(u, v)]), dead_edge_mask(g, [(v, u)])
        )
