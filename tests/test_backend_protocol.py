"""The shared backend contract: one suite, every registered backend.

``repro.backends`` promises that anything in the registry — oracle,
labeling, spanner, Cowen, single tree, full tables, TZ scheme — obeys
the same protocol.  This suite is the promise, parametrized over
``backend_names()`` so a newly registered backend is under contract the
moment its module imports:

* ``query_many`` equals a per-pair ``query_one`` loop bit for bit;
* every answer respects the declared stretch envelope (lower-bounded by
  the true distance, upper-bounded by ``capabilities.stretch`` times it);
* ``size_bits()`` is at least the information floor of naming vertices;
* ``serialize → deserialize → query`` is bit-identical, both in memory
  and through a :class:`~repro.store.SchemeStore` round trip;
* the TZ backend's space equals what the per-structure dict world
  reports (the differential gate: the frontier's space axis is the same
  number the scheme paths have always printed).

Plus the deprecation shims of this redesign: ``method=`` keywords and
``builder="pernode"`` warn but produce bit-identical output.
"""

from __future__ import annotations

import numpy as np
import pytest
from strategies import family_from_seed

from repro.backends import Backend, backend_names, build_backend, get_backend
from repro.backends.accounting import id_bits
from repro.backends.frontier import mark_pareto, run_frontier
from repro.bitio import code_width
from repro.core.build import build_arrays, build_scheme
from repro.core.scheme_k import build_tz_scheme
from repro.errors import PreprocessingError
from repro.rng import derive, sample_pairs
from repro.sim.runner import pair_true_distances

BACKENDS = backend_names()
FAMILIES = ("gnp", "grid")


def _instance(family: str, seed: int, n: int = 44):
    graph = family_from_seed(seed, family, n=n).largest_component()
    pairs = sample_pairs(derive(seed, "contract", family), graph.n, 160)
    true_d = pair_true_distances(graph, pairs)
    return graph, pairs, true_d


@pytest.fixture(scope="module")
def contract_case():
    """One shared (graph, pairs, true distances) instance per module run."""
    return _instance("gnp", seed=3)


def _built(name: str, graph, k: int = 3, seed: int = 7) -> Backend:
    return build_backend(name, graph, k, seed)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def test_registry_holds_all_seven():
    assert BACKENDS == sorted(BACKENDS)
    assert set(BACKENDS) == {
        "cowen", "labels", "oracle", "shortest-path", "spanner", "tree", "tz",
    }


def test_unknown_backend_raises():
    with pytest.raises(PreprocessingError):
        get_backend("quantum")


# ----------------------------------------------------------------------
# The contract, per backend
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", BACKENDS)
def test_query_many_equals_query_one(name, contract_case):
    graph, pairs, _ = contract_case
    backend = _built(name, graph)
    many = backend.query_many(pairs)
    one = np.array([backend.query_one(int(u), int(v)) for u, v in pairs])
    assert np.array_equal(many, one)


@pytest.mark.parametrize("name", BACKENDS)
def test_stretch_envelope(name, contract_case):
    graph, pairs, true_d = contract_case
    backend = _built(name, graph)
    answers = backend.query_many(pairs)
    # Lower bound: no structure may report below the true distance.
    assert np.all(answers >= true_d - 1e-9)
    bound = backend.stretch_bound()
    if np.isfinite(bound):
        assert np.all(answers <= bound * true_d + 1e-9)
    if backend.capabilities.exact:
        assert np.array_equal(answers, true_d)


@pytest.mark.parametrize("name", BACKENDS)
def test_size_bits_above_information_floor(name, contract_case):
    graph, _, _ = contract_case
    backend = _built(name, graph)
    # Any of these structures must at least name a vertex per vertex.
    assert backend.size_bits() >= graph.n * code_width(graph.n)
    assert id_bits(graph.n) == code_width(graph.n)


@pytest.mark.parametrize("name", BACKENDS)
def test_serialize_round_trip_bit_equality(name, contract_case):
    graph, pairs, _ = contract_case
    backend = _built(name, graph)
    meta, blobs = backend.serialize()
    clone = type(backend).deserialize(
        meta, {key: np.array(blob, copy=True) for key, blob in blobs.items()}
    )
    assert np.array_equal(clone.query_many(pairs), backend.query_many(pairs))
    assert clone.size_bits() == backend.size_bits()


@pytest.mark.parametrize("name", BACKENDS)
def test_store_round_trip_bit_equality(name, contract_case, tmp_path):
    from repro.store import SchemeStore

    graph, pairs, _ = contract_case
    backend = _built(name, graph)
    store = SchemeStore(tmp_path)
    path = store.save_backend(backend, graph, k=3, seed=7)
    loaded = store.load_backend(path)
    assert np.array_equal(loaded.query_many(pairs), backend.query_many(pairs))
    memo = store.get_or_build_backend(name, graph, 3, seed=7)
    assert np.array_equal(memo.query_many(pairs), backend.query_many(pairs))


@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("name", BACKENDS)
def test_contract_across_families(name, family):
    graph, pairs, true_d = _instance(family, seed=11, n=36)
    backend = _built(name, graph, k=2, seed=5)
    answers = backend.query_many(pairs)
    assert np.all(answers >= true_d - 1e-9)
    bound = backend.stretch_bound()
    if np.isfinite(bound):
        assert np.all(answers <= bound * true_d + 1e-9)


# ----------------------------------------------------------------------
# Differential gate: the TZ backend's space axis is the dict world's
# ----------------------------------------------------------------------
@pytest.mark.parametrize("k", [2, 3])
def test_tz_backend_space_matches_per_structure_accounting(k):
    graph = family_from_seed(21, "gnp", n=40).largest_component()
    seed = 13
    backend = _built("tz", graph, k=k, seed=seed)
    scheme = build_tz_scheme(
        graph,
        k=k,
        rng=derive(seed, "backend", "tz", k),
        builder="vectorized",
    )
    expected = sum(scheme.table_bits(u) for u in range(graph.n)) + sum(
        scheme.label_bits(v) for v in range(graph.n)
    )
    assert backend.size_bits() == expected
    assert backend.stretch_bound() == scheme.stretch_bound()


def test_tz_backend_answers_match_scheme_measurement(contract_case):
    from repro.sim.runner import run_pairs

    graph, pairs, _ = contract_case
    backend = _built("tz", graph, k=2, seed=7)
    scheme = build_tz_scheme(
        graph, k=2, rng=derive(7, "backend", "tz", 2), builder="vectorized"
    )
    results, _ = run_pairs(scheme.ported, scheme, pairs, engine="batch")
    assert np.array_equal(
        backend.query_many(pairs), np.array([r.weight for r in results])
    )


# ----------------------------------------------------------------------
# Frontier sweep semantics
# ----------------------------------------------------------------------
def test_run_frontier_grid_shape_and_pareto(contract_case):
    graph, _, _ = contract_case
    points = run_frontier([("gnp", graph)], ks=(2, 3), seed=3, n_pairs=60)
    with_k = [p for p in points if p.k is not None]
    without_k = [p for p in points if p.k is None]
    # k-using backends appear once per k, the rest once per graph.
    assert {p.backend for p in without_k} == {"cowen", "shortest-path", "tree"}
    assert len(with_k) == 2 * 4 and len(without_k) == 3
    assert any(p.pareto for p in points)
    # shortest-path is exact: observed stretch exactly 1.
    sp = next(p for p in points if p.backend == "shortest-path")
    assert sp.stretch_max == 1.0 and sp.exact


def test_mark_pareto_dominance():
    points = run_frontier(
        [("gnp", family_from_seed(4, "gnp", n=30).largest_component())],
        ks=(2,),
        backends=["tz", "tree"],
        seed=1,
        n_pairs=40,
    )
    mark_pareto(points)
    for p in points:
        dominated = any(
            q.size_bits <= p.size_bits
            and q.stretch_max <= p.stretch_max
            and q.query_seconds <= p.query_seconds
            and (
                q.size_bits < p.size_bits
                or q.stretch_max < p.stretch_max
                or q.query_seconds < p.query_seconds
            )
            for q in points
            if q is not p
        )
        assert p.pareto == (not dominated)


# ----------------------------------------------------------------------
# Deprecation shims of the redesign
# ----------------------------------------------------------------------
def test_method_kwarg_warns_and_matches_builder():
    graph = family_from_seed(8, "gnp", n=32).largest_component()
    with pytest.warns(DeprecationWarning, match="builder="):
        old = build_arrays(graph, 2, method="reference", rng=5)
    new = build_arrays(graph, 2, builder="reference", rng=5)
    assert np.array_equal(old.entry_keys, new.entry_keys)
    assert np.array_equal(old.ent_dist, new.ent_dist)
    with pytest.warns(DeprecationWarning, match="builder="):
        build_scheme(graph, 2, method="vectorized", rng=5)


def test_pernode_builder_value_warns_and_matches_reference():
    graph = family_from_seed(9, "gnp", n=30).largest_component()
    with pytest.warns(DeprecationWarning, match="pernode"):
        old = build_tz_scheme(graph, k=2, rng=3, builder="pernode")
    new = build_tz_scheme(graph, k=2, rng=3, builder="reference")
    assert old.labels.keys() == new.labels.keys()
    assert all(
        old.table_bits(u) == new.table_bits(u) for u in range(graph.n)
    )


def test_store_method_kwarg_warns(tmp_path):
    from repro.store import SchemeStore

    graph = family_from_seed(10, "gnp", n=30).largest_component()
    store = SchemeStore(tmp_path)
    with pytest.warns(DeprecationWarning, match="builder="):
        stored = store.get_or_build(graph, 2, 3, method="vectorized")
    assert stored.arrays.n == graph.n


def test_unknown_builder_rejected():
    graph = family_from_seed(12, "gnp", n=24).largest_component()
    with pytest.raises(PreprocessingError):
        build_arrays(graph, 2, builder="quantum")
    with pytest.raises(PreprocessingError):
        build_tz_scheme(graph, k=2, builder="quantum")
