"""Traffic workload generators and their use against compiled schemes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.ports import assign_ports
from repro.graphs.shortest_paths import all_pairs_shortest_paths
from repro.oracles.distance_oracle import build_distance_oracle
from repro.sim.workloads import (
    WORKLOADS,
    adversarial_pairs,
    all_to_one,
    gravity_pairs,
    locality_pairs,
    make_workload,
    uniform_pairs,
    zipf_pairs,
)


class TestGenerators:
    def test_uniform_shape_distinct(self, small_weighted_graph):
        pairs = uniform_pairs(small_weighted_graph, 200, rng=1)
        assert pairs.shape == (200, 2)
        assert np.all(pairs[:, 0] != pairs[:, 1])

    def test_gravity_prefers_hubs(self, ba_graph):
        pairs = gravity_pairs(ba_graph, 3000, rng=2, alpha=1.5)
        assert np.all(pairs[:, 0] != pairs[:, 1])
        hub = int(np.argmax(ba_graph.degrees()))
        hub_freq = float(np.mean(pairs == hub))
        uniform_freq = 1.0 / ba_graph.n
        assert hub_freq > 5 * uniform_freq

    def test_gravity_deterministic(self, ba_graph):
        a = gravity_pairs(ba_graph, 50, rng=3)
        b = gravity_pairs(ba_graph, 50, rng=3)
        assert np.array_equal(a, b)

    def test_all_to_one_defaults_to_hub(self, ba_graph):
        pairs = all_to_one(ba_graph)
        hub = int(np.argmax(ba_graph.degrees()))
        assert np.all(pairs[:, 1] == hub)
        assert pairs.shape == (ba_graph.n - 1, 2)

    def test_all_to_one_explicit_target(self, small_weighted_graph):
        pairs = all_to_one(small_weighted_graph, target=7)
        assert np.all(pairs[:, 1] == 7)
        assert 7 not in pairs[:, 0]

    def test_zipf_shape_distinct_deterministic(self, small_weighted_graph):
        a = zipf_pairs(small_weighted_graph, 500, rng=12)
        b = zipf_pairs(small_weighted_graph, 500, rng=12)
        assert np.array_equal(a, b)
        assert a.shape == (500, 2) and a.dtype == np.int64
        assert np.all(a[:, 0] != a[:, 1])
        assert a.min() >= 0 and a.max() < small_weighted_graph.n

    def test_zipf_concentrates_on_top_ranks(self, small_weighted_graph):
        """With s=1.2 the most popular destination should dwarf the
        uniform rate; s=0 degenerates to (near) uniform."""
        pairs = zipf_pairs(small_weighted_graph, 5000, rng=13, s=1.2)
        _, counts = np.unique(pairs[:, 1], return_counts=True)
        top_freq = counts.max() / pairs.shape[0]
        assert top_freq > 5.0 / small_weighted_graph.n
        flat = zipf_pairs(small_weighted_graph, 5000, rng=13, s=0.0)
        _, fcounts = np.unique(flat[:, 1], return_counts=True)
        assert fcounts.max() / flat.shape[0] < top_freq / 2

    def test_zipf_users_confine_sources(self, small_weighted_graph):
        pairs = zipf_pairs(small_weighted_graph, 1000, rng=14, users=7)
        assert np.unique(pairs[:, 0]).size <= 7
        # destinations are not confined to the user set
        assert np.unique(pairs[:, 1]).size > 7

    def test_zipf_tiny_graph_raises(self):
        from repro.graphs.graph import Graph

        g = Graph(1, [])
        with pytest.raises(ValueError):
            zipf_pairs(g, 10, rng=0)

    def test_make_workload_dispatches_every_name(self, small_weighted_graph):
        assert "zipf" in WORKLOADS
        for name in WORKLOADS:
            pairs = make_workload(small_weighted_graph, name, 50, rng=15)
            assert pairs.ndim == 2 and pairs.shape[1] == 2
        with pytest.raises(ValueError, match="unknown workload"):
            make_workload(small_weighted_graph, "mystery", 50, rng=15)

    def test_locality_respects_radius(self, small_weighted_graph, dist_small):
        radius = float(np.percentile(dist_small[dist_small > 0], 25))
        pairs = locality_pairs(
            small_weighted_graph, 100, radius, rng=4, dist_matrix=dist_small
        )
        for s, t in pairs:
            assert 0 < dist_small[int(s), int(t)] <= radius

    def test_locality_impossible_radius_raises(self, small_weighted_graph):
        with pytest.raises(ValueError):
            locality_pairs(small_weighted_graph, 10, 1e-9, rng=5)

    def test_adversarial_pairs_are_worst_candidates(
        self, small_weighted_graph, dist_small
    ):
        oracle = build_distance_oracle(small_weighted_graph, 2, rng=6)
        pairs = adversarial_pairs(
            small_weighted_graph,
            20,
            oracle,
            rng=7,
            candidates=500,
            dist_matrix=dist_small,
        )
        ratios = [
            oracle.query(int(s), int(t)) / dist_small[int(s), int(t)]
            for s, t in pairs
        ]
        # The selected pairs concentrate above the average ratio.
        assert min(ratios) >= 1.0
        assert np.mean(ratios) >= 1.2


class TestWorkloadsAgainstSchemes:
    def test_locality_traffic_routes_nearly_exactly(
        self, small_weighted_graph, ported_small, dist_small
    ):
        """Short-range pairs mostly hit the cluster fast path: average
        stretch on local traffic should be tiny."""
        from repro.core.scheme_k2 import build_stretch3_scheme
        from repro.sim.runner import run_pairs

        scheme = build_stretch3_scheme(small_weighted_graph, ported_small, rng=8)
        radius = float(np.percentile(dist_small[dist_small > 0], 10))
        pairs = locality_pairs(
            small_weighted_graph, 150, radius, rng=9, dist_matrix=dist_small
        )
        _, stretches = run_pairs(
            ported_small, scheme, pairs, true_dist=dist_small
        )
        assert max(stretches) <= 3.0 + 1e-9
        assert float(np.mean(stretches)) <= 1.6

    def test_hub_traffic_within_bound(self, ba_graph):
        from repro.core.scheme_k import build_tz_scheme
        from repro.sim.runner import run_pairs

        pg = assign_ports(ba_graph, "random", rng=10)
        scheme = build_tz_scheme(ba_graph, pg, k=3, rng=11)
        D = all_pairs_shortest_paths(ba_graph)
        pairs = all_to_one(ba_graph)
        results, stretches = run_pairs(pg, scheme, pairs, true_dist=D)
        assert all(r.delivered for r in results)
        assert max(stretches) <= scheme.stretch_bound() + 1e-9

    def test_gravity_traffic_within_bound(self, ba_graph):
        from repro.core.scheme_k2 import build_stretch3_scheme
        from repro.sim.runner import run_pairs

        pg = assign_ports(ba_graph, "random", rng=12)
        scheme = build_stretch3_scheme(ba_graph, pg, rng=13)
        D = all_pairs_shortest_paths(ba_graph)
        pairs = gravity_pairs(ba_graph, 400, rng=14)
        _, stretches = run_pairs(pg, scheme, pairs, true_dist=D)
        assert max(stretches) <= 3.0 + 1e-9
