"""The exception hierarchy: one catchable root, specific leaves."""

from __future__ import annotations

import pytest

from repro.errors import (
    DeliveryError,
    DisconnectedGraphError,
    EncodingError,
    GraphError,
    LabelError,
    PortError,
    PreprocessingError,
    ReproError,
    RoutingError,
)


ALL_ERRORS = [
    GraphError,
    DisconnectedGraphError,
    PortError,
    RoutingError,
    DeliveryError,
    LabelError,
    PreprocessingError,
    EncodingError,
]


@pytest.mark.parametrize("exc", ALL_ERRORS)
def test_all_derive_from_repro_error(exc):
    assert issubclass(exc, ReproError)
    assert issubclass(exc, Exception)


def test_delivery_is_routing_error():
    assert issubclass(DeliveryError, RoutingError)


def test_disconnected_is_graph_error():
    assert issubclass(DisconnectedGraphError, GraphError)


def test_library_failures_catchable_at_root():
    from repro.graphs.graph import Graph

    with pytest.raises(ReproError):
        Graph(2, [(0, 0)])  # self loop -> GraphError -> ReproError

    from repro.bitio import BitWriter

    with pytest.raises(ReproError):
        BitWriter().write_gamma(0)  # EncodingError -> ReproError
