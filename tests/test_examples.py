"""The examples must stay runnable — they are the library's front door."""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"
SRC = EXAMPLES.parent / "src"


def run_example(name: str, timeout: int = 240) -> str:
    # Examples run in a subprocess, which does not inherit pytest's
    # in-process ``pythonpath`` setting — forward src/ explicitly so the
    # suite works without an installed package or exported PYTHONPATH.
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
        env=env,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


def test_examples_directory_complete():
    present = {p.name for p in EXAMPLES.glob("*.py")}
    assert {
        "quickstart.py",
        "tree_routing_demo.py",
        "internet_like_routing.py",
        "stretch_vs_space_sweep.py",
        "distance_oracle_demo.py",
    } <= present


def test_quickstart_runs_and_guarantees(capsys):
    out = run_example("quickstart.py")
    assert "within the stretch-3 guarantee" in out


def test_tree_routing_demo_runs():
    out = run_example("tree_routing_demo.py")
    assert "designer" in out and "routed" in out


def test_distance_oracle_demo_runs():
    out = run_example("distance_oracle_demo.py")
    assert "stretch vs size by k" in out


@pytest.mark.slow
def test_internet_like_runs():
    out = run_example("internet_like_routing.py", timeout=420)
    assert "average stretch" in out


@pytest.mark.slow
def test_stretch_vs_space_sweep_runs():
    out = run_example("stretch_vs_space_sweep.py", timeout=420)
    assert "stretch vs space" in out
