"""The general §4 scheme for k = 1..4: delivery, 4k−5, label/table logic."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from strategies import gnp_from_seed, seeds

from repro.bitio import BitReader
from repro.core.labels import decode_label, encode_label, label_size_bits
from repro.core.router import RouteHeader
from repro.core.scheme_k import build_tz_scheme
from repro.errors import PreprocessingError, RoutingError
from repro.graphs.graph import Graph
from repro.graphs.ports import assign_ports
from repro.graphs.shortest_paths import all_pairs_shortest_paths
from repro.rng import all_pairs
from repro.sim.runner import run_pairs


@pytest.fixture(scope="module", params=[1, 2, 3, 4])
def compiled_k(request, small_weighted_graph, ported_small):
    k = request.param
    scheme = build_tz_scheme(
        small_weighted_graph, ported_small, k=k, rng=1000 + k
    )
    return k, scheme


class TestDeliveryAndStretch:
    def test_all_pairs_within_bound(
        self, compiled_k, small_weighted_graph, ported_small, dist_small
    ):
        k, scheme = compiled_k
        pairs = all_pairs(small_weighted_graph.n, limit=2500, rng=k)
        results, stretches = run_pairs(
            ported_small, scheme, pairs, true_dist=dist_small
        )
        assert all(r.delivered for r in results)
        assert max(stretches) <= scheme.stretch_bound() + 1e-9

    def test_k1_is_exact(self, small_weighted_graph, ported_small, dist_small):
        scheme = build_tz_scheme(small_weighted_graph, ported_small, k=1, rng=3)
        pairs = all_pairs(small_weighted_graph.n, limit=1200, rng=3)
        _, stretches = run_pairs(ported_small, scheme, pairs, true_dist=dist_small)
        assert max(stretches) <= 1.0 + 1e-9

    @pytest.mark.parametrize("k", [2, 3])
    def test_unit_weights_heavy_ties(self, grid_graph, k):
        pg = assign_ports(grid_graph, "random", rng=k)
        scheme = build_tz_scheme(grid_graph, pg, k=k, rng=k)
        D = all_pairs_shortest_paths(grid_graph)
        pairs = all_pairs(grid_graph.n, limit=1500, rng=k)
        _, stretches = run_pairs(pg, scheme, pairs, true_dist=D)
        assert max(stretches) <= scheme.stretch_bound() + 1e-9

    @given(seeds())
    @settings(max_examples=8, deadline=None)
    def test_property_random_instances(self, seed):
        g = gnp_from_seed(seed, n=45, p=0.12, weights=(1, 5))
        pg = assign_ports(g, "random", rng=seed)
        k = 2 + seed % 2
        scheme = build_tz_scheme(g, pg, k=k, rng=seed)
        D = all_pairs_shortest_paths(g)
        pairs = all_pairs(g.n, limit=500, rng=seed)
        results, stretches = run_pairs(pg, scheme, pairs, true_dist=D)
        assert all(r.delivered for r in results)
        assert max(stretches) <= scheme.stretch_bound() + 1e-9


class TestStructuralInvariants:
    def test_every_vertex_in_own_tree(self, compiled_k):
        k, scheme = compiled_k
        for u in range(scheme.n):
            assert u in scheme.tables[u].trees
            assert u in scheme.tables[u].members

    def test_top_level_trees_span_graph(self, compiled_k):
        k, scheme = compiled_k
        for w in scheme.hierarchy.top_level():
            assert scheme.tree_sizes[int(w)] == scheme.n

    def test_trees_dict_matches_cluster_membership(self, compiled_k, dist_small):
        """u ∈ C(w) ⟺ u has a record for T_w — spot-check the definition
        d(w,u) < d_{level(w)+1}(u)."""
        k, scheme = compiled_k
        h = scheme.hierarchy
        for u in range(0, scheme.n, 17):
            for w in range(0, scheme.n, 13):
                i = int(h.level_of[w])
                in_cluster = (
                    dist_small[w, u] < h.dist[i + 1, u] or u == w
                )
                assert (w in scheme.tables[u].trees) == in_cluster

    def test_labels_reference_existing_trees(self, compiled_k):
        k, scheme = compiled_k
        for v in range(scheme.n):
            for i in range(1, k):
                e = scheme.labels[v].entry(i)
                assert e.pivot in scheme.tree_sizes
                # v's tree label must be the one stored in that tree.
                assert scheme.tree_labels[e.pivot][v] == e.tree_label

    def test_bunch_and_cluster_sizes_reported(self, compiled_k):
        k, scheme = compiled_k
        total_bunches = sum(scheme.bunch_size(u) for u in range(scheme.n))
        total_clusters = sum(scheme.cluster_size(w) for w in scheme.tree_sizes)
        assert total_bunches == total_clusters  # duality

    def test_commit_prefers_own_cluster(self, compiled_k):
        k, scheme = compiled_k
        found = False
        for u in range(scheme.n):
            member = next(
                (v for v in scheme.tables[u].members if v != u), None
            )
            if member is not None:
                header = scheme._commit(u, RouteHeader(dest=member))
                assert header.tree == u
                found = True
                break
        assert found, "no vertex with a non-trivial cluster"

    def test_decide_rejects_foreign_tree(self, compiled_k):
        k, scheme = compiled_k
        # Forge a header naming a tree the vertex does not participate in.
        u = 0
        foreign = next(
            (w for w in scheme.tree_sizes if w not in scheme.tables[u].trees),
            None,
        )
        if foreign is None:
            pytest.skip("k=1: every vertex is in every tree")
        from repro.trees.label_codec import TreeLabel

        header = RouteHeader(dest=1, tree=foreign, tree_label=TreeLabel(0, ()))
        with pytest.raises(RoutingError):
            scheme.decide(u, header)

    def test_disconnected_rejected(self):
        g = Graph(4, [(0, 1), (2, 3)])
        with pytest.raises(PreprocessingError):
            build_tz_scheme(g, k=2)


class TestLabelCodec:
    def test_round_trip_all_vertices(self, compiled_k):
        k, scheme = compiled_k
        if k == 1:
            pytest.skip("k=1 labels have no entries")
        for v in range(0, scheme.n, 7):
            label = scheme.labels[v]
            enc = encode_label(label, scheme.n, scheme.tree_sizes)
            back = decode_label(
                BitReader(enc), scheme.n, k, scheme.tree_sizes
            )
            assert back == label
            assert enc.n_bits == label_size_bits(
                label, scheme.n, scheme.tree_sizes
            )

    def test_label_bits_accounting_matches(self, compiled_k):
        k, scheme = compiled_k
        for v in range(0, scheme.n, 11):
            assert scheme.label_bits(v) == label_size_bits(
                scheme.labels[v], scheme.n, scheme.tree_sizes
            )

    def test_repeated_pivots_deduplicated(self, compiled_k):
        """When p_i(v) == p_{i+1}(v) the label pays 1 flag bit, not a
        full entry."""
        k, scheme = compiled_k
        if k < 3:
            pytest.skip("needs at least two label entries")
        for v in range(scheme.n):
            label = scheme.labels[v]
            ents = label.entries
            repeats = sum(
                1 for a, b in zip(ents, ents[1:]) if a.pivot == b.pivot
            )
            if repeats:
                full = label_size_bits(label, scheme.n, scheme.tree_sizes)
                # Rebuild without dedup for comparison.
                no_dedup = scheme._id_bits()
                from repro.trees.label_codec import tree_label_bits

                for e in ents:
                    no_dedup += 1 + scheme._id_bits() + tree_label_bits(
                        e.tree_label, scheme.tree_sizes[e.pivot]
                    )
                assert full < no_dedup
                return
        pytest.skip("no repeated pivots in this instance")


class TestSpaceScaling:
    def test_larger_k_means_smaller_tables(self, small_weighted_graph):
        """The tradeoff direction on a fixed graph (expectation; averaged
        over the whole graph it is extremely reliable)."""
        pg = assign_ports(small_weighted_graph, "sorted")
        avg_entries = {}
        for k in (1, 2, 3):
            scheme = build_tz_scheme(small_weighted_graph, pg, k=k, rng=5)
            avg_entries[k] = np.mean(
                [
                    len(scheme.tables[u].trees) + len(scheme.tables[u].members)
                    for u in range(scheme.n)
                ]
            )
        assert avg_entries[1] > avg_entries[2] > avg_entries[3] * 0.8

    def test_k1_tables_are_linear(self, small_weighted_graph):
        pg = assign_ports(small_weighted_graph, "sorted")
        scheme = build_tz_scheme(small_weighted_graph, pg, k=1, rng=5)
        for u in range(scheme.n):
            assert len(scheme.tables[u].trees) == scheme.n
            assert len(scheme.tables[u].members) == scheme.n
