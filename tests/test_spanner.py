"""(2k−1)-spanners: subgraph validity, stretch bound, size scaling."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PreprocessingError
from repro.graphs import generators as gen
from repro.graphs.graph import Graph
from repro.graphs.shortest_paths import all_pairs_shortest_paths
from repro.oracles.spanner import build_spanner, spanner_size_bound


@pytest.fixture(scope="module", params=[2, 3])
def spanner_setup(request, small_weighted_graph, dist_small):
    k = request.param
    spanner = build_spanner(small_weighted_graph, k, rng=800 + k)
    return k, spanner, dist_small


class TestSpannerProperties:
    def test_is_subgraph_with_original_weights(
        self, spanner_setup, small_weighted_graph
    ):
        k, spanner, D = spanner_setup
        g = small_weighted_graph
        assert spanner.n == g.n
        for eid in range(spanner.m):
            a, b = int(spanner.edges[eid, 0]), int(spanner.edges[eid, 1])
            assert g.has_edge(a, b)
            assert g.edge_weight(a, b) == spanner.edge_weights[eid]

    def test_connected(self, spanner_setup):
        k, spanner, D = spanner_setup
        assert spanner.is_connected()

    def test_stretch_bound_all_pairs(self, spanner_setup):
        k, spanner, D = spanner_setup
        Ds = all_pairs_shortest_paths(spanner)
        bound = 2 * k - 1
        mask = D > 0
        assert np.all(Ds[mask] <= bound * D[mask] + 1e-9)

    def test_never_shorter_than_original(self, spanner_setup):
        k, spanner, D = spanner_setup
        Ds = all_pairs_shortest_paths(spanner)
        assert np.all(Ds >= D - 1e-9)

    def test_sparser_than_original_for_k2(self, small_weighted_graph):
        spanner = build_spanner(small_weighted_graph, 2, rng=3)
        assert spanner.m <= small_weighted_graph.m

    def test_size_within_reference(self, spanner_setup, small_weighted_graph):
        k, spanner, D = spanner_setup
        assert spanner.m <= 4 * spanner_size_bound(small_weighted_graph.n, k)

    def test_k1_contains_all_spt_unions(self, small_weighted_graph):
        """k=1: every vertex's full SPT joins H — distances exact."""
        spanner = build_spanner(small_weighted_graph, 1, rng=4)
        D = all_pairs_shortest_paths(small_weighted_graph)
        Ds = all_pairs_shortest_paths(spanner)
        assert np.allclose(D, Ds)

    def test_disconnected_rejected(self):
        with pytest.raises(PreprocessingError):
            build_spanner(Graph(4, [(0, 1), (2, 3)]), 2)

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=8, deadline=None)
    def test_property_random_graphs(self, seed):
        g = gen.gnp(35, 0.18, rng=seed, weights=(1, 5))
        spanner = build_spanner(g, 2, rng=seed)
        D = all_pairs_shortest_paths(g)
        Ds = all_pairs_shortest_paths(spanner)
        mask = D > 0
        assert np.all(Ds[mask] <= 3 * D[mask] + 1e-9)

    def test_grid_unit_weights(self, grid_graph):
        spanner = build_spanner(grid_graph, 2, rng=6)
        D = all_pairs_shortest_paths(grid_graph)
        Ds = all_pairs_shortest_paths(spanner)
        mask = D > 0
        assert np.all(Ds[mask] <= 3 * D[mask] + 1e-9)

    def test_larger_k_sparser(self, ba_graph):
        sizes = {}
        for k in (1, 2, 3):
            sizes[k] = build_spanner(ba_graph, k, rng=7).m
        assert sizes[1] >= sizes[2] >= sizes[3] * 0.9
