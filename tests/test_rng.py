"""Determinism guarantees of the randomness helpers."""

from __future__ import annotations

import numpy as np

from repro.rng import DEFAULT_SEED, all_pairs, derive, make_rng, sample_pairs, spawn


class TestMakeRng:
    def test_none_uses_default_seed(self):
        a = make_rng(None).integers(0, 10**9)
        b = make_rng(DEFAULT_SEED).integers(0, 10**9)
        assert a == b

    def test_int_seed_deterministic(self):
        assert make_rng(42).integers(0, 10**9) == make_rng(42).integers(0, 10**9)

    def test_generator_passthrough(self):
        g = make_rng(7)
        assert make_rng(g) is g


class TestDerive:
    def test_same_tags_same_stream(self):
        a = derive(1, "exp", "x", 5).integers(0, 10**9)
        b = derive(1, "exp", "x", 5).integers(0, 10**9)
        assert a == b

    def test_different_tags_differ(self):
        a = derive(1, "exp", "x").integers(0, 10**9)
        b = derive(1, "exp", "y").integers(0, 10**9)
        assert a != b

    def test_order_independent_of_other_calls(self):
        first = derive(9, "a").integers(0, 10**9)
        derive(9, "b").integers(0, 10**9)  # unrelated stream consumed
        again = derive(9, "a").integers(0, 10**9)
        assert first == again

    def test_int_and_str_tags_mix(self):
        assert derive(0, "k", 3) is not None


class TestSpawn:
    def test_children_differ(self):
        parent = make_rng(5)
        kids = spawn(parent, 3)
        vals = [k.integers(0, 10**9) for k in kids]
        assert len(set(vals)) == 3

    def test_spawn_advances_parent_deterministically(self):
        a_kids = spawn(make_rng(5), 2)
        b_kids = spawn(make_rng(5), 2)
        for x, y in zip(a_kids, b_kids):
            assert x.integers(0, 10**9) == y.integers(0, 10**9)

    def test_children_pinned(self):
        """Child streams are pinned: spawn must stay SeedSequence-based
        (provably independent, full seed space) and reproducible."""
        kids = spawn(make_rng(5), 3)
        assert [int(k.integers(0, 2**32)) for k in kids] == [
            946400021,
            2312582142,
            3453382619,
        ]

    def test_repeated_spawns_yield_fresh_children(self):
        parent = make_rng(5)
        first = spawn(parent, 2)
        second = spawn(parent, 2)
        vals = [int(k.integers(0, 2**32)) for k in first + second]
        assert len(set(vals)) == 4

    def test_spawn_leaves_parent_stream_untouched(self):
        """SeedSequence spawning must not consume the parent's output
        stream — existing consumers' draws cannot shift."""
        parent = make_rng(5)
        spawn(parent, 3)
        assert int(parent.integers(0, 2**32)) == int(
            make_rng(5).integers(0, 2**32)
        )

    def test_children_match_seed_sequence_spawn(self):
        """spawn() == the SeedSequence spawn tree, by construction."""
        expect = [
            np.random.Generator(np.random.PCG64(child))
            for child in np.random.SeedSequence(5).spawn(2)
        ]
        got = spawn(make_rng(5), 2)
        for x, y in zip(expect, got):
            assert x.integers(0, 2**63) == y.integers(0, 2**63)


class TestPairHelpers:
    def test_sample_pairs_shape_and_range(self):
        pairs = sample_pairs(make_rng(1), 20, 100)
        assert pairs.shape == (100, 2)
        assert pairs.min() >= 0 and pairs.max() < 20

    def test_all_pairs_unlimited_exact(self):
        pairs = all_pairs(4)
        assert pairs.shape == (12, 2)
        assert np.all(pairs[:, 0] != pairs[:, 1])

    def test_all_pairs_limit_no_duplicates(self):
        pairs = all_pairs(10, limit=30, rng=2)
        seen = {(int(a), int(b)) for a, b in pairs}
        assert len(seen) == 30
