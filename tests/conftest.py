"""Shared fixtures: small deterministic graphs used across the suite."""

from __future__ import annotations

import pytest

from repro.graphs import generators as gen
from repro.graphs.graph import Graph
from repro.graphs.ports import assign_ports
from repro.graphs.shortest_paths import all_pairs_shortest_paths


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite the golden scheme fixtures under tests/golden/ "
        "instead of comparing against them",
    )


@pytest.fixture
def update_golden(request) -> bool:
    return bool(request.config.getoption("--update-golden"))


@pytest.fixture(scope="session")
def small_weighted_graph() -> Graph:
    """Connected G(n, p) with integer weights — the workhorse instance."""
    return gen.gnp(120, 0.06, rng=1234, weights=(1, 9))


@pytest.fixture(scope="session")
def small_unit_graph() -> Graph:
    """Unit weights: maximal distance ties, stresses tie-breaking."""
    return gen.gnp(120, 0.06, rng=99)


@pytest.fixture(scope="session")
def grid_graph() -> Graph:
    return gen.grid2d(9, 9)


@pytest.fixture(scope="session")
def ba_graph() -> Graph:
    return gen.barabasi_albert(150, 3, rng=7, weights=(1, 5))


@pytest.fixture(scope="session")
def small_tree() -> Graph:
    return gen.random_tree(80, rng=5)


@pytest.fixture(scope="session")
def ported_small(small_weighted_graph):
    return assign_ports(small_weighted_graph, "random", rng=17)


@pytest.fixture(scope="session")
def dist_small(small_weighted_graph):
    return all_pairs_shortest_paths(small_weighted_graph)


@pytest.fixture(scope="session")
def path_graph() -> Graph:
    return gen.path_tree(40)


@pytest.fixture(scope="session")
def diamond_graph() -> Graph:
    """4-cycle plus a chord: tiny graph with multiple shortest paths."""
    return Graph(4, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)])
