"""The serving daemon: protocol, scheme LRU, backpressure, hot reload.

The load-bearing contracts:

* the wire codec round-trips ``BatchResult`` **bit for bit** (float64
  weights survive JSON because Python serializes the shortest
  round-tripping repr);
* the scheme LRU never exceeds its capacity, evicts in LRU order, and
  an evicted tenant re-mmapped on its next hit answers bit-identically;
* the daemon sheds overload with explicit ``backpressure`` errors and
  stays responsive to pings while doing so;
* a graceful shutdown drains every admitted batch;
* the subprocess soak test: ``publish_patch`` repoints the lineage
  while clients stream batches — every response matches exactly one
  version's reference answers, never a blend.
"""

from __future__ import annotations

import os
import signal
import socket
import struct
import subprocess
import sys
import threading
import time

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.build import build_arrays, patch_arrays
from repro.errors import ProtocolError
from repro.graphs.delta import GraphDelta
from repro.graphs.ports import assign_ports
from repro.serve import (
    DaemonClient,
    RouteDaemon,
    SchemeLRU,
    encode_frame,
    result_from_wire,
    result_to_wire,
    run_daemon,
    run_loadgen,
    zipf_traffic,
    zipf_weights,
)
from repro.serve.protocol import ERROR_CODES, decode_payload, error_response
from repro.sim.engine.batch import BatchResult, BatchRouter
from repro.sim.engine.compile import compile_from_arrays
from repro.store import RouteService, SchemeStore

from strategies import family_from_seed

RESULT_COLS = (
    "source", "dest", "delivered", "weight", "hops", "tree",
    "max_header_bits", "failure_code",
)


def assert_results_identical(a: BatchResult, b: BatchResult) -> None:
    for col in RESULT_COLS:
        x, y = getattr(a, col), getattr(b, col)
        assert x.dtype == y.dtype, col
        assert np.array_equal(x, y), col


def publish_scheme(tmp_path, seed=0, family="gnp", k=2):
    """Build + publish one scheme lineage; returns (store, key, graph,
    ported, arrays)."""
    store = SchemeStore(tmp_path)
    graph = family_from_seed(seed, family)
    ported = assign_ports(graph, "sorted")
    arrays = build_arrays(graph, k, ported=ported, rng=seed)
    key = store.publish(graph, ported, arrays, seed=seed)
    return store, key, graph, ported, arrays


class running_daemon:
    """Context manager: run a RouteDaemon in a background thread."""

    def __init__(self, store_dir, **config):
        self.store_dir = store_dir
        self.config = config
        self.daemon = None
        self.stats = None

    def __enter__(self):
        ready = threading.Event()

        def on_ready(d):
            self.daemon = d
            ready.set()

        def main():
            self.stats = run_daemon(
                self.store_dir, on_ready=on_ready, **self.config
            )

        self.thread = threading.Thread(target=main, daemon=True)
        self.thread.start()
        assert ready.wait(30), "daemon never became ready"
        return self

    @property
    def address(self):
        return self.daemon.address

    def client(self, **kw) -> DaemonClient:
        host, port = self.address
        return DaemonClient(host, port, **kw)

    def __exit__(self, *exc):
        if self.thread.is_alive():
            try:
                with self.client(timeout=5.0) as c:
                    c.request({"op": "shutdown"})
            except OSError:
                pass
        self.thread.join(30)
        assert not self.thread.is_alive(), "daemon failed to drain"


# ---------------------------------------------------------------------------
# protocol
# ---------------------------------------------------------------------------
class TestProtocol:
    def test_frame_roundtrip(self):
        obj = {"op": "route", "pairs": [[0, 1]], "id": "x", "ttl": None}
        frame = encode_frame(obj)
        (length,) = struct.unpack(">I", frame[:4])
        assert length == len(frame) - 4
        assert decode_payload(frame[4:]) == obj

    def test_decode_rejects_garbage_and_non_objects(self):
        with pytest.raises(ProtocolError):
            decode_payload(b"not json!")
        with pytest.raises(ProtocolError):
            decode_payload(b"[1, 2, 3]")
        with pytest.raises(ProtocolError):
            decode_payload(b"\xff\xfe")

    def test_error_response_shape(self):
        for code in ERROR_CODES:
            resp = error_response(code, "why")
            assert resp == {"ok": False, "error": code, "message": "why"}

    @given(
        n=st.integers(min_value=2, max_value=50),
        m=st.integers(min_value=0, max_value=40),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_result_codec_bit_identity(self, n, m, seed):
        """Arbitrary result columns survive the wire bit for bit —
        including float64 weights that are not short decimals."""
        rng = np.random.default_rng(seed)
        result = BatchResult(
            source=rng.integers(0, n, m).astype(np.int64),
            dest=rng.integers(0, n, m).astype(np.int64),
            delivered=rng.random(m) < 0.9,
            weight=rng.random(m) * rng.integers(1, 1000, m),
            hops=rng.integers(0, 30, m).astype(np.int64),
            tree=rng.integers(-1, n, m).astype(np.int64),
            max_header_bits=rng.integers(0, 200, m).astype(np.int64),
            failure_code=rng.integers(0, 4, m).astype(np.int8),
        )
        wire = result_to_wire(result)
        decoded = result_from_wire(decode_payload(encode_frame(wire)[4:]))
        assert_results_identical(result, decoded)

    def test_result_from_wire_rejects_malformed(self):
        with pytest.raises(ProtocolError):
            result_from_wire({"source": [0]})  # columns missing
        wire = result_to_wire(
            BatchResult(**{
                c: np.zeros(1, dtype=d)
                for c, d in zip(RESULT_COLS, (
                    np.int64, np.int64, np.bool_, np.float64,
                    np.int64, np.int64, np.int64, np.int8,
                ))
            })
        )
        wire["weight"] = ["NaN-ish garbage"]
        with pytest.raises(ProtocolError):
            result_from_wire(wire)


# ---------------------------------------------------------------------------
# scheme LRU
# ---------------------------------------------------------------------------
class _Closeable:
    def __init__(self, key):
        self.key = key
        self.closed = False

    def close(self):
        self.closed = True


class TestSchemeLRU:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            SchemeLRU(0)

    def test_opener_failure_leaves_cache_unchanged(self):
        lru = SchemeLRU(2)
        lru.get("a", lambda: _Closeable("a"))

        def boom():
            raise OSError("mmap failed")

        with pytest.raises(OSError):
            lru.get("b", boom)
        assert lru.keys() == ["a"] and len(lru) == 1

    @given(
        capacity=st.integers(min_value=1, max_value=5),
        accesses=st.lists(
            st.integers(min_value=0, max_value=9), min_size=1, max_size=60
        ),
    )
    @settings(max_examples=80, deadline=None)
    def test_capacity_bound_and_lru_order(self, capacity, accesses):
        """Model check: for any access sequence the cache (a) never
        exceeds capacity, (b) holds exactly the most-recently-used
        distinct keys, LRU-first, (c) closes exactly the evicted
        entries."""
        lru = SchemeLRU(capacity)
        opened = {}
        recency = []  # most recent last, distinct keys

        for a in accesses:
            key = f"k{a}"
            entry = lru.get(key, lambda k=key: opened.setdefault(
                k, []
            ).append(_Closeable(k)) or opened[k][-1])
            assert entry.key == key
            if key in recency:
                recency.remove(key)
            recency.append(key)
            assert len(lru) <= capacity
            expect = recency[-capacity:]
            assert lru.keys() == expect
            # the live entry for each cached key is its newest opening
            for k in expect:
                assert not opened[k][-1].closed
        # every opening not currently cached has been closed
        cached = set(lru.keys())
        for k, instances in opened.items():
            for inst in instances[:-1]:
                assert inst.closed
            if k not in cached:
                assert instances[-1].closed
        stats = lru.stats()
        assert stats["size"] == len(lru) <= stats["capacity"] == capacity
        assert stats["hits"] + stats["misses"] == len(accesses)
        assert stats["misses"] == sum(len(v) for v in opened.values())

    def test_explicit_evict_and_clear(self):
        lru = SchemeLRU(3)
        entries = [lru.get(k, lambda k=k: _Closeable(k)) for k in "abc"]
        assert lru.evict("b") and not lru.evict("b")
        assert entries[1].closed and not entries[0].closed
        lru.clear()
        assert len(lru) == 0 and all(e.closed for e in entries)
        assert lru.evictions == 3

    def test_evict_then_remmap_is_bit_identical(self, tmp_path):
        """The correctness half of eviction: a tenant dropped from the
        cache and re-opened on its next hit answers bit-identically."""
        store, key, graph, ported, arrays = publish_scheme(tmp_path, seed=11)
        path = str(store.pointer_path(key))
        lru = SchemeLRU(1)
        rng = np.random.default_rng(3)
        pairs = rng.integers(0, graph.n, size=(64, 2)).astype(np.int64)

        service = lru.get(path, lambda: RouteService(path))
        before = service.route(pairs)
        lru.get("other-tenant", lambda: _Closeable("other"))  # evicts
        assert path not in lru
        reopened = lru.get(path, lambda: RouteService(path))
        assert reopened is not service
        assert_results_identical(before, reopened.route(pairs))
        assert lru.stats()["evictions"] >= 1


# ---------------------------------------------------------------------------
# zipf traffic
# ---------------------------------------------------------------------------
class TestZipfTraffic:
    def test_weights_normalized_and_skewed(self):
        w = zipf_weights(100, 1.2)
        assert w.shape == (100,) and np.isclose(w.sum(), 1.0)
        assert np.all(np.diff(w) < 0)  # strictly rank-decreasing
        flat = zipf_weights(50, 0.0)
        assert np.allclose(flat, 1.0 / 50)
        with pytest.raises(ValueError):
            zipf_weights(0, 1.2)

    def test_traffic_shape_determinism_and_bounds(self):
        a = zipf_traffic(40, users=5, requests=6, batch=16, rng=9)
        b = zipf_traffic(40, users=5, requests=6, batch=16, rng=9)
        assert len(a) == 6
        for ma, mb in zip(a, b):
            assert np.array_equal(ma, mb)
            assert ma.shape == (16, 2) and ma.dtype == np.int64
            assert np.all(ma[:, 0] != ma[:, 1])
            assert ma.min() >= 0 and ma.max() < 40
        # sources are confined to the 5 user vertices
        srcs = np.unique(np.concatenate([m[:, 0] for m in a]))
        assert srcs.size <= 5
        with pytest.raises(ValueError):
            zipf_traffic(1, users=1, requests=1, batch=1)


# ---------------------------------------------------------------------------
# daemon, in process
# ---------------------------------------------------------------------------
class TestDaemon:
    def test_route_bit_identical_to_direct_router(self, tmp_path):
        store, key, graph, ported, arrays = publish_scheme(tmp_path, seed=21)
        ref_router = BatchRouter.from_compiled(
            compile_from_arrays(arrays, ported)
        )
        rng = np.random.default_rng(1)
        pairs = rng.integers(0, graph.n, size=(48, 2)).astype(np.int64)
        ref = ref_router.route_pairs(pairs)

        with running_daemon(tmp_path, default_scheme=key) as rd:
            with rd.client() as c:
                pong = c.request({"op": "ping"})
                assert pong["ok"] and pong["pid"] == os.getpid()
                desc = c.request({"op": "describe"})
                assert desc["ok"] and desc["n"] == graph.n and desc["k"] == 2
                resp = c.request(
                    {"op": "route", "pairs": pairs.tolist(), "id": 7}
                )
                assert resp["ok"] and resp["id"] == 7
                assert resp["version"] == 0 and resp["key"] == key
                assert_results_identical(ref, result_from_wire(resp["result"]))
                stats = c.request({"op": "stats"})
                assert stats["stats"]["routed_pairs"] == 48
        assert rd.stats["requests"] == 1

    def test_multi_tenant_lru_eviction_and_reopen(self, tmp_path):
        """Two tenants through a capacity-1 LRU: alternating requests
        force evict → re-mmap every time, answers stay correct."""
        store, key_a, graph_a, ported_a, arrays_a = publish_scheme(
            tmp_path, seed=31, family="gnp"
        )
        graph_b = family_from_seed(32, "grid")
        ported_b = assign_ports(graph_b, "sorted")
        arrays_b = build_arrays(graph_b, 2, ported=ported_b, rng=32)
        key_b = store.publish(graph_b, ported_b, arrays_b, seed=32)

        rng = np.random.default_rng(2)
        pairs_a = rng.integers(0, graph_a.n, size=(16, 2)).astype(np.int64)
        pairs_b = rng.integers(0, graph_b.n, size=(16, 2)).astype(np.int64)
        ref_a = BatchRouter.from_compiled(
            compile_from_arrays(arrays_a, ported_a)
        ).route_pairs(pairs_a)
        ref_b = BatchRouter.from_compiled(
            compile_from_arrays(arrays_b, ported_b)
        ).route_pairs(pairs_b)

        with running_daemon(tmp_path, lru_capacity=1) as rd:
            with rd.client() as c:
                for _ in range(3):
                    ra = c.request(
                        {"op": "route", "scheme": key_a,
                         "pairs": pairs_a.tolist()}
                    )
                    rb = c.request(
                        {"op": "route", "scheme": key_b,
                         "pairs": pairs_b.tolist()}
                    )
                    assert ra["ok"] and rb["ok"]
                    assert_results_identical(
                        ref_a, result_from_wire(ra["result"])
                    )
                    assert_results_identical(
                        ref_b, result_from_wire(rb["result"])
                    )
                stats = c.request({"op": "stats"})
            assert stats["lru"]["size"] == 1
            assert stats["lru"]["evictions"] >= 5

    def test_error_paths(self, tmp_path):
        store, key, graph, *_ = publish_scheme(tmp_path, seed=41)
        with running_daemon(tmp_path) as rd:
            with rd.client() as c:
                assert c.request({"op": "fly"})["error"] == "unknown-op"
                assert (
                    c.request({"op": "describe", "scheme": "nope"})["error"]
                    == "unknown-scheme"
                )
                # no scheme named and no default configured
                resp = c.request({"op": "route", "pairs": [[0, 1]]})
                assert resp["error"] == "unknown-scheme"
                for bad in (
                    {"op": "route", "scheme": key},
                    {"op": "route", "scheme": key, "pairs": [[0, 1, 2]]},
                    {"op": "route", "scheme": key, "pairs": "zzz"},
                    {"op": "route", "scheme": key,
                     "pairs": [[0, graph.n + 5]]},
                ):
                    resp = c.request(bad)
                    assert not resp["ok"]
                    assert resp["error"] == "bad-request", bad
                # the connection survived every error
                assert c.request({"op": "ping"})["ok"]

    def test_backpressure_sheds_and_stays_responsive(self, tmp_path):
        store, key, graph, *_ = publish_scheme(tmp_path, seed=51)
        release = threading.Event()
        started = threading.Event()

        def slow_route(service, pairs, ttl):
            started.set()
            release.wait(30)
            return RouteDaemon._route_sync(service, pairs, ttl)

        with running_daemon(
            tmp_path, default_scheme=key, queue_limit=2
        ) as rd:
            rd.daemon._route_sync = slow_route
            host, port = rd.address
            # one in-flight + two queued fill the daemon; the rest shed
            clients = [DaemonClient(host, port) for _ in range(6)]
            try:
                clients[0].send_raw(encode_frame(
                    {"op": "route", "pairs": [[0, 1]], "id": 0}
                ))
                assert started.wait(20)  # request 0 is now in flight
                for i, c in enumerate(clients[1:], start=1):
                    c.send_raw(encode_frame(
                        {"op": "route", "pairs": [[0, 1]], "id": i}
                    ))
                with rd.client() as probe:
                    deadline = time.monotonic() + 20
                    while time.monotonic() < deadline:
                        stats = probe.request({"op": "stats"})["stats"]
                        if stats["shed"] >= 3:
                            break
                        time.sleep(0.05)
                    assert stats["shed"] >= 3
                    assert probe.request({"op": "ping"})["ok"]
                release.set()
                outcomes = {"ok": 0, "backpressure": 0}
                for c in clients:
                    resp = c.read_response()
                    if resp["ok"]:
                        outcomes["ok"] += 1
                    else:
                        assert resp["error"] == "backpressure"
                        assert resp["queue_depth"] >= 0
                        outcomes["backpressure"] += 1
                assert outcomes["ok"] == 3  # 1 in flight + queue_limit
                assert outcomes["backpressure"] == 3
            finally:
                release.set()
                for c in clients:
                    c.close()

    def test_request_timeout(self, tmp_path):
        store, key, graph, *_ = publish_scheme(tmp_path, seed=61)

        def stuck_route(service, pairs, ttl):
            time.sleep(2.0)
            return RouteDaemon._route_sync(service, pairs, ttl)

        with running_daemon(
            tmp_path, default_scheme=key, timeout=0.2
        ) as rd:
            rd.daemon._route_sync = stuck_route
            with rd.client() as c:
                resp = c.request({"op": "route", "pairs": [[0, 1]]})
                assert not resp["ok"] and resp["error"] == "timeout"
            assert rd.daemon.stats["timeouts"] == 1

    def test_graceful_shutdown_drains_queued_requests(self, tmp_path):
        """Requests admitted before the shutdown op are all answered."""
        store, key, graph, *_ = publish_scheme(tmp_path, seed=71)
        gate = threading.Event()
        started = threading.Event()

        def gated_route(service, pairs, ttl):
            started.set()
            gate.wait(30)
            return RouteDaemon._route_sync(service, pairs, ttl)

        with running_daemon(tmp_path, default_scheme=key) as rd:
            rd.daemon._route_sync = gated_route
            host, port = rd.address
            workers = [DaemonClient(host, port) for _ in range(3)]
            try:
                for i, c in enumerate(workers):
                    c.send_raw(encode_frame(
                        {"op": "route", "pairs": [[0, 1]], "id": i}
                    ))
                # all three admitted: one in flight, two queued
                deadline = time.monotonic() + 20
                while time.monotonic() < deadline and not (
                    started.is_set() and rd.daemon._queue.qsize() == 2
                ):
                    time.sleep(0.01)
                assert started.is_set() and rd.daemon._queue.qsize() == 2
                with rd.client() as c:
                    assert c.request({"op": "shutdown"})["ok"]
                gate.set()
                answered = sorted(c.read_response()["id"] for c in workers)
                assert answered == [0, 1, 2]
            finally:
                gate.set()
                for c in workers:
                    c.close()
        assert rd.stats["requests"] == 3

    def test_draining_daemon_rejects_new_routes(self, tmp_path):
        store, key, graph, *_ = publish_scheme(tmp_path, seed=81)
        with running_daemon(tmp_path, default_scheme=key) as rd:
            rd.daemon._draining = True
            with rd.client() as c:
                resp = c.request({"op": "route", "pairs": [[0, 1]]})
                assert resp["error"] == "shutting-down"
            rd.daemon._draining = False


# ---------------------------------------------------------------------------
# protocol fuzz against a live daemon
# ---------------------------------------------------------------------------
class TestProtocolFuzz:
    @pytest.fixture()
    def live(self, tmp_path):
        publish_scheme(tmp_path, seed=91)
        with running_daemon(tmp_path) as rd:
            yield rd

    def test_garbage_json_answers_and_survives(self, live):
        with live.client() as c:
            c.send_raw(struct.pack(">I", 9) + b"not json!")
            resp = c.read_response()
            assert resp["error"] == "bad-frame"
            assert c.request({"op": "ping"})["ok"]  # stream still in sync

    def test_non_object_payload_answers_and_survives(self, live):
        with live.client() as c:
            c.send_raw(struct.pack(">I", 7) + b"[1,2,3]")
            assert c.read_response()["error"] == "bad-frame"
            assert c.request({"op": "ping"})["ok"]

    def test_oversized_length_answers_then_closes(self, live):
        with live.client() as c:
            c.send_raw(struct.pack(">I", 2**31))
            resp = c.read_response()
            assert resp["error"] == "bad-frame"
            # stream is desynced: the daemon must hang up on us
            assert c.read_response() is None

    def test_truncated_frame_then_hangup_is_harmless(self, live):
        with live.client() as c:
            c.send_raw(struct.pack(">I", 100) + b"only a few bytes")
        # daemon just drops the connection; it still serves others
        with live.client() as c:
            assert c.request({"op": "ping"})["ok"]

    def test_partial_length_prefix_hangup_is_harmless(self, live):
        with live.client() as c:
            c.send_raw(b"\x00\x00")
        with live.client() as c:
            assert c.request({"op": "ping"})["ok"]

    @given(data=st.binary(min_size=0, max_size=64))
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_random_bytes_never_kill_the_daemon(self, live, data):
        with live.client() as c:
            try:
                c.send_raw(data)
                c.sock.settimeout(0.2)
                try:
                    c.read_response()
                except (ProtocolError, socket.timeout, OSError):
                    pass
            except OSError:
                pass
        with live.client() as c:
            assert c.request({"op": "ping"})["ok"]


# ---------------------------------------------------------------------------
# loadgen
# ---------------------------------------------------------------------------
class TestLoadgen:
    def test_report_against_live_daemon(self, tmp_path):
        store, key, graph, ported, arrays = publish_scheme(tmp_path, seed=101)
        with running_daemon(tmp_path, default_scheme=key, workers=2) as rd:
            host, port = rd.address
            report = run_loadgen(
                host, port, users=10, connections=2, requests=10,
                batch=32, seed=5,
            )
        doc = report.to_dict()
        assert doc["kind"] == "tz-loadgen-report"
        assert report.errors == 0
        assert report.total_pairs == 10 * 32
        assert doc["versions_seen"] == [0]
        assert report.pairs_per_second > 0
        assert 0 <= report.p50 <= report.p99
        assert doc["delivery_rate"] is not None

    def test_loadgen_counts_errors_not_raises(self, tmp_path):
        publish_scheme(tmp_path, seed=103)
        with running_daemon(tmp_path) as rd:  # no default scheme
            host, port = rd.address
            with pytest.raises(ProtocolError):
                run_loadgen(host, port, requests=2)  # describe fails


# ---------------------------------------------------------------------------
# the serving soak test: hot reload under live traffic, over the wire
# ---------------------------------------------------------------------------
class TestServingSoak:
    def _publish_v1(self, store, root, graph, ported, arrays, seed):
        """Patch several weights and publish v1 on the same lineage."""
        updates = tuple(
            (int(u), int(v), float(graph.edge_weights[eid] + 5.0))
            for eid, (u, v) in enumerate(graph.edges[:8])
        )
        delta = GraphDelta(weight_updates=updates)
        patched = patch_arrays(arrays, graph, delta, ported=ported)
        store.publish_patch(
            root, patched.graph, patched.ported, patched.arrays,
            delta=delta, seed=seed,
        )
        return patched

    def test_subprocess_soak_lineage_swap_mid_load(self, tmp_path):
        """The acceptance scenario end to end: a real ``repro serve
        --daemon`` subprocess, clients streaming batches over TCP, a
        ``publish_patch`` repointing the lineage mid-load.  Every
        response must be bit-identical to one single-version reference
        (old or new), the swap must land, and SIGTERM must drain to a
        clean exit."""
        store, root, graph, ported, arrays = publish_scheme(
            tmp_path, seed=4, family="gnp"
        )
        rng = np.random.default_rng(0)
        pairs = rng.integers(0, graph.n, size=(64, 2)).astype(np.int64)
        ref0 = BatchRouter.from_compiled(
            compile_from_arrays(arrays, ported)
        ).route_pairs(pairs)
        updates = tuple(
            (int(u), int(v), float(graph.edge_weights[eid] + 5.0))
            for eid, (u, v) in enumerate(graph.edges[:8])
        )
        delta = GraphDelta(weight_updates=updates)
        patched = patch_arrays(arrays, graph, delta, ported=ported)
        ref1 = BatchRouter.from_compiled(
            compile_from_arrays(patched.arrays, patched.ported)
        ).route_pairs(pairs)
        assert not np.array_equal(ref0.weight, ref1.weight)

        port_file = tmp_path / "port"
        env = dict(os.environ, PYTHONPATH="src")
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve", "--daemon",
                "--store", str(tmp_path), "--scheme", root,
                "--port", "0", "--port-file", str(port_file),
            ],
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            deadline = time.monotonic() + 60
            while not port_file.exists() and time.monotonic() < deadline:
                assert proc.poll() is None, proc.stdout.read()
                time.sleep(0.05)
            assert port_file.exists(), "daemon never wrote its port file"
            port = int(port_file.read_text())

            batches = {"old": 0, "new": 0}
            published = threading.Event()

            def publisher():
                # let some traffic land on v0 first
                while batches["old"] < 3:
                    time.sleep(0.01)
                store.publish_patch(
                    root, patched.graph, patched.ported, patched.arrays,
                    delta=delta, seed=4,
                )
                published.set()

            pub = threading.Thread(target=publisher)
            pub.start()
            with DaemonClient("127.0.0.1", port) as c:
                for _ in range(400):
                    resp = c.request(
                        {"op": "route", "pairs": pairs.tolist()}
                    )
                    assert resp["ok"], resp
                    got = result_from_wire(resp["result"])
                    is_old = np.array_equal(got.weight, ref0.weight)
                    is_new = np.array_equal(got.weight, ref1.weight)
                    assert is_old != is_new, "batch mixed scheme versions"
                    if is_old:
                        assert resp["version"] == 0
                        batches["old"] += 1
                    else:
                        assert resp["version"] == 1
                        batches["new"] += 1
                        if batches["new"] >= 3:
                            break
                pub.join(30)
                # once published, the very next batch serves v1 exactly
                resp = c.request({"op": "route", "pairs": pairs.tolist()})
                assert resp["version"] == 1
                assert_results_identical(ref1, result_from_wire(resp["result"]))
            assert batches["old"] >= 3 and batches["new"] >= 3

            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=60)
            assert proc.returncode == 0, out
            assert "daemon drained" in out
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=30)

    def test_in_process_hot_reload_over_the_wire(self, tmp_path):
        """Same invariant without the subprocess: cheaper, runs the
        daemon code in-thread so coverage sees it."""
        store, root, graph, ported, arrays = publish_scheme(
            tmp_path, seed=6, family="gnp"
        )
        rng = np.random.default_rng(1)
        pairs = rng.integers(0, graph.n, size=(32, 2)).astype(np.int64)
        ref0 = BatchRouter.from_compiled(
            compile_from_arrays(arrays, ported)
        ).route_pairs(pairs)
        patched = self._publish_v1(store, root, graph, ported, arrays, 6)
        ref1 = BatchRouter.from_compiled(
            compile_from_arrays(patched.arrays, patched.ported)
        ).route_pairs(pairs)

        with running_daemon(tmp_path, default_scheme=root) as rd:
            with rd.client() as c:
                resp = c.request({"op": "route", "pairs": pairs.tolist()})
                assert resp["version"] == 1
                assert_results_identical(
                    ref1, result_from_wire(resp["result"])
                )
        assert not np.array_equal(ref0.weight, ref1.weight)
