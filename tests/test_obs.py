"""Telemetry subsystem: spans, counters, merge semantics, exporters.

Pins the three contracts the observability layer makes:

* span trees nest correctly and survive exceptions;
* disabled mode is a strict no-op and routing results are bit-identical
  with telemetry on or off;
* worker-process metric snapshots merge exactly (counters add,
  histograms concatenate) through the sharded ``RouteService``.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.analysis.obs_report import (
    render_metrics,
    render_span_tree,
    span_rows,
    write_obs_markdown,
)
from repro.graphs import generators as gen
from repro.graphs.ports import assign_ports
from repro.obs import (
    TELEMETRY,
    Telemetry,
    metrics_doc,
    timed,
    trace_records,
    write_metrics,
    write_trace,
)
from repro.obs.telemetry import NOOP_SPAN


@pytest.fixture
def tm():
    """A fresh, enabled registry (module singleton untouched)."""
    registry = Telemetry()
    registry.enable()
    return registry


@pytest.fixture
def global_tm():
    """Enable the module singleton for one test, restoring it after."""
    TELEMETRY.reset()
    TELEMETRY.enable()
    yield TELEMETRY
    TELEMETRY.disable()
    TELEMETRY.reset()


# ---------------------------------------------------------------------------
# spans
# ---------------------------------------------------------------------------
def test_span_nesting(tm):
    with tm.span("outer", phase=1):
        with tm.span("inner.a"):
            pass
        with tm.span("inner.b"):
            pass

    assert len(tm.roots) == 1
    outer = tm.roots[0]
    assert outer.name == "outer"
    assert outer.attrs == {"phase": 1}
    assert [c.name for c in outer.children] == ["inner.a", "inner.b"]
    assert all(c._parent is outer for c in outer.children)
    # Preorder walk with depths.
    assert [(s.name, d) for s, d in tm.spans()] == [
        ("outer", 0), ("inner.a", 1), ("inner.b", 1),
    ]


def test_span_timing_and_self_time(tm):
    with tm.span("outer"):
        with tm.span("inner"):
            pass

    outer, inner = tm.roots[0], tm.roots[0].children[0]
    assert outer.end_ns >= outer.start_ns
    assert outer.duration_ns >= inner.duration_ns
    assert outer.self_ns == outer.duration_ns - inner.duration_ns
    assert inner.self_ns == inner.duration_ns
    assert outer.seconds == outer.duration_ns / 1e9


def test_span_exception_safety(tm):
    with pytest.raises(ValueError, match="boom"):
        with tm.span("outer"):
            with tm.span("failing"):
                raise ValueError("boom")

    # Both spans closed, the failing one stamped, the stack restored.
    outer = tm.roots[0]
    failing = outer.children[0]
    assert failing.end_ns >= failing.start_ns
    assert failing.attrs["error"] == "ValueError"
    assert outer.attrs["error"] == "ValueError"  # propagated through
    assert tm._active is None
    with tm.span("after"):
        pass
    assert tm.roots[1].name == "after"  # a new root, not a child


def test_disabled_mode_is_noop(tm):
    tm.disable()
    sp = tm.span("anything", level=3)
    assert sp is NOOP_SPAN
    with sp:
        tm.count("c")
        tm.gauge("g", 1.0)
        tm.observe("h", 2.0)
    assert tm.roots == []
    assert tm.counters == {}
    assert tm.gauges == {}
    assert tm.histograms == {}
    assert NOOP_SPAN.seconds == 0.0


def test_timed_span_times_even_when_disabled():
    TELEMETRY.disable()
    with timed("cli.phase") as tsp:
        sum(range(1000))
    assert tsp.seconds > 0
    assert TELEMETRY.roots == []  # no span recorded while disabled


def test_timed_span_records_when_enabled(global_tm):
    with timed("cli.phase", stage="x") as tsp:
        pass
    assert tsp.seconds >= 0
    assert [s.name for s in global_tm.roots] == ["cli.phase"]
    assert global_tm.roots[0].attrs == {"stage": "x"}


# ---------------------------------------------------------------------------
# counters / gauges / histograms / merge
# ---------------------------------------------------------------------------
def test_metrics_accumulate(tm):
    tm.count("pops")
    tm.count("pops", 41)
    tm.gauge("rate", 10.0)
    tm.gauge("rate", 20.0)
    tm.observe("lat", 0.5)
    tm.observe("lat", 1.5)
    assert tm.counters == {"pops": 42}
    assert tm.gauges == {"rate": 20.0}
    assert tm.histograms == {"lat": [0.5, 1.5]}


def test_snapshot_merge_exact(tm):
    tm.count("pairs", 10)
    tm.observe("lat", 1.0)
    worker = Telemetry()
    worker.enable()
    worker.count("pairs", 32)
    worker.count("only_worker", 5)
    worker.gauge("rate", 7.0)
    worker.observe("lat", 2.0)

    tm.merge(worker.snapshot())
    assert tm.counters == {"pairs": 42, "only_worker": 5}
    assert tm.gauges == {"rate": 7.0}
    assert tm.histograms == {"lat": [1.0, 2.0]}

    before = dict(tm.counters)
    tm.merge(None)  # a worker that did not record
    assert tm.counters == before
    tm.disable()
    tm.merge(worker.snapshot())  # merging into a disabled registry: no-op
    assert tm.counters == before


def test_reset_clears_but_keeps_enabled(tm):
    with tm.span("s"):
        tm.count("c")
    tm.reset()
    assert tm.enabled
    assert tm.roots == [] and tm.counters == {}


# ---------------------------------------------------------------------------
# routing bit-identity and instrumentation coverage
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def routed_setup():
    from repro.core.scheme_k2 import build_stretch3_scheme
    from repro.sim.engine import BatchRouter
    from repro.sim.workloads import uniform_pairs

    graph = gen.gnp(220, 0.05, rng=5, weights=(1, 6)).largest_component()
    ported = assign_ports(graph, "random", rng=6)
    scheme = build_stretch3_scheme(graph, ported, rng=7)
    router = BatchRouter(ported, scheme)
    pairs = uniform_pairs(graph, 4000, rng=8)
    return router, pairs


RESULT_COLUMNS = (
    "source", "dest", "delivered", "weight", "hops", "tree",
    "max_header_bits", "failure_code",
)


def test_disabled_vs_enabled_route_bit_identity(routed_setup):
    router, pairs = routed_setup
    TELEMETRY.disable()
    TELEMETRY.reset()
    base = router.route_pairs(pairs)
    TELEMETRY.reset()
    TELEMETRY.enable()
    try:
        instrumented = router.route_pairs(pairs)
    finally:
        TELEMETRY.disable()
    for name in RESULT_COLUMNS:
        got, want = getattr(instrumented, name), getattr(base, name)
        assert got.dtype == want.dtype, name
        assert np.array_equal(got, want), name
    TELEMETRY.reset()


def test_route_instrumentation_records(routed_setup, global_tm):
    router, pairs = routed_setup
    result = router.route_pairs(pairs)
    assert global_tm.counters["route.pairs_routed"] == pairs.shape[0]
    assert global_tm.counters["route.delivered"] == int(result.delivered.sum())
    assert global_tm.counters["route.hop_iterations"] >= 1
    names = [s.name for s, _ in global_tm.spans()]
    assert names[0] == "route.route_pairs"
    assert "route.commit" in names and "route.hop_loop" in names


def test_builder_instrumentation_records(global_tm):
    from repro.core.build import build_arrays

    graph = gen.gnp(150, 0.06, rng=9, weights=(1, 4)).largest_component()
    arrays = build_arrays(graph, k=2, rng=3)
    names = [s.name for s, _ in global_tm.spans()]
    assert names[0] == "build.arrays"
    assert "build.trees" in names and "build.assemble" in names
    assert any(n == "build.clusters" for n in names)
    assert global_tm.counters["build.cluster_entries"] == arrays.entry_count


def test_sharded_service_counters_merge(tmp_path, global_tm):
    """Worker-process counters land in the parent registry, exactly."""
    from repro.sim.workloads import uniform_pairs
    from repro.store import RouteService, SchemeStore

    graph = gen.gnp(200, 0.05, rng=11, weights=(1, 5)).largest_component()
    stored = SchemeStore(tmp_path).get_or_build(graph, k=2, seed=0)
    pairs = uniform_pairs(graph, 600, rng=12)

    global_tm.reset()
    service = RouteService(stored.path)
    sharded = service.route(pairs, shards=2)

    assert global_tm.counters["serve.requests"] == 1
    assert global_tm.counters["serve.pairs"] == pairs.shape[0]
    # The parent never routed a row itself: every pairs_routed count was
    # merged home from a worker snapshot.
    assert global_tm.counters["route.pairs_routed"] == pairs.shape[0]
    assert len(global_tm.histograms["serve.shard_seconds"]) == 2
    assert global_tm.gauges["serve.pairs_per_second"] > 0

    # And sharded still equals unsharded, telemetry on.
    single = service.route(pairs, shards=1)
    for name in RESULT_COLUMNS:
        assert np.array_equal(getattr(sharded, name), getattr(single, name))


def test_store_hit_miss_counters(tmp_path, global_tm):
    from repro.store import SchemeStore

    graph = gen.gnp(120, 0.07, rng=13, weights=(1, 4)).largest_component()
    store = SchemeStore(tmp_path)
    store.get_or_build(graph, k=2, seed=0)
    assert global_tm.counters["store.misses"] == 1
    assert "store.hits" not in global_tm.counters
    store.get_or_build(graph, k=2, seed=0)
    assert global_tm.counters["store.hits"] == 1
    assert global_tm.counters["store.misses"] == 1
    names = [s.name for s, _ in global_tm.spans()]
    assert "store.save" in names and "store.load" in names
    assert "engine.compile" in names


def test_backend_wrappers_record(global_tm):
    from repro.backends.registry import build_backend

    graph = gen.gnp(90, 0.08, rng=17, weights=(1, 3)).largest_component()
    backend = build_backend("tz", graph, k=2, seed=0)
    pairs = np.array([[0, 1], [1, 2], [2, 3]], dtype=np.int64)
    backend.query_many(pairs)
    names = [s.name for s, _ in global_tm.spans()]
    assert "backend.build" in names
    assert "backend.query_many" in names
    assert global_tm.counters["backend.pairs_queried"] == 3
    build_span = next(s for s, _ in global_tm.spans() if s.name == "backend.build")
    assert build_span.attrs["backend"] == "tz"


def test_backend_wrapper_not_double_applied():
    from repro.backends.registry import BACKENDS

    for cls in BACKENDS.values():
        build_fn = cls.build.__func__
        assert getattr(build_fn, "__obs_wrapper__", False)
        wrapped = getattr(build_fn, "__wrapped__", None)
        assert wrapped is not None
        assert not getattr(wrapped, "__obs_wrapper__", False), cls


# ---------------------------------------------------------------------------
# exporters and report rendering
# ---------------------------------------------------------------------------
def _populated():
    tm = Telemetry()
    tm.enable()
    with tm.span("root", k=2):
        with tm.span("child", level=0):
            pass
    tm.count("c", 3)
    tm.gauge("g", 1.5)
    for v in (0.1, 0.2, 0.3):
        tm.observe("h", v)
    return tm


def test_trace_records_reconstruct_tree():
    tm = _populated()
    records = trace_records(tm)
    assert [r["name"] for r in records] == ["root", "child"]
    assert records[0]["parent"] == -1
    assert records[1]["parent"] == 0
    assert records[1]["depth"] == 1
    assert records[0]["attrs"] == {"k": 2}
    assert records[0]["self_ns"] + records[1]["duration_ns"] == pytest.approx(
        records[0]["duration_ns"]
    )


def test_write_trace_jsonl(tmp_path):
    tm = _populated()
    path = write_trace(tmp_path / "trace.jsonl", tm)
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    assert lines[0] == {"schema": "tz-trace/v1", "spans": 2}
    assert [rec["name"] for rec in lines[1:]] == ["root", "child"]


def test_write_metrics_doc(tmp_path):
    tm = _populated()
    path = write_metrics(tmp_path / "metrics.json", tm)
    doc = json.loads(path.read_text())
    assert doc["schema"] == "tz-metrics/v1"
    assert doc["counters"] == {"c": 3}
    assert doc["gauges"] == {"g": 1.5}
    hist = doc["histograms"]["h"]
    assert hist["count"] == 3
    assert hist["min"] == 0.1 and hist["max"] == 0.3
    assert hist["mean"] == pytest.approx(0.2)
    assert metrics_doc(tm)["counters"] == {"c": 3}


def test_report_rendering(tmp_path):
    tm = _populated()
    rows = span_rows(tm)
    assert rows[0]["span"] == "root[k=2]"
    assert rows[1]["span"] == "  child[level=0]"
    assert rows[0]["%cum"] == "100.0"
    tree = render_span_tree(tm, title="spans")
    assert "root[k=2]" in tree and "spans" in tree
    metrics = render_metrics(tm)
    assert "c" in metrics and "p99" in metrics
    out = write_obs_markdown(tmp_path / "obs.md", tm)
    text = (tmp_path / "obs.md").read_text()
    assert out == str(tmp_path / "obs.md")
    assert "# Telemetry report" in text and "root[k=2]" in text


def test_empty_registry_renders():
    tm = Telemetry()
    assert render_span_tree(tm) == "(no spans recorded)"
    assert "(no metrics recorded)" in render_metrics(tm)
    assert trace_records(tm) == []
