"""Handshaking (§4, Thm 4.2): 2k−1 stretch, oracle agreement."""

from __future__ import annotations

import pytest

from repro.core.handshake import HandshakeRoutingScheme
from repro.core.scheme_k import build_tz_scheme
from repro.graphs.ports import assign_ports
from repro.oracles.distance_oracle import build_distance_oracle
from repro.rng import all_pairs
from repro.sim.network import Network
from repro.sim.runner import run_pairs


@pytest.fixture(scope="module", params=[2, 3, 4])
def compiled(request, small_weighted_graph, ported_small):
    k = request.param
    base = build_tz_scheme(small_weighted_graph, ported_small, k=k, rng=500 + k)
    return k, base, HandshakeRoutingScheme(base)


class TestStretch:
    def test_all_pairs_within_2k_minus_1(
        self, compiled, small_weighted_graph, ported_small, dist_small
    ):
        k, base, hs = compiled
        pairs = all_pairs(small_weighted_graph.n, limit=2500, rng=k)
        results, stretches = run_pairs(
            ported_small, hs, pairs, true_dist=dist_small
        )
        assert all(r.delivered for r in results)
        assert max(stretches) <= (2 * k - 1) + 1e-9

    def test_handshake_never_worse_than_base_bound(self, compiled):
        k, base, hs = compiled
        assert hs.stretch_bound() <= base.stretch_bound()

    def test_handshake_avg_not_worse(
        self, compiled, small_weighted_graph, ported_small, dist_small
    ):
        k, base, hs = compiled
        pairs = all_pairs(small_weighted_graph.n, limit=1500, rng=77)
        _, st_base = run_pairs(ported_small, base, pairs, true_dist=dist_small)
        _, st_hs = run_pairs(ported_small, hs, pairs, true_dist=dist_small)
        # Averaged over many pairs the handshake cannot lose meaningfully
        # (it optimizes the same tree family bidirectionally).
        assert sum(st_hs) <= sum(st_base) * 1.05


class TestAlternation:
    def test_tree_covers_both_endpoints(self, compiled):
        k, base, hs = compiled
        for s in range(0, base.n, 13):
            for t in range(0, base.n, 17):
                if s == t:
                    continue
                w = hs.handshake_tree(s, t)
                assert w in base.tables[s].trees
                assert w in base.tables[t].trees

    def test_steps_bounded_by_k_minus_1(self, compiled):
        k, base, hs = compiled
        for s in range(0, base.n, 11):
            for t in range(0, base.n, 19):
                if s != t:
                    assert hs.handshake_hops(s, t) <= k - 1

    def test_matches_oracle_tree_cost_bound(
        self, compiled, small_weighted_graph, dist_small
    ):
        """The handshake's tree cost d(u,w)+d(w,v) obeys the oracle's
        2k−1 bound for every checked pair."""
        k, base, hs = compiled
        for s in range(0, base.n, 13):
            for t in range(0, base.n, 17):
                if s == t:
                    continue
                w = hs.handshake_tree(s, t)
                cost = dist_small[s, w] + dist_small[w, t]
                assert cost <= (2 * k - 1) * dist_small[s, t] + 1e-9

    def test_oracle_and_handshake_agree_on_witness_quality(
        self, small_weighted_graph, dist_small
    ):
        """Independent implementations of the same alternation: the
        oracle estimate upper-bounds the handshake's tree cost ratio."""
        g = small_weighted_graph
        pg = assign_ports(g, "sorted")
        base = build_tz_scheme(g, pg, k=3, rng=42)
        hs = HandshakeRoutingScheme(base)
        oracle = build_distance_oracle(g, 3, rng=42)
        for s in range(0, g.n, 15):
            for t in range(0, g.n, 21):
                if s == t:
                    continue
                est = oracle.query(s, t)
                assert est <= 5 * dist_small[s, t] + 1e-9
                w = hs.handshake_tree(s, t)
                assert dist_small[s, w] + dist_small[w, t] <= 5 * dist_small[
                    s, t
                ] + 1e-9


class TestInterface:
    def test_self_route(self, compiled, ported_small):
        k, base, hs = compiled
        net = Network(ported_small, hs)
        res = net.route(4, 4, strict=True)
        assert res.delivered and res.hops == 0

    def test_sizes_delegate_to_base(self, compiled):
        k, base, hs = compiled
        assert hs.table_bits(0) == base.table_bits(0)
        assert hs.label_bits(0) == base.label_bits(0)

    def test_header_pinned_after_handshake(self, compiled):
        k, base, hs = compiled
        header = hs.initial_header(0, base.n - 1)
        assert header.tree != -1
        assert header.tree_label is not None
