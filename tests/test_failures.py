"""Failure injection: the static schemes' documented fragility."""

from __future__ import annotations

import pytest

from repro.baselines.tree_spanner import build_single_tree_scheme
from repro.core.scheme_k2 import build_stretch3_scheme
from repro.graphs import generators as gen
from repro.graphs.ports import assign_ports
from repro.rng import all_pairs, make_rng
from repro.sim.failures import (
    FaultyNetwork,
    sample_edge_failures,
    survivability,
    surviving_graph,
)


@pytest.fixture(scope="module")
def setup():
    g = gen.gnp(90, 0.08, rng=404, weights=(1, 6))
    pg = assign_ports(g, "random", rng=405)
    scheme = build_stretch3_scheme(g, pg, rng=406)
    pairs = all_pairs(g.n, limit=800, rng=407)
    return g, pg, scheme, pairs


class TestSurvivingGraph:
    def test_removes_exactly_the_dead_edges(self, setup):
        g, pg, scheme, pairs = setup
        dead = sample_edge_failures(g, 5, rng=1)
        rem = surviving_graph(g, dead)
        assert rem.m == g.m - 5
        for a, b in dead:
            assert not rem.has_edge(a, b)

    def test_too_many_failures_rejected(self, setup):
        g, pg, scheme, pairs = setup
        with pytest.raises(ValueError):
            sample_edge_failures(g, g.m + 1)

    def test_failures_deterministic(self, setup):
        g, pg, scheme, pairs = setup
        assert sample_edge_failures(g, 4, rng=9) == sample_edge_failures(
            g, 4, rng=9
        )


class TestFaultyNetwork:
    def test_no_failures_is_plain_network(self, setup):
        g, pg, scheme, pairs = setup
        net = FaultyNetwork(pg, scheme, [])
        report = survivability(pg, scheme, [], pairs)
        assert report.delivery_rate == 1.0
        res = net.route(0, g.n - 1, strict=True)
        assert res.delivered

    def test_message_dropped_at_dead_link(self, setup):
        g, pg, scheme, pairs = setup
        # Kill the first hop of a known route.
        from repro.sim.network import Network

        res = Network(pg, scheme).route(0, g.n - 1, strict=True)
        first_edge = (res.path[0], res.path[1])
        net = FaultyNetwork(pg, scheme, [first_edge])
        broken = net.route(0, g.n - 1)
        assert not broken.delivered
        assert "dead link" in broken.failure

    def test_strict_mode_raises(self, setup):
        g, pg, scheme, pairs = setup
        from repro.errors import RoutingError
        from repro.sim.network import Network

        res = Network(pg, scheme).route(0, g.n - 1, strict=True)
        net = FaultyNetwork(pg, scheme, [(res.path[0], res.path[1])])
        with pytest.raises(RoutingError):
            net.route(0, g.n - 1, strict=True)


class TestSurvivability:
    def test_static_scheme_loses_some_connected_pairs(self, setup):
        """The headline limitation: some still-connected pairs become
        undeliverable because the compiled trees used the dead edges."""
        g, pg, scheme, pairs = setup
        dead = sample_edge_failures(g, 8, rng=11)
        report = survivability(pg, scheme, dead, pairs)
        assert report.connected_pairs > 0
        assert report.delivery_rate < 1.0

    def test_recompilation_restores_full_delivery(self, setup):
        """Preprocessing is the fault boundary: rebuild on G∖F and every
        still-connected pair routes again."""
        g, pg, scheme, pairs = setup
        dead = sample_edge_failures(g, 6, rng=12)
        remaining = surviving_graph(g, dead).largest_component()
        if remaining.n < 10:
            pytest.skip("failures shattered the test graph")
        pg2 = assign_ports(remaining, "random", rng=13)
        scheme2 = build_stretch3_scheme(remaining, pg2, rng=14)
        pairs2 = all_pairs(remaining.n, limit=400, rng=15)
        report = survivability(pg2, scheme2, [], pairs2)
        assert report.delivery_rate == 1.0

    def test_single_tree_is_most_fragile(self, setup):
        """Killing a tree edge severs whole subtrees for the single-tree
        baseline; TZ's many trees give it strictly better survivability
        on the same failure set (statistically, over edges that the SPT
        actually uses)."""
        g, pg, scheme, pairs = setup
        tree_scheme = build_single_tree_scheme(g, pg)
        # Fail edges of the routing tree itself (the worst case for it).
        tree = tree_scheme.router
        rng = make_rng(16)
        tree_vertices = [v for v in range(g.n) if tree.records[v].parent_port]
        picked = rng.choice(len(tree_vertices), size=6, replace=False)
        dead = []
        for i in picked:
            v = tree_vertices[int(i)]
            parent = pg.step(v, tree.records[v].parent_port)
            dead.append((v, parent))
        tree_report = survivability(pg, tree_scheme, dead, pairs)
        tz_report = survivability(pg, scheme, dead, pairs)
        assert tree_report.delivery_rate < 1.0
        assert tz_report.delivery_rate >= tree_report.delivery_rate

    def test_delivery_rate_degrades_with_more_failures(self, setup):
        g, pg, scheme, pairs = setup
        rates = []
        for f in (0, 4, 16):
            dead = sample_edge_failures(g, f, rng=17)
            rates.append(survivability(pg, scheme, dead, pairs).delivery_rate)
        assert rates[0] == 1.0
        assert rates[0] >= rates[1] >= rates[2] - 0.05

    def test_report_fields(self, setup):
        g, pg, scheme, pairs = setup
        dead = sample_edge_failures(g, 3, rng=18)
        report = survivability(pg, scheme, dead, pairs)
        assert report.attempted == len(pairs)
        assert 0 <= report.delivered <= report.connected_pairs <= len(pairs)
        assert len(report.failed_edges) == 3
