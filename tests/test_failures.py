"""Failure injection: the static schemes' documented fragility."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.tree_spanner import build_single_tree_scheme
from repro.core.scheme_k2 import build_stretch3_scheme
from repro.graphs import generators as gen
from repro.graphs.ports import assign_ports
from repro.rng import all_pairs, make_rng
from repro.sim.failures import (
    FaultyNetwork,
    dead_edge_mask,
    iid_edge_trials,
    node_failure_trials,
    sample_edge_failures,
    survivability,
    surviving_graph,
)


@pytest.fixture(scope="module")
def setup():
    g = gen.gnp(90, 0.08, rng=404, weights=(1, 6))
    pg = assign_ports(g, "random", rng=405)
    scheme = build_stretch3_scheme(g, pg, rng=406)
    pairs = all_pairs(g.n, limit=800, rng=407)
    return g, pg, scheme, pairs


class TestSurvivingGraph:
    def test_removes_exactly_the_dead_edges(self, setup):
        g, pg, scheme, pairs = setup
        dead = sample_edge_failures(g, 5, rng=1)
        rem = surviving_graph(g, dead)
        assert rem.m == g.m - 5
        for a, b in dead:
            assert not rem.has_edge(a, b)

    def test_too_many_failures_rejected(self, setup):
        g, pg, scheme, pairs = setup
        with pytest.raises(ValueError):
            sample_edge_failures(g, g.m + 1)

    def test_failures_deterministic(self, setup):
        g, pg, scheme, pairs = setup
        assert sample_edge_failures(g, 4, rng=9) == sample_edge_failures(
            g, 4, rng=9
        )


class TestFaultyNetwork:
    def test_no_failures_is_plain_network(self, setup):
        g, pg, scheme, pairs = setup
        net = FaultyNetwork(pg, scheme, [])
        report = survivability(pg, scheme, [], pairs)
        assert report.delivery_rate == 1.0
        res = net.route(0, g.n - 1, strict=True)
        assert res.delivered

    def test_message_dropped_at_dead_link(self, setup):
        g, pg, scheme, pairs = setup
        # Kill the first hop of a known route.
        from repro.sim.network import Network

        res = Network(pg, scheme).route(0, g.n - 1, strict=True)
        first_edge = (res.path[0], res.path[1])
        net = FaultyNetwork(pg, scheme, [first_edge])
        broken = net.route(0, g.n - 1)
        assert not broken.delivered
        assert "dead link" in broken.failure

    def test_strict_mode_raises(self, setup):
        g, pg, scheme, pairs = setup
        from repro.errors import RoutingError
        from repro.sim.network import Network

        res = Network(pg, scheme).route(0, g.n - 1, strict=True)
        net = FaultyNetwork(pg, scheme, [(res.path[0], res.path[1])])
        with pytest.raises(RoutingError):
            net.route(0, g.n - 1, strict=True)


class TestSurvivability:
    def test_static_scheme_loses_some_connected_pairs(self, setup):
        """The headline limitation: some still-connected pairs become
        undeliverable because the compiled trees used the dead edges."""
        g, pg, scheme, pairs = setup
        dead = sample_edge_failures(g, 8, rng=11)
        report = survivability(pg, scheme, dead, pairs)
        assert report.connected_pairs > 0
        assert report.delivery_rate < 1.0

    def test_recompilation_restores_full_delivery(self, setup):
        """Preprocessing is the fault boundary: rebuild on G∖F and every
        still-connected pair routes again."""
        g, pg, scheme, pairs = setup
        dead = sample_edge_failures(g, 6, rng=12)
        remaining = surviving_graph(g, dead).largest_component()
        if remaining.n < 10:
            pytest.skip("failures shattered the test graph")
        pg2 = assign_ports(remaining, "random", rng=13)
        scheme2 = build_stretch3_scheme(remaining, pg2, rng=14)
        pairs2 = all_pairs(remaining.n, limit=400, rng=15)
        report = survivability(pg2, scheme2, [], pairs2)
        assert report.delivery_rate == 1.0

    def test_single_tree_is_most_fragile(self, setup):
        """Killing a tree edge severs whole subtrees for the single-tree
        baseline; TZ's many trees give it strictly better survivability
        on the same failure set (statistically, over edges that the SPT
        actually uses)."""
        g, pg, scheme, pairs = setup
        tree_scheme = build_single_tree_scheme(g, pg)
        # Fail edges of the routing tree itself (the worst case for it).
        tree = tree_scheme.router
        rng = make_rng(16)
        tree_vertices = [v for v in range(g.n) if tree.records[v].parent_port]
        picked = rng.choice(len(tree_vertices), size=6, replace=False)
        dead = []
        for i in picked:
            v = tree_vertices[int(i)]
            parent = pg.step(v, tree.records[v].parent_port)
            dead.append((v, parent))
        tree_report = survivability(pg, tree_scheme, dead, pairs)
        tz_report = survivability(pg, scheme, dead, pairs)
        assert tree_report.delivery_rate < 1.0
        assert tz_report.delivery_rate >= tree_report.delivery_rate

    def test_delivery_rate_degrades_with_more_failures(self, setup):
        g, pg, scheme, pairs = setup
        rates = []
        for f in (0, 4, 16):
            dead = sample_edge_failures(g, f, rng=17)
            rates.append(survivability(pg, scheme, dead, pairs).delivery_rate)
        assert rates[0] == 1.0
        assert rates[0] >= rates[1] >= rates[2] - 0.05

    def test_report_fields(self, setup):
        g, pg, scheme, pairs = setup
        dead = sample_edge_failures(g, 3, rng=18)
        report = survivability(pg, scheme, dead, pairs)
        assert report.attempted == len(pairs)
        assert 0 <= report.delivered <= report.connected_pairs <= len(pairs)
        assert len(report.failed_edges) == 3


class TestSamplingEdgeCases:
    """The corners of failure sampling: determinism, extremes, tiny graphs."""

    def test_deterministic_under_spawn(self, setup):
        """Spawned child streams re-derive the same failure sets: the
        multi-trial models rely on spawn() being a pure function of the
        parent seed and the spawn index."""
        from repro.rng import make_rng, spawn

        g = setup[0]
        sets_a = [
            sample_edge_failures(g, 4, child)
            for child in spawn(make_rng(99), 5)
        ]
        sets_b = [
            sample_edge_failures(g, 4, child)
            for child in spawn(make_rng(99), 5)
        ]
        assert sets_a == sets_b
        # and iid_edge_trials(f=) is exactly that, as masks
        masks = iid_edge_trials(g, 5, f=4, rng=99)
        for t, dead in enumerate(sets_a):
            assert np.array_equal(masks[t], dead_edge_mask(g, dead)), t

    def test_spawn_does_not_disturb_parent_stream(self, setup):
        from repro.rng import make_rng, spawn

        g = setup[0]
        gen_a, gen_b = make_rng(7), make_rng(7)
        spawn(gen_a, 3)  # must not advance the parent's own stream
        assert sample_edge_failures(g, 5, gen_a) == sample_edge_failures(
            g, 5, gen_b
        )

    def test_dead_edge_canonicalization_both_orientations(self, setup):
        """(u,v) and (v,u) name the same undirected edge everywhere:
        the mask builder, the FaultyNetwork dead set, and the batch
        engine must all drop the same messages."""
        g, pg, scheme, pairs = setup
        from repro.sim.network import Network

        res = Network(pg, scheme).route(0, g.n - 1, strict=True)
        u, v = res.path[0], res.path[1]
        assert np.array_equal(
            dead_edge_mask(g, [(u, v)]), dead_edge_mask(g, [(v, u)])
        )
        for dead in ([(u, v)], [(v, u)]):
            assert not FaultyNetwork(pg, scheme, dead).route(0, g.n - 1).delivered
        rep_uv = survivability(pg, scheme, [(u, v)], pairs)
        rep_vu = survivability(pg, scheme, [(v, u)], pairs)
        assert rep_uv.delivered == rep_vu.delivered
        assert rep_uv.failed_edges == rep_vu.failed_edges

    def test_rate_extremes(self, setup):
        g = setup[0]
        none = iid_edge_trials(g, 3, rate=0.0, rng=1)
        assert not none.any() and none.shape == (3, g.m)
        everything = iid_edge_trials(g, 3, rate=1.0, rng=1)
        assert everything.all()
        with pytest.raises(ValueError):
            iid_edge_trials(g, 3, rate=1.5, rng=1)
        with pytest.raises(ValueError):
            iid_edge_trials(g, 3, rng=1)  # neither f nor rate
        with pytest.raises(ValueError):
            iid_edge_trials(g, 3, f=1, rate=0.5, rng=1)  # both

    def test_zero_failures_touch_no_stream_state(self, setup):
        g = setup[0]
        assert sample_edge_failures(g, 0, rng=5) == ()
        with pytest.raises(ValueError):
            sample_edge_failures(g, -1, rng=5)

    def test_single_edge_graph(self):
        from repro.graphs.graph import Graph

        g = Graph(2, [(0, 1)], [3.0])
        assert sample_edge_failures(g, 1, rng=0) == ((0, 1),)
        assert sample_edge_failures(g, 0, rng=0) == ()
        masks = iid_edge_trials(g, 4, f=1, rng=0)
        assert masks.shape == (4, 1) and masks.all()
        # killing the only edge disconnects the only pair: rate is the
        # vacuous 1.0 (no still-connected pair could have been served)
        pg = assign_ports(g, "sorted")
        scheme = build_stretch3_scheme(g, pg, rng=1)
        report = survivability(pg, scheme, [(0, 1)], np.array([[0, 1], [1, 0]]))
        assert report.connected_pairs == 0
        assert report.delivery_rate == 1.0

    def test_single_vertex_graph(self):
        from repro.graphs.graph import Graph

        g = Graph(1, [])
        assert sample_edge_failures(g, 0, rng=0) == ()
        with pytest.raises(ValueError):
            sample_edge_failures(g, 1, rng=0)
        assert iid_edge_trials(g, 3, rate=0.5, rng=0).shape == (3, 0)
        assert iid_edge_trials(g, 3, f=0, rng=0).shape == (3, 0)
        assert node_failure_trials(g, 3, f=1, rng=0).shape == (3, 0)

    def test_ttl_interacts_with_dead_edges(self, setup):
        """A dead link must be discovered at the hop that crosses it,
        whatever the TTL — and a TTL too small to reach the dead edge
        reports TTL exhaustion, identically in both engines."""
        from repro.sim.engine import BatchRouter
        from repro.sim.engine.batch import FAIL_DEAD_LINK, FAIL_TTL

        g, pg, scheme, pairs = setup
        from repro.sim.network import Network

        res = Network(pg, scheme).route(0, g.n - 1, strict=True)
        assert len(res.path) >= 3, "need a multi-hop route for this test"
        dead = [(res.path[1], res.path[2])]  # dies on the second hop
        router = BatchRouter(pg, scheme)
        pair = np.array([[0, g.n - 1]])

        hit = router.route_pairs(pair, dead_edges=dead, ttl=10)
        assert hit.failure_code[0] == FAIL_DEAD_LINK and hit.hops[0] == 1
        ref_hit = FaultyNetwork(pg, scheme, dead).route(0, g.n - 1, ttl=10)
        assert not ref_hit.delivered and "dead link" in ref_hit.failure
        assert ref_hit.hops == hit.hops[0]
        assert ref_hit.weight == hit.weight[0]

        # TTL runs out on the first hop, before the dead edge is reached
        starved = router.route_pairs(pair, dead_edges=dead, ttl=1)
        assert starved.failure_code[0] == FAIL_TTL and starved.hops[0] == 1
        ref_starved = FaultyNetwork(pg, scheme, dead).route(0, g.n - 1, ttl=1)
        assert not ref_starved.delivered and "TTL" in ref_starved.failure
        assert ref_starved.hops == starved.hops[0]
        assert ref_starved.weight == starved.weight[0]
