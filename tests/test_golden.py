"""Golden-file regression tests for scheme encodings.

Construction refactors must not silently change what a compiled scheme
*is*: the encoded label bit streams, the measured table/label sizes and
the stretch a fixed workload observes are pinned, for three fixed seeds,
in JSON fixtures under ``tests/golden/``.  A legitimate encoding change
regenerates them with::

    pytest tests/test_golden.py --update-golden

The fixtures are built through ``build_scheme(builder="reference")`` (the
per-node path with deterministic sparse clusters); the differential
suite guarantees the vectorized builder matches it bit-for-bit, and
``test_vectorized_matches_golden`` closes the loop by checking the
vectorized output against the same files.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.build import build_scheme
from repro.core.labels import encode_label
from repro.graphs import generators as gen
from repro.graphs.ports import assign_ports
from repro.rng import all_pairs
from repro.sim.runner import run_pairs

GOLDEN_DIR = Path(__file__).parent / "golden"
SEEDS = (0, 1, 2)


def _instance(seed: int):
    graph = gen.gnp(40, 0.2, rng=seed, weights=(1, 6))
    ported = assign_ports(graph, "random", rng=seed + 100)
    return graph, ported


def _snapshot(seed: int, method: str) -> dict:
    graph, ported = _instance(seed)
    scheme = build_scheme(graph, 3, ported=ported, builder=method, rng=seed + 1000)
    labels_hex = {
        str(v): encode_label(scheme.labels[v], graph.n, scheme.tree_sizes)
        .getvalue()
        .hex()
        for v in range(graph.n)
    }
    pairs = all_pairs(graph.n, limit=600, rng=seed)
    from repro.graphs.shortest_paths import all_pairs_shortest_paths

    results, stretches = run_pairs(
        ported, scheme, pairs, true_dist=all_pairs_shortest_paths(graph)
    )
    return {
        "seed": seed,
        "n": graph.n,
        "m": graph.m,
        "k": scheme.k,
        "landmarks": scheme.landmark_count(),
        "labels_hex": labels_hex,
        "label_bits": [scheme.label_bits(v) for v in range(graph.n)],
        "table_bits": [scheme.table_bits(v) for v in range(graph.n)],
        "stretch": {
            "delivered": sum(r.delivered for r in results),
            "pairs": len(results),
            "max": round(max(stretches), 9),
            "mean": round(sum(stretches) / len(stretches), 9),
        },
    }


def _golden_path(seed: int) -> Path:
    return GOLDEN_DIR / f"scheme_k3_seed{seed}.json"


@pytest.mark.parametrize("seed", SEEDS)
def test_reference_matches_golden(seed, update_golden):
    snapshot = _snapshot(seed, "reference")
    path = _golden_path(seed)
    if update_golden:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(snapshot, indent=1, sort_keys=True) + "\n")
        pytest.skip(f"rewrote {path.name}")
    assert path.exists(), "golden fixture missing — run with --update-golden"
    golden = json.loads(path.read_text())
    assert snapshot == golden, (
        f"scheme encoding drifted from {path.name}; if intentional, "
        "refresh with --update-golden"
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_vectorized_matches_golden(seed):
    path = _golden_path(seed)
    assert path.exists(), "golden fixture missing — run with --update-golden"
    golden = json.loads(path.read_text())
    assert _snapshot(seed, "vectorized") == golden
