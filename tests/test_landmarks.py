"""Hierarchy sampling, the center algorithm, and pivot consistency."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from strategies import ks

from repro.core.landmarks import (
    build_hierarchy,
    center,
    compute_pivots,
    sample_hierarchy,
)
from repro.errors import PreprocessingError
from repro.graphs import generators as gen
from repro.graphs.shortest_paths import all_pairs_shortest_paths


class TestSampling:
    def test_levels_nested(self):
        levels = sample_hierarchy(500, 4, rng=1)
        assert len(levels) == 4
        for upper, lower in zip(levels, levels[1:]):
            assert set(lower.tolist()) <= set(upper.tolist())

    def test_level_zero_is_everything(self):
        levels = sample_hierarchy(100, 3, rng=2)
        assert np.array_equal(levels[0], np.arange(100))

    def test_top_level_nonempty(self):
        for seed in range(10):
            levels = sample_hierarchy(50, 3, rng=seed)
            assert levels[-1].size >= 1

    def test_k1_single_level(self):
        levels = sample_hierarchy(10, 1, rng=3)
        assert len(levels) == 1

    def test_invalid_k(self):
        with pytest.raises(PreprocessingError):
            sample_hierarchy(10, 0)

    def test_invalid_n(self):
        with pytest.raises(PreprocessingError):
            sample_hierarchy(0, 2)

    def test_deterministic(self):
        a = sample_hierarchy(200, 3, rng=9)
        b = sample_hierarchy(200, 3, rng=9)
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    @given(ks(2, 5))
    @settings(max_examples=10, deadline=None)
    def test_expected_level_sizes(self, k):
        n = 1024
        levels = sample_hierarchy(n, k, rng=k)
        q = n ** (-1.0 / k)
        for i in range(1, k):
            expected = n * q**i
            # Loose 5x window where the law of large numbers has teeth;
            # for tiny expectations only require non-emptiness (Poisson
            # tails are wide there, and the sampler retries on empty).
            if expected >= 20:
                assert expected / 5 <= levels[i].size <= 5 * expected + 10
            else:
                assert levels[i].size >= 1


class TestCenter:
    @pytest.fixture(scope="class")
    def graph(self):
        return gen.gnp(250, 0.04, rng=55, weights=(1, 9))

    def test_cluster_cap_guarantee(self, graph):
        """The hard Theorem 3.1 guarantee: every non-landmark cluster has
        at most 4n/s members."""
        D = all_pairs_shortest_paths(graph)
        for s in (8.0, 16.0, 31.0):
            A = center(graph, s, rng=5, dist_matrix=D)
            dA = D[A].min(axis=0)
            others = np.setdiff1d(np.arange(graph.n), A)
            sizes = (D[others] < dA[None, :]).sum(axis=1)
            assert sizes.max() <= 4 * graph.n / s

    def test_landmark_count_near_expectation(self, graph):
        D = all_pairs_shortest_paths(graph)
        s = 16.0
        sizes = [
            center(graph, s, rng=seed, dist_matrix=D).size for seed in range(5)
        ]
        # E|A| = O(s log n); allow a wide but meaningful window.
        assert max(sizes) <= 6 * s * math.log(graph.n)
        assert min(sizes) >= 1

    def test_sparse_engine_matches_cap(self):
        g = gen.gnp(150, 0.06, rng=66, weights=(1, 5))
        D = all_pairs_shortest_paths(g)
        s = 12.0
        # Force the sparse (truncated-Dijkstra) path.
        from repro.core import clusters as cl

        old = cl.DENSE_LIMIT
        try:
            cl.DENSE_LIMIT = 10
            A = center(g, s, rng=3)
        finally:
            cl.DENSE_LIMIT = old
        dA = D[A].min(axis=0)
        others = np.setdiff1d(np.arange(g.n), A)
        sizes = (D[others] < dA[None, :]).sum(axis=1)
        assert sizes.max() <= 4 * g.n / s

    def test_invalid_s(self, graph):
        with pytest.raises(PreprocessingError):
            center(graph, 0.0)

    def test_huge_s_takes_everything_quickly(self, graph):
        A = center(graph, 10.0 * graph.n, rng=1)
        assert A.size >= graph.n // 2  # nearly everything sampled round 1


class TestPivots:
    @pytest.fixture(scope="class")
    def setup(self):
        g = gen.grid2d(10, 10)  # unit weights: distance ties everywhere
        levels = sample_hierarchy(g.n, 3, rng=21)
        dist, pivot = compute_pivots(g, levels)
        D = all_pairs_shortest_paths(g)
        return g, levels, dist, pivot, D

    def test_distance_rows_exact(self, setup):
        g, levels, dist, pivot, D = setup
        for i, Ai in enumerate(levels):
            assert np.allclose(dist[i], D[Ai].min(axis=0))

    def test_sentinel_row_infinite(self, setup):
        g, levels, dist, pivot, D = setup
        assert np.all(np.isinf(dist[len(levels)]))

    def test_distances_monotone_in_level(self, setup):
        g, levels, dist, pivot, D = setup
        for i in range(len(levels) - 1):
            assert np.all(dist[i] <= dist[i + 1])

    def test_pivot_realizes_level_distance(self, setup):
        """d(p_i(v), v) == d_i(v) even for promoted (consistent) pivots."""
        g, levels, dist, pivot, D = setup
        for i in range(len(levels)):
            for v in range(g.n):
                assert D[pivot[i, v], v] == dist[i, v]

    def test_pivot_belongs_to_level(self, setup):
        g, levels, dist, pivot, D = setup
        for i, Ai in enumerate(levels):
            members = set(Ai.tolist())
            assert all(int(p) in members for p in pivot[i])

    def test_consistency_on_ties(self, setup):
        g, levels, dist, pivot, D = setup
        for i in range(len(levels) - 1):
            tied = dist[i] == dist[i + 1]
            assert np.array_equal(pivot[i][tied], pivot[i + 1][tied])

    def test_level0_pivot_is_self(self, setup):
        g, levels, dist, pivot, D = setup
        untied = dist[0] < dist[1]
        assert np.array_equal(
            pivot[0][untied], np.arange(g.n)[untied]
        )

    def test_inconsistent_mode_differs_on_tied_graphs(self):
        g = gen.grid2d(8, 8)
        levels = sample_hierarchy(g.n, 3, rng=5)
        _, consistent = compute_pivots(g, levels, consistent=True)
        _, naive = compute_pivots(g, levels, consistent=False)
        assert not np.array_equal(consistent, naive)


class TestBuildHierarchy:
    def test_fields_coherent(self, small_weighted_graph):
        h = build_hierarchy(small_weighted_graph, 3, rng=8)
        assert h.k == 3
        assert h.dist.shape == (4, small_weighted_graph.n)
        assert h.pivot.shape == (3, small_weighted_graph.n)
        assert h.n == small_weighted_graph.n
        assert h.sizes()[0] == small_weighted_graph.n

    def test_level_of_matches_levels(self, small_weighted_graph):
        h = build_hierarchy(small_weighted_graph, 3, rng=8)
        for v in range(h.n):
            lvl = int(h.level_of[v])
            assert v in set(h.levels[lvl].tolist())
            if lvl + 1 < h.k:
                assert v not in set(h.levels[lvl + 1].tolist())

    def test_threshold_for(self, small_weighted_graph):
        h = build_hierarchy(small_weighted_graph, 2, rng=8)
        w = int(h.levels[1][0])
        assert h.threshold_for(w) == 2

    def test_capped_sampling_runs(self, small_weighted_graph):
        h = build_hierarchy(small_weighted_graph, 3, rng=8, sampling="capped")
        assert h.k == 3

    def test_unknown_sampling_rejected(self, small_weighted_graph):
        with pytest.raises(PreprocessingError):
            build_hierarchy(small_weighted_graph, 2, sampling="nope")
