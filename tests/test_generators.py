"""Generator sanity: sizes, connectivity, determinism, weight ranges."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graphs import generators as gen
from repro.graphs.validation import check_graph


class TestRandomFamilies:
    def test_gnp_determinism(self):
        a = gen.gnp(100, 0.05, rng=3)
        b = gen.gnp(100, 0.05, rng=3)
        assert a == b

    def test_gnp_p_zero_edgeless(self):
        g = gen.gnp(10, 0.0, connected=False)
        assert g.m == 0

    def test_gnp_p_one_complete(self):
        g = gen.gnp(8, 1.0)
        assert g.m == 8 * 7 // 2

    def test_gnp_invalid_p(self):
        with pytest.raises(GraphError):
            gen.gnp(10, 1.5)

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=15, deadline=None)
    def test_gnp_density_plausible(self, seed):
        g = gen.gnp(200, 0.05, rng=seed, connected=False)
        expected = 0.05 * 200 * 199 / 2
        assert 0.5 * expected < g.m < 1.6 * expected

    def test_gnm_exact_edge_count(self):
        g = gen.gnm(50, 120, rng=1, connected=False)
        assert g.m == 120

    def test_gnm_too_many_edges(self):
        with pytest.raises(GraphError):
            gen.gnm(4, 10)

    def test_weights_within_range(self):
        g = gen.gnp(80, 0.1, rng=2, weights=(3, 11))
        assert g.edge_weights.min() >= 3 and g.edge_weights.max() <= 11
        assert np.all(g.edge_weights == np.round(g.edge_weights))

    def test_invalid_weight_range(self):
        with pytest.raises(GraphError):
            gen.gnp(10, 0.5, weights=(0, 5))

    def test_random_geometric_connected_option(self):
        g = gen.random_geometric(150, 0.18, rng=4)
        assert g.is_connected()
        check_graph(g)

    def test_barabasi_albert_connected_and_heavy_tailed(self):
        g = gen.barabasi_albert(300, 3, rng=5)
        assert g.is_connected()
        degs = g.degrees()
        assert degs.max() > 4 * np.median(degs)  # hubs exist

    def test_barabasi_albert_invalid_params(self):
        with pytest.raises(GraphError):
            gen.barabasi_albert(5, 5)

    def test_powerlaw_cluster_connected(self):
        g = gen.powerlaw_cluster(200, 2, 0.4, rng=6)
        assert g.is_connected()
        check_graph(g)

    def test_internet_as_like_shape(self):
        g = gen.internet_as_like(300, rng=7)
        assert g.is_connected()
        assert g.m < 3 * g.n  # sparse
        assert g.degrees().max() > 10  # hubby

    def test_waxman_builds(self):
        g = gen.waxman(150, rng=8)
        check_graph(g)
        assert g.is_connected()


class TestStructuredFamilies:
    def test_grid_dimensions(self):
        g = gen.grid2d(5, 7)
        assert g.n == 35 and g.m == 5 * 6 + 4 * 7

    def test_torus_regularity(self):
        g = gen.grid2d(5, 5, torus=True)
        assert np.all(g.degrees() == 4)

    def test_hypercube(self):
        g = gen.hypercube(4)
        assert g.n == 16 and np.all(g.degrees() == 4)

    def test_ring(self):
        g = gen.ring(9)
        assert g.n == 9 and g.m == 9 and np.all(g.degrees() == 2)

    def test_ring_too_small(self):
        with pytest.raises(GraphError):
            gen.ring(2)

    def test_complete(self):
        g = gen.complete(6)
        assert g.m == 15


class TestTreeFamilies:
    @pytest.mark.parametrize("family", sorted(gen.TREE_FAMILIES))
    def test_families_are_trees(self, family):
        from repro.rng import make_rng

        g = gen.TREE_FAMILIES[family](64, make_rng(11))
        assert g.m == g.n - 1
        assert g.is_connected()

    @given(st.integers(min_value=2, max_value=200))
    @settings(max_examples=25, deadline=None)
    def test_random_tree_is_tree(self, n):
        g = gen.random_tree(n, rng=n)
        assert g.n == n and g.m == n - 1 and g.is_connected()

    def test_random_tree_determinism(self):
        assert gen.random_tree(50, rng=3) == gen.random_tree(50, rng=3)

    def test_path_star_shapes(self):
        assert gen.path_tree(10).degrees().max() == 2
        assert gen.star_tree(10).degree(0) == 9

    def test_caterpillar_counts(self):
        g = gen.caterpillar(5, 3)
        assert g.n == 5 * 4 and g.m == g.n - 1

    def test_balanced_binary(self):
        g = gen.balanced_binary_tree(4)
        assert g.n == 31 and g.m == 30

    def test_broom_and_spider(self):
        b = gen.broom(5, 8)
        assert b.n == 13 and b.m == 12
        s = gen.spider(4, 6)
        assert s.n == 25 and s.m == 24 and s.degree(0) == 4
