"""Cross-module integration: full preprocessing→routing pipelines on
diverse topologies, multiple seeds, checked against the paper's bounds.

These are the "does the whole system hold together" tests — every one of
them exercises generators → ports → landmarks → clusters → tree routing →
labels/tables → simulator in one pass.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import (
    HandshakeRoutingScheme,
    Network,
    build_distance_oracle,
    build_shortest_path_scheme,
    build_stretch3_scheme,
    build_tz_scheme,
    assign_ports,
)
from repro.graphs import generators as gen
from repro.graphs.shortest_paths import all_pairs_shortest_paths
from repro.rng import all_pairs
from repro.sim.runner import run_pairs


TOPOLOGIES = {
    "gnp": lambda seed: gen.gnp(90, 0.07, rng=seed, weights=(1, 12)),
    "ba": lambda seed: gen.barabasi_albert(90, 3, rng=seed, weights=(1, 12)),
    "grid": lambda seed: gen.grid2d(9, 10),
    "torus": lambda seed: gen.grid2d(8, 8, torus=True),
    "as-like": lambda seed: gen.internet_as_like(90, rng=seed),
    "geometric": lambda seed: gen.random_geometric(110, 0.2, rng=seed),
    "hypercube": lambda seed: gen.hypercube(6),
    "ring": lambda seed: gen.ring(60),
}


@pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
def test_stretch3_on_every_topology(topology):
    g = TOPOLOGIES[topology](3)
    pg = assign_ports(g, "random", rng=4)
    scheme = build_stretch3_scheme(g, pg, rng=5)
    D = all_pairs_shortest_paths(g)
    pairs = all_pairs(g.n, limit=900, rng=6)
    results, stretches = run_pairs(pg, scheme, pairs, true_dist=D)
    assert all(r.delivered for r in results)
    assert max(stretches) <= 3.0 + 1e-9


@pytest.mark.parametrize("topology", ["gnp", "grid", "as-like"])
@pytest.mark.parametrize("k", [2, 3])
def test_general_scheme_with_handshake_on_topologies(topology, k):
    g = TOPOLOGIES[topology](11)
    pg = assign_ports(g, "random", rng=12)
    base = build_tz_scheme(g, pg, k=k, rng=13)
    hs = HandshakeRoutingScheme(base)
    D = all_pairs_shortest_paths(g)
    pairs = all_pairs(g.n, limit=700, rng=14)
    _, st_base = run_pairs(pg, base, pairs, true_dist=D)
    _, st_hs = run_pairs(pg, hs, pairs, true_dist=D)
    assert max(st_base) <= base.stretch_bound() + 1e-9
    assert max(st_hs) <= hs.stretch_bound() + 1e-9


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_seed_sweep_never_violates_bounds(seed):
    g = gen.gnp(70, 0.08, rng=1000 + seed, weights=(1, 9))
    pg = assign_ports(g, "random", rng=seed)
    D = all_pairs_shortest_paths(g)
    pairs = all_pairs(g.n, limit=600, rng=seed)
    for k in (2, 3):
        scheme = build_tz_scheme(g, pg, k=k, rng=seed)
        _, stretches = run_pairs(pg, scheme, pairs, true_dist=D)
        assert max(stretches) <= scheme.stretch_bound() + 1e-9


def test_port_assignment_does_not_affect_correctness():
    """The scheme must work under any port numbering (fixed-port model)."""
    g = gen.gnp(80, 0.08, rng=21, weights=(1, 6))
    D = all_pairs_shortest_paths(g)
    pairs = all_pairs(g.n, limit=500, rng=22)
    for kind, rng in (("sorted", None), ("reversed", None), ("random", 33)):
        pg = assign_ports(g, kind, rng=rng)
        scheme = build_stretch3_scheme(g, pg, rng=23)
        results, stretches = run_pairs(pg, scheme, pairs, true_dist=D)
        assert all(r.delivered for r in results)
        assert max(stretches) <= 3.0 + 1e-9


def test_scheme_and_oracle_consistency():
    """Routing stretch can exceed the oracle estimate's ratio but both
    obey their bounds, and the oracle never reports less than the true
    distance the router actually achieves."""
    g = gen.barabasi_albert(100, 3, rng=31, weights=(1, 8))
    pg = assign_ports(g, "random", rng=32)
    scheme = build_tz_scheme(g, pg, k=3, rng=33)
    oracle = build_distance_oracle(g, 3, rng=33)
    net = Network(pg, scheme)
    D = all_pairs_shortest_paths(g)
    rng = np.random.default_rng(34)
    for _ in range(150):
        s, t = rng.integers(0, g.n, 2)
        if s == t:
            continue
        s, t = int(s), int(t)
        res = net.route(s, t, strict=True)
        est = oracle.query(s, t)
        assert res.weight <= scheme.stretch_bound() * D[s, t] + 1e-9
        assert D[s, t] - 1e-9 <= est <= oracle.stretch_bound() * D[s, t] + 1e-9


def test_space_hierarchy_between_schemes():
    """The Table-1 ordering in *entries per vertex* (the scale-free
    measure: at n=200 the per-entry bit constants still mask the
    asymptotic n vs √n separation, but entry counts already show it):
    SP stores n−1 entries, TZ-k2 ≈ Õ(√n), TZ-k3 fewer, single-tree O(1)."""
    from repro.baselines.tree_spanner import build_single_tree_scheme

    g = gen.gnp(200, 0.05, rng=41, weights=(1, 8))
    pg = assign_ports(g, "sorted")
    sp = build_shortest_path_scheme(g, pg)
    tz2 = build_stretch3_scheme(g, pg, rng=42)
    tz3 = build_tz_scheme(g, pg, k=3, rng=42)
    single = build_single_tree_scheme(g, pg)

    def entries(scheme):
        if scheme is sp:
            return g.n - 1
        if scheme is single:
            return 1
        return float(
            np.mean(
                [
                    len(scheme.tables[u].trees) + len(scheme.tables[u].members)
                    for u in range(g.n)
                ]
            )
        )

    assert entries(sp) > 3 * entries(tz2)
    assert entries(tz2) > entries(tz3)
    assert entries(single) < entries(tz3)
    # Bits: the single tree is unambiguously smallest even at this n.
    avg_bits = lambda s: np.mean([s.table_bits(u) for u in range(g.n)])
    assert avg_bits(single) < avg_bits(tz3) < avg_bits(tz2) * 1.5

    # And the stretch ordering is reversed (measured on shared pairs).
    D = all_pairs_shortest_paths(g)
    pairs = all_pairs(g.n, limit=400, rng=43)
    stretch = {}
    for name, scheme in (("sp", sp), ("tz2", tz2), ("tz3", tz3), ("one", single)):
        _, st = run_pairs(pg, scheme, pairs, true_dist=D)
        stretch[name] = float(np.mean(st))
    assert stretch["sp"] <= stretch["tz2"] <= stretch["tz3"] * 1.2
    assert stretch["one"] >= stretch["tz2"]


def test_headers_stay_polylog_end_to_end():
    g = gen.gnp(150, 0.06, rng=51, weights=(1, 7))
    pg = assign_ports(g, "random", rng=52)
    scheme = build_tz_scheme(g, pg, k=3, rng=53)
    net = Network(pg, scheme)
    rng = np.random.default_rng(54)
    budget = 8 * math.log2(g.n) ** 2
    for _ in range(80):
        s, t = rng.integers(0, g.n, 2)
        if s == t:
            continue
        res = net.route(int(s), int(t), strict=True)
        assert res.max_header_bits <= budget


def test_weighted_and_unit_weight_agree_on_structure():
    """Same topology, different weights: both compile and respect bounds
    (weights only move distances, never break invariants)."""
    base_graph = gen.gnp(80, 0.08, rng=61)
    from repro.graphs.graph import Graph

    weighted = Graph(
        base_graph.n,
        base_graph.edges,
        (np.arange(base_graph.m) % 9 + 1).astype(float),
    )
    for g in (base_graph, weighted):
        pg = assign_ports(g, "random", rng=62)
        scheme = build_stretch3_scheme(g, pg, rng=63)
        D = all_pairs_shortest_paths(g)
        pairs = all_pairs(g.n, limit=400, rng=64)
        _, stretches = run_pairs(pg, scheme, pairs, true_dist=D)
        assert max(stretches) <= 3.0 + 1e-9
