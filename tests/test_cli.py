"""CLI smoke tests: list, run, markdown output."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for exp_id in ("t1", "f4", "a2"):
            assert exp_id in out

    def test_run_small_experiment(self, capsys):
        assert main(["run", "f3", "--scale", "small", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "F3" in out and "cap_ok" in out

    def test_run_markdown(self, capsys):
        assert main(["run", "f3", "--scale", "small", "--markdown"]) == 0
        out = capsys.readouterr().out
        assert "| graph |" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "nope"])

    def test_no_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])

    def test_build_both_methods(self, capsys, tmp_path):
        out_json = tmp_path / "builder.json"
        assert (
            main(
                [
                    "build",
                    "--graph",
                    "gnp",
                    "--n",
                    "256",
                    "--k",
                    "2",
                    "--method",
                    "both",
                    "--materialize",
                    "--json",
                    str(out_json),
                    "--seed",
                    "3",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "speedup" in out and "entries" in out
        import json

        stats = json.loads(out_json.read_text())
        assert stats["n"] <= 256 and stats["entries"] > 0
        assert "vectorized_build_seconds" in stats
        assert "reference_build_seconds" in stats
        assert "materialize_seconds" in stats

    def test_build_unknown_graph_rejected(self):
        with pytest.raises(SystemExit):
            main(["build", "--graph", "nope"])

    def test_serve_miss_then_hit(self, capsys, tmp_path):
        args = [
            "serve",
            "--graph",
            "gnp",
            "--n",
            "128",
            "--k",
            "2",
            "--pairs",
            "2000",
            "--seed",
            "4",
            "--store",
            str(tmp_path / "tzstore"),
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "store miss" in out and "pairs/s" in out
        assert main(args + ["--strict-verify"]) == 0
        out = capsys.readouterr().out
        assert "store hit" in out and "strict-verified" in out
