"""CLI smoke tests: list, run, markdown output, docs/CLI sync."""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.cli import main

DOCS_CLI = Path(__file__).resolve().parent.parent / "docs" / "cli.md"


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for exp_id in ("t1", "f4", "a2"):
            assert exp_id in out

    def test_run_small_experiment(self, capsys):
        assert main(["run", "f3", "--scale", "small", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "F3" in out and "cap_ok" in out

    def test_run_markdown(self, capsys):
        assert main(["run", "f3", "--scale", "small", "--markdown"]) == 0
        out = capsys.readouterr().out
        assert "| graph |" in out

    def test_all_runs_every_experiment(self, capsys, monkeypatch):
        """`repro all` iterates the registry; pin it to one cheap
        experiment so the loop itself is what's under test."""
        import repro.cli as cli

        monkeypatch.setattr(cli, "EXPERIMENTS", {"f3": cli.EXPERIMENTS["f3"]})
        assert main(["all", "--scale", "small", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "F3" in out

    def test_route_prints_stretch_and_throughput(self, capsys):
        assert (
            main(
                [
                    "route",
                    "--graph", "gnp",
                    "--n", "96",
                    "--k", "2",
                    "--pairs", "300",
                    "--workload", "zipf",
                    "--seed", "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "pairs/s" in out and "workload=zipf" in out

    def test_route_reference_engine_k2_handshake(self, capsys):
        assert (
            main(
                [
                    "route",
                    "--graph", "grid",
                    "--n", "49",
                    "--scheme", "k2",
                    "--handshake",
                    "--engine", "reference",
                    "--pairs", "50",
                    "--seed", "3",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "engine=reference" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "nope"])

    def test_no_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])

    def test_build_both_methods(self, capsys, tmp_path):
        out_json = tmp_path / "builder.json"
        assert (
            main(
                [
                    "build",
                    "--graph",
                    "gnp",
                    "--n",
                    "256",
                    "--k",
                    "2",
                    "--builder",
                    "both",
                    "--materialize",
                    "--json",
                    str(out_json),
                    "--seed",
                    "3",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "speedup" in out and "entries" in out
        import json

        stats = json.loads(out_json.read_text())
        assert stats["n"] <= 256 and stats["entries"] > 0
        assert "vectorized_build_seconds" in stats
        assert "reference_build_seconds" in stats
        assert "materialize_seconds" in stats

    def test_build_unknown_graph_rejected(self):
        with pytest.raises(SystemExit):
            main(["build", "--graph", "nope"])

    def test_help_mentions_every_documented_subcommand(self, capsys):
        """docs/cli.md documents the CLI; --help must know every
        subcommand the doc claims exists (the doc-drift tripwire)."""
        documented = re.findall(r"^## `repro (\w[\w-]*)`", DOCS_CLI.read_text(), re.M)
        assert sorted(documented) == sorted(
            [
                "list", "run", "all", "build", "route", "serve",
                "scenarios", "frontier", "profile", "update", "store",
                "loadgen",
            ]
        )
        with pytest.raises(SystemExit):
            main(["--help"])
        help_text = capsys.readouterr().out
        for cmd in documented:
            assert cmd in help_text, f"subcommand {cmd!r} documented but not in --help"

    @pytest.mark.parametrize(
        "cmd",
        [
            "list", "run", "all", "build", "route", "serve",
            "scenarios", "frontier", "profile", "update", "store",
            "loadgen",
        ],
    )
    def test_subcommand_help_exits_zero(self, cmd, capsys):
        with pytest.raises(SystemExit) as exc:
            main([cmd, "--help"])
        assert exc.value.code == 0
        assert "usage" in capsys.readouterr().out

    def test_scenarios_sweep_writes_reports(self, capsys, tmp_path):
        import json

        out_json = tmp_path / "report.json"
        out_md = tmp_path / "report.md"
        assert (
            main(
                [
                    "scenarios",
                    "--graphs", "gnp",
                    "--n", "96",
                    "--k", "2",
                    "--failures", "iid-edges", "churn",
                    "--trials", "3",
                    "--pairs", "200",
                    "--store", str(tmp_path / "store"),
                    "--json", str(out_json),
                    "--markdown", str(out_md),
                    "--seed", "5",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "delivery_mean" in out and "scenario sweep" in out
        doc = json.loads(out_json.read_text())
        assert doc["kind"] == "tz-scenario-report"
        assert len(doc["scenarios"]) == 2
        assert all(len(s["delivery_rates"]) == 3 for s in doc["scenarios"])
        assert "| scenario |" in out_md.read_text()

    def test_update_churn_sweep_with_store(self, capsys, tmp_path):
        import json

        out_json = tmp_path / "churn.json"
        store_dir = tmp_path / "store"
        assert (
            main(
                [
                    "update",
                    "--graph", "gnp",
                    "--n", "128",
                    "--k", "2",
                    "--epochs", "2",
                    "--pairs", "100",
                    "--policy", "auto",
                    "--store", str(store_dir),
                    "--json", str(out_json),
                    "--seed", "5",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "churn sweep" in out and "update_s" in out
        doc = json.loads(out_json.read_text())
        assert doc["kind"] == "tz-churn-report"
        assert len(doc["epochs"]) == 2
        assert doc["lineage"] is not None
        # versions climbed: root is 0, each epoch publishes one more
        assert [e["version"] for e in doc["epochs"]] == [1, 2]

        # store ls sees the lineage; the newest version is current
        assert main(["store", "ls", "--dir", str(store_dir)]) == 0
        ls_out = capsys.readouterr().out
        assert doc["lineage"][:12] in ls_out and "*" in ls_out

        # info on the current key round-trips the header meta
        last_key = doc["epochs"][-1]["key"]
        assert main(["store", "info", last_key, "--dir", str(store_dir)]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["version"] == 2 and info["lineage"] == doc["lineage"]

        # gc to one version; ls shows exactly the current one
        assert main(
            ["store", "gc", "--dir", str(store_dir), "--max-versions", "1"]
        ) == 0
        capsys.readouterr()
        assert main(["store", "ls", "--dir", str(store_dir)]) == 0
        assert "(1 versions)" in capsys.readouterr().out

    def test_store_info_unknown_key_fails_cleanly(self, capsys, tmp_path):
        assert main(["store", "info", "deadbeef", "--dir", str(tmp_path)]) == 1
        assert "no stored scheme" in capsys.readouterr().err

    def test_frontier_sweep_writes_reports(self, capsys, tmp_path):
        import json

        out_json = tmp_path / "frontier.json"
        out_md = tmp_path / "frontier.md"
        assert (
            main(
                [
                    "frontier",
                    "--graphs", "gnp",
                    "--n", "80",
                    "--k", "2",
                    "--pairs", "60",
                    "--json", str(out_json),
                    "--markdown", str(out_md),
                    "--seed", "5",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "backend frontier" in out and "Pareto" in out
        doc = json.loads(out_json.read_text())
        assert doc["kind"] == "tz-frontier-report"
        # 4 k-using backends at one k + 3 k-free backends.
        assert len(doc["points"]) == 7
        assert any(p["pareto"] for p in doc["points"])
        assert "## Pareto frontier" in out_md.read_text()

    def test_frontier_backend_subset(self, capsys, tmp_path):
        assert (
            main(
                [
                    "frontier",
                    "--graphs", "gnp",
                    "--n", "60",
                    "--k", "2",
                    "--pairs", "40",
                    "--backends", "tz", "tree",
                    "--seed", "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "tz" in out and "tree" in out and "oracle" not in out

    def test_build_method_flag_deprecated(self, capsys):
        assert main(["build", "--n", "64", "--method", "vectorized"]) == 0
        err = capsys.readouterr().err
        assert "--method is deprecated" in err

    def test_profile_prints_span_tree(self, capsys, tmp_path):
        assert (
            main(
                [
                    "profile",
                    "--n", "256",
                    "--k", "2",
                    "--pairs", "2000",
                    "--store", str(tmp_path / "store"),
                    "--seed", "6",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        # The span tree covers build, compile, store save/load and route.
        for name in (
            "profile", "build.arrays", "engine.compile", "store.save",
            "store.load", "serve.route", "route.hop_loop",
        ):
            assert name in out, f"span {name!r} missing from profile output"
        assert "route.pairs_routed" in out  # and the counters table
        coverage = float(
            re.search(r"\((\d+(?:\.\d+)?)% coverage\)", out).group(1)
        )
        assert coverage >= 90.0
        # The CLI left the global registry disabled for the next command.
        from repro.obs import TELEMETRY

        assert not TELEMETRY.enabled

    def test_trace_and_metrics_flags_write_files(self, capsys, tmp_path):
        import json

        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.json"
        assert (
            main(
                [
                    "build",
                    "--n", "128",
                    "--k", "2",
                    "--seed", "2",
                    "--trace", str(trace),
                    "--metrics", str(metrics),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert f"wrote {trace}" in out and f"wrote {metrics}" in out
        header = json.loads(trace.read_text().splitlines()[0])
        assert header["schema"] == "tz-trace/v1" and header["spans"] > 0
        doc = json.loads(metrics.read_text())
        assert doc["schema"] == "tz-metrics/v1"
        assert doc["counters"]["build.cluster_entries"] > 0

    def test_serve_miss_then_hit(self, capsys, tmp_path):
        args = [
            "serve",
            "--graph",
            "gnp",
            "--n",
            "128",
            "--k",
            "2",
            "--pairs",
            "2000",
            "--seed",
            "4",
            "--store",
            str(tmp_path / "tzstore"),
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "store miss" in out and "pairs/s" in out
        assert main(args + ["--strict-verify"]) == 0
        out = capsys.readouterr().out
        assert "store hit" in out and "strict-verified" in out

    def test_serve_daemon_and_loadgen_cli(self, capsys, tmp_path):
        """``serve --daemon`` publishes + serves, ``loadgen`` drives it.

        The daemon's ``main()`` runs in a thread (so coverage sees the
        CLI path); the loadgen CLI runs in-process against it, then a
        ``shutdown`` op drains the daemon to a zero exit."""
        import json
        import threading
        import time

        from repro.serve import DaemonClient

        port_file = tmp_path / "port"
        report_json = tmp_path / "loadgen.json"
        rc = {}

        def daemon_main():
            rc["daemon"] = main(
                [
                    "serve", "--daemon",
                    "--graph", "gnp",
                    "--n", "96",
                    "--k", "2",
                    "--seed", "3",
                    "--store", str(tmp_path / "store"),
                    "--port", "0",
                    "--port-file", str(port_file),
                    "--queue-limit", "8",
                    "--timeout", "20",
                ]
            )

        thread = threading.Thread(target=daemon_main, daemon=True)
        thread.start()
        deadline = time.monotonic() + 60
        while not port_file.exists():
            assert time.monotonic() < deadline
            assert thread.is_alive(), "daemon exited before binding"
            time.sleep(0.05)
        port = port_file.read_text().strip()

        assert (
            main(
                [
                    "loadgen",
                    "--port", port,
                    "--users", "10",
                    "--connections", "2",
                    "--requests", "6",
                    "--batch", "32",
                    "--seed", "1",
                    "--json", str(report_json),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "serving" in out  # the daemon's ready line
        assert "pairs/s" in out and "p50" in out
        doc = json.loads(report_json.read_text())
        assert doc["kind"] == "tz-loadgen-report"
        assert doc["errors"] == 0 and doc["total_pairs"] == 6 * 32

        with DaemonClient("127.0.0.1", int(port)) as c:
            assert c.request({"op": "shutdown"})["ok"]
        thread.join(30)
        assert not thread.is_alive() and rc["daemon"] == 0
        assert "daemon drained" in capsys.readouterr().out

    def test_loadgen_unreachable_daemon_fails_cleanly(self, tmp_path):
        with pytest.raises(OSError):
            main(["loadgen", "--port", "1", "--requests", "1"])
