"""Unit and property tests for the bit-level codecs."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitio import (
    BitReader,
    BitWriter,
    bit_length,
    decode_port_sequence,
    delta_cost,
    encode_port_sequence,
    gamma_cost,
    port_sequence_cost,
    uint_cost,
)
from repro.errors import EncodingError


class TestBitWriter:
    def test_empty_writer_has_zero_bits(self):
        assert BitWriter().n_bits == 0

    def test_write_bit_counts(self):
        w = BitWriter()
        w.write_bit(1).write_bit(0).write_bit(1)
        assert w.n_bits == 3
        assert w.bits() == (1, 0, 1)

    def test_write_bit_rejects_non_bits(self):
        with pytest.raises(EncodingError):
            BitWriter().write_bit(2)

    def test_write_uint_big_endian(self):
        w = BitWriter()
        w.write_uint(5, 4)
        assert w.bits() == (0, 1, 0, 1)

    def test_write_uint_overflow_rejected(self):
        with pytest.raises(EncodingError):
            BitWriter().write_uint(16, 4)

    def test_write_uint_negative_rejected(self):
        with pytest.raises(EncodingError):
            BitWriter().write_uint(-1, 4)

    def test_zero_width_zero_value_ok(self):
        w = BitWriter()
        w.write_uint(0, 0)
        assert w.n_bits == 0

    def test_getvalue_pads_with_zeros(self):
        w = BitWriter()
        w.write_bits([1, 1, 1])
        assert w.getvalue() == bytes([0b11100000])

    def test_extend_concatenates(self):
        a, b = BitWriter(), BitWriter()
        a.write_uint(3, 2)
        b.write_uint(1, 2)
        a.extend(b)
        assert a.bits() == (1, 1, 0, 1)


class TestUnaryGammaDelta:
    def test_unary_round_trip(self):
        w = BitWriter()
        w.write_unary(4)
        assert BitReader(w).read_unary() == 4

    def test_unary_negative_rejected(self):
        with pytest.raises(EncodingError):
            BitWriter().write_unary(-1)

    def test_gamma_one_is_single_bit(self):
        w = BitWriter()
        w.write_gamma(1)
        assert w.n_bits == 1

    def test_gamma_rejects_zero(self):
        with pytest.raises(EncodingError):
            BitWriter().write_gamma(0)

    def test_delta_rejects_zero(self):
        with pytest.raises(EncodingError):
            BitWriter().write_delta(0)

    @given(st.integers(min_value=1, max_value=10**9))
    @settings(max_examples=60, deadline=None)
    def test_gamma_round_trip(self, value):
        w = BitWriter()
        w.write_gamma(value)
        assert BitReader(w).read_gamma() == value
        assert w.n_bits == gamma_cost(value)

    @given(st.integers(min_value=1, max_value=10**9))
    @settings(max_examples=60, deadline=None)
    def test_delta_round_trip(self, value):
        w = BitWriter()
        w.write_delta(value)
        assert BitReader(w).read_delta() == value
        assert w.n_bits == delta_cost(value)

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=40, deadline=None)
    def test_gamma0_delta0_round_trip(self, value):
        w = BitWriter()
        w.write_gamma0(value)
        w.write_delta0(value)
        r = BitReader(w)
        assert r.read_gamma0() == value
        assert r.read_delta0() == value

    def test_delta_beats_gamma_for_large_values(self):
        assert delta_cost(10**6) < gamma_cost(10**6)

    @given(st.lists(st.integers(min_value=1, max_value=5000), max_size=12))
    @settings(max_examples=50, deadline=None)
    def test_concatenated_gammas_self_delimit(self, values):
        w = BitWriter()
        for v in values:
            w.write_gamma(v)
        r = BitReader(w)
        assert [r.read_gamma() for _ in values] == values
        assert r.remaining == 0


class TestBitReader:
    def test_reader_from_bytes(self):
        r = BitReader(bytes([0b10110000]))
        assert r.read_uint(4) == 0b1011

    def test_exhaustion_raises(self):
        r = BitReader(BitWriter())
        with pytest.raises(EncodingError):
            r.read_bit()

    def test_read_uint_partial_exhaustion(self):
        w = BitWriter()
        w.write_bit(1)
        with pytest.raises(EncodingError):
            BitReader(w).read_uint(2)

    def test_position_tracks(self):
        w = BitWriter()
        w.write_uint(7, 3)
        r = BitReader(w)
        r.read_bit()
        assert r.position == 1
        assert r.remaining == 2


class TestPortSequences:
    @given(st.lists(st.integers(min_value=1, max_value=4096), max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_round_trip(self, ports):
        w = encode_port_sequence(ports)
        assert decode_port_sequence(BitReader(w)) == ports
        assert w.n_bits == port_sequence_cost(ports)

    def test_rejects_zero_port(self):
        with pytest.raises(EncodingError):
            encode_port_sequence([0])

    def test_cost_grows_with_port_magnitude(self):
        assert port_sequence_cost([2, 2]) < port_sequence_cost([1000, 1000])

    def test_rank_product_bound_implies_log_cost(self):
        # Ranks multiplying to <= n cost at most ~2 log2 n + count bits.
        n = 1 << 16
        ports = [4, 4, 4, 4, 4, 4, 4, 4]  # product = 4^8 = n
        cost = sum(gamma_cost(p) for p in ports)
        import math

        assert cost <= 2 * math.log2(n) + len(ports)


def test_bit_length_conventions():
    assert bit_length(0) == 1
    assert bit_length(1) == 1
    assert bit_length(255) == 8
    with pytest.raises(EncodingError):
        bit_length(-3)


def test_uint_cost_validates():
    assert uint_cost(7, 3) == 3
    with pytest.raises(EncodingError):
        uint_cost(8, 3)
