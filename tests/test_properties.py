"""Cross-cutting property tests of the load-bearing invariants.

Each property here is one the proofs in the module docstrings actually
use; hypothesis drives randomized instances at them.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clusters import bunches, compute_all_clusters
from repro.core.landmarks import build_hierarchy
from repro.core.scheme_k import build_tz_scheme
from repro.graphs import generators as gen
from repro.graphs.ports import assign_ports
from repro.graphs.shortest_paths import all_pairs_shortest_paths
from repro.sim.network import Network


def instance(seed: int, n: int = 36):
    g = gen.gnp(n, 0.15, rng=seed, weights=(1, 5))
    return g, all_pairs_shortest_paths(g)


class TestHierarchyProperties:
    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=12, deadline=None)
    def test_pivot_distance_chain(self, seed):
        """d_0(v) ≤ d_1(v) ≤ … and each pivot realizes its level."""
        g, D = instance(seed)
        h = build_hierarchy(g, 3, rng=seed)
        for v in range(g.n):
            for i in range(h.k):
                assert h.dist[i, v] <= h.dist[i + 1, v]
                assert D[h.pivot[i, v], v] == h.dist[i, v]

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=12, deadline=None)
    def test_vertex_in_every_pivot_cluster(self, seed):
        """The labels-exist invariant: v ∈ C(p_i(v)) for every level."""
        g, D = instance(seed)
        h = build_hierarchy(g, 3, rng=seed)
        for v in range(g.n):
            for i in range(h.k):
                w = int(h.pivot[i, v])
                lvl = int(h.level_of[w])
                # strict membership or w == v
                assert w == v or D[w, v] < h.dist[lvl + 1, v]


class TestClusterProperties:
    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=10, deadline=None)
    def test_center_in_own_cluster_and_duality(self, seed):
        g, D = instance(seed)
        h = build_hierarchy(g, 2, rng=seed)
        clusters = {}
        for i in range(h.k):
            centers = [int(w) for w in h.levels[i] if h.level_of[w] == i]
            clusters.update(
                compute_all_clusters(g, centers, h.dist[i + 1], method="dense")
            )
        assert set(clusters) == set(range(g.n))
        for w, c in clusters.items():
            assert w in c
        B = bunches(clusters)
        assert sum(len(c) for c in clusters.values()) == sum(
            len(b) for b in B.values()
        )

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=10, deadline=None)
    def test_top_level_clusters_span(self, seed):
        g, D = instance(seed)
        h = build_hierarchy(g, 2, rng=seed)
        top = [int(w) for w in h.levels[1]]
        clusters = compute_all_clusters(g, top, h.dist[2], method="dense")
        for w in top:
            assert len(clusters[w]) == g.n


class TestRouteProperties:
    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=8, deadline=None)
    def test_route_weight_equals_path_weight(self, seed):
        """The simulator's accumulated weight is the physical path's."""
        from repro.graphs.shortest_paths import path_weight

        g, D = instance(seed, n=32)
        pg = assign_ports(g, "random", rng=seed)
        scheme = build_tz_scheme(g, pg, k=2, rng=seed)
        net = Network(pg, scheme)
        rng = np.random.default_rng(seed)
        for _ in range(6):
            s, t = rng.integers(0, g.n, 2)
            if s == t:
                continue
            res = net.route(int(s), int(t), strict=True)
            assert res.weight == pytest.approx(path_weight(g, res.path))
            assert res.weight >= D[int(s), int(t)] - 1e-9

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=8, deadline=None)
    def test_header_immutable_after_commit(self, seed):
        """After the source commits, the tree field never changes."""
        g, D = instance(seed, n=32)
        pg = assign_ports(g, "random", rng=seed)
        scheme = build_tz_scheme(g, pg, k=2, rng=seed)
        s, t = 0, g.n - 1
        header = scheme.initial_header(s, t)
        port, header = scheme.decide(s, header)
        committed = header.tree
        u = s
        hops = 0
        while port is not None and hops < 4 * g.n:
            u = pg.step(u, port)
            port, header = scheme.decide(u, header)
            assert header.tree == committed
            hops += 1

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=6, deadline=None)
    def test_route_is_loop_free(self, seed):
        """TZ routes never revisit a vertex (tree paths are simple)."""
        g, D = instance(seed, n=32)
        pg = assign_ports(g, "random", rng=seed)
        scheme = build_tz_scheme(g, pg, k=3, rng=seed)
        net = Network(pg, scheme)
        rng = np.random.default_rng(seed + 1)
        for _ in range(6):
            s, t = rng.integers(0, g.n, 2)
            if s == t:
                continue
            res = net.route(int(s), int(t), strict=True)
            assert len(res.path) == len(set(res.path))


class TestSizeAccountingProperties:
    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=6, deadline=None)
    def test_label_bits_positive_and_bounded(self, seed):
        g, D = instance(seed, n=40)
        pg = assign_ports(g, "sorted")
        scheme = build_tz_scheme(g, pg, k=3, rng=seed)
        import math

        budget = 16 * math.log2(g.n) ** 2
        for v in range(g.n):
            bits = scheme.label_bits(v)
            assert 0 < bits <= budget

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=6, deadline=None)
    def test_table_bits_match_serialized_stream(self, seed):
        from repro.core.serialize import (
            encode_table,
            table_prefix_overhead,
        )

        g, D = instance(seed, n=30)
        pg = assign_ports(g, "sorted")
        scheme = build_tz_scheme(g, pg, k=2, rng=seed)
        degs = g.degrees()
        max_port = int(degs.max())
        for u in range(0, g.n, 7):
            table = scheme.tables[u]
            stream = encode_table(
                table, g.n, scheme.tree_sizes, scheme.tree_sizes[u], max_port
            )
            assert stream.n_bits == table.size_bits(
                g.n, scheme.tree_sizes, scheme.tree_sizes[u], max_port
            ) + table_prefix_overhead(table)
