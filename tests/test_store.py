"""The persistent scheme store: round trips, corruption, serving.

The contract under test is the acceptance bar of the store PR: a scheme
saved by :class:`SchemeStore` and loaded via mmap must route **bit-for-
bit identically** to the freshly built in-memory scheme (delivered,
weight, hops, header bits), across generator families; and a damaged
store file must raise a clean :class:`EncodingError` — never return
wrong routes.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core.build import build_arrays
from repro.errors import EncodingError
from repro.graphs.ports import assign_ports
from repro.rng import make_rng, sample_pairs
from repro.sim.engine.batch import BatchRouter
from repro.sim.engine.compile import compile_from_arrays
from repro.store import (
    FORMAT_VERSION,
    RouteService,
    SchemeStore,
    graph_content_hash,
    port_hash,
    read_container,
    scheme_key,
    write_container,
)
from strategies import FAMILIES, family_from_seed

ROUTE_FIELDS = ("delivered", "weight", "hops", "max_header_bits", "failure_code")


def _build_instance(family: str, seed: int, k: int):
    graph = family_from_seed(seed, family, n=36)
    ported = assign_ports(graph, "random", rng=seed + 9)
    return graph, ported


def _assert_routes_equal(a, b):
    for name in ROUTE_FIELDS:
        assert np.array_equal(getattr(a, name), getattr(b, name)), name


# ----------------------------------------------------------------------
# Container format
# ----------------------------------------------------------------------
class TestContainer:
    def test_round_trip_arrays_and_meta(self, tmp_path):
        path = tmp_path / "x.tzs"
        arrays = {
            "a": np.arange(7, dtype=np.int64),
            "b": np.linspace(0, 1, 5),
            "c": np.zeros((2, 3), dtype=np.int64),
            "empty": np.zeros(0, dtype=np.float64),
            "flags": np.array([True, False]),
        }
        write_container(path, arrays, {"hello": "world"})
        header, back = read_container(path, verify_data=True)
        assert header["meta"] == {"hello": "world"}
        assert set(back) == set(arrays)
        for name, arr in arrays.items():
            assert np.array_equal(back[name], arr)
            assert back[name].dtype == arr.dtype

    def test_mmap_views_share_one_map(self, tmp_path):
        path = tmp_path / "x.tzs"
        write_container(
            path, {"a": np.arange(4, dtype=np.int64), "b": np.ones(3)}, {}
        )
        _, back = read_container(path, mmap=True)
        bases = {a.base.base if a.base.base is not None else a.base for a in back.values()}
        assert len(bases) == 1  # zero-copy: every array views one mmap

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "x.tzs"
        write_container(path, {"a": np.arange(3)}, {})
        data = bytearray(path.read_bytes())
        data[:4] = b"NOPE"
        path.write_bytes(data)
        with pytest.raises(EncodingError, match="magic"):
            read_container(path)

    def test_version_mismatch(self, tmp_path):
        path = tmp_path / "x.tzs"
        write_container(path, {"a": np.arange(3)}, {})
        data = bytearray(path.read_bytes())
        data[8] = FORMAT_VERSION + 1
        path.write_bytes(data)
        with pytest.raises(EncodingError, match="version"):
            read_container(path)

    def test_truncated_file(self, tmp_path):
        path = tmp_path / "x.tzs"
        write_container(path, {"a": np.arange(100, dtype=np.int64)}, {})
        data = path.read_bytes()
        for cut in (4, len(data) // 2, len(data) - 8):
            path.write_bytes(data[:cut])
            with pytest.raises(EncodingError):
                read_container(path)

    def test_header_corruption(self, tmp_path):
        path = tmp_path / "x.tzs"
        write_container(path, {"a": np.arange(3)}, {})
        data = bytearray(path.read_bytes())
        data[30] ^= 0xFF  # inside the JSON header
        path.write_bytes(data)
        with pytest.raises(EncodingError, match="checksum"):
            read_container(path)

    def test_data_corruption_detected_on_verify(self, tmp_path):
        path = tmp_path / "x.tzs"
        write_container(path, {"a": np.arange(64, dtype=np.int64)}, {})
        data = bytearray(path.read_bytes())
        data[-5] ^= 0x40  # inside the array blob
        path.write_bytes(data)
        read_container(path)  # zero-copy open cannot see it...
        with pytest.raises(EncodingError, match="data checksum"):
            read_container(path, verify_data=True)  # ...verification must

    def test_not_a_file(self, tmp_path):
        with pytest.raises(EncodingError):
            read_container(tmp_path / "missing.tzs")


# ----------------------------------------------------------------------
# Store round trips: mmap-loaded must route bit-identically
# ----------------------------------------------------------------------
class TestStoreRoundTrip:
    @pytest.mark.parametrize("family", FAMILIES)
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_route_bit_identical_across_families(self, tmp_path, family, k):
        graph, ported = _build_instance(family, seed=17, k=k)
        arrays = build_arrays(graph, k, ported=ported, rng=5)
        compiled = compile_from_arrays(arrays, ported)

        store = SchemeStore(tmp_path)
        store.save(graph, ported, arrays, seed=5, compiled=compiled)
        stored = store.load(store.key_for(graph, k, 5, ported))

        # Stored arrays are the built arrays, byte for byte.
        from repro.store.schemes import ARRAYS_FIELDS

        for name in ARRAYS_FIELDS:
            assert np.array_equal(
                getattr(stored.arrays, name), getattr(arrays, name)
            ), name

        pairs = sample_pairs(make_rng(2), graph.n, 2000)
        pairs = np.vstack([pairs, np.repeat(np.arange(4), 2).reshape(-1, 2)])
        fresh = BatchRouter.from_compiled(compiled).route_pairs(pairs)
        loaded = stored.router().route_pairs(pairs)
        _assert_routes_equal(fresh, loaded)

    def test_get_or_build_caches(self, tmp_path):
        graph, ported = _build_instance("gnp", seed=3, k=2)
        store = SchemeStore(tmp_path)
        key = store.key_for(graph, 2, 7, ported)
        assert key not in store
        first = store.get_or_build(graph, 2, 7, ported=ported)
        assert key in store and first.key == key
        mtime = first.path.stat().st_mtime_ns
        again = store.get_or_build(graph, 2, 7, ported=ported)
        assert again.path.stat().st_mtime_ns == mtime  # hit: no rewrite
        pairs = sample_pairs(make_rng(0), graph.n, 500)
        _assert_routes_equal(
            first.router().route_pairs(pairs), again.router().route_pairs(pairs)
        )

    def test_key_separates_inputs(self, tmp_path):
        graph, ported = _build_instance("gnp", seed=3, k=2)
        other_ports = assign_ports(graph, "sorted")
        g_sha, p_sha = graph_content_hash(graph), port_hash(ported)
        assert scheme_key(g_sha, 2, 7, p_sha) != scheme_key(g_sha, 3, 7, p_sha)
        assert scheme_key(g_sha, 2, 7, p_sha) != scheme_key(g_sha, 2, 8, p_sha)
        assert scheme_key(g_sha, 2, 7, p_sha) != scheme_key(
            g_sha, 2, 7, port_hash(other_ports)
        )

    def test_handshake_variant_gets_its_own_key(self, tmp_path):
        """The §4 handshake selects different trees; its compiled form
        must never share a store entry with the plain scheme."""
        graph, ported = _build_instance("gnp", seed=3, k=2)
        arrays = build_arrays(graph, 2, ported=ported, rng=7)
        plain = compile_from_arrays(arrays, ported)
        store = SchemeStore(tmp_path)
        p_plain = store.save(graph, ported, arrays, seed=7, compiled=plain)
        p_hand = store.save(
            graph, ported, arrays, seed=7, compiled=plain.with_handshake()
        )
        assert p_plain != p_hand
        assert store.load(p_plain).compiled.handshake is False
        assert store.load(p_hand).compiled.handshake is True
        # get_or_build (plain) must hit the plain entry.
        assert store.get_or_build(graph, 2, 7, ported=ported).path == p_plain

    def test_strict_upgrade_keeps_stored_arrays(self, tmp_path):
        """A digest-less entry served strictly is upgraded in place from
        the checksum-verified stored arrays — not rebuilt."""
        graph, ported = _build_instance("gnp", seed=12, k=2)
        store = SchemeStore(tmp_path)
        first = store.get_or_build(graph, 2, 9, ported=ported)
        assert "serialize_sha256" not in first.meta
        before = np.array(first.arrays.ent_dist)
        upgraded = store.get_or_build(graph, 2, 9, ported=ported, strict=True)
        assert "serialize_sha256" in upgraded.meta
        assert upgraded.path == first.path
        assert np.array_equal(np.array(upgraded.arrays.ent_dist), before)
        # And the upgraded file now passes a plain strict load.
        store.load(upgraded.path, strict=True, graph=graph, ported=ported)

    def test_graph_hash_sees_weights(self):
        from repro.graphs.graph import Graph

        a = Graph(3, [(0, 1), (1, 2)], [1.0, 1.0])
        b = Graph(3, [(0, 1), (1, 2)], [1.0, 2.0])
        assert graph_content_hash(a) != graph_content_hash(b)

    def test_fresh_process_routes_identically(self, tmp_path):
        """The acceptance-criterion shape: save here, mmap-load in a
        brand-new interpreter, compare routed columns bit-for-bit."""
        graph, ported = _build_instance("gnp", seed=23, k=2)
        store = SchemeStore(tmp_path)
        stored = store.get_or_build(graph, 2, 11, ported=ported)
        pairs = sample_pairs(make_rng(4), graph.n, 1500)
        mine = stored.router().route_pairs(pairs)
        ref = tmp_path / "expected.npz"
        np.savez(
            ref,
            pairs=pairs,
            **{name: getattr(mine, name) for name in ROUTE_FIELDS},
        )
        script = (
            "import numpy as np, sys\n"
            "from repro.store import RouteService\n"
            "exp = np.load(sys.argv[2])\n"
            "res = RouteService(sys.argv[1]).route(exp['pairs'])\n"
            f"names = {ROUTE_FIELDS!r}\n"
            "for name in names:\n"
            "    assert np.array_equal(getattr(res, name), exp[name]), name\n"
            "print('OK')\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", script, str(stored.path), str(ref)],
            capture_output=True,
            text=True,
            cwd=str(Path(__file__).parent.parent),
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        )
        assert out.returncode == 0 and out.stdout.strip() == "OK", out.stderr


# ----------------------------------------------------------------------
# Strict verification: the bit-exact codec replay
# ----------------------------------------------------------------------
class TestStrictVerify:
    def test_strict_round_trip(self, tmp_path):
        graph, ported = _build_instance("ba", seed=5, k=2)
        store = SchemeStore(tmp_path)
        stored = store.get_or_build(graph, 2, 1, ported=ported, strict=True)
        assert "serialize_sha256" in stored.meta
        # Explicit strict load over the same file also passes.
        store.load(stored.path, strict=True, graph=graph, ported=ported)

    def test_strict_needs_context(self, tmp_path):
        graph, ported = _build_instance("ba", seed=5, k=2)
        store = SchemeStore(tmp_path)
        stored = store.get_or_build(graph, 2, 1, ported=ported, strict=True)
        with pytest.raises(EncodingError, match="strict"):
            store.load(stored.path, strict=True)

    def test_strict_rejects_wrong_graph(self, tmp_path):
        graph, ported = _build_instance("ba", seed=5, k=2)
        other = family_from_seed(6, "ba", n=36)
        store = SchemeStore(tmp_path)
        stored = store.get_or_build(graph, 2, 1, ported=ported, strict=True)
        with pytest.raises(EncodingError, match="different graph"):
            store.load(
                stored.path,
                strict=True,
                graph=other,
                ported=assign_ports(other, "sorted"),
            )

    def test_strict_catches_array_tampering(self, tmp_path):
        """Flip one byte inside a distance array: the zero-copy open
        stays silent, strict verification must refuse to serve."""
        graph, ported = _build_instance("grid", seed=2, k=2)
        store = SchemeStore(tmp_path)
        stored = store.get_or_build(graph, 2, 3, ported=ported, strict=True)
        path = stored.path
        del stored  # release the mmap before rewriting
        data = bytearray(path.read_bytes())
        data[-7] ^= 0x08
        path.write_bytes(data)
        store.load(path)  # non-strict open cannot see it
        with pytest.raises(EncodingError, match="checksum"):
            store.load(path, strict=True, graph=graph, ported=ported)


# ----------------------------------------------------------------------
# Serving layer
# ----------------------------------------------------------------------
class TestRouteService:
    @pytest.fixture(scope="class")
    def served(self, tmp_path_factory):
        graph, ported = _build_instance("gnp", seed=8, k=3)
        store = SchemeStore(tmp_path_factory.mktemp("store"))
        stored = store.get_or_build(graph, 3, 2, ported=ported)
        return graph, stored

    def test_service_metadata(self, served):
        graph, stored = served
        service = RouteService(stored.path)
        assert service.n == graph.n and service.k == 3

    def test_sharded_equals_single_process(self, served):
        graph, stored = served
        service = RouteService(stored.path)
        pairs = sample_pairs(make_rng(9), graph.n, 4000)
        single = service.route(pairs)
        for shards in (2, 3):
            sharded = service.route(pairs, shards=shards)
            _assert_routes_equal(single, sharded)
            assert np.array_equal(single.source, sharded.source)
            assert np.array_equal(single.dest, sharded.dest)
            assert np.array_equal(single.tree, sharded.tree)

    def test_bad_pairs_shape(self, served):
        _, stored = served
        from repro.errors import RoutingError

        with pytest.raises(RoutingError):
            RouteService(stored.path).route(np.arange(9).reshape(3, 3))

    def test_dead_edges_need_ported(self, served):
        _, stored = served
        from repro.errors import RoutingError

        router = stored.router()  # no ported graph attached
        with pytest.raises(RoutingError, match="dead_edges"):
            router.route_pairs(
                np.array([[0, 1]]), dead_edges=[(0, 1)]
            )
