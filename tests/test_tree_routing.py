"""TZ tree routing (§2): delivery on every pair, label sizes, and the
interval-routing baseline."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitio import BitReader
from repro.errors import LabelError, RoutingError
from repro.graphs import generators as gen
from repro.graphs.ports import assign_ports, designer_ports_for_tree
from repro.rng import make_rng
from repro.trees.interval import IntervalRoutingScheme
from repro.trees.label_codec import (
    TreeLabel,
    decode_tree_label,
    encode_tree_label,
    tree_label_bits,
)
from repro.trees.tz_tree import build_tree_router, decide_from_record

from test_trees import rooted_from_graph


def route_in_tree(router, ported, s: int, t: int):
    """Drive the tree router hop by hop; returns the vertex path."""
    label = router.labels[t]
    path = [s]
    u = s
    for _ in range(2 * router.tree_size + 4):
        port = router.decide(u, label)
        if port is None:
            return path
        u = ported.step(u, port)
        path.append(u)
    raise AssertionError("tree routing looped")


def tree_instance(family: str, n: int, seed: int, ports: str):
    tree_graph = gen.TREE_FAMILIES[family](n, make_rng(seed))
    rooted = rooted_from_graph(tree_graph)
    if ports == "designer":
        pg = designer_ports_for_tree(tree_graph, rooted)
        router = build_tree_router(rooted, pg, port_model="designer")
    else:
        pg = assign_ports(tree_graph, "random", rng=seed + 1)
        router = build_tree_router(rooted, pg, port_model="fixed")
    return tree_graph, rooted, pg, router


class TestDelivery:
    @pytest.mark.parametrize("family", sorted(gen.TREE_FAMILIES))
    @pytest.mark.parametrize("ports", ["designer", "fixed"])
    def test_all_pairs_delivered(self, family, ports):
        tree_graph, rooted, pg, router = tree_instance(family, 40, 3, ports)
        n = tree_graph.n
        for s in range(n):
            for t in range(n):
                path = route_in_tree(router, pg, s, t)
                assert path[-1] == t

    @pytest.mark.parametrize("ports", ["designer", "fixed"])
    def test_route_follows_unique_tree_path(self, ports):
        tree_graph, rooted, pg, router = tree_instance("random", 50, 7, ports)
        for s in range(0, 50, 7):
            for t in range(0, 50, 5):
                path = route_in_tree(router, pg, s, t)
                assert path == rooted.path(s, t)

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=20, deadline=None)
    def test_property_random_trees_random_pairs(self, seed):
        tree_graph, rooted, pg, router = tree_instance("random", 35, seed, "fixed")
        rng = make_rng(seed)
        for _ in range(10):
            s = int(rng.integers(0, tree_graph.n))
            t = int(rng.integers(0, tree_graph.n))
            assert route_in_tree(router, pg, s, t)[-1] == t

    def test_decide_outside_tree_raises(self):
        tree_graph, rooted, pg, router = tree_instance("random", 20, 5, "fixed")
        with pytest.raises(RoutingError):
            router.decide(10**6, router.labels[0])


class TestRecords:
    def test_records_are_constant_words(self):
        _, _, pg, router = tree_instance("random", 200, 9, "fixed")
        max_port = int(pg.graph.degrees().max())
        n = router.tree_size
        # O(1) words: never more than 6 fixed-width fields.
        bound = 4 * max(1, (n - 1).bit_length()) + 2 * max(1, max_port.bit_length())
        for v in range(n):
            assert router.record_bits(v, max_port) <= bound

    def test_root_has_no_parent_port(self):
        _, rooted, _, router = tree_instance("random", 30, 4, "fixed")
        assert router.records[rooted.root].parent_port == 0

    def test_leaf_heavy_interval_empty(self):
        _, rooted, _, router = tree_instance("random", 30, 4, "fixed")
        leaves = [v for v in rooted.vertices if not rooted.children[v]]
        for leaf in leaves:
            r = router.records[leaf]
            assert r.heavy_finish == r.f  # vacuous heavy interval

    def test_decide_from_record_arrival(self):
        _, _, _, router = tree_instance("random", 30, 4, "fixed")
        for v in range(5):
            assert decide_from_record(router.records[v], router.labels[v]) is None

    def test_designer_model_validates_port_rank(self):
        tree_graph = gen.random_tree(30, rng=2)
        rooted = rooted_from_graph(tree_graph)
        pg = assign_ports(tree_graph, "random", rng=3)  # not designer ports
        with pytest.raises(LabelError):
            build_tree_router(rooted, pg, port_model="designer")

    def test_unknown_port_model_rejected(self):
        tree_graph = gen.random_tree(10, rng=2)
        rooted = rooted_from_graph(tree_graph)
        pg = assign_ports(tree_graph, "sorted")
        with pytest.raises(LabelError):
            build_tree_router(rooted, pg, port_model="nope")


class TestLabelSizes:
    def test_designer_labels_near_log_n(self):
        """The (1+o(1))·log n shape: measured labels within a small
        constant of log₂ n on balanced trees."""
        for n in (64, 256, 1024):
            _, _, _, router = tree_instance("random", n, 13, "designer")
            logn = math.log2(router.tree_size)
            assert router.max_label_bits() <= 4 * logn + 16

    @pytest.mark.parametrize("family", sorted(gen.TREE_FAMILIES))
    def test_designer_rank_product_bound(self, family):
        """Theorem 2.1's engine: with designer ports the light-port
        gamma costs along any root path sum to at most
        2·log₂(n) + light_depth bits (ranks multiply to ≤ n)."""
        _, rooted, _, router = tree_instance(family, 200, 21, "designer")
        n = router.tree_size
        for v in range(n):
            ports = router.labels[v].light_ports
            cost = sum(2 * (p.bit_length() - 1) + 1 for p in ports)
            assert cost <= 2 * math.log2(n) + len(ports)

    def test_designer_beats_adversarial_on_skewed_spider(self):
        """A spider with legs of decreasing length, ids arranged so the
        id-sorted ('adversarial' here) assignment gives the big legs the
        *largest* ports; designer ports give them the smallest ranks, so
        deep vertices get strictly cheaper labels."""
        from repro.graphs.graph import GraphBuilder

        leg_lengths = [64, 32, 16, 8, 4, 2] + [1] * 24
        n = 1 + sum(leg_lengths)
        b = GraphBuilder(n)
        # Allocate short legs the SMALL ids (right after the hub) so that
        # the sorted port assignment hands long legs the big port numbers.
        vid = 1
        first_vertices = []
        for length in sorted(leg_lengths):
            prev = 0
            start = vid
            for _ in range(length):
                b.add_edge(prev, vid)
                prev = vid
                vid += 1
            first_vertices.append(start)
        tree_graph = b.build()
        rooted = rooted_from_graph(tree_graph)
        designer = designer_ports_for_tree(tree_graph, rooted)
        adversarial = assign_ports(tree_graph, "sorted")
        r_d = build_tree_router(rooted, designer, port_model="designer")
        r_a = build_tree_router(rooted, adversarial, port_model="fixed")
        # The longest leg is the hub's heavy child (no light edge); the
        # *second*-longest leg's hub edge is light: designer rank 2 vs a
        # large id-sorted port. Its tip has the largest ids below n-1.
        second_leg_tip = n - 1 - 64  # ids: second leg occupies the block
        assert rooted.light_depth[second_leg_tip] == 1
        assert (
            r_d.labels[second_leg_tip].light_ports[0]
            < r_a.labels[second_leg_tip].light_ports[0]
        )
        assert r_d.label_bits(second_leg_tip) < r_a.label_bits(second_leg_tip)

    def test_path_labels_are_minimal(self):
        """A path is one heavy chain: labels are just the DFS number."""
        _, _, _, router = tree_instance("path", 128, 1, "designer")
        for v in range(router.tree_size):
            assert len(router.labels[v].light_ports) == 0
        assert router.max_label_bits() <= math.ceil(math.log2(128)) + 4

    def test_label_bits_match_encoder(self):
        _, _, _, router = tree_instance("random", 90, 6, "fixed")
        for v in range(router.tree_size):
            enc = encode_tree_label(router.labels[v], router.tree_size)
            assert enc.n_bits == router.label_bits(v)


class TestLabelCodec:
    @given(
        st.integers(min_value=1, max_value=100000),
        st.lists(st.integers(min_value=1, max_value=512), max_size=10),
    )
    @settings(max_examples=50, deadline=None)
    def test_round_trip(self, tree_size, ports):
        f = tree_size - 1
        label = TreeLabel(f, tuple(ports))
        w = encode_tree_label(label, tree_size)
        back = decode_tree_label(BitReader(w), tree_size)
        assert back == label
        assert w.n_bits == tree_label_bits(label, tree_size)

    def test_f_out_of_range_rejected(self):
        with pytest.raises(LabelError):
            encode_tree_label(TreeLabel(5, ()), 5)

    def test_negative_f_rejected(self):
        with pytest.raises(LabelError):
            TreeLabel(-1, ())

    def test_zero_port_rejected(self):
        with pytest.raises(LabelError):
            TreeLabel(0, (0,))


class TestIntervalBaseline:
    def test_all_pairs_delivered(self):
        tree_graph = gen.random_tree(40, rng=31)
        rooted = rooted_from_graph(tree_graph)
        pg = assign_ports(tree_graph, "random", rng=32)
        scheme = IntervalRoutingScheme(rooted, pg)
        for s in range(tree_graph.n):
            for t in range(tree_graph.n):
                u, hops = s, 0
                target = scheme.label(t)
                while True:
                    port = scheme.decide(u, target)
                    if port is None:
                        break
                    u = pg.step(u, port)
                    hops += 1
                    assert hops <= tree_graph.n
                assert u == t

    def test_labels_are_log_n(self):
        tree_graph = gen.random_tree(100, rng=33)
        rooted = rooted_from_graph(tree_graph)
        pg = assign_ports(tree_graph, "sorted")
        scheme = IntervalRoutingScheme(rooted, pg)
        assert scheme.label_bits() == math.ceil(math.log2(100))

    def test_table_grows_with_degree(self):
        star = gen.star_tree(50)
        rooted = rooted_from_graph(star)
        pg = assign_ports(star, "sorted")
        scheme = IntervalRoutingScheme(rooted, pg)
        max_port = 49
        hub = scheme.record_bits(0, max_port)
        leaf = scheme.record_bits(1, max_port)
        assert hub > 10 * leaf  # Θ(deg) vs O(1)

    def test_outside_tree_raises(self):
        tree_graph = gen.random_tree(10, rng=34)
        rooted = rooted_from_graph(tree_graph)
        pg = assign_ports(tree_graph, "sorted")
        scheme = IntervalRoutingScheme(rooted, pg)
        with pytest.raises(RoutingError):
            scheme.decide(99, 0)

    def test_tz_records_smaller_than_interval_on_hubs(self):
        star = gen.star_tree(200)
        rooted = rooted_from_graph(star)
        pg = assign_ports(star, "sorted")
        router = build_tree_router(rooted, pg, port_model="fixed")
        interval = IntervalRoutingScheme(rooted, pg)
        max_port = 199
        assert router.record_bits(0, max_port) < interval.record_bits(0, max_port) / 5
