"""Incremental maintenance: deltas, the patch builder, versioned store,
hot-swapping service, and the churn scenario loop.

The load-bearing contract here is the **differential gate**: for any
delta the patch builder accepts, ``patch_arrays`` must produce arrays
*bit-for-bit identical* to a fresh vectorized build of the mutated
graph under the mapped hierarchy — checked through the store's
bit-exact :func:`~repro.store.serialize_digest`.  Everything else
(version lineages, pointer swaps, churn epochs) layers on top of that
equality.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest
from hypothesis import given, settings

from repro import kernels
from repro.core.build import build_arrays, patch_arrays
from repro.errors import GraphError, PreprocessingError, RoutingError
from repro.graphs.delta import GraphDelta, apply_delta
from repro.graphs.ports import assign_ports
from repro.obs import TELEMETRY
from repro.sim.engine.batch import BatchRouter
from repro.sim.engine.compile import compile_from_arrays
from repro.store import SchemeStore, RouteService, serialize_digest

from strategies import (
    DELTA_CLASSES,
    delta_from_seed,
    family_from_seed,
    family_graphs,
    graph_deltas,
    seeds,
)

GATE_FAMILIES = ("gnp", "ba", "grid")


def _fresh_digest(patched):
    """Digest of a from-scratch vectorized build of the patched state.

    Uses the patch result's own (mapped) hierarchy and ports, so the
    only difference from the patch is *how* the arrays were produced.
    """
    fresh = build_arrays(
        patched.graph,
        patched.arrays.k,
        ported=patched.ported,
        hierarchy=patched.hierarchy,
    )
    return serialize_digest(patched.graph, patched.ported, fresh)


def _patch_some_seed(family, k, classes, tries=10):
    """First seed in range whose delta the patch builder accepts."""
    for seed in range(tries):
        graph = family_from_seed(seed, family)
        arrays = build_arrays(graph, k, rng=seed)
        ported = assign_ports(graph, "sorted")
        delta = delta_from_seed(graph, seed, classes=classes)
        try:
            return patch_arrays(arrays, graph, delta, ported=ported)
        except (PreprocessingError, GraphError):
            continue
    pytest.fail(
        f"no accepted delta in {tries} seeds for {family} k={k} {classes}"
    )


class TestGraphDelta:
    def test_canonicalization_and_digest(self):
        a = GraphDelta(weight_updates=((3, 1, 5), (0, 2, 4.0)))
        b = GraphDelta(weight_updates=((2, 0, 4), (1, 3, 5.0)))
        assert a == b and a.digest() == b.digest()

    def test_classes_enumeration(self):
        d = GraphDelta(
            weight_updates=((0, 1, 2.0),),
            add_edges=((0, 5, 1.0),),
            drop_edges=((1, 2),),
            drop_nodes=(3,),
            add_nodes=1,
        )
        assert set(d.classes()) == {
            "weight", "edge-add", "edge-drop", "node-drop", "node-add"
        }
        assert not d.is_empty()
        assert GraphDelta().is_empty()

    def test_roundtrip_dict(self):
        d = GraphDelta(weight_updates=((0, 1, 2.0),), add_nodes=2)
        assert GraphDelta.from_dict(d.to_dict()) == d

    def test_apply_monotone_relabel(self):
        graph = family_from_seed(0, "gnp")
        drop = graph.n // 2
        new_graph, id_map = apply_delta(graph, GraphDelta(drop_nodes=(drop,)))
        assert new_graph.n == graph.n - 1
        assert id_map[drop] == -1
        survivors = id_map[id_map >= 0]
        assert np.array_equal(survivors, np.arange(graph.n - 1))

    def test_apply_rejects_missing_edge_drop(self):
        graph = family_from_seed(0, "grid")
        with pytest.raises(GraphError):
            apply_delta(graph, GraphDelta(drop_edges=((0, graph.n - 1),)))

    def test_apply_rejects_duplicate_edge_add(self):
        graph = family_from_seed(0, "gnp")
        u, v = (int(x) for x in graph.edges[0])
        with pytest.raises(GraphError):
            apply_delta(graph, GraphDelta(add_edges=((u, v, 1.0),)))


class TestPatchDifferentialGate:
    """patch == fresh vectorized rebuild, bit for bit, per delta class."""

    @pytest.mark.parametrize("family", GATE_FAMILIES)
    @pytest.mark.parametrize("k", [2, 3, 4])
    @pytest.mark.parametrize("cls", DELTA_CLASSES)
    def test_single_class(self, family, k, cls):
        patched = _patch_some_seed(family, k, (cls,))
        got = serialize_digest(patched.graph, patched.ported, patched.arrays)
        assert got == _fresh_digest(patched)

    @pytest.mark.parametrize("family", GATE_FAMILIES)
    def test_compound_delta(self, family):
        patched = _patch_some_seed(family, 3, DELTA_CLASSES)
        got = serialize_digest(patched.graph, patched.ported, patched.arrays)
        assert got == _fresh_digest(patched)

    def test_stats_account_for_every_entry(self):
        patched = _patch_some_seed("gnp", 2, ("weight",))
        s = patched.stats
        assert (
            s["entries_rebuilt"] + s["entries_reused"]
            == patched.arrays.entry_count
        )
        assert s["dirty_clusters"] + s["clean_clusters"] == patched.graph.n

    def test_empty_delta_is_identity(self):
        graph = family_from_seed(1, "gnp")
        arrays = build_arrays(graph, 2, rng=1)
        ported = assign_ports(graph, "sorted")
        patched = patch_arrays(arrays, graph, GraphDelta(), ported=ported)
        assert serialize_digest(
            patched.graph, patched.ported, patched.arrays
        ) == serialize_digest(graph, ported, arrays)


class TestPatchProperties:
    @given(family_graphs(), graph_deltas(), seeds(max_value=100))
    @settings(max_examples=12, deadline=None)
    def test_patch_matches_fresh_or_refuses(self, graph, make_delta, seed):
        arrays = build_arrays(graph, 3, rng=seed)
        ported = assign_ports(graph, "sorted")
        delta = make_delta(graph)
        try:
            patched = patch_arrays(arrays, graph, delta, ported=ported)
        except (PreprocessingError, GraphError):
            return  # explicit refusal (disconnection, empty level) is fine
        got = serialize_digest(patched.graph, patched.ported, patched.arrays)
        assert got == _fresh_digest(patched)

    @given(family_graphs(), graph_deltas())
    @settings(max_examples=10, deadline=None)
    def test_patched_scheme_routes(self, graph, make_delta):
        arrays = build_arrays(graph, 2, rng=0)
        ported = assign_ports(graph, "sorted")
        try:
            patched = patch_arrays(
                arrays, graph, make_delta(graph), ported=ported
            )
        except (PreprocessingError, GraphError):
            return
        router = BatchRouter.from_compiled(
            compile_from_arrays(patched.arrays, patched.ported)
        )
        n = patched.graph.n
        pairs = np.column_stack(
            [np.arange(min(n, 16)), (np.arange(min(n, 16)) + 1) % n]
        )
        res = router.route_pairs(pairs)
        assert res.delivered.all()


class TestCSRKernelInvalidation:
    """Derived caches must never leak across apply_delta."""

    @given(family_graphs(), graph_deltas())
    @settings(max_examples=12, deadline=None)
    def test_caches_do_not_leak(self, graph, make_delta):
        # Warm every derived cache on the original graph.
        csr_before = graph.csr()
        weights_before = csr_before.weights.copy()
        mat_before = graph.to_scipy().copy()
        u0, v0 = (int(x) for x in graph.edges[0])
        graph.edge_id(u0, v0)

        delta = make_delta(graph)
        try:
            new_graph, id_map = apply_delta(graph, delta)
        except GraphError:
            return

        # The old graph's caches are untouched...
        assert graph.csr() is csr_before
        assert np.array_equal(graph.csr().weights, weights_before)
        assert (graph.to_scipy() != mat_before).nnz == 0
        # ...and the new graph's are rebuilt, not inherited.
        assert new_graph.csr() is not csr_before
        for u, v, w in delta.weight_updates:
            nu, nv = int(id_map[u]), int(id_map[v])
            if nu >= 0 and nv >= 0:
                assert new_graph.edge_weight(nu, nv) == w
        for u, v in delta.drop_edges:
            nu, nv = int(id_map[u]), int(id_map[v])
            if nu >= 0 and nv >= 0:
                with pytest.raises(GraphError):
                    new_graph.edge_id(nu, nv)

    def test_weight_update_reflected_in_new_kernel_only(self):
        graph = family_from_seed(2, "gnp")
        u, v = (int(x) for x in graph.edges[0])
        old_w = graph.edge_weight(u, v)
        new_graph, _ = apply_delta(
            graph, GraphDelta(weight_updates=((u, v, old_w + 3.0),))
        )
        assert graph.edge_weight(u, v) == old_w
        assert new_graph.edge_weight(u, v) == old_w + 3.0
        sources = np.array([u], dtype=np.int64)
        d_old, _ = graph.csr().sssp_batch(sources)
        d_new, _ = new_graph.csr().sssp_batch(sources)
        assert d_old[0, v] <= old_w
        assert not np.array_equal(d_old, d_new) or old_w + 3.0 >= d_old[0, v]


class TestVersionedStore:
    def _build(self, seed=0, k=2):
        graph = family_from_seed(seed, "gnp")
        ported = assign_ports(graph, "sorted")
        arrays = build_arrays(graph, k, ported=ported, rng=seed)
        return graph, ported, arrays

    def test_publish_lineage_and_patch_chain(self, tmp_path):
        store = SchemeStore(tmp_path)
        graph, ported, arrays = self._build()
        root = store.publish(graph, ported, arrays, seed=0)
        assert store.current(root) == root
        assert store.lineages() == [root]

        u, v = (int(x) for x in graph.edges[0])
        delta = GraphDelta(
            weight_updates=((u, v, graph.edge_weight(u, v) + 1.0),)
        )
        patched = patch_arrays(arrays, graph, delta, ported=ported)
        key1 = store.publish_patch(
            root, patched.graph, patched.ported, patched.arrays,
            delta=delta, seed=0,
        )
        assert store.current(root) == key1
        metas = store.versions(root)
        assert [m["version"] for m in metas] == [0, 1]
        assert metas[1]["parent_key"] == root
        assert metas[1]["delta_sha256"] == delta.digest()

        info = store.info(key1)
        assert info["lineage"] == root and info["file_bytes"] > 0

    def test_gc_keeps_newest_and_pointer_target(self, tmp_path):
        store = SchemeStore(tmp_path)
        graph, ported, arrays = self._build()
        root = store.publish(graph, ported, arrays, seed=0)
        prev, prev_state = root, (graph, ported, arrays)
        for i in range(3):
            g, p, a = prev_state
            u, v = (int(x) for x in g.edges[i])
            delta = GraphDelta(weight_updates=((u, v, g.edge_weight(u, v) + 1.0),))
            patched = patch_arrays(a, g, delta, ported=p)
            prev = store.publish_patch(
                prev, patched.graph, patched.ported, patched.arrays,
                delta=delta, seed=0,
            )
            prev_state = (patched.graph, patched.ported, patched.arrays)
        removed = store.gc(root, 2)
        assert len(removed) == 2
        left = store.versions(root)
        assert [m["version"] for m in left] == [2, 3]
        assert store.current(root) == prev
        with pytest.raises(ValueError):
            store.gc(root, 0)

    def test_concurrent_pointer_publish_never_torn(self, tmp_path):
        """The unique-tmp + rename discipline under real thread contention:
        a reader can only ever observe a complete published key."""
        store = SchemeStore(tmp_path)
        lineage = "stress-lineage"
        valid = {f"key-{t}-{i}" for t in range(4) for i in range(50)}
        store.set_current(lineage, "key-0-0")
        stop = threading.Event()
        torn = []

        def writer(t):
            for i in range(50):
                store.set_current(lineage, f"key-{t}-{i}")

        def reader():
            while not stop.is_set():
                got = store.current(lineage)
                if got is not None and got not in valid:
                    torn.append(got)

        readers = [threading.Thread(target=reader) for _ in range(2)]
        writers = [threading.Thread(target=writer, args=(t,)) for t in range(4)]
        for th in readers + writers:
            th.start()
        for th in writers:
            th.join()
        stop.set()
        for th in readers:
            th.join()
        assert torn == []
        assert store.current(lineage) in valid
        # no half-written tmp files left behind
        assert list(tmp_path.glob("*.tmp.*")) == []


class TestHotSwapService:
    def test_batches_never_mix_versions(self, tmp_path):
        """Route continuously across a publish: every batch's answers
        must match exactly one version — old or new, never a blend."""
        store = SchemeStore(tmp_path)
        graph = family_from_seed(4, "gnp")
        ported = assign_ports(graph, "sorted")
        arrays = build_arrays(graph, 2, ported=ported, rng=4)
        root = store.publish(graph, ported, arrays, seed=4)

        # v1 changes several weights so the two versions answer
        # measurably differently on the same pairs.
        updates = tuple(
            (int(u), int(v), float(graph.edge_weights[eid] + 5.0))
            for eid, (u, v) in enumerate(graph.edges[:8])
        )
        delta = GraphDelta(weight_updates=updates)
        patched = patch_arrays(arrays, graph, delta, ported=ported)

        rng = np.random.default_rng(0)
        pairs = rng.integers(0, graph.n, size=(64, 2)).astype(np.int64)
        ref0 = BatchRouter.from_compiled(
            compile_from_arrays(arrays, ported)
        ).route_pairs(pairs)
        ref1 = BatchRouter.from_compiled(
            compile_from_arrays(patched.arrays, patched.ported)
        ).route_pairs(pairs)
        assert not np.array_equal(ref0.weight, ref1.weight)

        service = RouteService(store.pointer_path(root))
        assert service.follow and service.version == 0

        published = threading.Event()

        def publisher():
            store.publish_patch(
                root, patched.graph, patched.ported, patched.arrays,
                delta=delta, seed=4,
            )
            published.set()

        thread = threading.Thread(target=publisher)
        matched_new = 0
        thread.start()
        for _ in range(200):
            res = service.route(pairs)
            is_old = np.array_equal(res.weight, ref0.weight)
            is_new = np.array_equal(res.weight, ref1.weight)
            assert is_old != is_new, "batch mixed scheme versions"
            if is_new:
                matched_new += 1
                if matched_new >= 3:
                    break
        thread.join()
        # after the publish has landed, the very next batch swaps
        res = service.route(pairs)
        assert np.array_equal(res.weight, ref1.weight)
        assert service.swap_count == 1 and service.version == 1

    def test_reload_reports_swap(self, tmp_path):
        store = SchemeStore(tmp_path)
        graph = family_from_seed(5, "grid")
        ported = assign_ports(graph, "sorted")
        arrays = build_arrays(graph, 2, ported=ported, rng=5)
        root = store.publish(graph, ported, arrays, seed=5)
        service = RouteService(store.pointer_path(root))
        assert service.reload() is False

        u, v = (int(x) for x in graph.edges[0])
        delta = GraphDelta(weight_updates=((u, v, graph.edge_weight(u, v) + 2.0),))
        patched = patch_arrays(arrays, graph, delta, ported=ported)
        store.publish_patch(
            root, patched.graph, patched.ported, patched.arrays,
            delta=delta, seed=5,
        )
        assert service.reload() is True
        assert service.version == 1

    def test_gc_race_between_resolve_and_mmap_retries(self, tmp_path):
        """Regression: a ``gc()`` racing a repoint can unlink a version
        *between* the service's pointer resolve and its mmap.  The open
        must retry through the lineage instead of failing the batch."""
        store = SchemeStore(tmp_path)
        graph = family_from_seed(7, "gnp")
        ported = assign_ports(graph, "sorted")
        arrays = build_arrays(graph, 2, ported=ported, rng=7)
        root = store.publish(graph, ported, arrays, seed=7)

        u, v = (int(x) for x in graph.edges[0])
        delta = GraphDelta(weight_updates=((u, v, graph.edge_weight(u, v) + 2.0),))
        patched = patch_arrays(arrays, graph, delta, ported=ported)
        key1 = store.publish_patch(
            root, patched.graph, patched.ported, patched.arrays,
            delta=delta, seed=7,
        )

        service = RouteService(store.pointer_path(root))
        assert service.version == 1

        # Simulate the race: the next resolve observes the pointer
        # *before* a publish+gc cycle — it names a version whose file a
        # concurrent gc() has already unlinked.
        stale = tmp_path / "vanished-by-gc.tzs"
        assert not stale.exists()
        real_resolve = service._resolve
        raced = {"n": 0}

        def racing_resolve():
            if raced["n"] == 0:
                raced["n"] += 1
                return stale
            return real_resolve()

        service._resolve = racing_resolve
        pairs = np.array([[0, 1], [2, 3]], dtype=np.int64)
        result = service.route(pairs)  # must not raise
        assert raced["n"] == 1  # the stale resolve was consumed...
        assert service.version == 1  # ...and retried through the pointer
        assert result.delivered.all()

        # A pinned (non-follow) open of a missing container is genuine
        # damage, not the race — it must fail immediately, untouched by
        # the retry path.
        with pytest.raises(Exception) as excinfo:
            RouteService(tmp_path / "never-published.tzs")
        assert not isinstance(excinfo.value, RoutingError)
        assert key1 == store.current(root)

    def test_gc_race_gives_up_after_bounded_retries(self, tmp_path):
        """If the pointer keeps naming vanished versions, the open
        surfaces a RoutingError instead of spinning forever."""
        store = SchemeStore(tmp_path)
        graph = family_from_seed(8, "grid")
        ported = assign_ports(graph, "sorted")
        arrays = build_arrays(graph, 2, ported=ported, rng=8)
        root = store.publish(graph, ported, arrays, seed=8)
        service = RouteService(store.pointer_path(root))

        calls = {"n": 0}

        def always_stale():
            calls["n"] += 1
            return tmp_path / f"gone-{calls['n']}.tzs"

        service._resolve = always_stale
        with pytest.raises(RoutingError, match="kept vanishing"):
            service.reload()
        assert calls["n"] == RouteService._OPEN_RETRIES


class TestBackendKernelGate:
    """kernel= threads from the registry down to the frontier sweep."""

    @pytest.mark.parametrize("name", ["tz", "cowen"])
    def test_numpy_native_blobs_bit_equal(self, name):
        if not kernels.available():
            pytest.skip(f"native kernel unavailable: {kernels.native_error()}")
        from repro.backends.registry import build_backend

        graph = family_from_seed(6, "gnp", n=96)
        b_np = build_backend(name, graph, k=3, seed=1, kernel="numpy")
        b_nat = build_backend(name, graph, k=3, seed=1, kernel="native")
        meta_np, blobs_np = b_np.serialize()
        meta_nat, blobs_nat = b_nat.serialize()
        assert meta_np == meta_nat
        assert sorted(blobs_np) == sorted(blobs_nat)
        for key in blobs_np:
            assert np.array_equal(blobs_np[key], blobs_nat[key]), key

    def test_cowen_level0_grows_through_native_sweep(self):
        """The Cowen backend's level-0 grow (n centers, far above the
        full-engine limit) must hit the native frontier sweep when the
        native kernel is requested — observed through telemetry."""
        if not kernels.available():
            pytest.skip(f"native kernel unavailable: {kernels.native_error()}")
        from repro.backends.registry import build_backend

        graph = family_from_seed(7, "gnp", n=96)
        TELEMETRY.reset()
        TELEMETRY.enable()
        try:
            build_backend("cowen", graph, seed=2, kernel="native")
            sweeps = [
                sp for sp, _ in TELEMETRY.spans()
                if sp.name == "kernel.frontier_sweep"
            ]
        finally:
            TELEMETRY.disable()
            TELEMETRY.reset()
        assert sweeps, "no frontier-sweep span recorded"
        assert all(sp.attrs.get("impl") == "native" for sp in sweeps)
        assert any(sp.attrs.get("level") == 0 for sp in sweeps)


class TestChurnScenario:
    def test_run_churn_patches_and_reports(self):
        from repro.scenarios import run_churn

        graph = family_from_seed(8, "gnp", n=64)
        result = run_churn(
            graph, k=2, seed=3, epochs=3, pairs=64, policy="auto",
            graph_label="gnp",
        )
        assert len(result.epochs) == 3
        doc = result.to_dict()
        assert doc["kind"] == "tz-churn-report"
        for epoch in result.epochs:
            assert epoch.method in ("patch", "rebuild")
            assert epoch.delivery == 1.0  # no failures injected
            assert epoch.mean_stretch >= 1.0
        # with small additive deltas the patch path should dominate
        assert result.patched_epochs >= 1

    def test_run_churn_with_store_serves_hot_swapped(self, tmp_path):
        from repro.scenarios import run_churn

        store = SchemeStore(tmp_path)
        graph = family_from_seed(9, "gnp", n=64)
        result = run_churn(
            graph, k=2, seed=5, epochs=2, pairs=48, policy="auto",
            store=store, max_versions=2,
        )
        assert result.lineage is not None
        assert [e.version for e in result.epochs] == [1, 2]
        assert len(store.versions(result.lineage)) == 2  # gc'd to 2

    def test_rebuild_policy_never_patches(self):
        from repro.scenarios import run_churn

        graph = family_from_seed(10, "grid", n=36)
        result = run_churn(
            graph, k=2, seed=1, epochs=2, pairs=32, policy="rebuild"
        )
        assert all(e.method == "rebuild" for e in result.epochs)
        assert result.patched_epochs == 0

    def test_random_delta_preserves_connectivity(self):
        from repro.rng import derive
        from repro.scenarios import random_delta

        graph = family_from_seed(11, "gnp", n=48)
        for i in range(5):
            delta = random_delta(
                graph, derive(11, "t", i), edge_drops=2, node_drops=1
            )
            mutated, _ = apply_delta(graph, delta)
            assert mutated.is_connected()
