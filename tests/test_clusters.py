"""Cluster/bunch machinery: definitions, duality, closure, both engines."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clusters import (
    Cluster,
    bunches,
    check_subpath_closure,
    cluster_size_histogram,
    compute_all_clusters,
    compute_cluster,
)
from repro.errors import GraphError
from repro.graphs import generators as gen
from repro.graphs.shortest_paths import all_pairs_shortest_paths


@pytest.fixture(scope="module")
def setup():
    g = gen.gnp(90, 0.08, rng=77, weights=(1, 8))
    D = all_pairs_shortest_paths(g)
    rng = np.random.default_rng(4)
    A = np.sort(rng.choice(g.n, size=9, replace=False))
    thr = D[A].min(axis=0)
    return g, D, A, thr


class TestSingleCluster:
    def test_membership_matches_definition(self, setup):
        g, D, A, thr = setup
        for w in (0, 5, 11):
            c = compute_cluster(g, w, thr)
            expected = {v for v in range(g.n) if D[w, v] < thr[v] or v == w}
            assert set(c.dist) == expected

    def test_distances_exact(self, setup):
        g, D, A, thr = setup
        c = compute_cluster(g, 3, thr)
        for v, dv in c.dist.items():
            assert dv == D[3, v]

    def test_center_always_member(self, setup):
        g, D, A, thr = setup
        a = int(A[0])  # threshold 0 at a landmark itself
        c = compute_cluster(g, a, thr)
        assert a in c

    def test_subpath_closure(self, setup):
        g, D, A, thr = setup
        for w in range(0, g.n, 11):
            check_subpath_closure(compute_cluster(g, w, thr))

    def test_tree_is_valid_rooted_tree(self, setup):
        g, D, A, thr = setup
        c = compute_cluster(g, 7, thr)
        tree = c.tree()
        tree.validate()
        assert tree.root == 7
        assert set(tree.vertices) == set(c.dist)

    def test_members_sorted(self, setup):
        g, D, A, thr = setup
        c = compute_cluster(g, 7, thr)
        assert c.members() == sorted(c.dist)


class TestBothEngines:
    def test_dense_equals_sparse(self, setup):
        g, D, A, thr = setup
        centers = list(range(0, g.n, 5))
        dense = compute_all_clusters(g, centers, thr, method="dense")
        sparse = compute_all_clusters(g, centers, thr, method="sparse")
        assert set(dense) == set(sparse)
        for w in centers:
            assert dense[w].dist == sparse[w].dist
            # Parents may differ between SPTs; distances must agree and
            # both must satisfy closure.
            check_subpath_closure(dense[w])
            check_subpath_closure(sparse[w])

    def test_auto_dispatch(self, setup):
        g, D, A, thr = setup
        out = compute_all_clusters(g, [0, 1], thr, method="auto")
        assert set(out) == {0, 1}

    def test_per_center_thresholds(self, setup):
        g, D, A, thr = setup
        thr2 = np.stack([thr, np.full(g.n, np.inf)])
        out = compute_all_clusters(g, [0, 1], thr2, method="sparse")
        assert len(out[1]) == g.n  # infinite threshold spans everything

    def test_bad_threshold_shape(self, setup):
        g, D, A, thr = setup
        with pytest.raises(GraphError):
            compute_all_clusters(g, [0, 1], np.zeros((3, g.n)))

    def test_unknown_method(self, setup):
        g, D, A, thr = setup
        with pytest.raises(GraphError):
            compute_all_clusters(g, [0], thr, method="bogus")

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=10, deadline=None)
    def test_property_engines_agree_unit_weights(self, seed):
        g = gen.gnp(40, 0.12, rng=seed)
        D = all_pairs_shortest_paths(g)
        rng = np.random.default_rng(seed)
        A = rng.choice(g.n, size=4, replace=False)
        thr = D[A].min(axis=0)
        centers = list(range(g.n))
        dense = compute_all_clusters(g, centers, thr, method="dense")
        sparse = compute_all_clusters(g, centers, thr, method="sparse")
        for w in centers:
            assert dense[w].dist == sparse[w].dist


class TestBunches:
    def test_duality(self, setup):
        """Σ|C(w)| == Σ|B(v)| and w ∈ B(v) ⟺ v ∈ C(w)."""
        g, D, A, thr = setup
        clusters = compute_all_clusters(g, list(range(g.n)), thr)
        B = bunches(clusters)
        assert sum(len(c) for c in clusters.values()) == sum(
            len(b) for b in B.values()
        )
        for w, c in clusters.items():
            for v in c.dist:
                assert w in B[v]
                assert B[v][w] == c.dist[v]

    def test_bunch_definition(self, setup):
        g, D, A, thr = setup
        clusters = compute_all_clusters(g, list(range(g.n)), thr)
        B = bunches(clusters)
        for v in range(0, g.n, 13):
            expected = {w for w in range(g.n) if D[w, v] < thr[v] or w == v}
            assert set(B[v]) == expected

    def test_size_histogram(self, setup):
        g, D, A, thr = setup
        clusters = compute_all_clusters(g, [0, 1, 2], thr)
        h = cluster_size_histogram(clusters)
        assert h.shape == (3,)
        assert np.all(np.diff(h) >= 0)


class TestClosureValidation:
    def test_detects_missing_parent(self):
        broken = Cluster(0, {0: 0.0, 1: 1.0}, {0: -1, 1: 7})
        with pytest.raises(GraphError):
            check_subpath_closure(broken)

    def test_detects_non_increasing_distance(self):
        broken = Cluster(0, {0: 0.0, 1: 1.0, 2: 0.5}, {0: -1, 1: 0, 2: 1})
        with pytest.raises(GraphError):
            check_subpath_closure(broken)
