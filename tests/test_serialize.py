"""Serialization round trips prove the bit accounting honest."""

from __future__ import annotations

import pytest

from repro.bitio import BitReader
from repro.core.scheme_k import build_tz_scheme
from repro.core.serialize import (
    decode_record,
    decode_table,
    encode_record,
    encode_table,
    deserialize_scheme_tables,
    serialize_scheme,
    table_prefix_overhead,
)
from repro.errors import EncodingError
from repro.bitio import BitWriter


@pytest.fixture(scope="module", params=[2, 3])
def compiled(request, small_weighted_graph, ported_small):
    return build_tz_scheme(
        small_weighted_graph, ported_small, k=request.param, rng=77
    )


class TestRecordCodec:
    def test_round_trip_all_records(self, compiled):
        degs = compiled.graph.degrees()
        max_port = int(degs.max())
        for u in range(0, compiled.n, 9):
            for tree_id, record in compiled.tables[u].trees.items():
                w = BitWriter()
                encode_record(w, record, compiled.tree_sizes[tree_id], max_port)
                back = decode_record(
                    BitReader(w), compiled.tree_sizes[tree_id], max_port
                )
                assert back == record


class TestTableCodec:
    def test_round_trip_every_vertex(self, compiled):
        degs = compiled.graph.degrees()
        max_port = int(degs.max())
        for u in range(compiled.n):
            table = compiled.tables[u]
            w = encode_table(
                table,
                compiled.n,
                compiled.tree_sizes,
                compiled.tree_sizes[u],
                max_port,
            )
            back = decode_table(
                BitReader(w),
                u,
                compiled.n,
                compiled.k,
                compiled.tree_sizes,
                compiled.tree_sizes[u],
                max_port,
            )
            assert back.trees == table.trees
            assert back.own_labels == table.own_labels
            assert back.members == table.members
            assert back.pivots == table.pivots

    def test_stream_length_matches_accounting(self, compiled):
        """Stream bits == reported size_bits + the two length prefixes —
        the reported numbers in EXPERIMENTS.md are real bit counts."""
        degs = compiled.graph.degrees()
        max_port = int(degs.max())
        for u in range(0, compiled.n, 5):
            table = compiled.tables[u]
            w = encode_table(
                table,
                compiled.n,
                compiled.tree_sizes,
                compiled.tree_sizes[u],
                max_port,
            )
            expected = table.size_bits(
                compiled.n,
                compiled.tree_sizes,
                compiled.tree_sizes[u],
                max_port,
            ) + table_prefix_overhead(table)
            assert w.n_bits == expected

    def test_unknown_tree_rejected_on_decode(self, compiled):
        degs = compiled.graph.degrees()
        max_port = int(degs.max())
        table = compiled.tables[0]
        w = encode_table(
            table, compiled.n, compiled.tree_sizes, compiled.tree_sizes[0], max_port
        )
        with pytest.raises(EncodingError):
            decode_table(
                BitReader(w),
                0,
                compiled.n,
                compiled.k,
                {0: 5},  # wrong shared context
                compiled.tree_sizes[0],
                max_port,
            )


class TestDegenerateWidths:
    """Regression: ``n == 1`` and ``tree_size == 1`` fields need 0 bits.

    The width formula used to clamp to 1 bit, writing a spurious bit per
    degenerate field; widths and accounting must agree at exactly
    ``ceil(log2(domain))``."""

    def test_single_vertex_record_round_trip(self):
        from repro.trees.tz_tree import TreeLocalRecord

        record = TreeLocalRecord(
            f=0, finish=0, parent_port=0, heavy_port=0, heavy_finish=0, light_depth=0
        )
        w = BitWriter()
        encode_record(w, record, 1, 1)
        # 4 zero-width f-fields + two 1-bit port fields.
        assert w.n_bits == 2 == record.size_bits(1, 1)
        assert decode_record(BitReader(w), 1, 1) == record

    def test_single_vertex_scheme_round_trip(self):
        """A 1-vertex graph: ids and DFS numbers all cost 0 bits, and the
        whole table/label machinery still round-trips bit-exactly."""
        from repro.graphs.graph import Graph
        from repro.core.labels import decode_label, encode_label

        g = Graph(1, [])
        for k in (1, 2):
            scheme = build_tz_scheme(g, k=k, rng=0)
            blobs = serialize_scheme(scheme)
            back = deserialize_scheme_tables(blobs, scheme)
            assert back[0].trees == scheme.tables[0].trees
            assert back[0].members == scheme.tables[0].members
            assert back[0].pivots == scheme.tables[0].pivots
            enc = encode_label(scheme.labels[0], 1, scheme.tree_sizes)
            dec = decode_label(BitReader(enc), 1, k, scheme.tree_sizes)
            assert dec == scheme.labels[0]
            # id (0 bits) + per level: repeat flag + pivot id (0 bits) +
            # tree label (0-bit f + 1-bit empty port count).
            assert scheme.label_bits(0) == 2 * (k - 1)

    def test_singleton_tree_label_bits_agree_with_array_form(self):
        """Schemes with singleton clusters: the scalar codec, the bit
        accounting and the vectorized array accounting must all agree."""
        from repro.core.build import build_arrays
        from repro.core.build.arrays import scheme_from_arrays
        from repro.graphs import generators as gen
        from repro.graphs.ports import assign_ports

        graph = gen.gnp(24, 0.15, rng=11, weights=(1, 5)).largest_component()
        ported = assign_ports(graph, "sorted")
        arrays = build_arrays(graph, 2, ported=ported, rng=4)
        assert int(arrays.tree_sizes().min()) >= 1
        scheme = scheme_from_arrays(graph, ported, arrays)
        assert arrays.label_bits().tolist() == [
            scheme.label_bits(v) for v in range(graph.n)
        ]
        blobs = serialize_scheme(scheme)
        back = deserialize_scheme_tables(blobs, scheme)
        for u in range(graph.n):
            assert back[u].trees == scheme.tables[u].trees

    def test_stream_length_zero_width_fields(self):
        """encode_table on a 1-vertex scheme matches the accounting."""
        from repro.graphs.graph import Graph

        g = Graph(1, [])
        scheme = build_tz_scheme(g, k=2, rng=0)
        table = scheme.tables[0]
        w = encode_table(table, 1, scheme.tree_sizes, scheme.tree_sizes[0], 1)
        assert w.n_bits == table.size_bits(
            1, scheme.tree_sizes, scheme.tree_sizes[0], 1
        ) + table_prefix_overhead(table)


class TestSchemeSerialization:
    def test_whole_scheme_round_trip(self, compiled):
        blobs = serialize_scheme(compiled)
        assert set(blobs) == set(range(compiled.n))
        back = deserialize_scheme_tables(blobs, compiled)
        for u in range(compiled.n):
            assert back[u].trees == compiled.tables[u].trees
            assert back[u].members == compiled.tables[u].members

    def test_blob_sizes_track_table_bits(self, compiled):
        blobs = serialize_scheme(compiled)
        for u in range(0, compiled.n, 11):
            blob_bits = len(blobs[u]) * 8
            reported = compiled.table_bits(u)
            # bytes are padded up; prefixes add a few bits.
            assert reported <= blob_bits <= reported + 64

    def test_routing_from_deserialized_tables(
        self, compiled, ported_small, dist_small
    ):
        """Swap the live tables for decoded ones and route: behaviour
        must be identical — the streams carry everything."""
        from repro.rng import all_pairs
        from repro.sim.runner import run_pairs

        blobs = serialize_scheme(compiled)
        compiled.tables = deserialize_scheme_tables(blobs, compiled)
        pairs = all_pairs(compiled.n, limit=400, rng=5)
        results, stretches = run_pairs(
            ported_small, compiled, pairs, true_dist=dist_small
        )
        assert all(r.delivered for r in results)
        assert max(stretches) <= compiled.stretch_bound() + 1e-9
