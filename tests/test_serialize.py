"""Serialization round trips prove the bit accounting honest."""

from __future__ import annotations

import pytest

from repro.bitio import BitReader
from repro.core.scheme_k import build_tz_scheme
from repro.core.serialize import (
    decode_record,
    decode_table,
    encode_record,
    encode_table,
    deserialize_scheme_tables,
    serialize_scheme,
    table_prefix_overhead,
)
from repro.errors import EncodingError
from repro.bitio import BitWriter


@pytest.fixture(scope="module", params=[2, 3])
def compiled(request, small_weighted_graph, ported_small):
    return build_tz_scheme(
        small_weighted_graph, ported_small, k=request.param, rng=77
    )


class TestRecordCodec:
    def test_round_trip_all_records(self, compiled):
        degs = compiled.graph.degrees()
        max_port = int(degs.max())
        for u in range(0, compiled.n, 9):
            for tree_id, record in compiled.tables[u].trees.items():
                w = BitWriter()
                encode_record(w, record, compiled.tree_sizes[tree_id], max_port)
                back = decode_record(
                    BitReader(w), compiled.tree_sizes[tree_id], max_port
                )
                assert back == record


class TestTableCodec:
    def test_round_trip_every_vertex(self, compiled):
        degs = compiled.graph.degrees()
        max_port = int(degs.max())
        for u in range(compiled.n):
            table = compiled.tables[u]
            w = encode_table(
                table,
                compiled.n,
                compiled.tree_sizes,
                compiled.tree_sizes[u],
                max_port,
            )
            back = decode_table(
                BitReader(w),
                u,
                compiled.n,
                compiled.k,
                compiled.tree_sizes,
                compiled.tree_sizes[u],
                max_port,
            )
            assert back.trees == table.trees
            assert back.own_labels == table.own_labels
            assert back.members == table.members
            assert back.pivots == table.pivots

    def test_stream_length_matches_accounting(self, compiled):
        """Stream bits == reported size_bits + the two length prefixes —
        the reported numbers in EXPERIMENTS.md are real bit counts."""
        degs = compiled.graph.degrees()
        max_port = int(degs.max())
        for u in range(0, compiled.n, 5):
            table = compiled.tables[u]
            w = encode_table(
                table,
                compiled.n,
                compiled.tree_sizes,
                compiled.tree_sizes[u],
                max_port,
            )
            expected = table.size_bits(
                compiled.n,
                compiled.tree_sizes,
                compiled.tree_sizes[u],
                max_port,
            ) + table_prefix_overhead(table)
            assert w.n_bits == expected

    def test_unknown_tree_rejected_on_decode(self, compiled):
        degs = compiled.graph.degrees()
        max_port = int(degs.max())
        table = compiled.tables[0]
        w = encode_table(
            table, compiled.n, compiled.tree_sizes, compiled.tree_sizes[0], max_port
        )
        with pytest.raises(EncodingError):
            decode_table(
                BitReader(w),
                0,
                compiled.n,
                compiled.k,
                {0: 5},  # wrong shared context
                compiled.tree_sizes[0],
                max_port,
            )


class TestSchemeSerialization:
    def test_whole_scheme_round_trip(self, compiled):
        blobs = serialize_scheme(compiled)
        assert set(blobs) == set(range(compiled.n))
        back = deserialize_scheme_tables(blobs, compiled)
        for u in range(compiled.n):
            assert back[u].trees == compiled.tables[u].trees
            assert back[u].members == compiled.tables[u].members

    def test_blob_sizes_track_table_bits(self, compiled):
        blobs = serialize_scheme(compiled)
        for u in range(0, compiled.n, 11):
            blob_bits = len(blobs[u]) * 8
            reported = compiled.table_bits(u)
            # bytes are padded up; prefixes add a few bits.
            assert reported <= blob_bits <= reported + 64

    def test_routing_from_deserialized_tables(
        self, compiled, ported_small, dist_small
    ):
        """Swap the live tables for decoded ones and route: behaviour
        must be identical — the streams carry everything."""
        from repro.rng import all_pairs
        from repro.sim.runner import run_pairs

        blobs = serialize_scheme(compiled)
        compiled.tables = deserialize_scheme_tables(blobs, compiled)
        pairs = all_pairs(compiled.n, limit=400, rng=5)
        results, stretches = run_pairs(
            ported_small, compiled, pairs, true_dist=dist_small
        )
        assert all(r.delivered for r in results)
        assert max(stretches) <= compiled.stretch_bound() + 1e-9
