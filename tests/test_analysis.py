"""Bound calculators, reporting, and the experiment suite (smoke +
acceptance criteria from DESIGN.md §4)."""

from __future__ import annotations


import pytest

from repro.analysis import bounds
from repro.analysis.experiments import (
    EXPERIMENTS,
    exp_a2,
    exp_f3,
    exp_f5,
    exp_f6,
    reference_graph,
    run_experiment,
)
from repro.analysis.reporting import render_markdown_table, render_table


class TestBounds:
    def test_tz_stretch_values(self):
        assert bounds.tz_stretch_bound(1) == 1.0
        assert bounds.tz_stretch_bound(2) == 3.0
        assert bounds.tz_stretch_bound(3) == 7.0
        assert bounds.tz_stretch_bound(5) == 15.0

    def test_handshake_values(self):
        assert bounds.handshake_stretch_bound(2) == 3.0
        assert bounds.handshake_stretch_bound(3) == 5.0

    def test_handshake_never_worse(self):
        for k in range(1, 10):
            assert bounds.handshake_stretch_bound(k) <= bounds.tz_stretch_bound(k)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            bounds.tz_stretch_bound(0)
        with pytest.raises(ValueError):
            bounds.handshake_stretch_bound(-1)

    def test_cluster_cap(self):
        assert bounds.cluster_cap(100, 10) == 40.0

    def test_expected_landmarks_monotone(self):
        assert bounds.expected_landmarks(1000, 20) > bounds.expected_landmarks(
            1000, 10
        )

    def test_table_bound_decreasing_in_k(self):
        n = 4096
        vals = [bounds.tz_table_bound_bits(n, k) for k in (1, 2, 3, 4)]
        assert vals == sorted(vals, reverse=True)

    def test_lower_bounds_grow(self):
        assert bounds.stretch3_space_lower_bound(200) > (
            bounds.stretch3_space_lower_bound(100)
        )
        assert bounds.girth_conjecture_space(1000, 2) > bounds.girth_conjecture_space(
            1000, 4
        )

    def test_log2n_bits(self):
        assert bounds.log2n_bits(1024) == 10
        assert bounds.log2n_bits(1) == 1


class TestReporting:
    ROWS = [
        {"a": 1, "b": 2.5, "c": "x"},
        {"a": 10, "b": float("inf"), "c": "yz"},
    ]

    def test_render_table_alignment(self):
        out = render_table(self.ROWS, title="demo")
        lines = out.splitlines()
        assert lines[0] == "demo"
        assert "a" in lines[1] and "---" in lines[2]
        assert len(lines) == 5

    def test_render_table_empty(self):
        assert "(no rows)" in render_table([])

    def test_render_markdown(self):
        out = render_markdown_table(self.ROWS)
        assert out.startswith("| a | b | c |")
        assert "| 10 | inf | yz |" in out

    def test_column_selection(self):
        out = render_table(self.ROWS, columns=["c", "a"])
        assert out.splitlines()[0].startswith("c")

    def test_bool_and_large_number_formatting(self):
        out = render_table([{"ok": True, "big": 123456.0}])
        assert "yes" in out and "123,456" in out


class TestExperimentDispatch:
    def test_registry_complete(self):
        assert set(EXPERIMENTS) == {
            "t1", "f2", "f3", "f4", "f5", "f6", "f7", "f8", "f9",
            "a1", "a2", "x1", "x2",
        }

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError):
            run_experiment("zzz")

    def test_bad_scale_raises(self):
        with pytest.raises(ValueError):
            run_experiment("f3", scale="huge")

    def test_reference_graph_unknown(self):
        with pytest.raises(ValueError):
            reference_graph("bogus", 10, 0)

    def test_reference_graphs_connected(self):
        for name in ("gnp", "ba", "as-like", "grid", "geometric"):
            g = reference_graph(name, 120, 0)
            assert g.is_connected()

    def test_reference_graph_deterministic(self):
        a = reference_graph("gnp", 100, 7)
        b = reference_graph("gnp", 100, 7)
        assert a == b


class TestAcceptanceCriteria:
    """DESIGN.md §4 acceptance criteria, checked on small instances."""

    def test_f3_cap_always_holds(self):
        result = exp_f3(scale="small", seed=1)
        assert result.rows
        for row in result.rows:
            assert row["cap_ok"] is True

    def test_f5_zero_violations(self):
        result = exp_f5(scale="small", seed=1)
        for row in result.rows:
            assert row["violations"] == 0
            assert row["max_stretch"] <= row["bound_4k-5"] + 1e-9

    def test_f6_handshake_dominates(self):
        result = exp_f6(scale="small", seed=1)
        for row in result.rows:
            assert row["hs_violations"] == 0
            assert row["hs_max"] <= row["hs_bound"] + 1e-9
            assert row["hs_avg"] <= row["base_avg"] * 1.05

    def test_a2_consistency_matters(self):
        result = exp_a2(scale="small", seed=1)
        consistent = [r for r in result.rows if r["consistent_pivots"]]
        naive = [r for r in result.rows if not r["consistent_pivots"]]
        assert all(r["label_construction_failures"] == 0 for r in consistent)
        assert sum(r["label_construction_failures"] for r in naive) > 0

    def test_result_columns_stable(self):
        result = exp_f3(scale="small", seed=0)
        assert result.columns()[0] == "graph"
        assert result.exp_id == "f3"
        assert result.title
