"""The persistent serving daemon: asyncio TCP front door over the store.

:class:`RouteDaemon` turns the batch-at-a-time
:class:`~repro.store.RouteService` into a long-running multi-tenant
server.  The moving parts, and the guarantees each one carries:

* **Tenancy** — every route request names a ``scheme``: a store lineage
  id (served through its ``.current`` pointer, so publishes hot-reload
  between batches), a container key (pinned version), or a container
  path.  Open tenants live in a capacity-bounded
  :class:`~repro.serve.lru.SchemeLRU`; an evicted tenant is re-mmapped
  on its next hit with bit-identical answers.
* **Bounded queue + backpressure** — route requests land in one
  bounded :class:`asyncio.Queue`.  A full queue answers
  ``{"error": "backpressure"}`` immediately instead of stalling the
  connection: under overload the daemon sheds load explicitly and
  stays responsive to pings, never queues unboundedly.
* **Per-request timeout** — each request's budget starts when it is
  *enqueued*; a request that waited out its budget in the queue is
  answered ``{"error": "timeout"}`` without routing, one that exceeds
  it mid-route is answered as soon as the overrun is observed.
* **Graceful shutdown** — SIGTERM/SIGINT (or the ``shutdown`` op)
  stops accepting connections and new work, **drains** every queued
  and in-flight batch (their responses are still delivered), then
  closes.  No accepted batch is ever dropped.
* **Observability** — ``serve.request`` spans, request-latency
  histograms and queue-depth/LRU gauges flow through the existing
  :mod:`repro.obs` registry (``--trace``/``--metrics`` on the CLI);
  a plain :attr:`stats` dict additionally serves the ``stats`` op even
  when telemetry is disabled.

Single-writer discipline: all responses of one connection are written
under that connection's lock, so worker tasks never interleave frames.
With ``workers > 1`` responses may be reordered across *requests*;
clients that pipeline tag requests with ``"id"`` (echoed verbatim).
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import signal
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter
from typing import Optional, Union

import numpy as np

from ..errors import ProtocolError, ReproError, RoutingError
from ..obs import TELEMETRY
from ..store import POINTER_SUFFIX, STORE_SUFFIX, RouteService, SchemeStore
from .lru import SchemeLRU
from .protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    encode_frame,
    error_response,
    read_frame_async,
    result_to_wire,
)


@dataclass(eq=False)  # identity hash: connections live in a set
class _Connection:
    """Per-connection state: stream ends plus the response-write lock."""

    reader: asyncio.StreamReader
    writer: asyncio.StreamWriter
    lock: asyncio.Lock = field(default_factory=asyncio.Lock)


@dataclass
class _QueuedRequest:
    """One admitted route request waiting for a worker."""

    conn: _Connection
    request: dict
    enqueued_at: float


class RouteDaemon:
    """Persistent multi-tenant route server (see module docstring)."""

    def __init__(
        self,
        store_dir: Union[str, Path],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        default_scheme: Optional[str] = None,
        lru_capacity: int = 4,
        queue_limit: int = 64,
        timeout: float = 30.0,
        workers: int = 1,
        kernel: str = "auto",
        max_frame_bytes: int = MAX_FRAME_BYTES,
    ) -> None:
        """Configure a daemon over one store directory (nothing opens yet).

        ``port=0`` binds an ephemeral port (read :attr:`address` after
        :meth:`start`).  ``default_scheme`` answers route requests that
        name no scheme.  ``queue_limit`` bounds the route queue (excess
        is shed with a ``backpressure`` error), ``timeout`` is the
        per-request budget in seconds from enqueue to response, and
        ``workers`` is the number of concurrent route executors.
        """
        self.store = SchemeStore(store_dir)
        self.host = host
        self.port = int(port)
        self.default_scheme = default_scheme
        self.lru = SchemeLRU(lru_capacity)
        self.queue_limit = int(queue_limit)
        self.timeout = float(timeout)
        self.workers = max(1, int(workers))
        self.kernel = kernel
        self.max_frame_bytes = int(max_frame_bytes)
        self.stats = {
            "requests": 0,
            "routed_pairs": 0,
            "shed": 0,
            "timeouts": 0,
            "errors": 0,
            "connections": 0,
        }
        self._server: Optional[asyncio.AbstractServer] = None
        self._queue: Optional[asyncio.Queue] = None
        self._workers: list = []
        self._connections: set = set()
        self._draining = False
        self._stopped: Optional[asyncio.Event] = None
        self._shutdown_task = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listener, spawn workers, install signal handlers."""
        self._queue = asyncio.Queue(maxsize=self.queue_limit)
        self._stopped = asyncio.Event()
        self._workers = [
            asyncio.create_task(self._worker()) for _ in range(self.workers)
        ]
        self._server = await asyncio.start_server(
            self._handle_conn, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            # Unavailable off the main thread (tests) and on Windows;
            # the `shutdown` op is the portable alternative.
            with contextlib.suppress(NotImplementedError, ValueError, RuntimeError):
                loop.add_signal_handler(sig, self.request_shutdown)

    @property
    def address(self) -> tuple:
        """The bound ``(host, port)`` (valid after :meth:`start`)."""
        return (self.host, self.port)

    async def serve_forever(self) -> None:
        """Block until a shutdown has fully drained."""
        await self._stopped.wait()

    def request_shutdown(self) -> None:
        """Begin a graceful shutdown (idempotent; signal-handler safe)."""
        if self._shutdown_task is None:
            self._shutdown_task = asyncio.ensure_future(self._shutdown())

    async def _shutdown(self) -> None:
        """Drain queued and in-flight work, then close everything."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Every admitted request is answered before the lights go out.
        await self._queue.join()
        for task in self._workers:
            task.cancel()
        await asyncio.gather(*self._workers, return_exceptions=True)
        for conn in list(self._connections):
            conn.writer.close()
        self.lru.clear()
        self._stopped.set()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Read frames off one connection until EOF or a fatal frame."""
        conn = _Connection(reader, writer)
        self._connections.add(conn)
        self.stats["connections"] += 1
        try:
            while True:
                try:
                    request = await read_frame_async(
                        reader, max_bytes=self.max_frame_bytes
                    )
                except (asyncio.IncompleteReadError, ConnectionError, OSError):
                    break  # peer hung up (possibly mid-frame) — just drop
                except ProtocolError as exc:
                    # Distinguish a garbage payload (stream still in
                    # sync: answer and keep going) from an oversized
                    # length prefix (unread payload would desync the
                    # stream: answer, then close this connection).
                    recoverable = getattr(exc, "payload_consumed", True)
                    self.stats["errors"] += 1
                    await self._respond(
                        conn, error_response("bad-frame", str(exc))
                    )
                    if not recoverable:
                        break
                    continue
                if not await self._dispatch(conn, request):
                    break
        finally:
            self._connections.discard(conn)
            writer.close()
            with contextlib.suppress(ConnectionError, OSError):
                await writer.wait_closed()

    async def _dispatch(self, conn: _Connection, request: dict) -> bool:
        """Handle one request; False ends the connection's read loop."""
        op = request.get("op")
        if op == "ping":
            await self._respond(
                conn,
                {
                    "ok": True,
                    "op": "ping",
                    "protocol": PROTOCOL_VERSION,
                    "pid": os.getpid(),
                    "draining": self._draining,
                },
            )
            return True
        if op == "stats":
            await self._respond(
                conn,
                {
                    "ok": True,
                    "op": "stats",
                    "stats": dict(self.stats),
                    "queue_depth": self._queue.qsize(),
                    "lru": self.lru.stats(),
                    "tenants": self.lru.keys(),
                },
            )
            return True
        if op == "describe":
            return await self._op_describe(conn, request)
        if op == "shutdown":
            await self._respond(conn, {"ok": True, "op": "shutdown"})
            self.request_shutdown()
            return False
        if op == "route":
            return await self._op_route(conn, request)
        self.stats["errors"] += 1
        await self._respond(
            conn, error_response("unknown-op", f"unknown op {op!r}")
        )
        return True

    async def _op_describe(self, conn: _Connection, request: dict) -> bool:
        """Answer tenant facts (n, k, version) without routing."""
        try:
            service = self._service_for(request.get("scheme"))
        except ReproError as exc:
            self.stats["errors"] += 1
            await self._respond(conn, error_response("unknown-scheme", str(exc)))
            return True
        await self._respond(
            conn,
            {
                "ok": True,
                "op": "describe",
                "n": service.n,
                "k": service.k,
                "version": service.version,
                "key": service.meta.get("key"),
                "lineage": service.meta.get("lineage"),
                "handshake": bool(service.meta.get("handshake")),
            },
        )
        return True

    async def _op_route(self, conn: _Connection, request: dict) -> bool:
        """Admit one route request into the bounded queue (or shed it)."""
        if self._draining:
            await self._respond(
                conn,
                self._echo_id(
                    request,
                    error_response("shutting-down", "daemon is draining"),
                ),
            )
            return True
        item = _QueuedRequest(conn, request, perf_counter())
        try:
            self._queue.put_nowait(item)
        except asyncio.QueueFull:
            self.stats["shed"] += 1
            TELEMETRY.count("serve.shed")
            await self._respond(
                conn,
                self._echo_id(
                    request,
                    error_response(
                        "backpressure",
                        f"request queue is full ({self.queue_limit}); retry",
                        queue_depth=self._queue.qsize(),
                    ),
                ),
            )
            return True
        if TELEMETRY.enabled:
            TELEMETRY.gauge("serve.queue_depth", self._queue.qsize())
        return True

    # ------------------------------------------------------------------
    # workers
    # ------------------------------------------------------------------
    async def _worker(self) -> None:
        """Pop queued requests and answer them, forever (until cancelled)."""
        while True:
            item = await self._queue.get()
            try:
                response = await self._process_route(item)
            except Exception as exc:  # never let a request kill the worker
                self.stats["errors"] += 1
                response = self._echo_id(
                    item.request, error_response("routing-error", str(exc))
                )
            try:
                await self._respond(item.conn, response)
            except (ConnectionError, OSError):
                pass  # requester vanished; the batch result is dropped
            finally:
                self._queue.task_done()

    async def _process_route(self, item: _QueuedRequest) -> dict:
        """Route one queued request; returns the response object."""
        request = item.request
        tm = TELEMETRY
        waited = perf_counter() - item.enqueued_at
        if waited >= self.timeout:
            self.stats["timeouts"] += 1
            tm.count("serve.timeouts")
            return self._echo_id(
                request,
                error_response(
                    "timeout",
                    f"request spent {waited:.3f}s queued "
                    f"(budget {self.timeout}s)",
                ),
            )
        try:
            service = self._service_for(request.get("scheme"))
        except ReproError as exc:
            self.stats["errors"] += 1
            return self._echo_id(
                request, error_response("unknown-scheme", str(exc))
            )
        try:
            pairs = self._parse_pairs(request, service.n)
        except ProtocolError as exc:
            self.stats["errors"] += 1
            return self._echo_id(request, error_response("bad-request", str(exc)))
        ttl = request.get("ttl")
        ttl = None if ttl is None else int(ttl)
        loop = asyncio.get_running_loop()
        with tm.span("serve.request", pairs=int(pairs.shape[0])):
            try:
                result, version, key = await asyncio.wait_for(
                    loop.run_in_executor(
                        None, self._route_sync, service, pairs, ttl
                    ),
                    self.timeout - waited,
                )
            except asyncio.TimeoutError:
                self.stats["timeouts"] += 1
                tm.count("serve.timeouts")
                return self._echo_id(
                    request,
                    error_response(
                        "timeout",
                        f"route exceeded the {self.timeout}s budget",
                    ),
                )
            except RoutingError as exc:
                self.stats["errors"] += 1
                return self._echo_id(
                    request, error_response("routing-error", str(exc))
                )
        elapsed = perf_counter() - item.enqueued_at
        self.stats["requests"] += 1
        self.stats["routed_pairs"] += int(pairs.shape[0])
        if tm.enabled:
            tm.count("serve.requests")
            tm.observe("serve.request_seconds", elapsed)
            tm.gauge("serve.queue_depth", self._queue.qsize())
        return self._echo_id(
            request,
            {
                "ok": True,
                "op": "route",
                "version": version,
                "key": key,
                "seconds": elapsed,
                "result": result_to_wire(result),
            },
        )

    @staticmethod
    def _route_sync(service: RouteService, pairs: np.ndarray, ttl):
        """Route one batch on the executor thread (tests hook here).

        Returns ``(result, version, key)`` read *after* the route so the
        reported version is the one that actually answered (the service
        pins its mapping for the whole batch).
        """
        result = service.route(pairs, ttl=ttl)
        return result, service.version, service.meta.get("key")

    @staticmethod
    def _parse_pairs(request: dict, n: int) -> np.ndarray:
        """Validate the request's pair matrix against the tenant size."""
        raw = request.get("pairs")
        if raw is None:
            raise ProtocolError("route request carries no 'pairs'")
        try:
            pairs = np.asarray(raw, dtype=np.int64)
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"pairs are not an integer matrix: {exc}") from exc
        if pairs.size == 0:
            pairs = pairs.reshape(0, 2)
        if pairs.ndim != 2 or pairs.shape[1] != 2:
            raise ProtocolError(
                f"pairs must be an (m, 2) matrix, got shape {pairs.shape}"
            )
        if pairs.size and (pairs.min() < 0 or pairs.max() >= n):
            raise ProtocolError(
                f"pair endpoints must be in [0, {n}); got "
                f"[{pairs.min()}, {pairs.max()}]"
            )
        return pairs

    @staticmethod
    def _echo_id(request: dict, response: dict) -> dict:
        """Copy the client's request tag (if any) into the response."""
        if "id" in request:
            response = dict(response, id=request["id"])
        return response

    async def _respond(self, conn: _Connection, obj: dict) -> None:
        """Write one response frame under the connection's write lock."""
        async with conn.lock:
            conn.writer.write(encode_frame(obj))
            await conn.writer.drain()

    # ------------------------------------------------------------------
    # tenancy
    # ------------------------------------------------------------------
    def _service_for(self, scheme: Optional[str]) -> RouteService:
        """The (possibly cached) serving state of one tenant.

        ``scheme`` may be a lineage id (hot-reload via its ``.current``
        pointer), a container key (pinned version), or a path to either
        file kind.  Misses open through the LRU, which may evict the
        least-recently-used tenant; a later request for the evicted
        tenant simply re-mmaps it.
        """
        scheme = scheme or self.default_scheme
        if not scheme:
            raise RoutingError(
                "route request names no scheme and the daemon has no default"
            )
        path = self._tenant_path(str(scheme))
        return self.lru.get(
            str(path), lambda: RouteService(path, kernel=self.kernel)
        )

    def _tenant_path(self, scheme: str) -> Path:
        """Map a tenant name to the pointer/container file to serve."""
        pointer = self.store.pointer_path(scheme)
        if pointer.exists():
            return pointer
        container = self.store.path_for(scheme)
        if container.exists():
            return container
        as_path = Path(scheme)
        if as_path.exists() and as_path.name.endswith(
            (STORE_SUFFIX, POINTER_SUFFIX)
        ):
            return as_path
        raise RoutingError(
            f"no lineage, container or file named {scheme!r} in "
            f"{self.store.root}"
        )


def run_daemon(
    store_dir: Union[str, Path],
    *,
    on_ready=None,
    **config,
) -> dict:
    """Run a daemon until it shuts down; returns its final stats.

    The blocking entry point behind ``repro serve --daemon``:
    constructs the daemon, starts it, calls ``on_ready(daemon)`` once
    the port is bound (the CLI prints the address / writes the port
    file there), and serves until SIGTERM/SIGINT or a ``shutdown`` op
    completes the drain.
    """

    async def _main() -> dict:
        daemon = RouteDaemon(store_dir, **config)
        await daemon.start()
        if on_ready is not None:
            on_ready(daemon)
        await daemon.serve_forever()
        return dict(daemon.stats)

    return asyncio.run(_main())
