"""Capacity-bounded LRU of open scheme tenants.

The daemon serves many ``(graph, k, kernel)`` tenants from one store
directory, but every open tenant pins a memory map and a compiled
router.  :class:`SchemeLRU` bounds that working set: at most
``capacity`` tenants are open at once, the least-recently-used one is
evicted when a new tenant is admitted, and an evicted tenant is simply
**re-opened (re-mmapped) on its next hit** — eviction is a performance
event, never a correctness one.  The property suite pins exactly that:
arbitrary access sequences preserve the capacity bound and LRU eviction
order, and a route answered after evict → re-mmap is bit-identical to
one answered by the original mapping.

Eviction drops the cache's reference and calls the entry's optional
``close()``; because the underlying container is an mmap, the OS keeps
the pages alive for any batch still routing on the old reference —
the same reference-lifetime draining the hot-swap path relies on.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, List, Tuple, TypeVar

from ..obs import TELEMETRY

T = TypeVar("T")


class SchemeLRU:
    """An LRU map of tenant key → open serving state (see module doc)."""

    def __init__(self, capacity: int) -> None:
        """A cache admitting at most ``capacity`` (≥ 1) open tenants."""
        if capacity < 1:
            raise ValueError(f"LRU capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: "OrderedDict[str, object]" = OrderedDict()

    def __len__(self) -> int:
        """Number of currently open tenants."""
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        """Whether ``key`` is open (does not touch recency)."""
        return key in self._entries

    def keys(self) -> List[str]:
        """Open tenant keys, least recently used first."""
        return list(self._entries)

    def get(self, key: str, open_fn: Callable[[], T]) -> T:
        """The entry for ``key``, opening it via ``open_fn`` on a miss.

        A hit moves the key to most-recently-used.  A miss calls
        ``open_fn()`` *before* touching the cache (an opener that raises
        leaves the cache unchanged), inserts the result, then evicts the
        least-recently-used entries beyond ``capacity``.
        """
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            TELEMETRY.count("serve.lru_hits")
            return entry
        opened = open_fn()
        self.misses += 1
        TELEMETRY.count("serve.lru_misses")
        self._entries[key] = opened
        while len(self._entries) > self.capacity:
            self._evict_one()
        return opened

    def evict(self, key: str) -> bool:
        """Drop one tenant now (e.g. its store file disappeared)."""
        entry = self._entries.pop(key, None)
        if entry is None:
            return False
        self._close(entry)
        self.evictions += 1
        TELEMETRY.count("serve.lru_evictions")
        return True

    def clear(self) -> None:
        """Drop every open tenant (daemon shutdown)."""
        for key in list(self._entries):
            self.evict(key)

    def _evict_one(self) -> Tuple[str, object]:
        """Evict the least-recently-used entry."""
        key, entry = self._entries.popitem(last=False)
        self._close(entry)
        self.evictions += 1
        TELEMETRY.count("serve.lru_evictions")
        return key, entry

    @staticmethod
    def _close(entry: object) -> None:
        """Release an evicted entry (``close()`` is optional)."""
        close = getattr(entry, "close", None)
        if callable(close):
            close()

    def stats(self) -> Dict[str, int]:
        """Counters plus current occupancy (for the ``stats`` op)."""
        return {
            "capacity": self.capacity,
            "size": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }
