"""Persistent serving: the asyncio route daemon and its load generator.

This package promotes the batch-at-a-time
:class:`~repro.store.RouteService` into a long-running server:

* :mod:`repro.serve.protocol` — length-prefixed JSON frames, the
  request/response shapes, and the bit-exact
  :class:`~repro.sim.engine.batch.BatchResult` wire codec;
* :mod:`repro.serve.lru` — :class:`SchemeLRU`, the capacity bound on
  open ``(graph, k, kernel)`` tenants (evict → re-mmap on next hit);
* :mod:`repro.serve.daemon` — :class:`RouteDaemon`, the asyncio TCP
  server: bounded queue with explicit backpressure, per-request
  timeouts, hot reload off store lineages, graceful SIGTERM drain;
* :mod:`repro.serve.loadgen` — the Zipf load generator and
  :class:`DaemonClient` (``repro loadgen``, ``BENCH_serve.json``).
"""

from .daemon import RouteDaemon, run_daemon
from .loadgen import (
    DaemonClient,
    LoadgenReport,
    run_loadgen,
    zipf_traffic,
    zipf_weights,
)
from .lru import SchemeLRU
from .protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    encode_frame,
    read_frame,
    read_frame_async,
    result_from_wire,
    result_to_wire,
    write_frame,
)

__all__ = [
    "DaemonClient",
    "LoadgenReport",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "RouteDaemon",
    "SchemeLRU",
    "encode_frame",
    "read_frame",
    "read_frame_async",
    "result_from_wire",
    "result_to_wire",
    "run_daemon",
    "run_loadgen",
    "write_frame",
    "zipf_traffic",
    "zipf_weights",
]
