"""Wire protocol of the serving daemon: length-prefixed JSON frames.

One frame is a 4-byte big-endian payload length followed by that many
bytes of UTF-8 JSON.  The framing is deliberately minimal — any client
in any language can speak it with a socket and a JSON library — and the
length prefix gives the server an *a-priori* bound check: a frame
claiming more than ``max_bytes`` is rejected before a single payload
byte is read, so a hostile or broken client cannot make the daemon
allocate unbounded memory.

Requests and responses are JSON objects.  Every response carries
``"ok"``: ``true`` with op-specific fields, or ``false`` with an
``"error"`` code (one of :data:`ERROR_CODES`) and a human-readable
``"message"``.  The route payload round-trips
:class:`~repro.sim.engine.batch.BatchResult` column-by-column through
:func:`result_to_wire` / :func:`result_from_wire`; Python's JSON float
serialization uses ``repr`` (shortest round-tripping form), so float64
route weights survive the wire **bit for bit** — the serving soak test
pins this against in-process reference routing.

Sync helpers (:func:`read_frame` / :func:`write_frame`) serve the
blocking client side (load generator, tests); the daemon reads frames
through :func:`read_frame_async` on an :class:`asyncio.StreamReader`.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
from typing import Dict, Optional

import numpy as np

from ..errors import ProtocolError
from ..sim.engine.batch import BatchResult

#: Protocol revision carried in every ``ping`` response.
PROTOCOL_VERSION = 1

#: Default per-frame payload ceiling (32 MiB ≈ a 400k-pair route batch).
MAX_FRAME_BYTES = 32 * 1024 * 1024

_LEN = struct.Struct(">I")

#: Error codes a response's ``"error"`` field may carry.
ERROR_CODES = (
    "bad-frame",      # unparseable or non-object payload
    "bad-request",    # well-formed JSON but invalid fields
    "unknown-op",     # op not in the dispatch table
    "unknown-scheme", # no such lineage/key/container in the store
    "backpressure",   # request queue full; retry later
    "timeout",        # request exceeded the daemon's per-request budget
    "routing-error",  # the route itself raised
    "shutting-down",  # daemon is draining; no new work accepted
)

#: ``BatchResult`` columns in wire order, with their exact dtypes —
#: the decode side must rebuild precisely these for bit-identity.
RESULT_COLUMNS = (
    ("source", np.int64),
    ("dest", np.int64),
    ("delivered", np.bool_),
    ("weight", np.float64),
    ("hops", np.int64),
    ("tree", np.int64),
    ("max_header_bits", np.int64),
    ("failure_code", np.int8),
)


def encode_frame(obj: dict) -> bytes:
    """Serialize one message to its on-wire form (length + JSON)."""
    payload = json.dumps(obj, separators=(",", ":")).encode()
    return _LEN.pack(len(payload)) + payload


def decode_payload(payload: bytes) -> dict:
    """Parse one frame payload; raises :class:`ProtocolError` on garbage."""
    try:
        obj = json.loads(payload)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"frame payload is not valid JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError(
            f"frame payload must be a JSON object, got {type(obj).__name__}"
        )
    return obj


async def read_frame_async(
    reader: asyncio.StreamReader, *, max_bytes: int = MAX_FRAME_BYTES
) -> dict:
    """Read one frame from an asyncio stream.

    Raises :class:`ProtocolError` on an oversized length prefix or a
    garbage payload, and :class:`asyncio.IncompleteReadError` when the
    peer closes mid-frame (the caller treats that as a hangup, not an
    error to answer).
    """
    header = await reader.readexactly(_LEN.size)
    (length,) = _LEN.unpack(header)
    if length > max_bytes:
        exc = ProtocolError(
            f"frame of {length} bytes exceeds the {max_bytes}-byte limit"
        )
        # The refused payload is still on the wire: the stream is out
        # of sync and the connection must be closed after answering.
        exc.payload_consumed = False
        raise exc
    return decode_payload(await reader.readexactly(length))


def write_frame(sock: socket.socket, obj: dict) -> None:
    """Send one message over a blocking socket (client side)."""
    sock.sendall(encode_frame(obj))


def read_frame(
    sock: socket.socket, *, max_bytes: int = MAX_FRAME_BYTES
) -> Optional[dict]:
    """Read one frame from a blocking socket (client side).

    Returns ``None`` on a clean EOF before any byte of the frame;
    raises :class:`ProtocolError` on a mid-frame hangup, an oversized
    prefix, or a garbage payload.
    """
    header = _recv_exact(sock, _LEN.size, eof_ok=True)
    if header is None:
        return None
    (length,) = _LEN.unpack(header)
    if length > max_bytes:
        raise ProtocolError(
            f"frame of {length} bytes exceeds the {max_bytes}-byte limit"
        )
    payload = _recv_exact(sock, length, eof_ok=False)
    return decode_payload(payload)


def _recv_exact(sock: socket.socket, count: int, *, eof_ok: bool):
    """Read exactly ``count`` bytes; ``None`` on immediate EOF if allowed."""
    chunks = []
    got = 0
    while got < count:
        chunk = sock.recv(min(count - got, 1 << 20))
        if not chunk:
            if eof_ok and got == 0:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({got}/{count} bytes)"
            )
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def result_to_wire(result: BatchResult) -> Dict[str, list]:
    """Encode a routing result column-by-column as JSON-able lists."""
    wire: Dict[str, list] = {}
    for name, _ in RESULT_COLUMNS:
        wire[name] = getattr(result, name).tolist()
    return wire


def result_from_wire(wire: Dict[str, list]) -> BatchResult:
    """Rebuild a :class:`BatchResult` with its exact column dtypes.

    The inverse of :func:`result_to_wire`: because JSON floats
    round-trip float64 exactly and every integer column fits its dtype
    by construction, ``result_from_wire(result_to_wire(r))`` is
    bit-identical to ``r`` on every column (tested).
    """
    try:
        columns = {
            name: np.asarray(wire[name], dtype=dtype)
            for name, dtype in RESULT_COLUMNS
        }
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed route result payload: {exc}") from exc
    return BatchResult(**columns)


def error_response(code: str, message: str, **extra) -> dict:
    """Build one ``ok: false`` response (``code`` ∈ :data:`ERROR_CODES`)."""
    assert code in ERROR_CODES, code
    return {"ok": False, "error": code, "message": message, **extra}
