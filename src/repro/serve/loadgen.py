"""Zipf load generator: replay skewed user traffic against the daemon.

Real routing traffic is never uniform — a few sources (popular
services, chatty hosts) and a few destinations dominate.  The load
generator models that directly: **N simulated users** are mapped onto a
seeded random permutation of the graph's vertices and draw their
traffic from a Zipf(``s``) popularity law (rank ``r`` is chosen with
probability ∝ 1/r^s), destinations follow an independent Zipf law over
all vertices, and **M concurrent connections** replay the resulting
request stream against a running :class:`~repro.serve.daemon.RouteDaemon`.

Every request's wall latency is recorded client-side (send → response),
so the report's p50/p99 include framing, queueing and routing — what a
real client observes, not what the server flatters itself with.  All
traffic is pre-generated from one seed before the clock starts; a
loadgen run is deterministic in everything but the latencies.

``repro loadgen`` is the CLI face; ``benchmarks/bench_serve.py`` gates
CI on the measured throughput floor and writes ``BENCH_serve.json``.
"""

from __future__ import annotations

import socket
import threading
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional

import numpy as np

from ..errors import ProtocolError
from ..rng import RngLike, make_rng
from .protocol import MAX_FRAME_BYTES, read_frame, write_frame


class DaemonClient:
    """A blocking, single-connection protocol client (tests + loadgen)."""

    def __init__(
        self, host: str, port: int, *, timeout: float = 30.0
    ) -> None:
        """Connect to a daemon at ``(host, port)``."""
        self.sock = socket.create_connection((host, port), timeout=timeout)
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)

    def request(self, obj: dict, *, max_bytes: int = MAX_FRAME_BYTES) -> dict:
        """One request/response round trip."""
        write_frame(self.sock, obj)
        response = read_frame(self.sock, max_bytes=max_bytes)
        if response is None:
            raise ProtocolError("daemon closed the connection before answering")
        return response

    def send_raw(self, data: bytes) -> None:
        """Send raw bytes (protocol-fuzz tests)."""
        self.sock.sendall(data)

    def read_response(self, *, max_bytes: int = MAX_FRAME_BYTES):
        """Read one frame without sending (protocol-fuzz tests)."""
        return read_frame(self.sock, max_bytes=max_bytes)

    def close(self) -> None:
        """Close the connection."""
        try:
            self.sock.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass

    def __enter__(self) -> "DaemonClient":
        """Context-manager support."""
        return self

    def __exit__(self, *exc) -> None:
        """Close on scope exit."""
        self.close()


def zipf_weights(size: int, s: float) -> np.ndarray:
    """Zipf(``s``) probabilities over ranks ``1..size``."""
    if size < 1:
        raise ValueError(f"need at least one rank, got {size}")
    w = 1.0 / np.arange(1, size + 1, dtype=np.float64) ** float(s)
    return w / w.sum()


def zipf_traffic(
    n: int,
    *,
    users: int,
    requests: int,
    batch: int,
    s: float = 1.2,
    rng: RngLike = None,
) -> List[np.ndarray]:
    """Pre-generate ``requests`` Zipf-skewed traffic matrices.

    Sources come from ``min(users, n)`` simulated users (vertices drawn
    by a seeded permutation, popularity Zipf-ranked); destinations from
    an independent Zipf ranking over all ``n`` vertices.  Self-pairs
    are resampled, so every row has distinct endpoints (``n >= 2``).
    """
    if n < 2:
        raise ValueError(f"need at least two vertices, got {n}")
    gen = make_rng(rng)
    users = max(1, min(int(users), n))
    user_vertices = gen.permutation(n)[:users]
    src_p = zipf_weights(users, s)
    dest_ranking = gen.permutation(n)
    dst_p = zipf_weights(n, s)
    out = []
    for _ in range(requests):
        src = user_vertices[gen.choice(users, size=batch, p=src_p)]
        dst = dest_ranking[gen.choice(n, size=batch, p=dst_p)]
        bad = src == dst
        while bad.any():
            dst[bad] = dest_ranking[
                gen.choice(n, size=int(bad.sum()), p=dst_p)
            ]
            bad = src == dst
        out.append(np.stack([src, dst], axis=1).astype(np.int64))
    return out


@dataclass
class LoadgenReport:
    """Client-observed outcome of one load-generator run."""

    users: int
    connections: int
    requests: int
    batch: int
    zipf_s: float
    total_pairs: int
    delivered_pairs: int
    errors: int
    error_codes: Dict[str, int]
    wall_seconds: float
    latencies: np.ndarray = field(repr=False)
    versions: List[int] = field(default_factory=list)

    @property
    def pairs_per_second(self) -> float:
        """Successfully routed pairs per wall second, across connections."""
        return self.total_pairs / max(self.wall_seconds, 1e-9)

    def latency_percentile(self, q: float) -> float:
        """Latency percentile in seconds (lower interpolation, like p99)."""
        if self.latencies.size == 0:
            return float("nan")
        return float(np.percentile(self.latencies, q))

    @property
    def p50(self) -> float:
        """Median request latency in seconds."""
        return self.latency_percentile(50)

    @property
    def p99(self) -> float:
        """99th-percentile request latency in seconds."""
        return self.latency_percentile(99)

    def to_dict(self) -> dict:
        """JSON-able report document (``tz-loadgen-report``)."""
        return {
            "kind": "tz-loadgen-report",
            "users": self.users,
            "connections": self.connections,
            "requests": self.requests,
            "batch": self.batch,
            "zipf_s": self.zipf_s,
            "total_pairs": self.total_pairs,
            "delivered_pairs": self.delivered_pairs,
            "delivery_rate": (
                self.delivered_pairs / self.total_pairs
                if self.total_pairs
                else None
            ),
            "errors": self.errors,
            "error_codes": dict(self.error_codes),
            "wall_seconds": self.wall_seconds,
            "pairs_per_second": self.pairs_per_second,
            "latency_seconds": {
                "p50": self.p50,
                "p99": self.p99,
                "mean": (
                    float(self.latencies.mean())
                    if self.latencies.size
                    else None
                ),
                "max": (
                    float(self.latencies.max())
                    if self.latencies.size
                    else None
                ),
            },
            "versions_seen": sorted(
                {v for v in self.versions if v is not None}
            ),
        }


def run_loadgen(
    host: str,
    port: int,
    *,
    scheme: Optional[str] = None,
    users: int = 100,
    connections: int = 4,
    requests: int = 64,
    batch: int = 256,
    zipf_s: float = 1.2,
    seed: int = 0,
    ttl: Optional[int] = None,
    timeout: float = 60.0,
) -> LoadgenReport:
    """Replay Zipf traffic against a running daemon; returns the report.

    ``requests`` is the total across all ``connections`` (distributed
    round-robin).  The tenant size is discovered with a ``describe``
    request, all traffic is pre-generated from ``seed``, and only then
    does the clock start.  Each connection thread records one latency
    sample per request; protocol-level failures (backpressure,
    timeout, …) are counted per error code, never raised.
    """
    with DaemonClient(host, port, timeout=timeout) as probe:
        desc = probe.request({"op": "describe", "scheme": scheme})
    if not desc.get("ok"):
        raise ProtocolError(
            f"describe failed: {desc.get('error')}: {desc.get('message')}"
        )
    n = int(desc["n"])

    matrices = zipf_traffic(
        n, users=users, requests=requests, batch=batch, s=zipf_s, rng=seed
    )
    per_conn: List[List[np.ndarray]] = [[] for _ in range(max(1, connections))]
    for i, matrix in enumerate(matrices):
        per_conn[i % len(per_conn)].append(matrix)

    lock = threading.Lock()
    latencies: List[float] = []
    versions: List[int] = []
    error_codes: Dict[str, int] = {}
    totals = {"pairs": 0, "delivered": 0, "errors": 0}

    def drive(schedule: List[np.ndarray]) -> None:
        with DaemonClient(host, port, timeout=timeout) as client:
            for matrix in schedule:
                request = {
                    "op": "route",
                    "scheme": scheme,
                    "pairs": matrix.tolist(),
                    "ttl": ttl,
                }
                t0 = perf_counter()
                response = client.request(request)
                elapsed = perf_counter() - t0
                with lock:
                    latencies.append(elapsed)
                    if response.get("ok"):
                        totals["pairs"] += int(matrix.shape[0])
                        totals["delivered"] += sum(
                            response["result"]["delivered"]
                        )
                        versions.append(response.get("version"))
                    else:
                        totals["errors"] += 1
                        code = str(response.get("error"))
                        error_codes[code] = error_codes.get(code, 0) + 1

    threads = [
        threading.Thread(target=drive, args=(schedule,), daemon=True)
        for schedule in per_conn
        if schedule
    ]
    wall0 = perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = perf_counter() - wall0

    return LoadgenReport(
        users=users,
        connections=len(threads),
        requests=requests,
        batch=batch,
        zipf_s=zipf_s,
        total_pairs=totals["pairs"],
        delivered_pairs=totals["delivered"],
        errors=totals["errors"],
        error_codes=error_codes,
        wall_seconds=wall,
        latencies=np.asarray(latencies, dtype=np.float64),
        versions=versions,
    )
