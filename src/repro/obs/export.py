"""Exporters: JSON-lines traces and metrics documents.

Two machine-readable forms of one :class:`~repro.obs.telemetry.Telemetry`
registry:

* :func:`write_trace` — one JSON object per line per span, preorder,
  with start/duration/self nanoseconds, depth and a parent index into
  the same file.  JSON-lines so a partial file (a crashed run) is still
  parseable line by line, and CI can upload it as a flat artifact.
* :func:`write_metrics` — a single JSON document of counters, gauges
  and histogram summaries (count/mean/percentiles), the shape the
  serving daemon of ROADMAP item 3 will expose over HTTP.

The human-readable rendering (span tree with self/cumulative times,
metric tables) lives in :mod:`repro.analysis.obs_report`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from .telemetry import TELEMETRY, Telemetry

__all__ = [
    "metrics_doc",
    "trace_records",
    "write_metrics",
    "write_trace",
]

#: Schema tags stamped into every export (bump on layout changes).
TRACE_SCHEMA = "tz-trace/v1"
METRICS_SCHEMA = "tz-metrics/v1"


def trace_records(tm: Optional[Telemetry] = None) -> List[Dict[str, object]]:
    """Flatten the registry's span forest into JSON-able records.

    Records are preorder; ``parent`` is the index of the parent record
    in the returned list (``-1`` for roots), so the tree reconstructs
    without object identity.
    """
    tm = TELEMETRY if tm is None else tm
    records: List[Dict[str, object]] = []
    index: Dict[int, int] = {}
    for sp, depth in tm.spans():
        parent = index.get(id(sp._parent), -1) if sp._parent is not None else -1
        index[id(sp)] = len(records)
        records.append(
            {
                "name": sp.name,
                "depth": depth,
                "parent": parent,
                "start_ns": sp.start_ns,
                "duration_ns": sp.duration_ns,
                "self_ns": sp.self_ns,
                "attrs": dict(sp.attrs),
            }
        )
    return records


def write_trace(
    path: Union[str, Path], tm: Optional[Telemetry] = None
) -> Path:
    """Write the span forest as JSON lines; returns the path written.

    The first line is a header object (``{"schema": "tz-trace/v1"}``);
    every following line is one span record (see :func:`trace_records`).
    """
    tm = TELEMETRY if tm is None else tm
    path = Path(path)
    with open(path, "w") as fh:
        fh.write(json.dumps({"schema": TRACE_SCHEMA, "spans": len(list(tm.spans()))}))
        fh.write("\n")
        for record in trace_records(tm):
            fh.write(json.dumps(record))
            fh.write("\n")
    return path


def _histogram_summary(values: List[float]) -> Dict[str, float]:
    """count/sum/mean/min/p50/p99/max of one histogram series."""
    ordered = sorted(values)
    count = len(ordered)

    def pct(q: float) -> float:
        """Nearest-rank percentile of the sorted series."""
        return ordered[min(count - 1, int(q * count))]

    return {
        "count": count,
        "sum": sum(ordered),
        "mean": sum(ordered) / count,
        "min": ordered[0],
        "p50": pct(0.50),
        "p99": pct(0.99),
        "max": ordered[-1],
    }


def metrics_doc(tm: Optional[Telemetry] = None) -> Dict[str, object]:
    """The registry's metrics as one JSON-able document."""
    tm = TELEMETRY if tm is None else tm
    return {
        "schema": METRICS_SCHEMA,
        "counters": dict(tm.counters),
        "gauges": dict(tm.gauges),
        "histograms": {
            name: _histogram_summary(values)
            for name, values in tm.histograms.items()
            if values
        },
    }


def write_metrics(
    path: Union[str, Path], tm: Optional[Telemetry] = None
) -> Path:
    """Write :func:`metrics_doc` as indented JSON; returns the path."""
    path = Path(path)
    with open(path, "w") as fh:
        json.dump(metrics_doc(tm), fh, indent=2)
        fh.write("\n")
    return path
