"""Process-local telemetry: nested spans, counters, gauges, histograms.

Every layer of the pipeline — builder, CSR kernel, batch router, scheme
store, route service, backend registry — reports through one
process-local :class:`Telemetry` registry (the module singleton
:data:`TELEMETRY`).  The design contract is **strict no-op when
disabled**: the hot paths pay one attribute check (``TELEMETRY.enabled``)
and nothing else — no span objects, no dict writes, no clock reads —
which is what lets the instrumentation live permanently inside the
routing hop loop and the builder's level sweeps (the overhead gate in
``benchmarks/bench_obs.py`` holds it to ≤2% of the 100k-pair route
bench).

Three instrument kinds, all process-local and explicitly mergeable:

* **spans** — nested wall-time regions timed with
  :func:`time.perf_counter_ns` (monotonic; immune to wall-clock steps).
  ``with telemetry.span("build.clusters", level=i): ...`` records one
  :class:`Span` under the currently open span, exception-safe (an
  escaping exception still closes the span and stamps an ``error``
  attribute).
* **counters** — monotonically accumulated numbers
  (``count("route.pairs_routed", P)``): Dijkstra pops, hop-loop rounds,
  store hits/misses, pairs routed.
* **gauges / histograms** — last-value samples (``gauge``) and full
  value series with percentile summaries (``observe``), e.g. per-shard
  route latency.

Worker processes (the sharded :class:`~repro.store.RouteService`) each
hold their own registry; :meth:`Telemetry.snapshot` /
:meth:`Telemetry.merge` move counters, gauges and histograms across the
process boundary so the parent's totals stay exact (tested in
``tests/test_obs.py``).  Spans stay process-local — a worker's wall time
is reported into the parent's ``serve.shard_seconds`` histogram instead.

Results are never touched: instrumented and uninstrumented runs return
bit-identical routing outcomes (the disabled-mode identity test pins
this on every result column).
"""

from __future__ import annotations

from time import perf_counter_ns
from typing import Dict, List, Optional

__all__ = [
    "Span",
    "Telemetry",
    "TELEMETRY",
    "TimedSpan",
    "count",
    "gauge",
    "observe",
    "span",
    "timed",
]


class Span:
    """One timed region of a trace tree.

    Created by :meth:`Telemetry.span` and driven by the ``with``
    statement: ``__enter__`` stamps the start, attaches the span under
    the registry's currently open span and makes it current;
    ``__exit__`` stamps the end and restores the parent — also when the
    body raises, in which case the exception type lands in
    ``attrs["error"]`` and the exception propagates unchanged.
    """

    __slots__ = ("name", "attrs", "start_ns", "end_ns", "children", "_tm", "_parent")

    def __init__(self, tm: "Telemetry", name: str, attrs: Dict[str, object]) -> None:
        """Internal — use :meth:`Telemetry.span` (handles disabled mode)."""
        self.name = name
        self.attrs = attrs
        self.start_ns = 0
        self.end_ns = 0
        self.children: List["Span"] = []
        self._tm = tm
        self._parent: Optional["Span"] = None

    def __enter__(self) -> "Span":
        """Open the span: attach to the current span and start the clock."""
        tm = self._tm
        self._parent = tm._active
        if self._parent is not None:
            self._parent.children.append(self)
        else:
            tm.roots.append(self)
        tm._active = self
        self.start_ns = perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        """Close the span (exception-safe; exceptions propagate)."""
        self.end_ns = perf_counter_ns()
        self._tm._active = self._parent
        if exc_type is not None:
            self.attrs = dict(self.attrs, error=exc_type.__name__)
        return False

    # -- derived timings ------------------------------------------------
    @property
    def duration_ns(self) -> int:
        """Cumulative wall time in nanoseconds (0 while still open)."""
        return max(0, self.end_ns - self.start_ns)

    @property
    def seconds(self) -> float:
        """Cumulative wall time in seconds."""
        return self.duration_ns / 1e9

    @property
    def self_ns(self) -> int:
        """Own time: cumulative minus the children's cumulative time."""
        return max(0, self.duration_ns - sum(c.duration_ns for c in self.children))

    def walk(self, depth: int = 0):
        """Yield ``(span, depth)`` over this subtree, preorder."""
        yield self, depth
        for child in self.children:
            yield from child.walk(depth + 1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        """Render name, wall time and attrs for debugging."""
        return f"<Span {self.name!r} {self.seconds * 1e3:.2f}ms {self.attrs}>"


class _NoopSpan:
    """The disabled-mode span: enters and exits without touching anything.

    A single shared instance (:data:`NOOP_SPAN`) is returned by every
    :meth:`Telemetry.span` call while disabled, so the hot path allocates
    nothing.
    """

    __slots__ = ()
    name = ""
    attrs: Dict[str, object] = {}
    children: List[Span] = []
    start_ns = end_ns = duration_ns = self_ns = 0
    seconds = 0.0

    def __enter__(self) -> "_NoopSpan":
        """No-op."""
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        """No-op (exceptions propagate)."""
        return False


#: The shared disabled-mode span instance.
NOOP_SPAN = _NoopSpan()


class Telemetry:
    """Process-local registry of spans, counters, gauges and histograms.

    Starts disabled; :meth:`enable` resets nothing by itself (call
    :meth:`reset` to clear collected data).  All methods are cheap
    single-threaded operations — the sharded serving path runs one
    registry per *process* and merges snapshots, so no locking is needed
    for exactness (numpy releases the GIL only inside kernels; the
    Python-level dict updates here are atomic per call).
    """

    __slots__ = ("enabled", "counters", "gauges", "histograms", "roots", "_active")

    def __init__(self) -> None:
        """A fresh, disabled registry with no recorded data."""
        self.enabled = False
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, List[float]] = {}
        self.roots: List[Span] = []
        self._active: Optional[Span] = None

    # -- lifecycle ------------------------------------------------------
    def enable(self) -> None:
        """Start recording (collected data is kept; see :meth:`reset`)."""
        self.enabled = True

    def disable(self) -> None:
        """Stop recording; every instrument becomes a strict no-op."""
        self.enabled = False

    def reset(self) -> None:
        """Drop all recorded spans and metrics (enabled flag unchanged)."""
        self.counters = {}
        self.gauges = {}
        self.histograms = {}
        self.roots = []
        self._active = None

    # -- spans ----------------------------------------------------------
    def span(self, name: str, **attrs):
        """A context manager timing one named region.

        Disabled mode returns the shared no-op span.  ``attrs`` are
        free-form JSON-able labels (``level=2``, ``engine="pruned"``)
        carried into the trace export.
        """
        if not self.enabled:
            return NOOP_SPAN
        return Span(self, name, attrs)

    def spans(self):
        """Yield every recorded ``(span, depth)``, preorder across roots."""
        for root in self.roots:
            yield from root.walk()

    # -- metrics --------------------------------------------------------
    def count(self, name: str, value: float = 1) -> None:
        """Add ``value`` to the named counter (no-op while disabled)."""
        if not self.enabled:
            return
        counters = self.counters
        counters[name] = counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set the named gauge to its latest value (no-op while disabled)."""
        if not self.enabled:
            return
        self.gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Append one sample to the named histogram (no-op while disabled)."""
        if not self.enabled:
            return
        self.histograms.setdefault(name, []).append(float(value))

    # -- cross-process merge --------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """A picklable copy of the metric state (spans stay local)."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {k: list(v) for k, v in self.histograms.items()},
        }

    def merge(self, snap: Optional[Dict[str, object]]) -> None:
        """Fold a worker's :meth:`snapshot` into this registry.

        Counters add (so totals across shards stay exact), gauges take
        the incoming value, histograms concatenate.  Recording must be
        enabled; a ``None`` snapshot is ignored (a worker that did not
        record).
        """
        if snap is None or not self.enabled:
            return
        for name, value in snap["counters"].items():
            self.counters[name] = self.counters.get(name, 0) + value
        self.gauges.update(snap["gauges"])
        for name, values in snap["histograms"].items():
            self.histograms.setdefault(name, []).extend(values)


#: The process-wide registry every instrumented layer reports to.
TELEMETRY = Telemetry()


class TimedSpan:
    """A context manager that always times, and records a span if enabled.

    This is the CLI's phase timer: commands print elapsed seconds
    whether or not telemetry is on, so the clock
    (:func:`time.perf_counter_ns`, monotonic) always runs, while the
    span only lands in the trace when the registry records.  Read
    ``.seconds`` after the ``with`` block.
    """

    __slots__ = ("name", "attrs", "start_ns", "end_ns", "_span")

    def __init__(self, name: str, attrs: Dict[str, object]) -> None:
        """Internal — use :func:`timed`."""
        self.name = name
        self.attrs = attrs
        self.start_ns = 0
        self.end_ns = 0
        self._span = None

    def __enter__(self) -> "TimedSpan":
        """Start the clock (and open a real span when recording)."""
        self._span = TELEMETRY.span(self.name, **self.attrs)
        self._span.__enter__()
        self.start_ns = perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        """Stop the clock and close the inner span (exception-safe)."""
        self.end_ns = perf_counter_ns()
        return self._span.__exit__(exc_type, exc, tb)

    @property
    def seconds(self) -> float:
        """Elapsed wall seconds (monotonic clock)."""
        return max(0, self.end_ns - self.start_ns) / 1e9


def timed(name: str, **attrs) -> TimedSpan:
    """An always-timing :class:`TimedSpan` (span recorded when enabled)."""
    return TimedSpan(name, attrs)


def span(name: str, **attrs):
    """Module-level shorthand for ``TELEMETRY.span`` (same contract)."""
    return TELEMETRY.span(name, **attrs)


def count(name: str, value: float = 1) -> None:
    """Module-level shorthand for ``TELEMETRY.count``."""
    TELEMETRY.count(name, value)


def gauge(name: str, value: float) -> None:
    """Module-level shorthand for ``TELEMETRY.gauge``."""
    TELEMETRY.gauge(name, value)


def observe(name: str, value: float) -> None:
    """Module-level shorthand for ``TELEMETRY.observe``."""
    TELEMETRY.observe(name, value)
