"""Observability: spans, counters and phase metrics for the whole stack.

The measurement substrate the perf roadmap is judged against.  One
process-local :data:`~repro.obs.telemetry.TELEMETRY` registry collects

* nested wall-time **spans** (``perf_counter_ns``) from the builder's
  per-level phases, the CSR kernel, the batch router's commit/hop-loop,
  the scheme store and the route service;
* **counters** (Dijkstra pops, hop-loop rounds, pairs routed, store
  hits/misses), **gauges** and **histograms** (per-shard latency);

and is a strict no-op when disabled — one attribute check on the hot
path, bit-identical routing results either way (gated by
``tests/test_obs.py`` and ``benchmarks/bench_obs.py``).

Entry points: ``repro profile`` runs a build→store→route pipeline under
full instrumentation and prints the span tree; ``--trace FILE`` /
``--metrics FILE`` on the main subcommands dump the JSON-lines trace and
the metrics document; :mod:`repro.analysis.obs_report` renders both for
humans.
"""

from .export import metrics_doc, trace_records, write_metrics, write_trace
from .telemetry import (
    TELEMETRY,
    Span,
    Telemetry,
    TimedSpan,
    count,
    gauge,
    observe,
    span,
    timed,
)

__all__ = [
    "TELEMETRY",
    "Span",
    "Telemetry",
    "TimedSpan",
    "count",
    "gauge",
    "metrics_doc",
    "observe",
    "span",
    "timed",
    "trace_records",
    "write_metrics",
    "write_trace",
]
