"""Single-tree routing — the minimal-space extreme of the tradeoff.

Route *everything* over one spanning tree using the §2 tree-routing
machinery: O(1)-word tables, (1+o(1))·log n labels... and stretch as bad
as Θ(n/ d(u,v)) on a cycle.  This is essentially the space side of the
pre-compact-routing folklore (cf. Peleg–Upfal's observation that some
stretch/space tradeoff is unavoidable); Table 1 uses it as the opposite
anchor to full shortest-path tables.

Tree choices: the shortest-path tree of a center-ish root (minimizing
eccentricity estimates) or the minimum spanning tree.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from scipy.sparse.csgraph import minimum_spanning_tree

from ..core.router import RouteHeader, RoutingScheme
from ..errors import PreprocessingError
from ..graphs.graph import Graph
from ..graphs.ports import PortedGraph
from ..graphs.shortest_paths import dijkstra
from ..graphs.trees import tree_from_parents
from ..trees.label_codec import tree_label_bits
from ..trees.tz_tree import TreeRouter, build_tree_router


class SingleTreeRoutingScheme(RoutingScheme):
    """All traffic follows one spanning tree."""

    name = "single-tree"

    def __init__(self, ported: PortedGraph, router: TreeRouter) -> None:
        self.ported = ported
        self.router = router
        self.n = ported.n
        degs = ported.graph.degrees()
        self._max_port = int(degs.max()) if degs.size else 1

    def initial_header(self, source: int, dest: int) -> RouteHeader:
        return RouteHeader(
            dest=dest, tree=self.router.root, tree_label=self.router.labels[dest]
        )

    def decide(
        self, u: int, header: RouteHeader
    ) -> Tuple[Optional[int], RouteHeader]:
        if u == header.dest:
            return None, header
        port = self.router.decide(u, header.tree_label)
        if port is None:
            return None, header
        return port, header

    def table_bits(self, u: int) -> int:
        return self.router.record_bits(u, self._max_port)

    def label_bits(self, v: int) -> int:
        return tree_label_bits(self.router.labels[v], self.router.tree_size)

    def stretch_bound(self) -> float:
        return float("inf")  # no multiplicative guarantee on general graphs

    def compile_batch(self, ported: Optional[PortedGraph] = None):
        """Dense-array form for the batch engine (cached per assignment).

        Single-tree routing compiles as the one-tree degenerate TZ
        scheme (see :func:`repro.sim.engine.compile.compile_single_tree`),
        which is what lets Table-1 comparisons run this baseline at
        10⁵-vertex scale instead of through the per-hop simulator.
        """
        from ..sim.engine.compile import compile_single_tree

        target = self.ported if ported is None else ported
        cached = getattr(self, "_batch_compiled", None)
        if cached is not None and cached[0] is target:
            return cached[1]
        compiled = compile_single_tree(self.router, target)
        self._batch_compiled = (target, compiled)
        return compiled


def build_single_tree_scheme(
    graph: Graph,
    ported: Optional[PortedGraph] = None,
    *,
    tree: str = "spt",
    root: Optional[int] = None,
) -> SingleTreeRoutingScheme:
    """Compile single-tree routing.

    ``tree="spt"`` roots a shortest-path tree at ``root`` (default: the
    vertex of maximum degree — a cheap center heuristic); ``tree="mst"``
    uses the minimum spanning tree rooted at ``root`` (default 0).
    """
    from ..graphs.ports import assign_ports

    if not graph.is_connected():
        raise PreprocessingError("single-tree routing requires a connected graph")
    if ported is None:
        ported = assign_ports(graph, "sorted")
    if tree == "spt":
        r = int(np.argmax(graph.degrees())) if root is None else int(root)
        _, parent = dijkstra(graph, r)
        parent_map = {v: int(parent[v]) for v in range(graph.n)}
        parent_map[r] = -1
        rooted = tree_from_parents(r, parent_map)
    elif tree == "mst":
        r = 0 if root is None else int(root)
        mst = minimum_spanning_tree(graph.to_scipy()).tocoo()
        adj = {v: [] for v in range(graph.n)}
        for a, b in zip(mst.row, mst.col):
            adj[int(a)].append(int(b))
            adj[int(b)].append(int(a))
        parent_map = {r: -1}
        stack = [r]
        while stack:
            u = stack.pop()
            for v in adj[u]:
                if v not in parent_map:
                    parent_map[v] = u
                    stack.append(v)
        if len(parent_map) != graph.n:
            raise PreprocessingError("MST does not span the graph")
        rooted = tree_from_parents(r, parent_map)
    else:
        raise PreprocessingError(f"unknown tree kind {tree!r}")
    router = build_tree_router(rooted, ported, port_model="fixed")
    return SingleTreeRoutingScheme(ported, router)
