"""Baseline routing schemes the paper compares against: full
shortest-path tables (stretch 1, linear space), single-tree routing
(constant space, unbounded stretch), and Cowen's stretch-3 scheme (the
prior art TZ §3 improves on)."""

from .shortest_path_routing import ShortestPathRoutingScheme, build_shortest_path_scheme
from .tree_spanner import SingleTreeRoutingScheme, build_single_tree_scheme
from .cowen import build_cowen_scheme, cowen_landmark_set

__all__ = [
    "ShortestPathRoutingScheme",
    "build_shortest_path_scheme",
    "SingleTreeRoutingScheme",
    "build_single_tree_scheme",
    "build_cowen_scheme",
    "cowen_landmark_set",
]
