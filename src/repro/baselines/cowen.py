"""Cowen's stretch-3 compact routing (SODA '99) — the prior art.

Cowen's scheme has the same landmark/cluster architecture later perfected
by TZ §3; the difference is landmark *selection*.  Cowen picks a greedy
dominating set of the ``q``-nearest-neighbor balls: every vertex then has
a landmark among its ``q`` nearest, which bounds every *bunch* by ``q``
(if ``v ∈ C(w)`` then ``d(w,v) < d(v, L) ≤ r_q(v)``, so ``w`` is one of
``v``'s ``q`` nearest).  With ``q = ⌈n^{2/3}⌉`` the tables come out at
``Õ(n^{2/3})`` bits — versus TZ's ``Õ(n^{1/2})`` from the ``center``
algorithm.  Experiment T1 measures exactly that gap, which is the
paper's headline improvement over prior work.

Implementation note: we reuse the full TZ k=2 pipeline (clusters, tree
routing, tables, labels) and swap in Cowen's landmark set, which is both
faithful (the runtime scheme is identical in kind) and the fairest
possible comparison (identical bit accounting).
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from ..errors import PreprocessingError
from ..graphs.graph import Graph
from ..graphs.ports import PortedGraph
from ..graphs.shortest_paths import all_pairs_shortest_paths
from ..rng import RngLike, make_rng
from ..core.scheme_k import TZRoutingScheme, build_tz_scheme


#: Above this size, ``method="auto"`` switches from the greedy cover
#: (which needs the full O(n²) distance matrix) to Bernoulli sampling.
_GREEDY_LIMIT = 2048


def cowen_landmark_set(
    graph: Graph,
    q: Optional[int] = None,
    *,
    dist_matrix: Optional[np.ndarray] = None,
    method: str = "auto",
    rng: RngLike = None,
) -> np.ndarray:
    """Cowen's landmark set: a hitting set of the ``q``-nearest balls.

    ``method`` selects how it is found:

    * ``"greedy"`` — the exact greedy set cover over the full all-pairs
      distance matrix (the standard ``(1 + ln n)``-approximation Cowen
      invokes).  Every vertex is *guaranteed* a landmark among its ``q``
      nearest, but the O(n²) distances cap it at small n.
    * ``"sampled"`` — include each vertex independently with probability
      ``ln(n)/q`` (the classic hitting-set sampling bound: every ball of
      ``q`` vertices then contains a landmark w.h.p.).  Needs no
      distances at all, so it is the only choice at 10⁵-vertex scale;
      the coverage guarantee becomes probabilistic, which affects the
      *table-size* bound only — stretch 3 holds for any non-empty set.
    * ``"auto"`` — greedy up to ``n = 2048`` (or whenever the caller
      already has ``dist_matrix``), sampled beyond.

    ``rng`` seeds the sampled method (ignored by greedy).
    """
    n = graph.n
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    if q is None:
        q = max(1, math.ceil(n ** (2.0 / 3.0)))
    q = min(q, n)
    if method not in ("auto", "greedy", "sampled"):
        raise PreprocessingError(f"unknown landmark method {method!r}")
    if method == "auto":
        method = (
            "greedy" if dist_matrix is not None or n <= _GREEDY_LIMIT else "sampled"
        )
    if method == "sampled":
        gen = make_rng(rng)
        p = min(1.0, math.log(max(n, 2)) / q)
        picked = np.flatnonzero(gen.random(n) < p)
        if picked.size == 0:
            # Degenerate draw: fall back to the center heuristic so the
            # stretch-3 construction (any non-empty A_1) still stands.
            picked = np.array([int(np.argmax(graph.degrees()))], dtype=np.int64)
        return picked.astype(np.int64)
    D = all_pairs_shortest_paths(graph) if dist_matrix is None else dist_matrix
    # Ball of v = q nearest vertices by (distance, id); v itself included.
    order = np.lexsort((np.arange(n)[None, :].repeat(n, 0), D), axis=1)
    balls = order[:, :q]
    appears_in: List[List[int]] = [[] for _ in range(n)]
    for v in range(n):
        for w in balls[v]:
            appears_in[int(w)].append(v)
    counts = np.array([len(a) for a in appears_in], dtype=np.int64)
    covered = np.zeros(n, dtype=bool)
    landmarks: List[int] = []
    remaining = n
    while remaining > 0:
        w = int(np.argmax(counts))
        if counts[w] <= 0:
            raise PreprocessingError("greedy cover stalled (empty balls?)")
        landmarks.append(w)
        for v in appears_in[w]:
            if not covered[v]:
                covered[v] = True
                remaining -= 1
                for x in balls[v]:
                    counts[int(x)] -= 1
    return np.array(sorted(landmarks), dtype=np.int64)


def build_cowen_scheme(
    graph: Graph,
    ported: Optional[PortedGraph] = None,
    *,
    q: Optional[int] = None,
    rng: RngLike = None,
    cluster_method: str = "auto",
    method: str = "auto",
) -> TZRoutingScheme:
    """Compile Cowen's stretch-3 scheme (see module docstring).

    ``method`` selects the landmark algorithm (see
    :func:`cowen_landmark_set`).  The greedy path draws nothing from
    ``rng``, so existing seeded constructions are unchanged; the sampled
    path consumes one draw of ``n`` uniforms before the hierarchy build.
    """
    gen = make_rng(rng)
    L = cowen_landmark_set(graph, q, method=method, rng=gen)
    levels = [np.arange(graph.n, dtype=np.int64), L]
    scheme = build_tz_scheme(
        graph, ported, levels=levels, rng=gen, cluster_method=cluster_method
    )
    scheme.name = "cowen-stretch3"
    return scheme
