"""Cowen's stretch-3 compact routing (SODA '99) — the prior art.

Cowen's scheme has the same landmark/cluster architecture later perfected
by TZ §3; the difference is landmark *selection*.  Cowen picks a greedy
dominating set of the ``q``-nearest-neighbor balls: every vertex then has
a landmark among its ``q`` nearest, which bounds every *bunch* by ``q``
(if ``v ∈ C(w)`` then ``d(w,v) < d(v, L) ≤ r_q(v)``, so ``w`` is one of
``v``'s ``q`` nearest).  With ``q = ⌈n^{2/3}⌉`` the tables come out at
``Õ(n^{2/3})`` bits — versus TZ's ``Õ(n^{1/2})`` from the ``center``
algorithm.  Experiment T1 measures exactly that gap, which is the
paper's headline improvement over prior work.

Implementation note: we reuse the full TZ k=2 pipeline (clusters, tree
routing, tables, labels) and swap in Cowen's landmark set, which is both
faithful (the runtime scheme is identical in kind) and the fairest
possible comparison (identical bit accounting).
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from ..errors import PreprocessingError
from ..graphs.graph import Graph
from ..graphs.ports import PortedGraph
from ..graphs.shortest_paths import all_pairs_shortest_paths
from ..rng import RngLike, make_rng
from ..core.scheme_k import TZRoutingScheme, build_tz_scheme


def cowen_landmark_set(
    graph: Graph,
    q: Optional[int] = None,
    *,
    dist_matrix: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Greedy dominating set of the ``q``-nearest-neighbor balls.

    Returns a landmark array ``L`` such that every vertex has a landmark
    among its ``q`` nearest (ties by vertex id).  Greedy set cover: pick
    the vertex appearing in the most uncovered balls until all covered —
    the standard ``(1 + ln n)``-approximation Cowen invokes.
    """
    n = graph.n
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    if q is None:
        q = max(1, math.ceil(n ** (2.0 / 3.0)))
    q = min(q, n)
    D = all_pairs_shortest_paths(graph) if dist_matrix is None else dist_matrix
    # Ball of v = q nearest vertices by (distance, id); v itself included.
    order = np.lexsort((np.arange(n)[None, :].repeat(n, 0), D), axis=1)
    balls = order[:, :q]
    appears_in: List[List[int]] = [[] for _ in range(n)]
    for v in range(n):
        for w in balls[v]:
            appears_in[int(w)].append(v)
    counts = np.array([len(a) for a in appears_in], dtype=np.int64)
    covered = np.zeros(n, dtype=bool)
    landmarks: List[int] = []
    remaining = n
    while remaining > 0:
        w = int(np.argmax(counts))
        if counts[w] <= 0:
            raise PreprocessingError("greedy cover stalled (empty balls?)")
        landmarks.append(w)
        for v in appears_in[w]:
            if not covered[v]:
                covered[v] = True
                remaining -= 1
                for x in balls[v]:
                    counts[int(x)] -= 1
    return np.array(sorted(landmarks), dtype=np.int64)


def build_cowen_scheme(
    graph: Graph,
    ported: Optional[PortedGraph] = None,
    *,
    q: Optional[int] = None,
    rng: RngLike = None,
    cluster_method: str = "auto",
) -> TZRoutingScheme:
    """Compile Cowen's stretch-3 scheme (see module docstring)."""
    gen = make_rng(rng)
    L = cowen_landmark_set(graph, q)
    levels = [np.arange(graph.n, dtype=np.int64), L]
    scheme = build_tz_scheme(
        graph, ported, levels=levels, rng=gen, cluster_method=cluster_method
    )
    scheme.name = "cowen-stretch3"
    return scheme
