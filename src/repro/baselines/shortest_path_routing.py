"""Full shortest-path routing — the stretch-1 space anchor of Table 1.

Every vertex stores one next-hop port per destination: Θ(n·log deg) bits
per vertex, Θ(n²) total.  This is what "non-compact" means; the whole
point of TZ is trading a constant stretch factor for an exponentially
smaller table.  Next hops are derived from the scipy all-pairs
predecessor matrix: the next hop from ``u`` toward ``t`` is the
predecessor of ``u`` on the shortest path *from* ``t`` (undirected
graphs), so one vectorized pass suffices.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from scipy.sparse.csgraph import dijkstra as _scipy_dijkstra

from ..core.router import RouteHeader, RoutingScheme
from ..errors import PreprocessingError, RoutingError
from ..graphs.graph import Graph
from ..graphs.ports import PortedGraph


class ShortestPathRoutingScheme(RoutingScheme):
    """Compiled full next-hop tables (see module docstring)."""

    name = "shortest-path"

    def __init__(self, ported: PortedGraph, next_port: np.ndarray) -> None:
        self.ported = ported
        self.n = ported.n
        self.next_port = next_port  # (n, n): port at u toward dest t

    def initial_header(self, source: int, dest: int) -> RouteHeader:
        return RouteHeader(dest=dest)

    def decide(
        self, u: int, header: RouteHeader
    ) -> Tuple[Optional[int], RouteHeader]:
        if u == header.dest:
            return None, header
        port = int(self.next_port[u, header.dest])
        if port <= 0:
            raise RoutingError(f"no next hop from {u} to {header.dest}")
        return port, header

    def table_bits(self, u: int) -> int:
        # One fixed-width port field per destination.
        pw = max(1, self.ported.degree(u).bit_length())
        return (self.n - 1) * pw

    def label_bits(self, v: int) -> int:
        return self._id_bits()

    def stretch_bound(self) -> float:
        return 1.0


def build_shortest_path_scheme(
    graph: Graph, ported: Optional[PortedGraph] = None
) -> ShortestPathRoutingScheme:
    """Compile full next-hop tables for a connected graph."""
    from ..graphs.ports import assign_ports

    if not graph.is_connected():
        raise PreprocessingError("shortest-path routing requires a connected graph")
    if ported is None:
        ported = assign_ports(graph, "sorted")
    n = graph.n
    _, pred = _scipy_dijkstra(
        graph.to_scipy(), directed=False, return_predecessors=True
    )
    # pred[t, u] is u's predecessor on the path *from* t, i.e. the next
    # hop from u toward t; resolve all n(n-1) of them to ports with one
    # batched sorted-adjacency lookup instead of n² Python port() calls.
    from ..core.build.arrays import port_lookup

    u_idx, t_idx = np.nonzero(~np.eye(n, dtype=bool))
    hops = pred[t_idx, u_idx].astype(np.int64)
    if np.any(hops < 0):
        bad = int(np.flatnonzero(hops < 0)[0])
        raise PreprocessingError(
            f"vertex {int(u_idx[bad])} unreachable from {int(t_idx[bad])}"
        )
    next_port = np.zeros((n, n), dtype=np.int32)
    next_port[u_idx, t_idx] = port_lookup(ported)(u_idx, hops)
    return ShortestPathRoutingScheme(ported, next_port)
