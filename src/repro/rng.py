"""Deterministic randomness helpers.

All randomized algorithms in this package (landmark sampling, graph
generation, pair sampling for stretch measurements) draw from
:class:`numpy.random.Generator` objects created here.  Experiments pass a
single integer seed; independent sub-streams are derived with
:func:`spawn`, so adding a new consumer of randomness never perturbs the
streams seen by existing consumers.  This is what makes every number in
EXPERIMENTS.md exactly re-derivable.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

RngLike = Union[int, np.random.Generator, None]

#: Default seed used when callers pass ``None``.  Chosen arbitrarily but
#: fixed forever so "no seed" still means "reproducible".
DEFAULT_SEED = 0x5EED_2001


def make_rng(seed: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may be an ``int``, an existing generator (returned as-is), or
    ``None`` (uses :data:`DEFAULT_SEED`).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.Generator(np.random.PCG64(seed))


def spawn(rng: np.random.Generator, n: int) -> list:
    """Derive ``n`` provably independent child generators from ``rng``.

    Children come from the parent bit generator's
    :class:`~numpy.random.SeedSequence` spawn tree, so they are
    independent of each other and of the parent's stream by
    construction — unlike drawing child seeds from the parent's output,
    which can collide and cannot cover the full seed space.  Repeated
    calls advance the spawn tree (never re-issue a child); the parent's
    own output stream is left untouched.
    """
    seed_seq = getattr(rng.bit_generator, "seed_seq", None)
    if not isinstance(seed_seq, np.random.SeedSequence):
        # Foreign bit generators without a seed sequence: derive one from
        # the parent's stream (best effort, not collision-free).
        seed_seq = np.random.SeedSequence(int(rng.integers(0, 2**63 - 1)))
    return [np.random.Generator(np.random.PCG64(child)) for child in seed_seq.spawn(n)]


def derive(seed: RngLike, *tags: Union[int, str]) -> np.random.Generator:
    """Build a generator deterministically derived from ``seed`` and a tag
    path.

    Unlike :func:`spawn`, this does not mutate any generator: the same
    ``(seed, tags)`` always yields the same stream, independent of call
    order.  Use it to give each named experiment component its own stream.
    """
    if isinstance(seed, np.random.Generator):
        # Fall back to spawning when handed a live generator.
        return spawn(seed, 1)[0]
    if seed is None:
        seed = DEFAULT_SEED
    material = [int(seed) & 0xFFFF_FFFF_FFFF_FFFF]
    for t in tags:
        if isinstance(t, str):
            h = 1469598103934665603  # FNV-1a 64-bit offset basis
            for ch in t.encode("utf-8"):
                h = ((h ^ ch) * 1099511628211) & 0xFFFF_FFFF_FFFF_FFFF
            material.append(h)
        else:
            material.append(int(t) & 0xFFFF_FFFF_FFFF_FFFF)
    return np.random.Generator(np.random.PCG64(material))


def sample_pairs(
    rng: np.random.Generator,
    n: int,
    count: int,
    *,
    distinct: bool = True,
) -> np.ndarray:
    """Sample ``count`` (source, target) vertex pairs from ``range(n)``.

    Returns an ``(count, 2)`` int64 array.  With ``distinct=True`` the two
    endpoints of each pair differ (the usual setting for stretch
    measurements, where s == t is trivially stretch 1).
    """
    if n < 2 and distinct:
        raise ValueError("need at least two vertices to sample distinct pairs")
    pairs = rng.integers(0, n, size=(count, 2), dtype=np.int64)
    if distinct:
        bad = pairs[:, 0] == pairs[:, 1]
        while bad.any():
            pairs[bad, 1] = rng.integers(0, n, size=int(bad.sum()), dtype=np.int64)
            bad = pairs[:, 0] == pairs[:, 1]
    return pairs


def all_pairs(n: int, limit: Optional[int] = None, rng: RngLike = None) -> np.ndarray:
    """Return all ordered distinct pairs over ``range(n)``, optionally
    subsampled to ``limit`` pairs (uniformly, without replacement)."""
    total = n * (n - 1)
    if limit is None or limit >= total:
        src = np.repeat(np.arange(n, dtype=np.int64), n - 1)
        tgt = np.concatenate([np.delete(np.arange(n, dtype=np.int64), i) for i in range(n)])
        return np.stack([src, tgt], axis=1)
    gen = make_rng(rng)
    idx = gen.choice(total, size=limit, replace=False)
    src = idx // (n - 1)
    off = idx % (n - 1)
    tgt = np.where(off >= src, off + 1, off)
    return np.stack([src, tgt], axis=1).astype(np.int64)
