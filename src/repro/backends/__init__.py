"""Backends: one protocol over every distance/routing structure.

A :class:`Backend` wraps one preprocessed structure behind the shared
``build / query_many / size_bits / serialize`` contract with declared
:class:`Capabilities` (exact vs. stretch-bounded, paths vs. estimates,
routable vs. query-only) — see :mod:`repro.backends.base`.  Importing
this package registers the repo's seven structures:

========== ======================================== ======== =========
name       structure                                stretch  routable
========== ======================================== ======== =========
tz         TZ compact routing scheme (§3–§4)        4k−5     yes
cowen      Cowen's SODA'99 stretch-3 scheme         3        yes
tree       single spanning-tree routing             ∞        yes
shortest-  full next-hop tables                     1        yes
path
oracle     TZ distance oracle                       2k−1     no
labels     TZ distance labeling                     2k−1     no
spanner    (2k−1)-spanner subgraph                  2k−1     no
========== ======================================== ======== =========

``repro frontier`` sweeps the registry into a space/stretch/query-time
Pareto report; the contract suite (``tests/test_backend_protocol.py``)
parametrizes over it; :class:`repro.store.SchemeStore` persists any
registered backend in the ``.tzs`` container format.
"""

from .base import Backend, Capabilities, Manifest
from .registry import (
    BACKENDS,
    backend_names,
    build_backend,
    get_backend,
    register_backend,
    registered_backends,
)

# Importing the adapter modules is what populates the registry.
from . import oracle as _oracle  # noqa: F401,E402
from . import schemes as _schemes  # noqa: F401,E402
from . import shortest_path as _shortest_path  # noqa: F401,E402
from . import spanner as _spanner  # noqa: F401,E402
from .oracle import LabelingBackend, OracleBackend
from .schemes import CowenBackend, TreeBackend, TZSchemeBackend
from .shortest_path import ShortestPathBackend
from .spanner import SpannerBackend

__all__ = [
    "BACKENDS",
    "Backend",
    "Capabilities",
    "CowenBackend",
    "LabelingBackend",
    "Manifest",
    "OracleBackend",
    "ShortestPathBackend",
    "SpannerBackend",
    "TZSchemeBackend",
    "TreeBackend",
    "backend_names",
    "build_backend",
    "get_backend",
    "register_backend",
    "registered_backends",
]
