"""Backend adapters for the TZ distance oracle and distance labeling.

Both structures answer with the same (2k−1)-stretch alternation loop and
both already own a vectorized batch query
(:mod:`repro.oracles._batch`); the adapters add the protocol's missing
pieces — a seeded ``build`` entry, manifest serialization, and the
shared size accounting.  The serialized form is exactly the batch-query
state: the ``(k, n)`` pivot matrices plus the flattened bunch table, so
a deserialized backend answers queries without the graph and bit for bit
like the original (the dict world is only kept on freshly built
instances, where it provides the scalar reference path).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..errors import LabelError, PreprocessingError
from ..graphs.graph import Graph
from ..graphs.ports import PortedGraph
from ..oracles._batch import FlatBunches, batched_tz_query
from ..oracles.distance_labels import build_distance_labels
from ..oracles.distance_oracle import build_distance_oracle
from ..rng import derive
from .accounting import DIST_BITS, entry_bits, id_bits
from .base import Backend, Capabilities, Manifest
from .registry import register_backend


class _FlatTZBackend(Backend):
    """Shared flat-array query core of the oracle/labeling adapters."""

    _error = PreprocessingError
    _error_message = "query did not converge"

    def __init__(
        self,
        n: int,
        k: int,
        pivot_id: np.ndarray,
        pivot_dist: np.ndarray,
        flat: FlatBunches,
        scalar=None,
    ) -> None:
        self.n = int(n)
        self.k = int(k)
        self._pivot_id = pivot_id
        self._pivot_dist = pivot_dist
        self._flat = flat
        #: The dict-world structure (scalar reference); ``None`` after
        #: deserialization, where the flat arrays answer instead.
        self._scalar = scalar

    # -- queries --------------------------------------------------------
    def query_many(self, pairs: np.ndarray) -> np.ndarray:
        src, dst = self._pair_columns(pairs)
        return batched_tz_query(
            self._pivot_id,
            self._pivot_dist,
            self._flat,
            src,
            dst,
            self._error,
            self._error_message,
        )

    def query_one(self, u: int, v: int) -> float:
        if self._scalar is not None:
            return float(self._scalar.query(int(u), int(v)))
        return self._flat_query_one(int(u), int(v))

    def _flat_query_one(self, u: int, v: int) -> float:
        """Scalar alternation over the flat arrays (post-deserialize)."""
        if u == v:
            return 0.0
        x, y = u, v
        comp = self._flat.composite
        for i in range(self.k):
            w = int(self._pivot_id[i, x])
            if 0 <= w < self.n:
                key = y * self.n + w
                idx = int(np.searchsorted(comp, key))
                if idx < comp.size and comp[idx] == key:
                    return float(self._pivot_dist[i, x]) + float(
                        self._flat.values[idx]
                    )
            x, y = y, x
        raise self._error(self._error_message)

    # -- declared semantics --------------------------------------------
    @property
    def capabilities(self) -> Capabilities:
        stretch = 1.0 if self.k == 1 else float(2 * self.k - 1)
        return Capabilities(
            exact=stretch == 1.0,
            stretch=stretch,
            paths=False,
            routable=False,
            uses_k=True,
        )

    # -- persistence ----------------------------------------------------
    def serialize(self) -> Manifest:
        meta = {"n": self.n, "k": self.k, "size_bits": int(self.size_bits())}
        blobs = {
            "pivot_id": np.ascontiguousarray(self._pivot_id, dtype=np.int64),
            "pivot_dist": np.ascontiguousarray(
                self._pivot_dist, dtype=np.float64
            ),
            "bunch_composite": np.ascontiguousarray(
                self._flat.composite, dtype=np.int64
            ),
            "bunch_values": np.ascontiguousarray(
                self._flat.values, dtype=np.float64
            ),
        }
        return meta, blobs

    @classmethod
    def deserialize(
        cls, meta: Dict[str, object], blobs: Dict[str, np.ndarray]
    ) -> "_FlatTZBackend":
        n, k = int(meta["n"]), int(meta["k"])
        flat = FlatBunches(n, blobs["bunch_composite"], blobs["bunch_values"])
        return cls(n, k, blobs["pivot_id"], blobs["pivot_dist"], flat)

    # -- shared accounting ---------------------------------------------
    @property
    def _bunch_entries(self) -> int:
        """Total stored bunch entries ``Σ_v |B(v)|`` (v itself included)."""
        return int(self._flat.composite.size)


@register_backend
class OracleBackend(_FlatTZBackend):
    """The centralized (2k−1)-approximate distance oracle."""

    backend_name = "oracle"
    uses_k = True
    _error = PreprocessingError
    _error_message = "oracle query did not converge: top level empty?"

    @classmethod
    def build(
        cls,
        graph: Graph,
        k: int = 2,
        seed: Optional[int] = 0,
        *,
        ported: Optional[PortedGraph] = None,
        kernel: str = "auto",
    ) -> "OracleBackend":
        oracle = build_distance_oracle(
            graph, k, rng=derive(seed, "backend", cls.backend_name, k)
        )
        flat, pivot_id, pivot_dist = oracle._batch_arrays()
        return cls(oracle.n, oracle.k, pivot_id, pivot_dist, flat, scalar=oracle)

    def size_bits(self) -> int:
        """Bunch entries + the 2·k·n pivot/distance rows, one entry rule."""
        words = self._bunch_entries + 2 * self.k * self.n
        return words * entry_bits(self.n, DIST_BITS)


@register_backend
class LabelingBackend(_FlatTZBackend):
    """The fully distributed (2k−1)-approximate distance labeling."""

    backend_name = "labels"
    uses_k = True
    _error = LabelError
    _error_message = (
        "label query did not converge: top-level pivot missing from "
        "the peer bunch (labels are inconsistent)"
    )

    @classmethod
    def build(
        cls,
        graph: Graph,
        k: int = 2,
        seed: Optional[int] = 0,
        *,
        ported: Optional[PortedGraph] = None,
        kernel: str = "auto",
    ) -> "LabelingBackend":
        labeling = build_distance_labels(
            graph, k, rng=derive(seed, "backend", cls.backend_name, k)
        )
        flat, pivot_id, pivot_dist = labeling._batch_arrays()
        return cls(
            labeling.n, labeling.k, pivot_id, pivot_dist, flat, scalar=labeling
        )

    def size_bits(self) -> int:
        """Sum of per-vertex label sizes: own id + pivot and bunch entries."""
        entry = entry_bits(self.n, DIST_BITS)
        return self.n * id_bits(self.n) + entry * (
            self.n * self.k + self._bunch_entries
        )
