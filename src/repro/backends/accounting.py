"""The one size-accounting rule shared by every backend.

The frontier plot's space axis is only meaningful if all backends count
bits the same way.  Before this module, ``oracles/`` and ``baselines/``
each inlined their own ``(n - 1).bit_length()`` id widths and distance
widths; every backend now reports through these helpers, which defer to
:func:`repro.bitio.code_width` — the codec-stack rule (a one-value
domain costs 0 bits, see the PR-4 degenerate-width fix).

Distances are accounted at :data:`DIST_BITS` fixed bits, the convention
the oracle and labeling modules already used (32 bits covers the
integer-weight distances every experiment generates).
"""

from __future__ import annotations

from ..bitio import code_width

#: Fixed width at which one stored distance is accounted.
DIST_BITS = 32


def id_bits(n: int) -> int:
    """Bits to name one of ``n`` vertices: ``code_width(n)`` (0 for n=1)."""
    return code_width(max(int(n), 1))


def entry_bits(n: int, dist_bits: int = DIST_BITS) -> int:
    """Bits of one ``(vertex id, distance)`` table entry."""
    return id_bits(n) + int(dist_bits)


def edge_bits(n: int, dist_bits: int = DIST_BITS) -> int:
    """Bits of one stored weighted edge: two endpoint ids + the weight."""
    return 2 * id_bits(n) + int(dist_bits)
