"""Backend adapters for the routable schemes (TZ, Cowen, single-tree).

These are the frontier points that can actually *forward packets*: each
adapter builds its scheme, exports the dense
:class:`~repro.sim.engine.compile.CompiledScheme` form, and answers
``query_many`` by routing the whole pair matrix through the vectorized
:class:`~repro.sim.engine.batch.BatchRouter` — the answer is the weight
of the walked path, not an estimate.  Serialization reuses the store's
``CompiledScheme`` manifest walk, so a deserialized backend routes
without the graph or the dict world (the measured ``size_bits`` rides in
the manifest header, computed once at build time from the scheme's own
accounting).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..baselines.cowen import cowen_landmark_set
from ..baselines.tree_spanner import build_single_tree_scheme
from ..core.build import build_arrays
from ..core.build.arrays import SchemeArrays
from ..errors import RoutingError
from ..graphs.graph import Graph
from ..graphs.ports import PortedGraph, assign_ports
from ..rng import derive
from ..sim.engine.batch import BatchRouter
from ..sim.engine.compile import CompiledScheme, compile_from_arrays
from ..store.schemes import compiled_from_manifest, compiled_to_manifest
from .base import Backend, Capabilities, Manifest
from .registry import register_backend


class _CompiledRoutingBackend(Backend):
    """Shared core: route queries through a compiled scheme."""

    def __init__(
        self,
        compiled: CompiledScheme,
        ported: Optional[PortedGraph] = None,
        size_bits: int = 0,
    ) -> None:
        self._compiled = compiled
        self._router = BatchRouter.from_compiled(compiled, ported)
        self.n = int(compiled.n)
        self.k = int(compiled.k)
        self._size_bits = int(size_bits)

    # -- queries --------------------------------------------------------
    def query_many(self, pairs: np.ndarray) -> np.ndarray:
        src, dst = self._pair_columns(pairs)
        res = self._router.route_pairs(np.column_stack((src, dst)))
        if not res.delivered.all():
            bad = int(np.flatnonzero(~res.delivered)[0])
            raise RoutingError(
                f"pair ({int(res.source[bad])},{int(res.dest[bad])}) "
                f"undelivered: {res.failure(bad)}"
            )
        return res.weight

    def query_one(self, u: int, v: int) -> float:
        # Rows of the hop loop are independent, so a one-row matrix is
        # the per-pair reference the contract suite differences against.
        return float(
            self.query_many(np.array([[int(u), int(v)]], dtype=np.int64))[0]
        )

    # -- size accounting ------------------------------------------------
    def size_bits(self) -> int:
        """Σ table bits + Σ label bits, fixed at build time (the same
        accounting the scheme objects report per vertex)."""
        return self._size_bits

    # -- persistence ----------------------------------------------------
    def serialize(self) -> Manifest:
        meta = {
            "n": self.n,
            "k": self.k,
            "id_bits": int(self._compiled.id_bits),
            "handshake": bool(self._compiled.handshake),
            "size_bits": int(self._size_bits),
        }
        return meta, compiled_to_manifest(self._compiled)

    @classmethod
    def deserialize(
        cls, meta: Dict[str, object], blobs: Dict[str, np.ndarray]
    ) -> "_CompiledRoutingBackend":
        compiled = compiled_from_manifest(
            blobs,
            int(meta["n"]),
            int(meta["k"]),
            int(meta["id_bits"]),
            bool(meta["handshake"]),
        )
        return cls(compiled, size_bits=int(meta["size_bits"]))

    # -- shared build helper --------------------------------------------
    @classmethod
    def _from_arrays(
        cls, graph: Graph, ported: PortedGraph, arrays: SchemeArrays
    ) -> "_CompiledRoutingBackend":
        """Compile ``arrays`` against ``ported`` and fix the size."""
        compiled = compile_from_arrays(arrays, ported)
        degs = graph.degrees()
        max_port = int(degs.max()) if degs.size else 1
        size = int(arrays.table_bits(max_port).sum() + arrays.label_bits().sum())
        return cls(compiled, ported, size)


@register_backend
class TZSchemeBackend(_CompiledRoutingBackend):
    """The paper's 4k−5 compact routing scheme, batch-compiled."""

    backend_name = "tz"
    uses_k = True

    @classmethod
    def build(
        cls,
        graph: Graph,
        k: int = 2,
        seed: Optional[int] = 0,
        *,
        ported: Optional[PortedGraph] = None,
        kernel: str = "auto",
    ) -> "TZSchemeBackend":
        if ported is None:
            ported = assign_ports(graph, "sorted")
        arrays = build_arrays(
            graph,
            k,
            ported=ported,
            rng=derive(seed, "backend", cls.backend_name, k),
            kernel=kernel,
        )
        return cls._from_arrays(graph, ported, arrays)

    @property
    def capabilities(self) -> Capabilities:
        stretch = 1.0 if self.k == 1 else float(4 * self.k - 5)
        return Capabilities(
            exact=stretch == 1.0,
            stretch=stretch,
            paths=True,
            routable=True,
            uses_k=True,
        )


@register_backend
class CowenBackend(_CompiledRoutingBackend):
    """Cowen's stretch-3 scheme (SODA '99) on the same runtime.

    Construction ignores ``k``: the scheme is the two-level TZ pipeline
    with Cowen's landmark set as ``A_1`` (see
    :mod:`repro.baselines.cowen`).  Building through the vectorized
    array pipeline — instead of the dict world the
    :func:`~repro.baselines.cowen.build_cowen_scheme` entry point
    materializes — is what lets Table-1 comparisons run at 10⁵ vertices.
    """

    backend_name = "cowen"
    uses_k = False

    @classmethod
    def build(
        cls,
        graph: Graph,
        k: int = 2,
        seed: Optional[int] = 0,
        *,
        ported: Optional[PortedGraph] = None,
        kernel: str = "auto",
    ) -> "CowenBackend":
        if ported is None:
            ported = assign_ports(graph, "sorted")
        landmarks = cowen_landmark_set(
            graph,
            method="auto",
            rng=derive(seed, "backend", cls.backend_name),
        )
        levels = [np.arange(graph.n, dtype=np.int64), landmarks]
        arrays = build_arrays(graph, 2, ported=ported, levels=levels, kernel=kernel)
        return cls._from_arrays(graph, ported, arrays)

    @property
    def capabilities(self) -> Capabilities:
        return Capabilities(
            exact=False,
            stretch=3.0,
            paths=True,
            routable=True,
            uses_k=False,
        )


@register_backend
class TreeBackend(_CompiledRoutingBackend):
    """Single-tree routing — the minimal-space anchor of Table 1.

    Construction ignores ``k`` (and ``seed``: the shortest-path tree
    root is the deterministic max-degree heuristic).  ``size_bits`` is
    the scheme's own accounting — identical O(1)-word records for every
    vertex plus the encoded tree labels — summed in closed form.
    """

    backend_name = "tree"
    uses_k = False

    @classmethod
    def build(
        cls,
        graph: Graph,
        k: int = 2,
        seed: Optional[int] = 0,
        *,
        ported: Optional[PortedGraph] = None,
        kernel: str = "auto",
    ) -> "TreeBackend":
        # kernel= accepted for the uniform registry signature; tree
        # construction has no frontier sweep to select a backend for.
        if ported is None:
            ported = assign_ports(graph, "sorted")
        scheme = build_single_tree_scheme(graph, ported, tree="spt")
        compiled = scheme.compile_batch(ported)
        n = graph.n
        f_width = (max(n - 1, 0)).bit_length()
        port_width = max(1, scheme._max_port.bit_length())
        table = n * (4 * f_width + 2 * port_width)
        labels = int(compiled.ent_label_bits.sum())
        return cls(compiled, ported, table + labels)

    @property
    def capabilities(self) -> Capabilities:
        return Capabilities(
            exact=False,
            stretch=float("inf"),
            paths=True,
            routable=True,
            uses_k=False,
        )
