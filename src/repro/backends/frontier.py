"""Sweep registered backends into a space/stretch/query-time frontier.

Thorup–Zwick is a statement about a *tradeoff curve*: §3/§4 claim points
on the space-versus-stretch frontier that dominate what came before
(Cowen's n^{2/3}, single-tree's unbounded stretch, full tables' n² bits).
:func:`run_frontier` measures that curve empirically: every registered
:class:`~repro.backends.base.Backend` is built on every workload graph
(once per ``k`` when its construction uses ``k``, once per graph when it
does not), queried over one shared sampled pair set, and reduced to one
:class:`FrontierPoint` carrying measured size, observed/proven stretch,
build and query timings, and the backend's declared capabilities.

Pareto flags are computed per graph over (size, observed stretch, query
time): a point is on the frontier iff no other point on the same graph
is at least as good on all three axes and strictly better on one.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Type

import numpy as np

from ..graphs.graph import Graph
from ..rng import derive, sample_pairs
from ..sim.runner import pair_true_distances
from .base import Backend
from .registry import get_backend, registered_backends


@dataclass
class FrontierPoint:
    """One measured (backend, graph, k) cell of the frontier sweep."""

    backend: str
    family: str
    n: int
    m: int
    k: Optional[int]  # None for constructions that ignore k
    seed: int
    # -- measured space --------------------------------------------------
    size_bits: int
    bits_per_vertex: float
    # -- stretch ---------------------------------------------------------
    stretch_bound: float
    stretch_max: float
    stretch_mean: float
    # -- timings ---------------------------------------------------------
    build_seconds: float
    query_pairs: int
    query_seconds: float
    pairs_per_second: float
    # -- declared capabilities ------------------------------------------
    exact: bool
    paths: bool
    routable: bool
    # -- set by the per-graph Pareto pass -------------------------------
    pareto: bool = False

    def to_dict(self) -> Dict[str, object]:
        """JSON-able record of this point."""
        return asdict(self)

    def row(self) -> Dict[str, object]:
        """One summary-table row (the CLI/markdown rendering)."""
        bound = self.stretch_bound
        return {
            "backend": self.backend,
            "graph": f"{self.family}/{self.n}",
            "k": "-" if self.k is None else self.k,
            "bits/vertex": f"{self.bits_per_vertex:.0f}",
            "bound": "inf" if bound == float("inf") else f"{bound:g}",
            "max stretch": f"{self.stretch_max:.3f}",
            "mean stretch": f"{self.stretch_mean:.3f}",
            "build s": f"{self.build_seconds:.3f}",
            "pairs/s": f"{self.pairs_per_second:,.0f}",
            "pareto": "*" if self.pareto else "",
        }


def _observed_stretch(
    answers: np.ndarray, true_d: np.ndarray
) -> Tuple[float, float]:
    """(max, mean) observed stretch with the 0-distance convention."""
    with np.errstate(divide="ignore", invalid="ignore"):
        values = np.where(true_d > 0, answers / np.maximum(true_d, 1e-300), 1.0)
    if values.size == 0:
        return 1.0, 1.0
    return float(values.max()), float(values.mean())


def measure_backend(
    cls: Type[Backend],
    graph: Graph,
    *,
    family: str,
    k: Optional[int],
    seed: int,
    pairs: np.ndarray,
    true_d: np.ndarray,
) -> FrontierPoint:
    """Build one backend and measure one frontier point."""
    build_k = 2 if k is None else int(k)
    t0 = time.perf_counter()
    backend = cls.build(graph, build_k, seed)
    build_seconds = time.perf_counter() - t0
    t0 = time.perf_counter()
    answers = backend.query_many(pairs)
    query_seconds = time.perf_counter() - t0
    smax, smean = _observed_stretch(answers, true_d)
    caps = backend.capabilities
    size = int(backend.size_bits())
    return FrontierPoint(
        backend=cls.backend_name,
        family=family,
        n=graph.n,
        m=graph.m,
        k=k,
        seed=int(seed),
        size_bits=size,
        bits_per_vertex=size / max(1, graph.n),
        stretch_bound=float(caps.stretch),
        stretch_max=smax,
        stretch_mean=smean,
        build_seconds=build_seconds,
        query_pairs=int(pairs.shape[0]),
        query_seconds=query_seconds,
        pairs_per_second=pairs.shape[0] / max(query_seconds, 1e-9),
        exact=caps.exact,
        paths=caps.paths,
        routable=caps.routable,
    )


def mark_pareto(points: Sequence[FrontierPoint]) -> None:
    """Set ``pareto`` per graph over (size, observed stretch, query time).

    Observed stretch (not the proven bound) keeps unbounded-stretch
    backends comparable; ties are handled by the strict-on-one-axis rule,
    so duplicated points all stay on the frontier.
    """
    by_graph: Dict[Tuple[str, int], List[FrontierPoint]] = {}
    for p in points:
        by_graph.setdefault((p.family, p.n), []).append(p)
    for group in by_graph.values():
        for p in group:
            dominated = any(
                q.size_bits <= p.size_bits
                and q.stretch_max <= p.stretch_max
                and q.query_seconds <= p.query_seconds
                and (
                    q.size_bits < p.size_bits
                    or q.stretch_max < p.stretch_max
                    or q.query_seconds < p.query_seconds
                )
                for q in group
                if q is not p
            )
            p.pareto = not dominated


def run_frontier(
    graphs: Sequence[Tuple[str, Graph]],
    *,
    ks: Sequence[int] = (2, 3),
    backends: Optional[Sequence[str]] = None,
    seed: int = 0,
    n_pairs: int = 400,
) -> List[FrontierPoint]:
    """Measure every (backend, graph[, k]) cell of the grid.

    ``graphs`` is a list of ``(family_name, graph)`` pairs (connected
    graphs — e.g. from :func:`repro.analysis.experiments.reference_graph`
    plus ``largest_component()``).  Backends whose construction ignores
    ``k`` (``uses_k=False``) are built once per graph and reported with
    ``k=None`` instead of once per ``k`` — the deduplication that keeps
    the sweep honest about what is actually being rebuilt.  All backends
    on one graph answer the *same* pair set, sampled deterministically
    from ``seed``.
    """
    classes = (
        registered_backends()
        if backends is None
        else [get_backend(name) for name in backends]
    )
    points: List[FrontierPoint] = []
    for family, graph in graphs:
        gen = derive(seed, "frontier", family, graph.n)
        pairs = sample_pairs(gen, graph.n, n_pairs)
        true_d = pair_true_distances(graph, pairs)
        for cls in classes:
            cell_ks: Sequence[Optional[int]] = (
                list(ks) if cls.uses_k else [None]
            )
            for k in cell_ks:
                points.append(
                    measure_backend(
                        cls,
                        graph,
                        family=family,
                        k=k,
                        seed=seed,
                        pairs=pairs,
                        true_d=true_d,
                    )
                )
    mark_pareto(points)
    return points
