"""The one protocol every distance/routing structure implements.

Thorup–Zwick's compact routing scheme is a single point on the
space × stretch × query-time frontier.  The repo holds several more —
distance oracles, distance labelings, spanners, Cowen's scheme, the
single-tree and full-table baselines — and before this package each of
them hand-rolled its own build entry point, query path and size
accounting.  A :class:`Backend` is the common contract:

* ``build(graph, k, seed)`` — preprocess a graph (class-level entry);
* ``query_many(pairs)`` — answer a whole ``(P, 2)`` pair matrix at once
  (vectorized; routable backends drive the batch engine, query-only
  backends their own batched lookup);
* ``query_one(u, v)`` — the scalar reference the contract suite
  differences ``query_many`` against;
* ``size_bits()`` — measured structure size, every backend counting ids
  through the one :func:`repro.bitio.code_width` rule (see
  :mod:`repro.backends.accounting`) so the frontier's space axis is
  comparable across backends;
* ``serialize()/deserialize()`` — named-array manifests, persisted by
  :class:`repro.store.SchemeStore` in the same ``.tzs`` container format
  as the TZ scheme itself.

What a backend *means* by its answer is declared, not implied, by its
:class:`Capabilities` flags: whether answers are exact or only
stretch-bounded, whether they are weights of actually-walked paths or
distance estimates, whether the structure can forward packets hop by hop
or only answer queries, and whether the stretch parameter ``k`` affects
the construction at all.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..graphs.graph import Graph
from ..graphs.ports import PortedGraph


@dataclass(frozen=True)
class Capabilities:
    """What a backend's answers are, declared as flags.

    ``stretch`` is the proven worst-case multiplicative bound on
    ``query / d(u, v)`` (``1.0`` for exact structures, ``inf`` when no
    multiplicative guarantee exists, e.g. single-tree routing on a
    cycle).  ``paths=True`` means ``query_many`` returns the weight of a
    path the structure actually materializes (a routed walk or a
    subgraph path), not just a numeric estimate.  ``routable=True``
    means the structure can forward a packet hop by hop in the paper's
    table/label model — only those points carry over to the simulator
    and the scenario lab.  ``uses_k=False`` marks structures whose
    construction ignores the stretch parameter (the frontier sweep then
    builds them once per graph, not once per ``k``).
    """

    exact: bool
    stretch: float
    paths: bool
    routable: bool
    uses_k: bool = True

    def __post_init__(self) -> None:
        if self.exact and self.stretch != 1.0:
            raise ValueError(
                f"exact backends have stretch 1.0, got {self.stretch}"
            )


#: serialize() payload: (JSON-able scalars, named ndarray blobs).
Manifest = Tuple[Dict[str, object], Dict[str, np.ndarray]]


class Backend(ABC):
    """Abstract preprocessed structure (see module docstring).

    Subclasses set :attr:`backend_name` (the registry key) and
    :attr:`uses_k` as class attributes, implement the abstract methods,
    and register themselves with
    :func:`repro.backends.registry.register_backend`.
    """

    #: Registry key and report label (class attribute).
    backend_name: str = "abstract"
    #: Whether ``k`` affects the construction (class attribute, mirrored
    #: in :attr:`capabilities` — readable without building).
    uses_k: bool = True

    # -- construction ---------------------------------------------------
    @classmethod
    @abstractmethod
    def build(
        cls,
        graph: Graph,
        k: int = 2,
        seed: Optional[int] = 0,
        *,
        ported: Optional[PortedGraph] = None,
        kernel: str = "auto",
    ) -> "Backend":
        """Preprocess ``graph`` into a queryable backend.

        ``seed`` threads through :func:`repro.rng.derive` so the same
        ``(graph, k, seed)`` always builds the same structure.
        ``ported`` fixes the port assignment for routable backends
        (defaults to the deterministic ``"sorted"`` one); query-only
        backends ignore it.  ``kernel`` selects the construction-time
        compute backend (see :mod:`repro.kernels`) where the build goes
        through the array pipeline's frontier sweep; it is a pure speed
        knob — outputs are bit-identical for every value — and backends
        without such a sweep accept and ignore it.
        """

    # -- queries --------------------------------------------------------
    @abstractmethod
    def query_many(self, pairs: np.ndarray) -> np.ndarray:
        """Answer every ``(s, t)`` row of a ``(P, 2)`` pair matrix.

        Returns a ``(P,)`` float64 array.  For routable backends this is
        the weight of the actually-routed path; for query-only backends
        the structure's distance estimate.  Must equal a per-pair
        :meth:`query_one` loop bit for bit (the contract suite enforces
        it).
        """

    @abstractmethod
    def query_one(self, u: int, v: int) -> float:
        """Scalar reference query — the ground truth for ``query_many``."""

    # -- declared semantics --------------------------------------------
    @property
    @abstractmethod
    def capabilities(self) -> Capabilities:
        """The flags describing what this instance's answers are."""

    def stretch_bound(self) -> float:
        """Worst-case multiplicative bound on ``query / d(u, v)``."""
        return self.capabilities.stretch

    # -- size accounting ------------------------------------------------
    @abstractmethod
    def size_bits(self) -> int:
        """Measured total size in bits (ids via ``bitio.code_width``)."""

    # -- persistence ----------------------------------------------------
    @abstractmethod
    def serialize(self) -> Manifest:
        """``(meta, blobs)`` — everything needed to answer queries again.

        ``meta`` holds JSON-able scalars, ``blobs`` named ndarrays; the
        store writes them into a ``.tzs`` container
        (:meth:`repro.store.SchemeStore.save_backend`).  The round trip
        ``deserialize(*serialize())`` must answer every query bit for
        bit like the original.
        """

    @classmethod
    @abstractmethod
    def deserialize(
        cls, meta: Dict[str, object], blobs: Dict[str, np.ndarray]
    ) -> "Backend":
        """Rebuild a queryable backend from :meth:`serialize` output."""

    # -- shared helpers -------------------------------------------------
    @staticmethod
    def _pair_columns(pairs: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """``(src, dst)`` columns of a checked ``(P, 2)`` int matrix."""
        arr = np.asarray(pairs, dtype=np.int64)
        if arr.size == 0:
            arr = arr.reshape(0, 2)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise ValueError("pairs must be a (P, 2) integer array")
        return np.ascontiguousarray(arr[:, 0]), np.ascontiguousarray(arr[:, 1])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        caps = self.capabilities
        return (
            f"<{type(self).__name__} {self.backend_name!r} "
            f"stretch<={caps.stretch:g} "
            f"{'routable' if caps.routable else 'query-only'}>"
        )
