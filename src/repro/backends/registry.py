"""Name-keyed registry of :class:`~repro.backends.base.Backend` classes.

Registration is what plugs a structure into the shared machinery: the
contract suite parametrizes over :func:`backend_names`, the store
dispatches :meth:`~repro.store.SchemeStore.load_backend` through
:func:`get_backend`, and ``repro frontier`` sweeps
:func:`registered_backends` — so a new structure becomes a measured
frontier point by implementing the protocol and adding one decorator::

    @register_backend
    class MyOracle(Backend):
        backend_name = "my-oracle"
        ...
"""

from __future__ import annotations

import functools
from typing import Dict, List, Optional, Type

import numpy as np

from ..errors import PreprocessingError
from ..graphs.graph import Graph
from ..graphs.ports import PortedGraph
from ..obs import TELEMETRY
from .base import Backend

#: The global name -> class registry (populated by import side effects
#: of :mod:`repro.backends`; user code may add more).
BACKENDS: Dict[str, Type[Backend]] = {}


def _instrument_backend(cls: Type[Backend]) -> None:
    """Wrap ``cls.build`` / ``cls.query_many`` with telemetry spans.

    Registration-time instrumentation means every call path — direct
    ``cls.build``, :func:`build_backend`, the frontier sweep — reports
    without the backend implementations knowing telemetry exists.
    Wrappers are marked (``__obs_wrapper__``) so a subclass inheriting an
    already-wrapped method from a registered parent is not wrapped twice;
    span attributes resolve the backend name at call time, so inherited
    wrappers still report the subclass's name.
    """
    build_inner = cls.build.__func__
    if not getattr(build_inner, "__obs_wrapper__", False):

        @functools.wraps(build_inner)
        def build(klass, graph, *args, **kwargs):
            """Run the backend's ``build`` under a ``backend.build`` span."""
            k = kwargs.get("k", args[0] if args else 2)
            with TELEMETRY.span(
                "backend.build", backend=klass.backend_name, k=int(k)
            ):
                return build_inner(klass, graph, *args, **kwargs)

        build.__obs_wrapper__ = True
        cls.build = classmethod(build)

    query_inner = cls.query_many
    if not getattr(query_inner, "__obs_wrapper__", False):

        @functools.wraps(query_inner)
        def query_many(self, pairs, *args, **kwargs):
            """Run ``query_many`` under a span and count pairs queried."""
            tm = TELEMETRY
            with tm.span(
                "backend.query_many", backend=type(self).backend_name
            ):
                out = query_inner(self, pairs, *args, **kwargs)
            if tm.enabled:
                tm.count("backend.pairs_queried", int(np.asarray(out).shape[0]))
            return out

        query_many.__obs_wrapper__ = True
        cls.query_many = query_many


def register_backend(cls: Type[Backend]) -> Type[Backend]:
    """Class decorator: register ``cls`` under ``cls.backend_name``.

    Registration also instruments the class's ``build`` and
    ``query_many`` with telemetry spans (see :func:`_instrument_backend`)
    — a no-op at call time while telemetry is disabled.
    """
    name = cls.backend_name
    if not name or name == Backend.backend_name:
        raise PreprocessingError(
            f"{cls.__name__} must define a non-default backend_name"
        )
    existing = BACKENDS.get(name)
    if existing is not None and existing is not cls:
        raise PreprocessingError(
            f"backend name {name!r} already registered to {existing.__name__}"
        )
    BACKENDS[name] = cls
    _instrument_backend(cls)
    return cls


def get_backend(name: str) -> Type[Backend]:
    """The registered class for ``name`` (raises with the known names)."""
    try:
        return BACKENDS[name]
    except KeyError:
        raise PreprocessingError(
            f"unknown backend {name!r}; registered: {backend_names()}"
        ) from None


def backend_names() -> List[str]:
    """Sorted names of every registered backend."""
    return sorted(BACKENDS)


def registered_backends() -> List[Type[Backend]]:
    """Registered classes in name order."""
    return [BACKENDS[name] for name in backend_names()]


def build_backend(
    name: str,
    graph: Graph,
    k: int = 2,
    seed: Optional[int] = 0,
    *,
    ported: Optional[PortedGraph] = None,
    kernel: str = "auto",
) -> Backend:
    """Build the named backend — the registry-dispatched front door.

    ``kernel`` selects the construction-time compute backend (the
    frontier sweep of the array builders, see :mod:`repro.kernels`) for
    backends that build through it; outputs are bit-identical either
    way, so it is a pure speed knob and never part of a content key.
    """
    return get_backend(name).build(graph, k, seed, ported=ported, kernel=kernel)
