"""Name-keyed registry of :class:`~repro.backends.base.Backend` classes.

Registration is what plugs a structure into the shared machinery: the
contract suite parametrizes over :func:`backend_names`, the store
dispatches :meth:`~repro.store.SchemeStore.load_backend` through
:func:`get_backend`, and ``repro frontier`` sweeps
:func:`registered_backends` — so a new structure becomes a measured
frontier point by implementing the protocol and adding one decorator::

    @register_backend
    class MyOracle(Backend):
        backend_name = "my-oracle"
        ...
"""

from __future__ import annotations

from typing import Dict, List, Optional, Type

from ..errors import PreprocessingError
from ..graphs.graph import Graph
from ..graphs.ports import PortedGraph
from .base import Backend

#: The global name -> class registry (populated by import side effects
#: of :mod:`repro.backends`; user code may add more).
BACKENDS: Dict[str, Type[Backend]] = {}


def register_backend(cls: Type[Backend]) -> Type[Backend]:
    """Class decorator: register ``cls`` under ``cls.backend_name``."""
    name = cls.backend_name
    if not name or name == Backend.backend_name:
        raise PreprocessingError(
            f"{cls.__name__} must define a non-default backend_name"
        )
    existing = BACKENDS.get(name)
    if existing is not None and existing is not cls:
        raise PreprocessingError(
            f"backend name {name!r} already registered to {existing.__name__}"
        )
    BACKENDS[name] = cls
    return cls


def get_backend(name: str) -> Type[Backend]:
    """The registered class for ``name`` (raises with the known names)."""
    try:
        return BACKENDS[name]
    except KeyError:
        raise PreprocessingError(
            f"unknown backend {name!r}; registered: {backend_names()}"
        ) from None


def backend_names() -> List[str]:
    """Sorted names of every registered backend."""
    return sorted(BACKENDS)


def registered_backends() -> List[Type[Backend]]:
    """Registered classes in name order."""
    return [BACKENDS[name] for name in backend_names()]


def build_backend(
    name: str,
    graph: Graph,
    k: int = 2,
    seed: Optional[int] = 0,
    *,
    ported: Optional[PortedGraph] = None,
) -> Backend:
    """Build the named backend — the registry-dispatched front door."""
    return get_backend(name).build(graph, k, seed, ported=ported)
