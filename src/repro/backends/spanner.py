"""Backend adapter for the TZ (2k−1)-spanner.

The spanner *is* a graph — the union of all cluster-tree edges — so its
query is exact shortest-path distance **inside the subgraph**: at most
(2k−1)× the original distance by the TZ cluster argument.  ``query_many``
runs one batched Dijkstra over the pair set's unique sources (the same
trick :func:`repro.sim.runner.pair_true_distances` uses), and the
serialized form is simply the weighted edge list.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..graphs.graph import Graph
from ..graphs.ports import PortedGraph
from ..oracles.spanner import build_spanner
from ..rng import derive
from .accounting import DIST_BITS, edge_bits
from .base import Backend, Capabilities, Manifest
from .registry import register_backend


@register_backend
class SpannerBackend(Backend):
    """A (2k−1)-spanner answering subgraph shortest-path distances."""

    backend_name = "spanner"
    uses_k = True

    def __init__(self, spanner: Graph, k: int) -> None:
        self.spanner = spanner
        self.n = spanner.n
        self.k = int(k)

    @classmethod
    def build(
        cls,
        graph: Graph,
        k: int = 2,
        seed: Optional[int] = 0,
        *,
        ported: Optional[PortedGraph] = None,
        kernel: str = "auto",
    ) -> "SpannerBackend":
        spanner = build_spanner(
            graph, k, rng=derive(seed, "backend", cls.backend_name, k)
        )
        return cls(spanner, k)

    # -- queries --------------------------------------------------------
    def query_many(self, pairs: np.ndarray) -> np.ndarray:
        src, dst = self._pair_columns(pairs)
        if src.size == 0:
            return np.zeros(0, dtype=np.float64)
        sources = np.unique(src)
        dist, _ = self.spanner.csr().sssp_batch(sources)
        rows = np.searchsorted(sources, src)
        return dist[rows, dst].astype(np.float64)

    def query_one(self, u: int, v: int) -> float:
        dist, _ = self.spanner.csr().sssp_batch([int(u)])
        return float(dist[0, int(v)])

    # -- declared semantics --------------------------------------------
    @property
    def capabilities(self) -> Capabilities:
        stretch = 1.0 if self.k == 1 else float(2 * self.k - 1)
        return Capabilities(
            exact=stretch == 1.0,
            stretch=stretch,
            paths=True,  # answers are path weights inside the subgraph
            routable=False,
            uses_k=True,
        )

    # -- size accounting ------------------------------------------------
    def size_bits(self) -> int:
        """Stored weighted edges, one shared edge-entry rule."""
        return self.spanner.m * edge_bits(self.n, DIST_BITS)

    # -- persistence ----------------------------------------------------
    def serialize(self) -> Manifest:
        meta = {"n": self.n, "k": self.k, "m": int(self.spanner.m)}
        blobs = {
            "edges": np.ascontiguousarray(self.spanner.edges, dtype=np.int64),
            "weights": np.ascontiguousarray(
                self.spanner.edge_weights, dtype=np.float64
            ),
        }
        return meta, blobs

    @classmethod
    def deserialize(
        cls, meta: Dict[str, object], blobs: Dict[str, np.ndarray]
    ) -> "SpannerBackend":
        edges = np.asarray(blobs["edges"], dtype=np.int64)
        spanner = Graph(
            int(meta["n"]),
            [(int(a), int(b)) for a, b in edges],
            [float(w) for w in blobs["weights"]],
        )
        return cls(spanner, int(meta["k"]))
