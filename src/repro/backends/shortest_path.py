"""Backend adapter for full shortest-path tables — the stretch-1 anchor.

The structure is the ``(n, n)`` next-hop port matrix of
:mod:`repro.baselines.shortest_path_routing`.  ``query_many`` *walks*
the tables: every pair advances one hop per vectorized step, gathering
the port, resolving it through the ported graph's step tables, and
accumulating the edge weight in exactly the order the reference
simulator would — so answers are routed-path weights (here equal to the
true distance) and ``query_one`` is the same walk, scalar.  Serialized
form: the port matrix plus the step tables, so a deserialized backend
walks without the graph.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..baselines.shortest_path_routing import build_shortest_path_scheme
from ..errors import RoutingError
from ..graphs.graph import Graph
from ..graphs.ports import PortedGraph
from .accounting import id_bits
from .base import Backend, Capabilities, Manifest
from .registry import register_backend


@register_backend
class ShortestPathBackend(Backend):
    """Full next-hop tables: exact answers, Θ(n²) space."""

    backend_name = "shortest-path"
    uses_k = False

    def __init__(
        self,
        next_port: np.ndarray,
        g_indptr: np.ndarray,
        step_next: np.ndarray,
        step_wt: np.ndarray,
    ) -> None:
        self.n = int(next_port.shape[0])
        self._next_port = next_port
        self._g_indptr = g_indptr
        self._step_next = step_next
        self._step_wt = step_wt

    @classmethod
    def build(
        cls,
        graph: Graph,
        k: int = 2,
        seed: Optional[int] = 0,
        *,
        ported: Optional[PortedGraph] = None,
        kernel: str = "auto",
    ) -> "ShortestPathBackend":
        scheme = build_shortest_path_scheme(graph, ported)
        ported = scheme.ported
        arc = ported.arc_of_port
        return cls(
            scheme.next_port,
            graph.indptr,
            graph.adj[arc],
            graph.adj_weights[arc],
        )

    # -- queries --------------------------------------------------------
    def query_many(self, pairs: np.ndarray) -> np.ndarray:
        src, dst = self._pair_columns(pairs)
        weight = np.zeros(src.shape[0], dtype=np.float64)
        rows = np.flatnonzero(src != dst)
        cur = src[rows]
        tgt = dst[rows]
        for _ in range(self.n):
            if rows.size == 0:
                break
            port = self._next_port[cur, tgt].astype(np.int64)
            if np.any(port <= 0):
                bad = int(cur[np.flatnonzero(port <= 0)[0]])
                raise RoutingError(f"no next hop stored at vertex {bad}")
            step = self._g_indptr[cur] + port - 1
            weight[rows] += self._step_wt[step]
            cur = self._step_next[step]
            live = cur != tgt
            rows, cur, tgt = rows[live], cur[live], tgt[live]
        if rows.size:
            raise RoutingError("next-hop walk exceeded n hops (table loop)")
        return weight

    def query_one(self, u: int, v: int) -> float:
        """Scalar walk with the identical hop and accumulation order."""
        u, v = int(u), int(v)
        total = 0.0
        for _ in range(self.n):
            if u == v:
                return total
            port = int(self._next_port[u, v])
            if port <= 0:
                raise RoutingError(f"no next hop stored at vertex {u}")
            step = self._g_indptr[u] + port - 1
            total += float(self._step_wt[step])
            u = int(self._step_next[step])
        if u != v:
            raise RoutingError("next-hop walk exceeded n hops (table loop)")
        return total

    # -- declared semantics --------------------------------------------
    @property
    def capabilities(self) -> Capabilities:
        return Capabilities(
            exact=True,
            stretch=1.0,
            paths=True,
            routable=True,
            uses_k=False,
        )

    # -- size accounting ------------------------------------------------
    def size_bits(self) -> int:
        """One fixed-width port per (vertex, destination) pair plus an id
        label per vertex — the scheme object's own accounting, summed."""
        degrees = np.diff(self._g_indptr)
        port_widths = np.maximum(
            1, np.frexp(degrees.astype(np.float64))[1].astype(np.int64)
        )
        return int((self.n - 1) * port_widths.sum() + self.n * id_bits(self.n))

    # -- persistence ----------------------------------------------------
    def serialize(self) -> Manifest:
        meta = {"n": self.n}
        blobs = {
            "next_port": np.ascontiguousarray(self._next_port),
            "g_indptr": np.ascontiguousarray(self._g_indptr, dtype=np.int64),
            "step_next": np.ascontiguousarray(self._step_next, dtype=np.int64),
            "step_wt": np.ascontiguousarray(self._step_wt, dtype=np.float64),
        }
        return meta, blobs

    @classmethod
    def deserialize(
        cls, meta: Dict[str, object], blobs: Dict[str, np.ndarray]
    ) -> "ShortestPathBackend":
        return cls(
            blobs["next_port"],
            blobs["g_indptr"],
            blobs["step_next"],
            blobs["step_wt"],
        )
