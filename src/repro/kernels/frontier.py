"""ctypes wrapper for the native builder frontier sweep.

``tz_frontier_sweep`` runs a threshold-pruned FIFO label-correcting
pass (SPFA-style, over adjacency pre-sorted by a conservative relax
bound) per center on an epoch-stamped shared workspace and emits the
same globally key-sorted ``(center * n + vertex, distance)`` state the
numpy label-correcting sweep in ``core/build/vectorized.py`` converges
to — bit-for-bit, since IEEE addition of the builder's positive weights
is monotone, so every convergent relaxation schedule reaches the
identical least fixpoint (``tests/test_kernels.py`` holds the resulting
:class:`SchemeArrays` to bitwise equality).
"""

from __future__ import annotations

import ctypes
from typing import Tuple

import numpy as np

from ..obs import TELEMETRY
from . import _build

__all__ = ["frontier_sweep_native"]


def frontier_sweep_native(
    graph, centers: np.ndarray, thr: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Cluster keys and distances of one hierarchy level, natively.

    Drop-in replacement for ``vectorized._pruned_level``: returns the
    sorted ``(keys, dist)`` entry state for ``centers`` under the strict
    per-vertex thresholds ``thr``.
    """
    lib = _build.load()
    if lib is None:  # pragma: no cover - callers resolve the kernel first
        raise RuntimeError(f"native kernels unavailable: {_build.native_error()}")
    centers = np.sort(np.ascontiguousarray(centers, dtype=np.int64))
    if centers.shape[0] == 0:
        return np.zeros(0, dtype=np.int64), np.zeros(0)
    indptr = np.ascontiguousarray(graph.indptr, dtype=np.int64)
    adj = np.ascontiguousarray(graph.adj, dtype=np.int64)
    wts = np.ascontiguousarray(graph.adj_weights, dtype=np.float64)
    thr = np.ascontiguousarray(thr, dtype=np.float64)
    keys_ptr = ctypes.c_void_p()
    dist_ptr = ctypes.c_void_p()
    stats = np.zeros(2, dtype=np.int64)
    count = lib.tz_frontier_sweep(
        int(graph.n),
        indptr.ctypes.data_as(ctypes.c_void_p),
        adj.ctypes.data_as(ctypes.c_void_p),
        wts.ctypes.data_as(ctypes.c_void_p),
        int(centers.shape[0]),
        centers.ctypes.data_as(ctypes.c_void_p),
        thr.ctypes.data_as(ctypes.c_void_p),
        ctypes.byref(keys_ptr),
        ctypes.byref(dist_ptr),
        stats.ctypes.data_as(ctypes.c_void_p),
    )
    if count < 0:
        raise MemoryError("native frontier sweep ran out of memory")
    keys = np.zeros(int(count), dtype=np.int64)
    dist = np.zeros(int(count), dtype=np.float64)
    if count:
        ctypes.memmove(keys.ctypes.data, keys_ptr.value, int(count) * 8)
        ctypes.memmove(dist.ctypes.data, dist_ptr.value, int(count) * 8)
    if keys_ptr.value:
        lib.tz_free(keys_ptr)
    if dist_ptr.value:
        lib.tz_free(dist_ptr)
    tm = TELEMETRY
    if tm.enabled:
        tm.count("build.frontier_settled", int(stats[0]))
        tm.count("build.relaxed_arcs", int(stats[1]))
    return keys, dist
