"""Compile ``_native.c`` with the system C toolchain and load it via ctypes.

The native backend deliberately avoids a JIT dependency: the kernels are
plain C99 (no ``Python.h``), compiled once per source revision with
whatever ``cc`` the host provides and cached as a shared library keyed
by the source hash.  The publish is an atomic rename, so concurrent
processes (the sharded route service spawns workers) race benignly — the
last writer wins with an identical artifact.

Gating, in order:

* ``REPRO_NATIVE_KERNELS=0`` (also ``no``/``off``/``false``) disables
  the backend outright — the CI fallback leg uses this to prove the
  numpy path stays green with no compiler at all.
* ``CC`` overrides the compiler (default: ``cc`` from ``PATH``).
* ``REPRO_KERNEL_CACHE`` overrides the cache directory (default:
  ``$XDG_CACHE_HOME/repro-kernels`` or ``~/.cache/repro-kernels``).

Compilation is attempted once per process; failures are remembered in
:func:`native_error` so ``kernel="auto"`` callers can report *why* they
fell back without re-running the compiler.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path
from typing import Optional

_SOURCE = Path(__file__).with_name("_native.c")

#: Environment switch that turns the native backend off entirely.
ENV_DISABLE = "REPRO_NATIVE_KERNELS"

_lib: Optional[ctypes.CDLL] = None
_error: Optional[str] = None
_attempted = False

_I64 = ctypes.c_int64
_PTR = ctypes.c_void_p
_PPTR = ctypes.POINTER(ctypes.c_void_p)


def disabled() -> bool:
    """True when the environment vetoes the native backend."""
    return os.environ.get(ENV_DISABLE, "").strip().lower() in (
        "0",
        "no",
        "off",
        "false",
    )


def cache_dir() -> Path:
    """Directory holding compiled kernel libraries."""
    override = os.environ.get("REPRO_KERNEL_CACHE")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return Path(xdg) / "repro-kernels"


def _compiler() -> Optional[str]:
    """The C compiler to invoke, or None when no toolchain is present."""
    cc = os.environ.get("CC") or "cc"
    return cc if shutil.which(cc) else None


def _declare(lib: ctypes.CDLL) -> None:
    """Pin argument/return types (bare ints would truncate to c_int)."""
    lib.tz_hop_loop.restype = _I64
    lib.tz_hop_loop.argtypes = (
        [_I64]  # count
        + [_PTR] * 7  # start..lp_hi
        + [_PTR] * 4  # delivered, weight, hops, fail
        + [_I64]  # n
        + [_PTR] * 5  # ent records, tree_indptr, lp_data, g_indptr, steps
        + [_PTR, _PTR]  # dead_masks, trial
        + [_I64, _I64]  # mask_width, ttl
    )
    lib.tz_frontier_sweep.restype = _I64
    lib.tz_frontier_sweep.argtypes = (
        [_I64, _PTR, _PTR, _PTR, _I64, _PTR, _PTR] + [_PPTR, _PPTR] + [_PTR]
    )
    lib.tz_free.restype = None
    lib.tz_free.argtypes = [_PTR]


def _compile() -> ctypes.CDLL:
    """Build (if needed) and load the shared library; raises on failure."""
    source = _SOURCE.read_bytes()
    tag = hashlib.sha256(source).hexdigest()[:16]
    cache = cache_dir()
    cache.mkdir(parents=True, exist_ok=True)
    artifact = cache / f"repro_native_{tag}.so"
    if not artifact.exists():
        cc = _compiler()
        if cc is None:
            raise RuntimeError(
                "no C compiler on PATH (set CC, or install gcc/clang)"
            )
        fd, tmp = tempfile.mkstemp(dir=cache, suffix=".so")
        os.close(fd)
        try:
            proc = subprocess.run(
                [cc, "-O3", "-fPIC", "-shared", "-o", tmp, str(_SOURCE), "-lm"],
                capture_output=True,
                text=True,
            )
            if proc.returncode != 0:
                raise RuntimeError(
                    f"kernel compilation failed ({cc}): "
                    f"{proc.stderr.strip()[:500]}"
                )
            os.replace(tmp, artifact)  # atomic publish
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)
    lib = ctypes.CDLL(str(artifact))
    _declare(lib)
    return lib


def load() -> Optional[ctypes.CDLL]:
    """The loaded native library, or None (disabled / compile failed).

    The first call pays the compile (sub-second, then cached on disk);
    later calls return the memoized handle.  Failures are memoized too —
    see :func:`native_error`.
    """
    global _lib, _error, _attempted
    if disabled():
        return None
    if not _attempted:
        _attempted = True
        try:
            _lib = _compile()
        except Exception as exc:  # noqa: BLE001 - any failure means numpy
            _error = str(exc)
            _lib = None
    return _lib


def native_error() -> Optional[str]:
    """Why the native backend is unavailable (None when it loaded)."""
    if disabled():
        return f"disabled via {ENV_DISABLE}=0"
    if not _attempted:
        load()
    return _error


def reset_for_tests() -> None:
    """Forget the memoized load so tests can re-probe under new env."""
    global _lib, _error, _attempted
    _lib = None
    _error = None
    _attempted = False
