/* Native kernels for the two inner loops that dominate every benchmark:
 * the router's synchronized hop loop (sim/engine/batch.py) and the
 * builder's thresholded frontier sweep (core/build/vectorized.py).
 *
 * Deliberately plain C99 + libc, no Python.h: the library is loaded
 * through ctypes, so a bare `cc -O3 -fPIC -shared` against the system
 * toolchain is the whole build and no Python development headers are
 * needed.  All array arguments are raw pointers into numpy buffers the
 * wrapper pins as contiguous int64/float64/uint8 before the call.
 *
 * Both kernels replicate the numpy reference paths bit-for-bit:
 *
 * - tz_hop_loop walks each row independently.  The numpy loop advances
 *   all rows one synchronized hop per array step, but weight accumulates
 *   per row in hop order either way, so a scalar walk sums the exact
 *   same float64 values in the exact same order.
 * - tz_frontier_sweep runs a FIFO label-correcting (SPFA-style) pass
 *   per center over an adjacency copy pre-sorted by a conservative
 *   per-arc relax bound.  IEEE addition is monotone for the positive
 *   weights the builder feeds it, so every convergent relaxation
 *   schedule — Dijkstra, the numpy synchronized sweep, or this FIFO
 *   queue — reaches the identical least fixpoint, value by value, and
 *   the strict `nd < thr[v]` prune admits exactly the same pairs.
 *
 * The hop loop is memory-latency-bound (every hop gathers from tables
 * far larger than cache), so it interleaves a block of rows and issues
 * a software prefetch for each row's next record while the other rows
 * advance — the same memory-level parallelism the numpy gathers get
 * from vectorization, without the per-round array traffic.  Entry
 * records are packed (one struct per entry, built once per scheme by
 * the wrapper) so a hop touches two cache lines instead of fourteen
 * columns, and the record lookup after a light-port crossing binary-
 * searches only the committed tree's entry slice, not the global key
 * table.
 */

#include <float.h>
#include <math.h>
#include <stdint.h>
#include <stdlib.h>
#include <string.h>

#if defined(__GNUC__) || defined(__clang__)
#define PREFETCH(p) __builtin_prefetch((const void *)(p))
#else
#define PREFETCH(p) ((void)(p))
#endif

/* Failure codes: keep in sync with repro.sim.engine.batch.FAIL_*. */
#define FAIL_NONE 0
#define FAIL_NO_RECORD 2
#define FAIL_ROOT_EXIT 3
#define FAIL_LABEL 4
#define FAIL_PORT 5
#define FAIL_DEAD_LINK 6
#define FAIL_TTL 7

/* Entry-position sentinel: crossed into a vertex with no record. */
#define LOST (-2)

/* ------------------------------------------------------------------ */
/* Router hop loop                                                     */
/* ------------------------------------------------------------------ */

/* One tree entry, packed: field order and widths must match ENT_DTYPE
 * in repro/kernels/hop.py exactly (14 × 8 bytes, no padding). */
typedef struct {
    int64_t key;         /* tree * n + vertex (slice-sorted) */
    int64_t vertex;
    int64_t f;           /* DFS number */
    int64_t finish;
    int64_t heavy_finish;
    int64_t light_depth;
    int64_t parent_epos;
    double parent_wt;
    int64_t parent_edge;
    int64_t parent_next;
    int64_t heavy_epos;
    double heavy_wt;
    int64_t heavy_edge;
    int64_t heavy_next;
} ent_rec;

/* One half-arc of the ported graph: matches STEP_DTYPE in hop.py. */
typedef struct {
    int64_t next;
    int64_t edge;
    double wt;
} step_rec;

/* Lower-bound search for `key` inside the entry slice [lo, hi). */
static int64_t find_entry(const ent_rec *ent, int64_t lo, int64_t hi,
                          int64_t key)
{
    const int64_t end = hi;
    while (lo < hi) {
        int64_t mid = lo + ((hi - lo) >> 1);
        if (ent[mid].key < key)
            lo = mid + 1;
        else
            hi = mid;
    }
    return (lo < end && ent[lo].key == key) ? lo : -1;
}

/* Interleaving width: enough in-flight rows to keep the memory system
 * saturated with independent loads, small enough that all slot state
 * stays in registers/L1. */
#define HOP_BATCH 64

/* Walk every committed row to its outcome.  Returns the number of
 * synchronized rounds the numpy loop would have executed (the maximum
 * over rows of the iteration count while that row was in flight), which
 * feeds the route.hop_iterations counter.  `fail` is read for rows that
 * failed at commit time (skipped) and written with the outcome code. */
int64_t tz_hop_loop(
    int64_t count,
    const int64_t *start,            /* committed source entry per row */
    const int64_t *dst_e,            /* destination entry per row */
    const int64_t *dst_v,            /* destination vertex per row */
    const int64_t *target_f,         /* destination DFS number */
    const int64_t *tree,             /* committed tree root */
    const int64_t *lp_lo,            /* light-port slice bounds */
    const int64_t *lp_hi,
    uint8_t *delivered,              /* out (count) */
    double *weight,                  /* out (count) */
    int64_t *hops,                   /* out (count) */
    int8_t *fail,                    /* in/out (count) */
    int64_t n,
    const ent_rec *ent,              /* packed entry records */
    const int64_t *tree_indptr,      /* (n+1) entry slice per tree root */
    const int64_t *lp_data,
    const int64_t *g_indptr,
    const step_rec *step,            /* packed half-arcs */
    const uint8_t *dead_masks,       /* NULL or (T, mask_width) row-major */
    const int64_t *trial,            /* NULL or per-row trial index */
    int64_t mask_width,
    int64_t ttl)
{
    int64_t s_row[HOP_BATCH], s_cur[HOP_BATCH], s_lost[HOP_BATCH];
    int64_t s_h[HOP_BATCH], s_it[HOP_BATCH], s_de[HOP_BATCH];
    int64_t s_dv[HOP_BATCH], s_tf[HOP_BATCH], s_lo[HOP_BATCH];
    int64_t s_hi[HOP_BATCH], s_tlo[HOP_BATCH], s_thi[HOP_BATCH];
    int64_t s_key[HOP_BATCH];
    double s_w[HOP_BATCH];
    const uint8_t *s_mask[HOP_BATCH];
    int64_t rounds = 0, next_row = 0;
    int nslots = 0;

#define SLOT_LOAD(s)                                                     \
    do {                                                                 \
        int64_t row_ = -1;                                               \
        while (next_row < count) {                                       \
            int64_t i_ = next_row++;                                     \
            if (fail[i_] == FAIL_NONE) {                                 \
                row_ = i_;                                               \
                break;                                                   \
            }                                                            \
        }                                                                \
        if (row_ < 0) {                                                  \
            s_row[s] = -1;                                               \
        } else {                                                         \
            const int64_t tr_ = tree[row_];                              \
            s_row[s] = row_;                                             \
            s_cur[s] = start[row_];                                      \
            s_lost[s] = -1;                                              \
            s_h[s] = 0;                                                  \
            s_it[s] = 0;                                                 \
            s_w[s] = 0.0;                                                \
            s_de[s] = dst_e[row_];                                       \
            s_dv[s] = dst_v[row_];                                       \
            s_tf[s] = target_f[row_];                                    \
            s_lo[s] = lp_lo[row_];                                       \
            s_hi[s] = lp_hi[row_];                                       \
            s_tlo[s] = tr_ >= 0 ? tree_indptr[tr_] : 0;                  \
            s_thi[s] = tr_ >= 0 ? tree_indptr[tr_ + 1] : 0;              \
            s_key[s] = tr_ >= 0 ? tr_ * n : 0;                           \
            s_mask[s] =                                                  \
                dead_masks ? dead_masks + trial[row_] * mask_width : 0;  \
            if (s_cur[s] >= 0) {                                         \
                PREFETCH(&ent[s_cur[s]]);                                \
                PREFETCH((const char *)&ent[s_cur[s]] + 64);             \
            }                                                            \
        }                                                                \
    } while (0)

    for (int s = 0; s < HOP_BATCH; s++) {
        SLOT_LOAD(s);
        if (s_row[s] < 0)
            break;
        nslots++;
    }

    while (nslots) {
        for (int s = 0; s < nslots;) {
            const int64_t cur = s_cur[s];
            int8_t code = FAIL_NONE;
            uint8_t del = 0;
            int retire = 0;
            int64_t alive = 0;
            if (s_it[s] >= ttl) {
                /* survived every round: loop */
                code = FAIL_TTL;
                retire = 1;
                alive = ttl;
            } else if (cur == s_de[s] ||
                       (cur == LOST && s_lost[s] == s_dv[s])) {
                /* arrival first, exactly as the reference decide: entry
                 * equality, or a recordless message that landed on the
                 * destination vertex itself */
                del = 1;
                retire = 1;
                alive = s_it[s] + 1;
            } else if (cur == LOST) {
                code = FAIL_NO_RECORD;
                retire = 1;
                alive = s_it[s] + 1;
            } else {
                const ent_rec *r = &ent[cur];
                const int64_t tf = s_tf[s];
                const int64_t rec_f = r->f;
                int64_t nxt = -1, edge = -1, new_lost = -1;
                double wt = 0.0;
                if (tf < rec_f || tf > r->finish) {
                    /* outside the record's DFS interval: up to parent */
                    nxt = r->parent_epos;
                    wt = r->parent_wt;
                    edge = r->parent_edge;
                    if (nxt == -1)
                        code = FAIL_ROOT_EXIT;
                    else if (nxt == LOST)
                        new_lost = r->parent_next;
                } else if (tf >= rec_f + 1 && tf <= r->heavy_finish) {
                    /* inside the heavy child's interval */
                    nxt = r->heavy_epos;
                    wt = r->heavy_wt;
                    edge = r->heavy_edge;
                    if (nxt == -1)
                        code = FAIL_PORT;
                    else if (nxt == LOST)
                        new_lost = r->heavy_next;
                } else {
                    /* light child: next port from the destination label */
                    const int64_t lp_pos = s_lo[s] + r->light_depth;
                    if (lp_pos >= s_hi[s]) {
                        code = FAIL_LABEL;
                    } else {
                        const int64_t port = lp_data[lp_pos];
                        const int64_t at = r->vertex;
                        const int64_t sp = g_indptr[at] + port - 1;
                        if (port < 1 || sp >= g_indptr[at + 1]) {
                            code = FAIL_PORT;
                        } else {
                            const step_rec *st = &step[sp];
                            const int64_t landed = st->next;
                            /* A tree whose slice holds all n vertices
                             * (a top-level landmark tree — the common
                             * commit for far pairs) indexes directly:
                             * slice keys are tr*n + 0..n-1 in order. */
                            const int64_t pos =
                                s_thi[s] - s_tlo[s] == n
                                    ? s_tlo[s] + landed
                                    : find_entry(ent, s_tlo[s], s_thi[s],
                                                 s_key[s] + landed);
                            if (pos >= 0) {
                                nxt = pos;
                            } else {
                                nxt = LOST;
                                new_lost = landed;
                            }
                            wt = st->wt;
                            edge = st->edge;
                        }
                    }
                }
                if (code != FAIL_NONE) {
                    retire = 1;
                    alive = s_it[s] + 1;
                } else if (s_mask[s] && edge >= 0 && s_mask[s][edge]) {
                    code = FAIL_DEAD_LINK;
                    retire = 1;
                    alive = s_it[s] + 1;
                } else {
                    s_w[s] += wt;
                    s_h[s] += 1;
                    s_cur[s] = nxt;
                    s_lost[s] = new_lost;
                    s_it[s] += 1;
                    if (nxt >= 0) {
                        PREFETCH(&ent[nxt]);
                        PREFETCH((const char *)&ent[nxt] + 64);
                    }
                }
            }
            if (retire) {
                const int64_t i = s_row[s];
                delivered[i] = del;
                weight[i] = s_w[s];
                hops[i] = s_h[s];
                if (!del)
                    fail[i] = code;
                if (alive > rounds)
                    rounds = alive;
                SLOT_LOAD(s);
                if (s_row[s] >= 0) {
                    s++;
                } else {
                    nslots--;
                    if (s < nslots) { /* compact: steal the last slot */
                        s_row[s] = s_row[nslots];
                        s_cur[s] = s_cur[nslots];
                        s_lost[s] = s_lost[nslots];
                        s_h[s] = s_h[nslots];
                        s_it[s] = s_it[nslots];
                        s_w[s] = s_w[nslots];
                        s_de[s] = s_de[nslots];
                        s_dv[s] = s_dv[nslots];
                        s_tf[s] = s_tf[nslots];
                        s_lo[s] = s_lo[nslots];
                        s_hi[s] = s_hi[nslots];
                        s_tlo[s] = s_tlo[nslots];
                        s_thi[s] = s_thi[nslots];
                        s_key[s] = s_key[nslots];
                        s_mask[s] = s_mask[nslots];
                    }
                }
            } else {
                s++;
            }
        }
    }
#undef SLOT_LOAD
    return rounds;
}

/* ------------------------------------------------------------------ */
/* Builder frontier sweep                                              */
/* ------------------------------------------------------------------ */

/* One arc of the lim-sorted adjacency copy.  `lim` is a conservative
 * upper bound on any settled distance du that could still pass the
 * prune through this arc: fl(du + wt) < thr[v] implies (with u the
 * unit roundoff) du < thr[v]*(1+2u) - wt, and `lim` is computed one
 * multiply and two ulp-bumps above that, so `du > lim` proves the arc
 * (and, with arcs sorted by lim descending, every later arc of the
 * vertex) cannot relax.  False positives are harmless — the exact IEEE
 * comparison still guards the relax itself. */
typedef struct {
    double lim;
    int64_t v;
    double wt;
} parc;

/* nextafter(x, +inf) by bit-twiddling: the lim build calls this twice
 * per arc and libm's nextafter is an order of magnitude slower. */
static inline double up_ulp(double x)
{
    union {
        double d;
        uint64_t b;
    } u;
    u.d = x;
    if (u.b == 0x8000000000000000ULL)
        u.b = 1; /* -0 -> smallest positive subnormal */
    else if (u.b >> 63)
        u.b--; /* negative: toward zero */
    else if (u.d != (double)(1.0 / 0.0))
        u.b++; /* positive finite (and NaN stays NaN-ish; thr has none) */
    return u.d;
}

/* Sort one center's settled vertex ids ascending (ids are distinct).
 * Hand-rolled quicksort + insertion sort over bare int64 — qsort's
 * indirect comparator calls dominate the sweep at small slice sizes,
 * and sorting 8-byte ids (then gathering distances from the per-vertex
 * state, still cache-hot) moves half the bytes of sorting key/distance
 * pairs. */
static void sort_ids(int64_t *a, int64_t len)
{
    while (len > 24) {
        /* median-of-3 pivot */
        int64_t mid = len >> 1;
        int64_t p = a[0], q = a[mid], r = a[len - 1];
        int64_t piv = p < q ? (q < r ? q : (p < r ? r : p))
                            : (p < r ? p : (q < r ? r : q));
        int64_t i = 0, j = len - 1;
        for (;;) {
            while (a[i] < piv)
                i++;
            while (a[j] > piv)
                j--;
            if (i >= j)
                break;
            int64_t t = a[i];
            a[i] = a[j];
            a[j] = t;
            i++;
            j--;
        }
        /* recurse into the smaller side, loop on the larger */
        if (j + 1 < len - j - 1) {
            sort_ids(a, j + 1);
            a += j + 1;
            len -= j + 1;
        } else {
            sort_ids(a + j + 1, len - j - 1);
            len = j + 1;
        }
    }
    for (int64_t i = 1; i < len; i++) {
        int64_t t = a[i];
        int64_t j = i;
        while (j > 0 && a[j - 1] > t) {
            a[j] = a[j - 1];
            j--;
        }
        a[j] = t;
    }
}

/* Thresholded shortest paths from every center; emits the same sorted
 * (center * n + vertex, distance) state the numpy sweep converges to.
 * Per center this runs FIFO label-correcting (SPFA) rather than a
 * heap: for positive weights any convergent relaxation schedule
 * reaches the same least fixpoint value-by-value under IEEE rounding,
 * and dropping the heap removes the serial pop/sift dependency chain
 * that dominates a one-settle-at-a-time loop.  The adjacency is copied
 * once into per-vertex slices sorted by the conservative relax bound
 * `lim` descending, so each scan breaks at the first arc the settled
 * distance can no longer pass — on thresholded cluster levels that
 * skips roughly two-thirds of the arc volume.
 * `centers` must be sorted ascending so the concatenated per-center
 * slices come out globally key-sorted.  Returns the pair count (the
 * caller copies out of *out_keys / *out_dist and frees both through
 * tz_free), or -1 on allocation failure.  stats[0] collects emitted
 * settles, stats[1] scanned-vertex arc degrees. */
/* All per-vertex sweep state on one cache line per vertex: the relax
 * loop's random accesses (threshold, epoch stamps, tentative distance)
 * then cost one line touch instead of four array touches. */
typedef struct {
    int64_t stamp; /* epoch of the last tentative distance */
    int64_t done;  /* epoch of settlement */
    double dist;   /* tentative distance (valid when stamp matches) */
    double thr;    /* strict prune bound d(A_{i+1}, v) */
} vstate;

int64_t tz_frontier_sweep(
    int64_t n,
    const int64_t *indptr,
    const int64_t *adj,
    const double *wts,
    int64_t ncenters,
    const int64_t *centers,
    const double *thr,
    int64_t **out_keys,
    double **out_dist,
    int64_t *stats)
{
    const int64_t narcs = indptr[n];
    vstate *vs = malloc((size_t)n * sizeof(vstate));
    int64_t *sett = malloc((size_t)n * sizeof(int64_t)); /* per-center */
    parc *arcs = malloc((size_t)(narcs ? narcs : 1) * sizeof(parc));
    int64_t *queue = malloc((size_t)(n + 1) * sizeof(int64_t));
    const int64_t qcap = n + 1; /* FIFO ring; a vertex queues at most once */
    int64_t *keys = NULL;
    double *dout = NULL;
    int64_t count = 0, out_cap = 0;
    int64_t settled = 0, relaxed = 0;
    int oom = (!vs || !sett || !arcs || !queue);
    if (!oom) {
        for (int64_t i = 0; i < n; i++) {
            vs[i].stamp = -1;
            vs[i].done = -1;
            vs[i].thr = thr[i];
        }
        /* Lim-sorted adjacency: per-vertex insertion sort, descending.
         * thr is shared by every center, so one copy serves the whole
         * sweep; degrees are small (insertion sort beats anything with
         * setup cost) and an inf threshold yields lim = inf, which
         * never triggers the break. */
        for (int64_t u = 0; u < n; u++) {
            const int64_t lo = indptr[u], hi = indptr[u + 1];
            for (int64_t a = lo; a < hi; a++) {
                const double x = thr[adj[a]] * (1.0 + 4.0 * DBL_EPSILON);
                parc p;
                p.lim = up_ulp(up_ulp(x - wts[a]));
                p.v = adj[a];
                p.wt = wts[a];
                int64_t j = a;
                while (j > lo && arcs[j - 1].lim < p.lim) {
                    arcs[j] = arcs[j - 1];
                    j--;
                }
                arcs[j] = p;
            }
        }
    }
    for (int64_t e = 0; e < ncenters && !oom; e++) {
        const int64_t w = centers[e];
        int64_t sett_len = 0, qh = 0, qt = 0;
        vs[w].dist = 0.0;
        vs[w].stamp = e;
        vs[w].done = e; /* done == e: currently queued */
        sett[sett_len++] = w;
        queue[qt++] = w;
        while (qh != qt) {
            const int64_t u = queue[qh];
            qh = qh + 1 == qcap ? 0 : qh + 1;
            vs[u].done = ~e; /* dequeued; may re-queue if improved */
            const double du = vs[u].dist;
            const int64_t a_end = indptr[u + 1];
            relaxed += a_end - indptr[u];
            for (int64_t a = indptr[u]; a < a_end; a++) {
                if (du > arcs[a].lim)
                    break; /* no later arc of u can pass the prune */
                const int64_t v = arcs[a].v;
                const double nd = du + arcs[a].wt;
                vstate *sv = &vs[v];
                /* strict prune at d(A_{i+1}, v), as in the numpy sweep */
                if (nd < sv->thr && (sv->stamp != e || nd < sv->dist)) {
                    if (sv->stamp != e) {
                        sv->stamp = e;
                        sett[sett_len++] = v;
                    }
                    sv->dist = nd;
                    if (sv->done != e) {
                        sv->done = e;
                        queue[qt] = v;
                        qt = qt + 1 == qcap ? 0 : qt + 1;
                    }
                }
            }
        }
        /* Emit this center's slice in vertex order (centers ascending
         * makes the concatenation globally key-sorted).  Settled
         * distances stay valid in vs[] until a later epoch reuses the
         * vertex, so sort the bare ids and gather the distances. */
        sort_ids(sett, sett_len);
        if (count + sett_len > out_cap) {
            int64_t nc = out_cap ? out_cap * 2 : 4096;
            while (nc < count + sett_len)
                nc *= 2;
            int64_t *nk = realloc(keys, (size_t)nc * sizeof(int64_t));
            if (nk)
                keys = nk;
            double *ndp = realloc(dout, (size_t)nc * sizeof(double));
            if (ndp)
                dout = ndp;
            if (!nk || !ndp) {
                oom = 1;
                break;
            }
            out_cap = nc;
        }
        const int64_t base = w * n;
        for (int64_t i = 0; i < sett_len; i++) {
            keys[count + i] = base + sett[i];
            dout[count + i] = vs[sett[i]].dist;
        }
        count += sett_len;
        settled += sett_len;
    }
    free(vs);
    free(sett);
    free(arcs);
    free(queue);
    if (oom) {
        free(keys);
        free(dout);
        return -1;
    }
    *out_keys = keys;
    *out_dist = dout;
    if (stats) {
        stats[0] = settled;
        stats[1] = relaxed;
    }
    return count;
}

/* Release a buffer handed out by tz_frontier_sweep. */
void tz_free(void *p)
{
    free(p);
}
