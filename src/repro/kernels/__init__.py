"""Compiled kernels for the two hottest loops, behind a differential flag.

The router's synchronized hop loop (``sim/engine/batch.py``) and the
builder's thresholded frontier sweep (``core/build/vectorized.py``) each
have a native implementation in ``_native.c``, compiled on demand with
the system C toolchain and loaded through ctypes (:mod:`._build`).  The
numpy paths remain the bit-for-bit differential reference — the same
contract the vectorized builder holds against the per-node reference
builder — enforced by ``tests/test_kernels.py``.

Selection is the ``kernel=`` kwarg threaded through
:class:`~repro.sim.engine.batch.BatchRouter`,
:func:`~repro.core.build.build_arrays` /
:func:`~repro.core.build.build_scheme`,
:class:`~repro.store.RouteService` and the CLI's ``--kernel`` flag:

* ``"numpy"`` — always the pure-numpy reference path.
* ``"native"`` — the compiled path; raises
  :class:`~repro.errors.KernelError` when unavailable.
* ``"auto"`` (default) — native when it loads, else numpy, noting the
  fallback once per process with a ``kernel.fallback`` telemetry
  counter and a :class:`KernelFallbackWarning`.

The backend stays a zero-dependency optional: no compiler, no
``Python.h``, or ``REPRO_NATIVE_KERNELS=0`` all degrade to numpy with
identical results.
"""

from __future__ import annotations

import warnings
from typing import Optional

from ..errors import KernelError
from ..obs import TELEMETRY
from . import _build

__all__ = [
    "KERNELS",
    "KernelFallbackWarning",
    "available",
    "native_error",
    "note_weight_fallback",
    "resolve_kernel",
]

#: Accepted values of every ``kernel=`` kwarg / ``--kernel`` flag.
KERNELS = ("auto", "native", "numpy")


class KernelFallbackWarning(UserWarning):
    """A faster kernel path silently degraded to a slower reference path."""


_auto_fallback_noted = False


def available() -> bool:
    """True when the native backend compiled and loaded in this process."""
    return _build.load() is not None


def native_error() -> Optional[str]:
    """Why the native backend is unavailable (None when it is usable)."""
    return _build.native_error()


def resolve_kernel(kernel: str) -> str:
    """Resolve a ``kernel=`` request to the backend that will run.

    Returns ``"native"`` or ``"numpy"``.  ``"auto"`` degrades to numpy
    when the native library cannot be built, recording the degradation
    once per process (``kernel.fallback`` counter +
    :class:`KernelFallbackWarning`); an explicit ``"native"`` raises
    :class:`~repro.errors.KernelError` instead of degrading.
    """
    if kernel not in KERNELS:
        raise KernelError(
            f"unknown kernel {kernel!r} (choose from {', '.join(KERNELS)})"
        )
    if kernel == "numpy":
        return "numpy"
    if available():
        return "native"
    if kernel == "native":
        raise KernelError(f"native kernels unavailable: {native_error()}")
    _note_auto_fallback()
    return "numpy"


def _note_auto_fallback() -> None:
    """Record the auto→numpy degradation, once per process."""
    global _auto_fallback_noted
    TELEMETRY.count("kernel.fallback")
    if _auto_fallback_noted:
        return
    _auto_fallback_noted = True
    warnings.warn(
        f"native kernels unavailable ({native_error()}); "
        "kernel='auto' is using the numpy path",
        KernelFallbackWarning,
        stacklevel=3,
    )


def note_weight_fallback() -> None:
    """Record the non-float64-exact builder fallback (counter + warning).

    The vectorized builder silently ran the ~10× slower reference path
    for years of CPU time before this counter existed; both kernel paths
    now surface the degradation the same way.
    """
    TELEMETRY.count("kernel.fallback")
    warnings.warn(
        "edge weights are not float64-exact: the vectorized builder fell "
        "back to the per-node reference builder (10x slower); use "
        "integer-valued weights to stay on the fast path",
        KernelFallbackWarning,
        stacklevel=3,
    )
