"""ctypes wrapper for the native router hop loop (``tz_hop_loop``).

The C kernel walks each committed row independently to its outcome;
because the numpy loop also accumulates weight per row in hop order, the
scalar walk sums the identical float64 values in the identical order and
the outcome columns are bit-for-bit equal (``tests/test_kernels.py``).

The compiled scheme's fourteen entry columns are packed once per
:class:`CompiledScheme` object into a single record table
(:class:`NativeSchemeView`, cached on the scheme), so a hop touches two
cache lines instead of fourteen scattered columns and repeated route
calls pay zero conversion cost.  The view also carries ``tree_indptr``
— each tree root's slice of the key-sorted entry table — which lets the
kernel binary-search one cluster's records instead of the global table
after every light-port crossing.

Packing must not fork the scheme's state: the engine suite corrupts
compiled tables *in place* (severed heavy links, poisoned ports) and
both kernels must see the damage.  So after packing, the view re-points
the scheme's per-entry field columns and step tables at the packed
records themselves — later ``cs.ent_heavy_epos[:] = -1`` writes through
to the exact memory the C kernel reads, and no per-call staleness check
is needed (re-verifying 4M+ entries would cost more than the hop loop).
Columns an attribute *rebind* replaces are caught by an identity check
in :meth:`NativeSchemeView.of`, which rebuilds the view.  Only
``entry_keys`` (and the ``tree_indptr`` derived from it) stays a
contiguous original: the keys define entry identity and feed
``searchsorted`` in the shared commit path, where a strided view would
force an internal copy per call — they are compiled-in immutable.
"""

from __future__ import annotations

import ctypes
from typing import Optional, Tuple

import numpy as np

from . import _build

__all__ = ["NativeSchemeView", "hop_loop_native"]

_VIEW_ATTR = "_native_view"

#: Field order and widths must match `ent_rec` in _native.c exactly
#: (14 × 8 bytes, no padding).
ENT_DTYPE = np.dtype(
    [
        ("key", "<i8"),
        ("vertex", "<i8"),
        ("f", "<i8"),
        ("finish", "<i8"),
        ("heavy_finish", "<i8"),
        ("light_depth", "<i8"),
        ("parent_epos", "<i8"),
        ("parent_wt", "<f8"),
        ("parent_edge", "<i8"),
        ("parent_next", "<i8"),
        ("heavy_epos", "<i8"),
        ("heavy_wt", "<f8"),
        ("heavy_edge", "<i8"),
        ("heavy_next", "<i8"),
    ]
)

#: Must match `step_rec` in _native.c (3 × 8 bytes).
STEP_DTYPE = np.dtype([("next", "<i8"), ("edge", "<i8"), ("wt", "<f8")])


def _i64(a: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(a, dtype=np.int64)


def _ptr(a: Optional[np.ndarray]):
    if a is None:
        return None
    return a.ctypes.data_as(ctypes.c_void_p)


#: Entry field columns that are re-pointed at the packed record table
#: (everything except the immutable ``entry_keys``).
_ENT_FIELDS = (
    "vertex",
    "f",
    "finish",
    "heavy_finish",
    "light_depth",
    "parent_epos",
    "parent_wt",
    "parent_edge",
    "parent_next",
    "heavy_epos",
    "heavy_wt",
    "heavy_edge",
    "heavy_next",
)

_STEP_FIELDS = ("next", "edge", "wt")


class NativeSchemeView:
    """Packed, dtype-pinned form of one scheme's routing tables."""

    __slots__ = ("n", "ent", "tree_indptr", "lp_data", "g_indptr", "step", "_bound")

    def __init__(self, cs) -> None:
        """Pack the tables of ``cs`` (one-time cost, cached via :meth:`of`)."""
        self.n = int(cs.n)
        keys = _i64(cs.entry_keys)
        ent = np.empty(keys.shape[0], dtype=ENT_DTYPE)
        ent["key"] = keys
        for name in _ENT_FIELDS:
            ent[name] = getattr(cs, "ent_" + name)
        self.ent = ent
        # Tree w's entries occupy one contiguous slice of the key-sorted
        # table (keys are w * n + member).
        self.tree_indptr = np.searchsorted(
            keys, np.arange(self.n + 1, dtype=np.int64) * np.int64(self.n)
        ).astype(np.int64)
        self.lp_data = _i64(cs.lp_data)
        self.g_indptr = _i64(cs.g_indptr)
        step = np.empty(np.asarray(cs.step_next).shape[0], dtype=STEP_DTYPE)
        for name in _STEP_FIELDS:
            step[name] = getattr(cs, "step_" + name)
        self.step = step
        # Write-through aliasing (module doc): the scheme's field
        # columns become views into the packed records, so in-place
        # mutation of the compiled tables reaches the kernel.  _bound
        # remembers the exact objects assigned; `of` treats any rebound
        # attribute as a new scheme state and repacks.
        self._bound = {}
        for name in _ENT_FIELDS:
            col = ent[name]
            setattr(cs, "ent_" + name, col)
            self._bound["ent_" + name] = col
        for name in _STEP_FIELDS:
            col = step[name]
            setattr(cs, "step_" + name, col)
            self._bound["step_" + name] = col
        cs.lp_data = self.lp_data
        cs.g_indptr = self.g_indptr
        self._bound["lp_data"] = self.lp_data
        self._bound["g_indptr"] = self.g_indptr
        self._bound["entry_keys"] = cs.entry_keys

    def _fresh(self, cs) -> bool:
        """True while every aliased column is still the one we bound."""
        return all(getattr(cs, name) is arr for name, arr in self._bound.items())

    @classmethod
    def of(cls, cs) -> "NativeSchemeView":
        """The cached view of ``cs`` (built on first use, or when a
        column attribute was rebound since the last pack)."""
        view = getattr(cs, _VIEW_ATTR, None)
        if view is None or not view._fresh(cs):
            view = cls(cs)
            setattr(cs, _VIEW_ATTR, view)
        return view


def hop_loop_native(
    cs,
    dst: np.ndarray,
    state: Tuple[np.ndarray, ...],
    ttl: int,
    dead_masks: Optional[np.ndarray],
    trial: Optional[np.ndarray],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, int]:
    """Run the compiled hop loop over one committed batch.

    Arguments mirror :meth:`BatchRouter._hop_loop` (``state`` is the
    ``_commit`` tuple; its ``fail`` column is mutated in place, exactly
    like the numpy path).  Returns ``(delivered, weight, hops, fail,
    rounds)`` where ``rounds`` is the synchronized-round count for the
    ``route.hop_iterations`` counter.
    """
    lib = _build.load()
    if lib is None:  # pragma: no cover - callers resolve the kernel first
        raise RuntimeError(f"native kernels unavailable: {_build.native_error()}")
    view = NativeSchemeView.of(cs)
    fail, _tree, _header, dest_f, lp_lo, lp_hi, epos_src, epos_dst = state
    count = int(dst.shape[0])
    delivered = np.zeros(count, dtype=np.uint8)
    weight = np.zeros(count, dtype=np.float64)
    hops = np.zeros(count, dtype=np.int64)
    if fail.dtype != np.int8 or not fail.flags.c_contiguous:
        raise RuntimeError("commit state 'fail' must be contiguous int8")
    # Bind every converted buffer to a local: ctypes only captures raw
    # pointers, so the arrays must outlive the call.
    committed_tree = _i64(_tree)
    dst = _i64(dst)
    epos_src, epos_dst = _i64(epos_src), _i64(epos_dst)
    dest_f, lp_lo, lp_hi = _i64(dest_f), _i64(lp_lo), _i64(lp_hi)
    masks_u8 = None
    trial_i64 = None
    mask_width = 0
    if dead_masks is not None:
        if dead_masks.dtype == np.bool_ and dead_masks.flags.c_contiguous:
            masks_u8 = dead_masks.view(np.uint8)  # zero-copy reinterpret
        else:
            masks_u8 = np.ascontiguousarray(dead_masks, dtype=np.uint8)
        trial_i64 = _i64(trial)
        mask_width = int(masks_u8.shape[1])
    rounds = lib.tz_hop_loop(
        count,
        _ptr(epos_src),
        _ptr(epos_dst),
        _ptr(dst),
        _ptr(dest_f),
        _ptr(committed_tree),
        _ptr(lp_lo),
        _ptr(lp_hi),
        _ptr(delivered),
        _ptr(weight),
        _ptr(hops),
        _ptr(fail),
        view.n,
        _ptr(view.ent),
        _ptr(view.tree_indptr),
        _ptr(view.lp_data),
        _ptr(view.g_indptr),
        _ptr(view.step),
        _ptr(masks_u8),
        _ptr(trial_i64),
        mask_width,
        int(ttl),
    )
    return delivered.view(np.bool_), weight, hops, fail, int(rounds)
