"""Bit-exact serialization of compiled routing state.

The paper's space claims are about bits, so this package measures bits
— and this module proves the measurements honest: every
:class:`~repro.core.tables.VertexTable` and every TZ label can be
round-tripped through an actual bit stream whose length equals the
reported ``size_bits`` plus only the self-delimiting length prefixes.

Layout of a serialized table (all fields prefix-free or fixed-width
against the shared context ``(n, tree_sizes, max_port)``)::

    delta0(#trees)
      per tree: uint(w, ⌈log n⌉)  record(f, finish, heavy_finish,
                parent_port, heavy_port, light_depth)  own tree label
    delta0(#members)
      per member: uint(v, ⌈log n⌉)  tree label in T_u
    per pivot level: uint(p_i(u), ⌈log n⌉)

The shared context is preprocessing-wide state (the same for every
vertex), matching the standard labeled-scheme convention that global
constants are not charged to individual tables.
"""

from __future__ import annotations

from typing import Dict

from ..bitio import BitReader, BitWriter, code_width, delta_cost
from ..errors import EncodingError
from ..trees.label_codec import TreeLabel, decode_tree_label, encode_tree_label
from ..trees.tz_tree import TreeLocalRecord
from .tables import VertexTable


def _id_width(n: int) -> int:
    return code_width(max(n, 1))


def _f_width(tree_size: int) -> int:
    return code_width(max(tree_size, 1))


def encode_record(
    w: BitWriter, record: TreeLocalRecord, tree_size: int, max_port: int
) -> None:
    fw = _f_width(tree_size)
    pw = max(1, max_port.bit_length())
    w.write_uint(record.f, fw)
    w.write_uint(record.finish, fw)
    w.write_uint(record.heavy_finish, fw)
    w.write_uint(record.parent_port, pw)
    w.write_uint(record.heavy_port, pw)
    w.write_uint(record.light_depth, fw)


def decode_record(
    r: BitReader, tree_size: int, max_port: int
) -> TreeLocalRecord:
    fw = _f_width(tree_size)
    pw = max(1, max_port.bit_length())
    return TreeLocalRecord(
        f=r.read_uint(fw),
        finish=r.read_uint(fw),
        heavy_finish=r.read_uint(fw),
        parent_port=r.read_uint(pw),
        heavy_port=r.read_uint(pw),
        light_depth=r.read_uint(fw),
    )


def encode_table(
    table: VertexTable,
    n: int,
    tree_sizes: Dict[int, int],
    own_tree_size: int,
    max_port: int,
) -> BitWriter:
    """Serialize one vertex table (see module docstring for layout)."""
    idw = _id_width(n)
    w = BitWriter()
    w.write_delta0(len(table.trees))
    for tree_id in sorted(table.trees):
        w.write_uint(tree_id, idw)
        encode_record(w, table.trees[tree_id], tree_sizes[tree_id], max_port)
        w.extend(
            encode_tree_label(table.own_labels[tree_id], tree_sizes[tree_id])
        )
    w.write_delta0(len(table.members))
    for v in sorted(table.members):
        w.write_uint(v, idw)
        w.extend(encode_tree_label(table.members[v], own_tree_size))
    for p in table.pivots:
        w.write_uint(p, idw)
    return w


def decode_table(
    reader: BitReader,
    u: int,
    n: int,
    k: int,
    tree_sizes: Dict[int, int],
    own_tree_size: int,
    max_port: int,
) -> VertexTable:
    """Inverse of :func:`encode_table` under the same shared context."""
    idw = _id_width(n)
    trees: Dict[int, TreeLocalRecord] = {}
    own_labels: Dict[int, TreeLabel] = {}
    count = reader.read_delta0()
    for _ in range(count):
        tree_id = reader.read_uint(idw)
        if tree_id not in tree_sizes:
            raise EncodingError(f"serialized table references unknown tree {tree_id}")
        trees[tree_id] = decode_record(reader, tree_sizes[tree_id], max_port)
        own_labels[tree_id] = decode_tree_label(reader, tree_sizes[tree_id])
    members: Dict[int, TreeLabel] = {}
    count = reader.read_delta0()
    for _ in range(count):
        v = reader.read_uint(idw)
        members[v] = decode_tree_label(reader, own_tree_size)
    pivots = tuple(reader.read_uint(idw) for _ in range(max(0, k - 1)))
    return VertexTable(
        u=u, trees=trees, own_labels=own_labels, members=members, pivots=pivots
    )


def table_prefix_overhead(table: VertexTable) -> int:
    """Bits the stream spends on the two length prefixes — the only
    difference between the stream length and ``VertexTable.size_bits``."""
    return delta_cost(len(table.trees) + 1) + delta_cost(len(table.members) + 1)


def serialize_scheme(scheme) -> Dict[int, bytes]:
    """Serialize every vertex table of a compiled TZ scheme to bytes."""
    degs = scheme.graph.degrees()
    max_port = int(degs.max()) if degs.size else 1
    out: Dict[int, bytes] = {}
    for u in range(scheme.n):
        w = encode_table(
            scheme.tables[u],
            scheme.n,
            scheme.tree_sizes,
            scheme.tree_sizes[u],
            max_port,
        )
        out[u] = w.getvalue()
    return out


def deserialize_scheme_tables(
    blobs: Dict[int, bytes],
    scheme,
) -> Dict[int, VertexTable]:
    """Decode serialized tables back, given the scheme's shared context
    (used by tests to prove the byte streams are complete)."""
    degs = scheme.graph.degrees()
    max_port = int(degs.max()) if degs.size else 1
    out: Dict[int, VertexTable] = {}
    for u, blob in blobs.items():
        out[u] = decode_table(
            BitReader(blob),
            u,
            scheme.n,
            scheme.k,
            scheme.tree_sizes,
            scheme.tree_sizes[u],
            max_port,
        )
    return out
