"""The runtime interface every routing scheme implements.

A scheme is *compiled* (preprocessing) into per-vertex tables plus
per-vertex labels; at runtime the network simulator drives it through
exactly two entry points:

* :meth:`RoutingScheme.initial_header` — executed at the source, builds
  the message header from the destination's label (and, for handshaking
  schemes, the handshake exchange);
* :meth:`RoutingScheme.decide` — executed at *every* vertex the message
  visits, maps ``(current vertex, header)`` to an output port (or ``None``
  on arrival) and may rewrite the header.

This mirrors the paper's model: forwarding decisions see only the local
table and the O(polylog)-bit header, never the global graph.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, replace
from typing import Optional, Tuple

from ..trees.label_codec import TreeLabel


@dataclass(frozen=True)
class RouteHeader:
    """Message header carried hop to hop.

    ``tree == -1`` means the source has not yet committed to a tree (the
    very first :meth:`RoutingScheme.decide` call resolves it); afterwards
    the header pins the tree root and the destination's label inside that
    tree, and intermediate vertices do pure tree routing.
    """

    dest: int
    tree: int = -1
    tree_label: Optional[TreeLabel] = None

    def with_tree(self, tree: int, tree_label: TreeLabel) -> "RouteHeader":
        return replace(self, tree=tree, tree_label=tree_label)


class RoutingScheme(ABC):
    """Abstract compiled routing scheme (see module docstring)."""

    #: Human-readable name used in experiment tables.
    name: str = "abstract"

    @abstractmethod
    def initial_header(self, source: int, dest: int) -> RouteHeader:
        """Header the source attaches to a fresh message."""

    @abstractmethod
    def decide(
        self, u: int, header: RouteHeader
    ) -> Tuple[Optional[int], RouteHeader]:
        """Forwarding decision at ``u``: ``(port, new_header)``; ``port``
        is ``None`` exactly when ``u`` is the destination."""

    @abstractmethod
    def table_bits(self, u: int) -> int:
        """Measured size in bits of ``u``'s routing table."""

    @abstractmethod
    def label_bits(self, v: int) -> int:
        """Measured size in bits of ``v``'s routing label."""

    def header_bits(self, header: RouteHeader) -> int:
        """Measured header size; default counts the two vertex ids."""
        return 2 * self._id_bits()

    @abstractmethod
    def stretch_bound(self) -> float:
        """The scheme's proven worst-case stretch."""

    def compile_batch(self, ported=None):
        """Dense-array export for the batch engine, or ``None``.

        Schemes whose runtime state is table/label-shaped (the TZ
        family) return a :class:`repro.sim.engine.compile.CompiledScheme`
        here; the default ``None`` marks a scheme the engine cannot
        route (the simulator then falls back to hop-by-hop forwarding).
        """
        return None

    # -- helpers -------------------------------------------------------
    def _id_bits(self) -> int:
        n = getattr(self, "n", None)
        if n is None:
            return 64
        return (max(int(n) - 1, 0)).bit_length()

    def max_table_bits(self) -> int:
        return max(self.table_bits(u) for u in range(int(getattr(self, "n"))))

    def avg_table_bits(self) -> float:
        n = int(getattr(self, "n"))
        return sum(self.table_bits(u) for u in range(n)) / max(1, n)

    def total_table_bits(self) -> int:
        return sum(self.table_bits(u) for u in range(int(getattr(self, "n"))))

    def max_label_bits(self) -> int:
        return max(self.label_bits(v) for v in range(int(getattr(self, "n"))))
