"""The stretch-3 scheme of TZ SPAA'01 §3 (the headline result).

This is the ``k = 2`` instance of the general scheme with one crucial
refinement: the landmark set ``A`` is *not* a plain Bernoulli sample but
the output of the ``center`` algorithm (Theorem 3.1), which guarantees
``|C(w)| ≤ 4n/s`` for every ``w ∉ A`` deterministically (not just in
expectation).  With ``s = sqrt(n)`` this yields:

* tables of ``Õ(sqrt(n))`` bits per vertex — experiment F4 measures the
  scaling;
* labels and headers of ``o(log² n)`` bits;
* worst-case stretch exactly **3**: either the destination lies in the
  source's cluster (routed along an exact shortest path), or its nearest
  landmark ``a_v`` satisfies ``d(v, a_v) ≤ d(u, v)`` and the route
  through ``T_{a_v}`` costs at most
  ``d(u, a_v) + d(a_v, v) ≤ d(u,v) + 2·d(v, a_v) ≤ 3·d(u,v)``.

The paper notes stretch 3 is optimal for any scheme with ``o(n)``-bit
tables (see :mod:`repro.analysis.bounds`).
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..graphs.graph import Graph
from ..graphs.ports import PortedGraph
from ..rng import RngLike, make_rng
from .landmarks import center
from .scheme_k import TZRoutingScheme, build_tz_scheme


def default_s(n: int) -> float:
    """The balanced choice ``s = sqrt(n)``: both ``|A| ≈ s·log n`` (hence
    ``|trees|`` entries) and ``|C(u)| ≤ 4n/s`` scale as ``Õ(sqrt n)``."""
    return math.sqrt(max(1, n))


def build_stretch3_scheme(
    graph: Graph,
    ported: Optional[PortedGraph] = None,
    *,
    s: Optional[float] = None,
    rng: RngLike = None,
    landmark_method: str = "center",
    cluster_method: str = "auto",
    builder: str = "reference",
    precompile_engine: bool = False,
) -> TZRoutingScheme:
    """Compile the §3 stretch-3 scheme.

    ``landmark_method``:

    * ``"center"`` — Theorem 3.1 selection (default; hard cluster cap).
    * ``"bernoulli"`` — plain rate-``s/n`` sampling, for the A1 ablation.

    ``builder="vectorized"`` constructs clusters/trees/labels through the
    array pipeline of :mod:`repro.core.build` (bit-identical output).

    ``precompile_engine`` eagerly builds the batch engine's dense-array
    export (:meth:`~repro.core.scheme_k.TZRoutingScheme.compile_batch`)
    so the first traffic matrix served pays no compile latency —
    otherwise the export is built lazily on first batch route.

    Returns a :class:`~repro.core.scheme_k.TZRoutingScheme` with
    ``k = 2`` whose ``stretch_bound()`` is 3.
    """
    gen = make_rng(rng)
    n = graph.n
    s_val = default_s(n) if s is None else float(s)
    if landmark_method == "center":
        A = center(graph, s_val, gen)
    elif landmark_method == "bernoulli":
        p = min(1.0, s_val / max(1, n))
        A = np.flatnonzero(gen.random(n) < p)
        if A.size == 0:
            A = np.array([int(gen.integers(0, n))], dtype=np.int64)
    else:
        raise ValueError(f"unknown landmark method {landmark_method!r}")
    levels = [np.arange(n, dtype=np.int64), np.asarray(A, dtype=np.int64)]
    scheme = build_tz_scheme(
        graph,
        ported,
        levels=levels,
        rng=gen,
        cluster_method=cluster_method,
        builder=builder,
    )
    scheme.name = "tz-stretch3"
    if precompile_engine:
        scheme.compile_batch()
    return scheme
