"""The columnar form of a fully-built TZ scheme, shared by both builders.

:class:`SchemeArrays` is the common output format of the reference
(per-node) and vectorized builders: one flat **entry** per
``(cluster center w, member v)`` pair, sorted by ``w * n + v``, carrying
the in-cluster distance, the SPT parent, the §2 tree-record fields and
the light-port sequence.  See :mod:`repro.core.build` for the full
layout.  Because both builders emit the same format, the differential
suite (``tests/test_builder_equivalence.py``) can compare them
field-by-field with ``np.array_equal`` — bit-identical or it fails.

:func:`assemble_arrays` derives the *shared* structures (entry keys,
parent/heavy entry links, level-0 member maps, label entry positions,
the bunch CSR) from the builder-specific core fields, so a disagreement
between builders can only originate in what they actually compute
independently: membership, distances, parents, tree records and light
ports.

:func:`scheme_from_arrays` materializes the dict-based
:class:`~repro.core.scheme_k.TZRoutingScheme` the hop-by-hop simulator
routes on — the compatibility bridge between the array world and the
object world.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from ...errors import PreprocessingError
from ...graphs.graph import Graph
from ...graphs.ports import PortedGraph
from ...trees.label_codec import TreeLabel, tree_label_bits_array
from ...trees.tz_tree import TreeLocalRecord
from ..labels import LabelEntry, TZLabel
from ..landmarks import Hierarchy
from ..tables import VertexTable


def port_lookup(ported: PortedGraph) -> Callable[[np.ndarray, np.ndarray], np.ndarray]:
    """Vectorized ``port(u, v)``: the port at ``u`` of the edge to ``v``.

    Adjacency rows are sorted, so ``u * n + adj`` is one globally sorted
    key array and every lookup is a batched ``searchsorted``.  Callers
    must only ask about existing edges (tree edges always are).
    """
    g = ported.graph
    n = np.int64(g.n)
    arc_keys = np.repeat(np.arange(g.n, dtype=np.int64), np.diff(g.indptr)) * n + g.adj
    port_of_arc = ported.port_of_arc

    def port(u: np.ndarray, v: np.ndarray) -> np.ndarray:
        pos = np.searchsorted(arc_keys, u.astype(np.int64) * n + v)
        return port_of_arc[pos]

    return port


def _locate(entry_keys: np.ndarray, keys: np.ndarray, what: str) -> np.ndarray:
    """Positions of ``keys`` in the sorted ``entry_keys``; every key must
    exist (raises :class:`PreprocessingError` otherwise)."""
    if entry_keys.size == 0:
        if keys.size:
            raise PreprocessingError(f"no entries to locate {what} in")
        return np.zeros(0, dtype=np.int64)
    pos = np.minimum(np.searchsorted(entry_keys, keys), entry_keys.size - 1)
    if not np.all(entry_keys[pos] == keys):
        raise PreprocessingError(f"{what} is not a cluster entry (scheme invariant violated)")
    return pos


@dataclass
class SchemeArrays:
    """A complete TZ scheme as flat arrays (see module/package docstring).

    ``E`` is the total entry count ``Σ_w |C(w)|``; entry order is
    ``(center, member)`` lexicographic, i.e. sorted ``entry_keys``.
    """

    n: int
    k: int
    hierarchy: Hierarchy
    # -- cluster CSR: one cluster per vertex, at its top level ----------
    cl_indptr: np.ndarray  # (n+1,) entries of center w: [cl_indptr[w], cl_indptr[w+1])
    entry_keys: np.ndarray  # (E,) sorted: center * n + member
    ent_center: np.ndarray  # (E,)
    ent_member: np.ndarray  # (E,)
    ent_dist: np.ndarray  # (E,) exact d(center, member)
    ent_parent: np.ndarray  # (E,) SPT parent vertex id, -1 at the center
    ent_parent_epos: np.ndarray  # (E,) entry index of the parent, -1 at the center
    ent_heavy_epos: np.ndarray  # (E,) entry index of the heavy child, -1 at leaves
    # -- §2 tree records per entry --------------------------------------
    tr_f: np.ndarray  # (E,) heavy-first DFS number
    tr_finish: np.ndarray  # (E,) end of the member's DFS interval
    tr_heavy_finish: np.ndarray  # (E,) end of the heavy child's interval (= f at leaves)
    tr_light_depth: np.ndarray  # (E,) light edges on the root path
    tr_parent_port: np.ndarray  # (E,) port toward the parent (0 at the root)
    tr_heavy_port: np.ndarray  # (E,) port toward the heavy child (0 at leaves)
    # -- light-port sequences (the member as a destination) -------------
    lp_indptr: np.ndarray  # (E+1,)
    lp_data: np.ndarray  # (L,) root-to-leaf light-edge ports
    # -- source-side level-0 member maps --------------------------------
    mem_keys: np.ndarray  # (M,) sorted subset of entry_keys
    mem_epos: np.ndarray  # (M,) entry index of each member-map pair
    # -- label entry positions: row 0 = (v, v), row i = (p_i(v), v) ------
    lab_epos: np.ndarray  # (k, n)
    # -- bunches: the transpose of the cluster CSR ----------------------
    bunch_indptr: np.ndarray  # (n+1,) bunch of v: [bunch_indptr[v], bunch_indptr[v+1])
    bunch_centers: np.ndarray  # (E,) centers w with v ∈ C(w)
    bunch_dist: np.ndarray  # (E,) d(w, v)
    bunch_epos: np.ndarray  # (E,) entry index of the (w, v) pair

    @property
    def entry_count(self) -> int:
        return int(self.entry_keys.shape[0])

    def tree_sizes(self) -> np.ndarray:
        """``|C(w)|`` per center, ``(n,)``."""
        return np.diff(self.cl_indptr)

    def bunch_sizes(self) -> np.ndarray:
        """``|B(v)|`` per vertex, ``(n,)``."""
        return np.diff(self.bunch_indptr)

    def entry_label_bits(self) -> np.ndarray:
        """Encoded tree-label bits of every entry-as-destination, ``(E,)``.

        Cached: the builder, the engine compile and the size accounting
        all need this column, and at scale it dominates their shared
        cost (arrays are append-only once assembled, so the cache is
        safe).
        """
        cached = getattr(self, "_entry_label_bits", None)
        if cached is not None:
            return cached
        sizes = self.tree_sizes()[self.ent_center]
        # frexp exponent == bit_length; sizes - 1 == 0 -> 0-bit DFS field
        # (single-vertex trees), matching label_codec._f_width.
        f_width = np.frexp((sizes - 1).astype(np.float64))[1].astype(np.int64)
        elb = tree_label_bits_array(f_width, self.lp_indptr, self.lp_data)
        self._entry_label_bits = elb
        return elb

    def table_bits(self, max_port: int) -> np.ndarray:
        """Per-vertex measured table bits, ``(n,)`` — the vectorized
        counterpart of :meth:`repro.core.tables.VertexTable.size_bits`.

        A vertex ``u`` pays, per tree it participates in (its bunch, read
        off the entry columns), one id, the fixed-width §2 record (four
        DFS fields at the tree's width, two ports at the graph's port
        width) and its own encoded tree label; per level-0 member, one id
        plus the member's label; plus ``k−1`` pivot ids.  Bit-identical
        to the dict-world sum (the backend contract suite enforces it).
        """
        id_bits = (max(self.n - 1, 0)).bit_length()
        pw = max(1, int(max_port).bit_length())
        sizes = self.tree_sizes()
        f_width = np.frexp((sizes - 1).astype(np.float64))[1].astype(np.int64)
        elb = self.entry_label_bits()
        per_entry = id_bits + 4 * f_width[self.ent_center] + 2 * pw + elb
        # Weighted bincount is exact here: every sum stays far below 2^53.
        bits = np.bincount(
            self.ent_member, weights=per_entry.astype(np.float64), minlength=self.n
        ).astype(np.int64)
        mem = self.mem_epos
        bits += np.bincount(
            self.ent_center[mem],
            weights=(id_bits + elb[mem]).astype(np.float64),
            minlength=self.n,
        ).astype(np.int64)
        bits += (self.k - 1) * id_bits
        return bits

    def label_bits(self) -> np.ndarray:
        """Per-vertex encoded TZ-label bits, ``(n,)`` — the vectorized
        counterpart of :func:`repro.core.labels.label_size_bits`."""
        id_bits = (max(self.n - 1, 0)).bit_length()
        elb = self.entry_label_bits()
        bits = np.full(self.n, id_bits, dtype=np.int64)
        pivot = self.hierarchy.pivot
        for i in range(1, self.k):
            bits += 1  # repeat flag
            fresh = np.ones(self.n, dtype=bool) if i == 1 else pivot[i] != pivot[i - 1]
            bits[fresh] += id_bits + elb[self.lab_epos[i][fresh]]
        return bits

    def validate(self) -> None:
        """Structural invariants both builders must satisfy; raises
        :class:`PreprocessingError` on violation.  Used by property tests."""
        centers = self.ent_parent < 0
        if not np.array_equal(self.ent_member[centers], self.ent_center[centers]):
            raise PreprocessingError("only cluster centers may lack an SPT parent")
        if np.any(self.ent_dist[centers] != 0.0):
            raise PreprocessingError("center distance must be 0")
        rest = ~centers
        # Subpath closure: parents are members (guaranteed found by
        # construction) with strictly smaller distance.
        if np.any(self.ent_dist[self.ent_parent_epos[rest]] >= self.ent_dist[rest]):
            raise PreprocessingError("distances not strictly increasing along SPT edges")
        sizes = self.tree_sizes()
        if np.any(self.tr_finish - self.tr_f + 1 > sizes[self.ent_center]):
            raise PreprocessingError("DFS interval exceeds its tree")
        if np.any(np.diff(self.lp_indptr) != self.tr_light_depth):
            raise PreprocessingError("light-port sequence length != light depth")


def assemble_arrays(
    graph: Graph,
    ported: PortedGraph,
    hierarchy: Hierarchy,
    *,
    cl_indptr: np.ndarray,
    ent_member: np.ndarray,
    ent_dist: np.ndarray,
    ent_parent: np.ndarray,
    heavy_vertex: Optional[np.ndarray] = None,
    tr_f: np.ndarray,
    tr_finish: np.ndarray,
    tr_heavy_finish: np.ndarray,
    tr_light_depth: np.ndarray,
    tr_parent_port: np.ndarray,
    tr_heavy_port: np.ndarray,
    lp_indptr: np.ndarray,
    lp_data: np.ndarray,
    ent_parent_epos: Optional[np.ndarray] = None,
    ent_heavy_epos: Optional[np.ndarray] = None,
    bunch_order: Optional[np.ndarray] = None,
) -> SchemeArrays:
    """Derive the shared structures from builder-specific core fields.

    ``heavy_vertex[e]`` is the heavy child's *vertex id* (-1 at leaves);
    parents/heavy children are resolved back to entry positions here
    (builders that already hold the entry links pass them through — when
    ``ent_heavy_epos`` is supplied ``heavy_vertex`` may be omitted), and
    the member maps, label positions and bunch CSR are computed the same
    way for both builders (so they cannot mask a core-field mismatch).
    ``bunch_order`` optionally supplies the CSR→CSC permutation when the
    caller already holds it (the patch fast path passes the previous
    scheme's ``bunch_epos`` when cluster membership is unchanged); it is
    trusted, so only pass a permutation known to match ``(cl_indptr,
    ent_member)``.
    """
    n = graph.n
    k = hierarchy.k
    ent_center = np.repeat(np.arange(n, dtype=np.int64), np.diff(cl_indptr))
    entry_keys = ent_center * np.int64(n) + ent_member
    E = entry_keys.shape[0]

    if ent_parent_epos is not None:
        ent_parent_epos = np.ascontiguousarray(ent_parent_epos, dtype=np.int64)
    else:
        ent_parent_epos = np.full(E, -1, dtype=np.int64)
        hasp = ent_parent >= 0
        ent_parent_epos[hasp] = _locate(
            entry_keys,
            ent_center[hasp] * np.int64(n) + ent_parent[hasp],
            "an SPT parent",
        )
    if ent_heavy_epos is not None:
        ent_heavy_epos = np.ascontiguousarray(ent_heavy_epos, dtype=np.int64)
    else:
        if heavy_vertex is None:
            raise PreprocessingError(
                "assemble_arrays needs heavy_vertex when ent_heavy_epos is absent"
            )
        ent_heavy_epos = np.full(E, -1, dtype=np.int64)
        hash_ = heavy_vertex >= 0
        ent_heavy_epos[hash_] = _locate(
            entry_keys,
            ent_center[hash_] * np.int64(n) + heavy_vertex[hash_],
            "a heavy child",
        )

    # Level-0 member maps: the source-side "is v in my cluster?" check is
    # deliberately restricted to d(u, v) < d(A_1, v) — see core.tables.
    d1 = hierarchy.dist[1] if k >= 2 else np.full(n, np.inf)
    mem_mask = (ent_member == ent_center) | (ent_dist < d1[ent_member])
    mem_epos = np.flatnonzero(mem_mask)
    mem_keys = entry_keys[mem_epos]

    verts = np.arange(n, dtype=np.int64)
    lab_epos = np.empty((k, n), dtype=np.int64)
    lab_epos[0] = _locate(entry_keys, verts * np.int64(n) + verts, "a vertex's own cluster root")
    for i in range(1, k):
        w = hierarchy.pivot[i]
        try:
            lab_epos[i] = _locate(entry_keys, w * np.int64(n) + verts, f"a level-{i} pivot entry")
        except PreprocessingError as exc:
            raise PreprocessingError(
                f"some vertex is not in the cluster of its level-{i} pivot: "
                "pivots are inconsistent (see DESIGN.md §3)"
            ) from exc

    # Bunches are the transpose of the cluster CSR; scipy's C-level
    # CSR→CSC conversion computes the permutation (centers come out
    # ascending within each member, preserving the entry tie-break).
    from scipy.sparse import csr_matrix

    if bunch_order is not None:
        order = np.ascontiguousarray(bunch_order, dtype=np.int64)
    elif E:
        # 1-based payload so no entry is an explicit zero scipy could drop.
        order = (
            csr_matrix(
                (np.arange(1, E + 1, dtype=np.int64), ent_member, cl_indptr),
                shape=(n, n),
            )
            .tocsc()
            .data
            - 1
        )
    else:
        order = np.zeros(0, dtype=np.int64)
    bunch_indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(ent_member, minlength=n), out=bunch_indptr[1:])

    return SchemeArrays(
        n=n,
        k=k,
        hierarchy=hierarchy,
        cl_indptr=np.ascontiguousarray(cl_indptr, dtype=np.int64),
        entry_keys=entry_keys,
        ent_center=ent_center,
        ent_member=np.ascontiguousarray(ent_member, dtype=np.int64),
        ent_dist=np.ascontiguousarray(ent_dist, dtype=np.float64),
        ent_parent=np.ascontiguousarray(ent_parent, dtype=np.int64),
        ent_parent_epos=ent_parent_epos,
        ent_heavy_epos=ent_heavy_epos,
        tr_f=np.ascontiguousarray(tr_f, dtype=np.int64),
        tr_finish=np.ascontiguousarray(tr_finish, dtype=np.int64),
        tr_heavy_finish=np.ascontiguousarray(tr_heavy_finish, dtype=np.int64),
        tr_light_depth=np.ascontiguousarray(tr_light_depth, dtype=np.int64),
        tr_parent_port=np.ascontiguousarray(tr_parent_port, dtype=np.int64),
        tr_heavy_port=np.ascontiguousarray(tr_heavy_port, dtype=np.int64),
        lp_indptr=np.ascontiguousarray(lp_indptr, dtype=np.int64),
        lp_data=np.ascontiguousarray(lp_data, dtype=np.int64),
        mem_keys=mem_keys,
        mem_epos=mem_epos,
        lab_epos=lab_epos,
        bunch_indptr=bunch_indptr,
        bunch_centers=ent_center[order],
        bunch_dist=ent_dist[order],
        bunch_epos=order,
    )


def scheme_from_arrays(graph: Graph, ported: PortedGraph, arrays: SchemeArrays):
    """Materialize the dict-based :class:`TZRoutingScheme` from arrays.

    Produces exactly what :func:`repro.core.scheme_k.build_tz_scheme`
    builds per-node (the differential suite asserts this): same records,
    tree labels, member maps, pivots and destination labels.
    """
    from ..scheme_k import TZRoutingScheme

    n, k = arrays.n, arrays.k
    hierarchy = arrays.hierarchy
    sizes = arrays.tree_sizes()
    center_l = arrays.ent_center.tolist()
    member_l = arrays.ent_member.tolist()
    f_l = arrays.tr_f.tolist()
    fin_l = arrays.tr_finish.tolist()
    hfin_l = arrays.tr_heavy_finish.tolist()
    ld_l = arrays.tr_light_depth.tolist()
    pport_l = arrays.tr_parent_port.tolist()
    hport_l = arrays.tr_heavy_port.tolist()
    lp_ptr = arrays.lp_indptr.tolist()
    lp = arrays.lp_data.tolist()

    tables: Dict[int, VertexTable] = {
        u: VertexTable(u=u, trees={}, own_labels={}, members={}, pivots=tuple())
        for u in range(n)
    }
    tree_labels: Dict[int, Dict[int, TreeLabel]] = {w: {} for w in range(n)}
    tree_sizes = {w: int(sizes[w]) for w in range(n)}
    entry_label: List[TreeLabel] = []
    for e in range(arrays.entry_count):
        w, v = center_l[e], member_l[e]
        record = TreeLocalRecord(
            f=f_l[e],
            finish=fin_l[e],
            parent_port=pport_l[e],
            heavy_port=hport_l[e],
            heavy_finish=hfin_l[e],
            light_depth=ld_l[e],
        )
        mu = TreeLabel(f_l[e], tuple(lp[lp_ptr[e] : lp_ptr[e + 1]]))
        entry_label.append(mu)
        tables[v].trees[w] = record
        tables[v].own_labels[w] = mu
        tree_labels[w][v] = mu
    for e in arrays.mem_epos.tolist():
        tables[center_l[e]].members[member_l[e]] = entry_label[e]

    pivot_rows = [hierarchy.pivot[i].tolist() for i in range(k)]
    lab_rows = [arrays.lab_epos[i].tolist() for i in range(k)]
    labels: Dict[int, TZLabel] = {}
    for v in range(n):
        tables[v].pivots = tuple(pivot_rows[i][v] for i in range(1, k))
        entries = tuple(
            LabelEntry(pivot_rows[i][v], entry_label[lab_rows[i][v]]) for i in range(1, k)
        )
        labels[v] = TZLabel(v, entries)

    return TZRoutingScheme(graph, ported, hierarchy, tables, labels, tree_sizes, tree_labels)
