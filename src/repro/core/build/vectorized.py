"""The vectorized scheme builder: construction as array programs.

Every stage of TZ preprocessing is re-expressed over flat arrays, with
the per-vertex Python loops of the reference path replaced by batched
numpy/scipy sweeps:

1. **Clusters** ``C(w) = {v : d(w, v) < d(A_{i+1}, v)}`` per hierarchy
   level, one of two engines per level:

   * *full* — chunked batched single-source Dijkstra over the level's
     centers (one C-level scipy call per chunk), membership by a
     row-wise threshold comparison.  Used when clusters span most of the
     graph (the top level's thresholds are all ``inf``) or the level has
     few centers.
   * *pruned* — a thresholded batched label-correcting Dijkstra over
     **all centers of the level at once**: the state is a sparse sorted
     array of ``(center, vertex)`` pairs, each round relaxes the whole
     frontier through its out-arcs as one array step and prunes any pair
     whose tentative distance reaches ``d(A_{i+1}, v)``.  Subpath
     closure (strict thresholds) makes pruning safe: every prefix of a
     shortest path to a member is itself a member, so the true distance
     always survives.  Work is proportional to the total cluster volume
     ``Σ|C(w)|``, not ``|centers| · n``.

2. **SPT parents** by one tight-arc sweep: the reference truncated
   Dijkstra relaxes ties toward the smaller vertex id, which makes its
   parent of ``v`` exactly ``min{u member : d(w,u) + wt(u,v) = d(w,v)}``
   — a vectorized segmented minimum.

3. **Heavy-light trees** for all clusters at once: depths by pointer
   doubling, subtree sizes by depth-bucketed scatter-adds, children
   ordered by one global ``(parent, -size, id)`` lexsort, DFS numbers and
   light depths as root-path prefix sums (pointer doubling again), and
   light-port sequences filled level-by-level with a forward-fill over
   the DFS order.

All tie-breaks replicate the per-node reference bit-for-bit, which is
what ``tests/test_builder_equivalence.py`` enforces.  The determinism
contract matches :class:`repro.graphs.csr.CSRKernel`: for float64-exact
(integer-valued) edge weights the output is identical to the reference;
otherwise construction transparently falls back to the reference path.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from scipy.sparse.csgraph import dijkstra as _scipy_dijkstra

from ...errors import PreprocessingError
from ...graphs.graph import Graph
from ...graphs.ports import PortedGraph
from ...kernels import note_weight_fallback, resolve_kernel
from ...kernels.frontier import frontier_sweep_native
from ...obs import TELEMETRY
from ..landmarks import Hierarchy
from .arrays import SchemeArrays, assemble_arrays
from .reference import reference_arrays

#: Levels with at most this many centers use the *full* engine even when
#: their thresholds are finite (a handful of C-level Dijkstra rows beats
#: setting up the frontier machinery).
FULL_CENTER_LIMIT = 32

#: Cap on materialized cells / arc expansions per chunk (memory bound).
CHUNK_CELLS = 1 << 22


def _is_float64_exact(graph: Graph) -> bool:
    """True when all path sums are exact in float64: integer-valued
    weights whose longest possible path stays below 2^52."""
    w = graph.adj_weights
    if w.size == 0:
        return True
    if not np.all(w == np.floor(w)):
        return False
    return float(w.max()) * max(graph.n, 1) < 2.0**52


def _expand(
    graph: Graph, u: np.ndarray, dist_u: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Relax every out-arc of ``u[i]`` in one array step.

    Returns ``(rep, v, nd)``: source row index, arc head, tentative
    distance ``dist_u[rep] + wt``.
    """
    indptr, adj, wts = graph.indptr, graph.adj, graph.adj_weights
    cnt = indptr[u + 1] - indptr[u]
    total = int(cnt.sum())
    if total == 0:
        return (
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
            np.zeros(0),
        )
    # Row indices and arc offsets both fit 32 bits (bounded by the chunk
    # expansion and the arc count); the narrower temporaries halve the
    # memory traffic of the hottest arrays in the builder.
    idx = np.int32 if total < 2**31 - 1 and adj.shape[0] < 2**31 - 1 else np.int64
    rep = np.repeat(np.arange(u.shape[0], dtype=idx), cnt)
    ex = np.concatenate(([0], np.cumsum(cnt)[:-1]))
    arc = np.repeat((indptr[u] - ex).astype(idx), cnt) + np.arange(total, dtype=idx)
    return rep, adj[arc], dist_u[rep] + wts[arc]


def _full_level(
    graph: Graph, centers: np.ndarray, thr: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Cluster membership from chunked batched full-graph Dijkstra rows."""
    n = graph.n
    rows = max(1, min(centers.shape[0], CHUNK_CELLS // max(n, 1)))
    mat = graph.csr().matrix()
    unbounded = bool(np.all(np.isinf(thr)))
    key_parts, dist_parts = [], []
    for s in range(0, centers.shape[0], rows):
        chunk = centers[s : s + rows]
        dist = np.atleast_2d(_scipy_dijkstra(mat, directed=False, indices=chunk))
        if unbounded and bool(np.all(np.isfinite(dist))):
            # Reachable everywhere with infinite thresholds: every
            # cluster is full and contiguous — no mask to materialize.
            verts = np.arange(n, dtype=np.int64)
            key_parts.append((chunk[:, None] * np.int64(n) + verts[None, :]).ravel())
            dist_parts.append(dist.ravel())
            continue
        mask = dist < thr[None, :]
        mask[np.arange(chunk.shape[0]), chunk] = True  # w ∈ C(w) always
        r, v = np.nonzero(mask)
        key_parts.append(chunk[r] * np.int64(n) + v)
        dist_parts.append(dist[mask])
    return np.concatenate(key_parts), np.concatenate(dist_parts)


def _pruned_level(
    graph: Graph, centers: np.ndarray, thr: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Thresholded batched label-correcting Dijkstra over all centers.

    State: sorted ``(center, vertex)`` keys with the best tentative
    distance found so far; each round relaxes the improved frontier one
    arc further and prunes at the per-vertex threshold (strict ``<``).
    Converges once no pair improves — at most the maximum hop count of
    any surviving shortest path, each round a constant number of array
    operations.
    """
    n = np.int64(graph.n)
    best_keys = centers.astype(np.int64) * n + centers
    best_dist = np.zeros(centers.shape[0])
    frontier_keys = best_keys
    frontier_dist = best_dist
    rounds = relaxed = 0
    try:
        for _round in range(graph.n + 2):
            if frontier_keys.shape[0] == 0:
                return best_keys, best_dist
            rounds += 1
            u = frontier_keys % n
            base = frontier_keys - u  # center * n
            rep, v, nd = _expand(graph, u, frontier_dist)
            relaxed += rep.shape[0]
            ok = nd < thr[v]
            ck = base[rep[ok]] + v[ok]
            cd = nd[ok]
            if ck.shape[0] == 0:
                return best_keys, best_dist
            order = np.lexsort((cd, ck))  # min distance per candidate key
            ck, cd = ck[order], cd[order]
            keep = np.ones(ck.shape[0], dtype=bool)
            keep[1:] = ck[1:] != ck[:-1]
            ck, cd = ck[keep], cd[keep]
            pos = np.minimum(np.searchsorted(best_keys, ck), best_keys.shape[0] - 1)
            exists = best_keys[pos] == ck
            upd = exists.copy()
            upd[exists] = cd[exists] < best_dist[pos[exists]]
            best_dist[pos[upd]] = cd[upd]
            fresh = ~exists
            if fresh.any():
                # ck is sorted, so new keys splice in as one O(B + C) insert
                # (no re-sort of the whole state).
                at = np.searchsorted(best_keys, ck[fresh])
                best_keys = np.insert(best_keys, at, ck[fresh])
                best_dist = np.insert(best_dist, at, cd[fresh])
            live = upd | fresh
            frontier_keys, frontier_dist = ck[live], cd[live]
        raise PreprocessingError("thresholded batched Dijkstra did not converge")
    finally:
        tm = TELEMETRY
        if tm.enabled:
            tm.count("build.frontier_rounds", rounds)
            tm.count("build.relaxed_arcs", relaxed)


def _level_parents(graph: Graph, keys: np.ndarray, dist: np.ndarray) -> np.ndarray:
    """Minimum-id tight predecessor per entry — the reference tie-break.

    The truncated-Dijkstra reference settles every tight predecessor of
    ``v`` strictly before ``v`` and keeps the smallest relaxing id, so
    its SPT parent is ``min{u ∈ C(w) : d(w,u) + wt(u,v) = d(w,v)}``;
    tight arcs between members never leave the cluster (subpath
    closure), so scanning member out-arcs finds every candidate.

    Entry positions are resolved through a reusable ``(centers, n)``
    scratch table per chunk of centers (direct gathers instead of a
    log-E binary search per relaxed arc).
    """
    n = np.int64(graph.n)
    E = keys.shape[0]
    idx = np.int32 if E < 2**31 - 1 else np.int64
    parent = np.full(E, graph.n, dtype=np.int64)  # sentinel: no parent found
    center = keys // n
    member = keys - center * n
    ucen, ustart = np.unique(center, return_index=True)
    ustart = np.append(ustart, E)
    avg_deg = max(1, graph.adj.shape[0] // max(graph.n, 1))
    step = max(1, CHUNK_CELLS // (4 * avg_deg))
    if E == int(ucen.shape[0]) * graph.n:
        # Every cluster of this level is full (infinite thresholds): the
        # entry of (w, v) sits at block_start(w) + v — pure arithmetic,
        # no position table needed.
        for s in range(0, E, step):
            mem = member[s : s + step]
            block = np.arange(s, s + mem.shape[0], dtype=np.int64) - mem
            rep, v, nd = _expand(graph, mem, dist[s : s + step])
            if rep.shape[0] == 0:
                continue
            cand = block[rep] + v
            tight = dist[cand] == nd
            np.minimum.at(parent, cand[tight], mem[rep[tight]])
        parent[member == center] = -1
        if np.any(parent == graph.n):
            raise PreprocessingError(
                "vectorized cluster SPT has an orphan member: edge weights "
                "are not float64-exact (the builder should have fallen back)"
            )
        return parent
    rows = max(1, min(int(ucen.shape[0]), CHUNK_CELLS // max(graph.n, 1)))
    scratch = np.full((rows, graph.n), -1, dtype=idx)
    for c0 in range(0, ucen.shape[0], rows):
        c1 = min(c0 + rows, ucen.shape[0])
        lo, hi = int(ustart[c0]), int(ustart[c1])
        row = np.searchsorted(ucen[c0:c1], center[lo:hi]).astype(idx)
        mem = member[lo:hi]
        scratch[row, mem] = np.arange(lo, hi, dtype=idx)
        # The scratch must hold whole clusters (relaxed arcs can target
        # any member), but the expansion itself runs in bounded slices.
        for s in range(0, hi - lo, step):
            e = min(s + step, hi - lo)
            rep, v, nd = _expand(graph, mem[s:e], dist[lo + s : lo + e])
            if rep.shape[0] == 0:
                continue
            cand = scratch[row[s:e][rep], v]
            ok = cand >= 0
            cand = cand[ok]
            tight = dist[cand] == nd[ok]
            np.minimum.at(parent, cand[tight], mem[s:e][rep[ok]][tight])
        scratch[row, mem] = -1  # reset only the cells written
    parent[member == center] = -1
    if np.any(parent == graph.n):
        raise PreprocessingError(
            "vectorized cluster SPT has an orphan member: edge weights are "
            "not float64-exact (the builder should have fallen back)"
        )
    return parent


def _path_sums(gs, parent_epos: np.ndarray):
    """``out[v] = Σ g[x]`` over the root→``v`` entry path for each value
    array in ``gs``, by pointer doubling sharing one ancestor chase.

    After round ``t``, ``out[v]`` holds the sum over ``v`` and its first
    ``2^t − 1`` ancestors and ``j[v]`` points at the ``2^t``-th; each
    gather materializes its temporary before any write, so no snapshot
    copies are needed.  Value dtypes are preserved (the tree stage runs
    on int32).
    """
    outs = [np.ascontiguousarray(g).copy() for g in gs]
    j = parent_epos.copy()
    while True:
        sel = np.flatnonzero(j >= 0)
        if sel.shape[0] == 0:
            return outs
        anc = j[sel]
        for out in outs:
            out[sel] += out[anc]
        j[sel] = j[anc]


def _tree_arrays(
    graph: Graph,
    ported: PortedGraph,
    entry_keys: np.ndarray,
    ent_center: np.ndarray,
    ent_member: np.ndarray,
    ent_parent: np.ndarray,
    cl_indptr: np.ndarray,
) -> dict:
    """Heavy-light records and light-port sequences for all trees at once.

    Entry indices, DFS numbers and sizes all fit 32 bits at any scale a
    single node can hold, so the gather-heavy interior runs on int32
    (half the memory traffic); the output is widened by the caller.
    """
    n = np.int64(graph.n)
    E = entry_keys.shape[0]
    idx = np.int32 if E < 2**31 - 1 else np.int64
    parent_epos = np.full(E, -1, dtype=idx)
    hasp = ent_parent >= 0
    # Full clusters are contiguous with member[j] = j, so the parent's
    # entry is block_start + parent; only sparse clusters need a search.
    full = (np.diff(cl_indptr)[ent_center] == graph.n) & hasp
    parent_epos[full] = (cl_indptr[ent_center[full]] + ent_parent[full]).astype(idx)
    rest = hasp & ~full
    parent_epos[rest] = np.searchsorted(
        entry_keys, ent_center[rest] * n + ent_parent[rest]
    ).astype(idx)

    (depth,) = _path_sums([np.ones(E, dtype=idx) * hasp], parent_epos)
    size = np.ones(E, dtype=idx)
    if E:
        # Children finalize before parents: scatter-add one depth at a time.
        order = np.argsort(depth, kind="stable").astype(idx)
        counts = np.bincount(depth)
        bounds = np.concatenate(([0], np.cumsum(counts)))
        for d in range(counts.shape[0] - 1, 0, -1):
            sel = order[bounds[d] : bounds[d + 1]]
            np.add.at(size, parent_epos[sel], size[sel])

    # Children of every tree vertex, ordered by (-subtree size, id) — the
    # reference's heavy-first order.  One global lexsort covers all trees;
    # (-size, member) packs into one int64 key since size, member < n.
    ch = np.flatnonzero(hasp).astype(idx)
    size_member = (np.int64(graph.n) - size[ch]) * n + ent_member[ch]
    order = np.lexsort((size_member, parent_epos[ch]))
    ch = ch[order]
    par = parent_epos[ch]
    first = np.ones(ch.shape[0], dtype=bool)
    first[1:] = par[1:] != par[:-1]
    gidx = (np.cumsum(first) - 1).astype(idx)
    gstart = np.flatnonzero(first).astype(idx)
    rank = np.arange(ch.shape[0], dtype=idx) - gstart[gidx]
    # The global cumsum can exceed 32 bits; only within-group differences
    # (bounded by the parent's subtree size) feed the DFS offsets.
    csum = np.cumsum(size[ch], dtype=np.int64)
    ex = csum - size[ch]  # exclusive prefix of sibling sizes
    off = np.zeros(E, dtype=idx)
    off[ch] = (1 + ex - ex[gstart][gidx]).astype(idx)
    is_light = np.zeros(E, dtype=idx)
    is_light[ch] = rank > 0
    heavy_epos = np.full(E, -1, dtype=idx)
    heavy_epos[par[first]] = ch[first]

    dfs, light_depth = _path_sums([off, is_light], parent_epos)
    finish = dfs + size - 1
    heavy_finish = dfs.copy()
    hh = heavy_epos >= 0
    heavy_finish[hh] = finish[heavy_epos[hh]]

    # One arc search resolves every port: the arc of (parent → v) gives
    # the down-port, its reverse arc the parent-port, and the heavy port
    # of v is just the down-port of its heavy child's entry.
    arc_keys = (
        np.repeat(np.arange(graph.n, dtype=np.int64), np.diff(graph.indptr)) * n
        + graph.adj
    )
    rev_arc = np.searchsorted(arc_keys, graph.adj * n + arc_keys // n)
    down_arc = np.searchsorted(arc_keys, ent_parent[hasp] * n + ent_member[hasp])
    down_port = np.zeros(E, dtype=np.int64)  # port at the parent toward v
    down_port[hasp] = ported.port_of_arc[down_arc]
    parent_port = np.zeros(E, dtype=np.int64)
    parent_port[hasp] = ported.port_of_arc[rev_arc[down_arc]]
    heavy_port = np.zeros(E, dtype=np.int64)
    heavy_port[hh] = down_port[heavy_epos[hh]]

    # Light-port sequences: entry v's sequence holds, at slot j, the
    # down-port of its unique light ancestor edge at light level j+1.
    # Providers at one light level have disjoint DFS intervals, so in
    # (tree, dfs) order the nearest preceding provider is the ancestor —
    # one forward fill (maximum.accumulate) per light level.
    lp_indptr = np.zeros(E + 1, dtype=np.int64)
    np.cumsum(light_depth, out=lp_indptr[1:])
    lp_data = np.zeros(int(lp_indptr[-1]), dtype=np.int64)
    if lp_data.shape[0]:
        # dfs is a permutation within each cluster block, so (tree, dfs)
        # order is one scatter — no sort.
        od = np.empty(E, dtype=idx)
        od[cl_indptr[ent_center] + dfs] = np.arange(E, dtype=idx)
        od = od[light_depth[od] > 0]
        tree_od = ent_center[od]
        ld_od = light_depth[od]
        light_od = is_light[od].astype(bool)
        dp_od = down_port[od]
        tgt_od = lp_indptr[od]
        for j in range(int(light_depth.max())):
            # Entries whose sequences end before slot j are neither
            # providers nor receivers from here on: drop them, keeping
            # the relative (tree, dfs) order the forward fill needs.
            if j:
                keep = ld_od > j
                tree_od, ld_od, light_od = tree_od[keep], ld_od[keep], light_od[keep]
                dp_od, tgt_od = dp_od[keep], tgt_od[keep]
            positions = np.arange(tree_od.shape[0], dtype=idx)
            provider = light_od & (ld_od == j + 1)
            fill = np.maximum.accumulate(np.where(provider, positions, -1))
            src = fill
            if np.any(src < 0) or np.any(tree_od[src] != tree_od):
                raise PreprocessingError(
                    "light-port fill found no same-tree ancestor (builder bug)"
                )
            lp_data[tgt_od + j] = dp_od[src]

    return {
        "heavy_vertex": np.where(hh, ent_member[np.maximum(heavy_epos, 0)], -1),
        "ent_parent_epos": parent_epos,
        "ent_heavy_epos": heavy_epos,
        "tr_f": dfs,
        "tr_finish": finish,
        "tr_heavy_finish": heavy_finish,
        "tr_light_depth": light_depth,
        "tr_parent_port": parent_port,
        "tr_heavy_port": heavy_port,
        "lp_indptr": lp_indptr,
        "lp_data": lp_data,
    }


def vectorized_arrays(
    graph: Graph,
    ported: PortedGraph,
    hierarchy: Hierarchy,
    *,
    mode: str = "auto",
    kernel: str = "auto",
) -> SchemeArrays:
    """Construct the whole scheme as array programs (see module docstring).

    ``mode`` selects the per-level cluster engine: ``"auto"`` (default),
    ``"full"`` (always batched full-graph rows) or ``"pruned"`` (always
    the thresholded frontier sweep; the top level still uses ``full``
    since infinite thresholds never prune).

    ``kernel`` selects the frontier-sweep backend for pruned levels —
    ``"numpy"`` (the differential reference), ``"native"`` (the compiled
    C sweep) or ``"auto"`` (see :mod:`repro.kernels`); the resulting
    arrays are bit-for-bit identical either way.
    """
    if mode not in ("auto", "full", "pruned"):
        raise PreprocessingError(f"unknown vectorized builder mode {mode!r}")
    kernel = resolve_kernel(kernel)
    if not _is_float64_exact(graph):
        # Same determinism contract as CSRKernel.multi_source: when float
        # arithmetic cannot reproduce the reference bit-for-bit, run it —
        # loudly (counter + warning); this degradation used to be silent.
        note_weight_fallback()
        return reference_arrays(graph, ported, hierarchy)

    tm = TELEMETRY
    n = graph.n
    key_parts, dist_parts, parent_parts = [], [], []
    for i in range(hierarchy.k):
        lvl = hierarchy.levels[i]
        centers = np.asarray(lvl[hierarchy.level_of[lvl] == i], dtype=np.int64)
        if centers.shape[0] == 0:
            continue
        thr = hierarchy.dist[i + 1]
        unbounded = bool(np.all(np.isinf(thr)))
        use_full = mode == "full" or unbounded or (
            mode == "auto" and centers.shape[0] <= FULL_CENTER_LIMIT
        )
        engine = "full" if use_full else "pruned"
        with tm.span(
            "build.clusters", level=i, engine=engine, centers=int(centers.shape[0])
        ):
            if use_full:
                keys, dist = _full_level(graph, centers, thr)
            else:
                with tm.span(
                    "kernel.frontier_sweep",
                    impl=kernel,
                    level=i,
                    centers=int(centers.shape[0]),
                ):
                    keys, dist = (
                        frontier_sweep_native(graph, centers, thr)
                        if kernel == "native"
                        else _pruned_level(graph, centers, thr)
                    )
        tm.count("build.cluster_entries", int(keys.shape[0]))
        key_parts.append(keys)
        dist_parts.append(dist)
        with tm.span("build.parents", level=i):
            parent_parts.append(_level_parents(graph, keys, dist))

    keys = np.concatenate(key_parts) if key_parts else np.zeros(0, dtype=np.int64)
    dist = np.concatenate(dist_parts) if dist_parts else np.zeros(0)
    ent_parent = (
        np.concatenate(parent_parts) if parent_parts else np.zeros(0, dtype=np.int64)
    )
    order = np.argsort(keys, kind="stable")
    keys, dist, ent_parent = keys[order], dist[order], ent_parent[order]
    ent_center = keys // np.int64(n)
    ent_member = keys - ent_center * np.int64(n)
    cl_indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(ent_center, minlength=n), out=cl_indptr[1:])

    with tm.span("build.trees", entries=int(keys.shape[0])):
        tree = _tree_arrays(
            graph, ported, keys, ent_center, ent_member, ent_parent, cl_indptr
        )
    with tm.span("build.assemble"):
        return assemble_arrays(
            graph,
            ported,
            hierarchy,
            cl_indptr=cl_indptr,
            ent_member=ent_member,
            ent_dist=dist,
            ent_parent=ent_parent,
            **tree,
        )
