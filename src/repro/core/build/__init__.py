"""Scheme construction: the vectorized builder and its per-node reference.

Two interchangeable builders construct the Thorup–Zwick scheme:

* ``builder="reference"`` — the original per-node path: one truncated
  Dijkstra per cluster center, one heavy-light tree compilation per
  cluster (:mod:`repro.core.build.reference` packs its output).
* ``builder="vectorized"`` — the array-program pipeline
  (:mod:`repro.core.build.vectorized`): per-level batched cluster
  sweeps, one tight-arc parent pass, all heavy-light trees decomposed at
  once by pointer doubling and global lexsorts.

Both produce the **same scheme bit-for-bit** (clusters, bunch distances,
tree parents and ports, encoded label bits) on float64-exact weights;
``tests/test_builder_equivalence.py`` differences them structure by
structure.

Array layout (:class:`~repro.core.build.arrays.SchemeArrays`)
-------------------------------------------------------------
Every vertex ``w`` owns exactly one cluster (grown at its top hierarchy
level), so clusters form a CSR over centers::

    cl_indptr : (n+1,)  entries of C(w) at [cl_indptr[w], cl_indptr[w+1])
    entry_keys: (E,)    sorted  w * n + v   — one entry per (center, member)
    ent_member / ent_dist / ent_parent      — member id, exact d(w, v),
                                              SPT parent (-1 at the center)

Aligned with the entries are the §2 tree-record columns (``tr_f``,
``tr_finish``, ``tr_heavy_finish``, ``tr_light_depth``,
``tr_parent_port``, ``tr_heavy_port``), the light-port sequences as a
nested CSR (``lp_indptr``/``lp_data``, root-to-leaf order), and the
entry-to-entry links ``ent_parent_epos``/``ent_heavy_epos``.  Derived
from those, shared by both builders:

* **bunches** — the transpose CSR ``bunch_indptr`` / ``bunch_centers`` /
  ``bunch_dist``: ``B(v) = {w : v ∈ C(w)}`` with distances (bunch/cluster
  duality is ``bunch_epos`` being a permutation of the entries);
* **member maps** — ``mem_keys``/``mem_epos``: the source-side level-0
  cluster check;
* **labels** — ``lab_epos[i, v]``: the entry of ``v`` in its level-``i``
  pivot's tree (row 0 = ``v``'s own root entry).

Sorted keys make every membership question ("does ``u`` have a record
for ``T_w``?") a batched ``searchsorted`` — the same trick the batch
routing engine uses, which is why :func:`compile_scheme
<repro.sim.engine.compile.compile_scheme>` can export these arrays
directly without touching the dict world.
"""

from __future__ import annotations

import warnings
from typing import Optional, Sequence

import numpy as np

from ...errors import PreprocessingError
from ...graphs.graph import Graph
from ...graphs.ports import PortedGraph
from ...obs import TELEMETRY
from ...rng import RngLike, make_rng
from ..landmarks import Hierarchy, build_hierarchy, hierarchy_from_levels
from .arrays import SchemeArrays, assemble_arrays, scheme_from_arrays
from .patch import PatchResult, patch_arrays
from .reference import reference_arrays
from .vectorized import vectorized_arrays

__all__ = [
    "PatchResult",
    "SchemeArrays",
    "assemble_arrays",
    "build_arrays",
    "build_scheme",
    "patch_arrays",
    "reference_arrays",
    "resolve_builder",
    "scheme_from_arrays",
    "vectorized_arrays",
]

METHODS = ("vectorized", "reference")
BUILDERS = METHODS  #: canonical name for the accepted ``builder=`` values


def resolve_builder(builder: Optional[str], method: Optional[str]) -> str:
    """Canonicalize the construction-selector keyword.

    ``builder=`` is the canonical spelling everywhere construction is
    selected (``engine=`` selects execution); ``method=`` is the
    deprecated alias, honoured with a :class:`DeprecationWarning`.
    """
    if method is not None:
        warnings.warn(
            "the method= keyword is deprecated; use builder=",
            DeprecationWarning,
            stacklevel=3,
        )
        if builder is None:
            builder = method
    if builder is None:
        builder = "vectorized"
    if builder not in BUILDERS:
        raise PreprocessingError(f"unknown builder {builder!r}")
    return builder


def _resolve_inputs(
    graph: Graph,
    k: int,
    ported: Optional[PortedGraph],
    rng: RngLike,
    sampling: str,
    levels: Optional[Sequence[np.ndarray]],
    consistent_pivots: bool,
):
    from ...graphs.ports import assign_ports

    if not graph.is_connected():
        raise PreprocessingError(
            "TZ routing requires a connected graph; take "
            "graph.largest_component() first"
        )
    if ported is None:
        ported = assign_ports(graph, "sorted")
    if levels is not None:
        hierarchy = hierarchy_from_levels(graph, levels, consistent=consistent_pivots)
    else:
        hierarchy = build_hierarchy(
            graph, k, make_rng(rng), sampling=sampling, consistent_pivots=consistent_pivots
        )
    return ported, hierarchy


def build_arrays(
    graph: Graph,
    k: int = 2,
    *,
    ported: Optional[PortedGraph] = None,
    builder: Optional[str] = None,
    mode: str = "auto",
    rng: RngLike = None,
    sampling: str = "bernoulli",
    levels: Optional[Sequence[np.ndarray]] = None,
    consistent_pivots: bool = True,
    hierarchy: Optional[Hierarchy] = None,
    method: Optional[str] = None,
    kernel: str = "auto",
) -> SchemeArrays:
    """Construct a scheme and return its array form (no dict world).

    The same ``rng`` yields the same hierarchy for either ``builder``, so
    ``build_arrays(g, k, builder="vectorized", rng=s)`` and
    ``...builder="reference", rng=s`` are directly comparable.  Pass
    ``hierarchy`` to share one across calls.  ``mode`` and ``kernel``
    (the frontier-sweep backend, see :mod:`repro.kernels`) are forwarded
    to :func:`vectorized_arrays`.  ``method=`` is the deprecated alias
    of ``builder=``.
    """
    builder = resolve_builder(builder, method)
    with TELEMETRY.span("build.arrays", builder=builder, k=k, n=graph.n):
        if hierarchy is not None:
            from ...graphs.ports import assign_ports

            if ported is None:
                ported = assign_ports(graph, "sorted")
        else:
            ported, hierarchy = _resolve_inputs(
                graph, k, ported, rng, sampling, levels, consistent_pivots
            )
        if builder == "reference":
            return reference_arrays(graph, ported, hierarchy)
        return vectorized_arrays(graph, ported, hierarchy, mode=mode, kernel=kernel)


def build_scheme(
    graph: Graph,
    k: int = 2,
    *,
    ported: Optional[PortedGraph] = None,
    builder: Optional[str] = None,
    rng: RngLike = None,
    sampling: str = "bernoulli",
    levels: Optional[Sequence[np.ndarray]] = None,
    consistent_pivots: bool = True,
    method: Optional[str] = None,
    kernel: str = "auto",
):
    """Build a routable :class:`~repro.core.scheme_k.TZRoutingScheme`.

    ``builder="vectorized"`` runs the array pipeline and materializes the
    object world from it (the compiled batch-engine export then reads
    the arrays directly); ``builder="reference"`` runs the original
    per-node path.  Outputs are bit-identical either way — as they are
    for either value of ``kernel`` (the vectorized builder's
    frontier-sweep backend, see :mod:`repro.kernels`).  ``method=`` is
    the deprecated alias of ``builder=``.
    """
    from ..scheme_k import build_tz_scheme

    builder = resolve_builder(builder, method)
    return build_tz_scheme(
        graph,
        ported,
        k=k,
        rng=rng,
        sampling=sampling,
        levels=levels,
        consistent_pivots=consistent_pivots,
        cluster_method="sparse",
        builder=builder,
        kernel=kernel,
    )
