"""The per-node reference builder, packed into :class:`SchemeArrays`.

This is the construction path the package shipped with: one truncated
Dijkstra per cluster center (:func:`repro.core.clusters.compute_cluster`
via ``method="sparse"``) and one per-tree heavy-light compilation
(:func:`repro.trees.tz_tree.build_tree_router`), exactly as
:func:`repro.core.scheme_k.build_tz_scheme` runs them — only the output
is flattened into arrays so the vectorized builder can be differenced
against it structure-by-structure.

It is deliberately *not* optimized: its job is to be obviously correct
(it reuses the object-world code verbatim) and to serve as the ground
truth and the benchmark baseline.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ...graphs.graph import Graph
from ...graphs.ports import PortedGraph
from ...trees.tz_tree import build_tree_router
from ..clusters import Cluster, compute_all_clusters
from ..landmarks import Hierarchy
from .arrays import SchemeArrays, assemble_arrays


def reference_arrays(
    graph: Graph, ported: PortedGraph, hierarchy: Hierarchy
) -> SchemeArrays:
    """Build the scheme per-node and pack it into :class:`SchemeArrays`."""
    n = graph.n
    clusters: Dict[int, Cluster] = {}
    for i in range(hierarchy.k):
        lvl = hierarchy.levels[i]
        centers = [int(w) for w in lvl[hierarchy.level_of[lvl] == i]]
        if not centers:
            continue
        clusters.update(
            compute_all_clusters(graph, centers, hierarchy.dist[i + 1], method="sparse")
        )

    cl_counts = np.zeros(n, dtype=np.int64)
    member_l: List[int] = []
    dist_l: List[float] = []
    parent_l: List[int] = []
    heavy_l: List[int] = []
    f_l: List[int] = []
    fin_l: List[int] = []
    hfin_l: List[int] = []
    ld_l: List[int] = []
    pport_l: List[int] = []
    hport_l: List[int] = []
    lp_counts: List[int] = []
    lp_flat: List[int] = []
    for w in range(n):
        cluster = clusters[w]
        tree = cluster.tree()
        router = build_tree_router(tree, ported, port_model="fixed")
        members = cluster.members()
        cl_counts[w] = len(members)
        for v in members:
            record = router.records[v]
            member_l.append(v)
            dist_l.append(cluster.dist[v])
            parent_l.append(cluster.parent[v])
            heavy_l.append(tree.heavy[v])
            f_l.append(record.f)
            fin_l.append(record.finish)
            hfin_l.append(record.heavy_finish)
            ld_l.append(record.light_depth)
            pport_l.append(record.parent_port)
            hport_l.append(record.heavy_port)
            ports = router.labels[v].light_ports
            lp_counts.append(len(ports))
            lp_flat.extend(ports)

    cl_indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(cl_counts, out=cl_indptr[1:])
    lp_indptr = np.zeros(len(lp_counts) + 1, dtype=np.int64)
    np.cumsum(np.asarray(lp_counts, dtype=np.int64), out=lp_indptr[1:])
    return assemble_arrays(
        graph,
        ported,
        hierarchy,
        cl_indptr=cl_indptr,
        ent_member=np.asarray(member_l, dtype=np.int64),
        ent_dist=np.asarray(dist_l, dtype=np.float64),
        ent_parent=np.asarray(parent_l, dtype=np.int64),
        heavy_vertex=np.asarray(heavy_l, dtype=np.int64),
        tr_f=np.asarray(f_l, dtype=np.int64),
        tr_finish=np.asarray(fin_l, dtype=np.int64),
        tr_heavy_finish=np.asarray(hfin_l, dtype=np.int64),
        tr_light_depth=np.asarray(ld_l, dtype=np.int64),
        tr_parent_port=np.asarray(pport_l, dtype=np.int64),
        tr_heavy_port=np.asarray(hport_l, dtype=np.int64),
        lp_indptr=lp_indptr,
        lp_data=np.asarray(lp_flat, dtype=np.int64),
    )
