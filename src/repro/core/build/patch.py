"""Delta-aware incremental rebuild: patch a built scheme in place of a
full reconstruction.

Given the :class:`SchemeArrays` of a built scheme, the graph it was built
on and a :class:`~repro.graphs.delta.GraphDelta`, :func:`patch_arrays`
produces the scheme of the mutated graph by rebuilding only the clusters
the delta can possibly touch and splicing the untouched entry rows
across.  The output is **bit-for-bit identical** to a fresh
:func:`~repro.core.build.vectorized.vectorized_arrays` run on the
mutated graph with the surviving landmark levels
(``tests/test_update.py`` gates this on the ``core/serialize`` digest).

Why a conservative *touched set* suffices
-----------------------------------------
Clusters are subpath-closed (every prefix of a shortest path to a member
is a member), so any change to what a cluster ``C(w)`` stores must leave
a witness **inside the old cluster**:

* a member gained or lost, a distance or an SPT parent/tie-break change
  all require a changed edge endpoint, a neighbor of a
  threshold-changed vertex, or a dropped vertex's neighbor on the old
  cluster's shortest paths — each of which sits in ``C_old(w)``;
* the §2 tree records and light-port sequences embed *port numbers* of
  cluster vertices, so they can only drift at a vertex whose port row
  changed — and those vertices are diffed explicitly.

Collect the set ``S`` of all such witnesses (delta endpoints, dropped
nodes' neighbors, added nodes, threshold-changed vertices ``X`` and
their new-graph neighbors, port-changed vertices); every cluster whose
data changes has ``S ∩ C_old(w) ≠ ∅``.  The stored bunches are exactly
the transpose of cluster membership, so the dirty centers are one ragged
gather: ``∪_{o ∈ S} bunch(o)``.  Everything else is spliced verbatim
(modulo the monotone vertex relabeling node removal induces, which
preserves sorted adjacency rows and hence ``"sorted"`` port values).

The rebuild itself reuses the vectorized builder's level engines
(chunked full Dijkstra rows, the numpy frontier sweep or the native
``tz_frontier_sweep`` kernel) — per-center results are engine- and
batching-independent by the float64-exact determinism contract, so the
dirty subset may be rebuilt with whichever engine fits its size.

Two refinements keep small deltas from degenerating into near-full
rebuilds.  First, for **weight-only** deltas the conservative witness
set would dirty every *top-level* cluster (a top-level center sits in
every bunch), so those centers get an exact relevance test against
their stored distances and are exonerated when no updated edge can
carry a shortest path (:func:`_exonerate_unbounded`).  Second, when no
vertex was relabeled and the rebuilt clusters kept their exact member
sets, every entry keeps its global position, and the patched arrays
are produced by overwriting dirty rows in copies of the old columns —
no E-scale gather/merge at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ...errors import PreprocessingError
from ...graphs.delta import GraphDelta, apply_delta
from ...graphs.graph import Graph
from ...graphs.ports import PortedGraph, assign_ports
from ...kernels import resolve_kernel
from ...kernels.frontier import frontier_sweep_native
from ...obs import TELEMETRY
from ..landmarks import Hierarchy, hierarchy_from_levels
from .arrays import SchemeArrays, assemble_arrays
from .vectorized import (
    FULL_CENTER_LIMIT,
    _full_level,
    _is_float64_exact,
    _level_parents,
    _pruned_level,
    _tree_arrays,
)

__all__ = ["PatchResult", "patch_arrays"]


@dataclass
class PatchResult:
    """Everything the store/serve layers need after an incremental update."""

    graph: Graph  # the mutated graph
    ported: PortedGraph  # its port assignment
    hierarchy: Hierarchy  # surviving levels, recomputed pivots/distances
    arrays: SchemeArrays  # the patched scheme
    id_map: np.ndarray  # old vertex id → new id (−1 = dropped)
    stats: Dict[str, int] = field(default_factory=dict)


def _segment_indices(starts: np.ndarray, lens: np.ndarray) -> np.ndarray:
    """Flat indices covering ``[starts[i], starts[i]+lens[i])`` in order."""
    total = int(lens.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    rep = np.repeat(np.arange(starts.shape[0], dtype=np.int64), lens)
    ex = np.cumsum(lens) - lens
    return starts[rep] + np.arange(total, dtype=np.int64) - ex[rep]


def _scatter_segments(
    dst: np.ndarray, dst_starts: np.ndarray, src: np.ndarray, src_starts: np.ndarray, lens: np.ndarray
) -> None:
    """Ragged copy: segment ``i`` of ``src`` into position ``dst_starts[i]``."""
    total = int(lens.sum())
    if total == 0:
        return
    rep = np.repeat(np.arange(lens.shape[0], dtype=np.int64), lens)
    off = np.arange(total, dtype=np.int64) - (np.cumsum(lens) - lens)[rep]
    dst[dst_starts[rep] + off] = src[src_starts[rep] + off]


def _port_changed_vertices(
    graph: Graph,
    new_graph: Graph,
    ported: PortedGraph,
    new_ported: PortedGraph,
    id_map: np.ndarray,
    n_keep: int,
) -> np.ndarray:
    """New ids of surviving vertices whose port row drifted despite an
    unchanged adjacency row (possible under non-``"sorted"`` assignments).

    Vertices whose adjacency row changed structurally are already in the
    touched set via the delta's endpoints, so only degree-preserved rows
    need the element-wise compare.  Surviving arcs stay sorted by
    ``(tail, head)`` under the monotone relabeling, so both sides align
    without a sort.
    """
    if graph.m == 0 or n_keep == 0:
        return np.zeros(0, dtype=np.int64)
    tail = np.repeat(np.arange(graph.n, dtype=np.int64), np.diff(graph.indptr))
    ok = (id_map[tail] >= 0) & (id_map[graph.adj] >= 0)
    t2 = id_map[tail[ok]]
    h2 = id_map[graph.adj[ok]]
    p_old = ported.port_of_arc[ok]
    deg_kept = np.bincount(t2, minlength=new_graph.n)
    cand = np.zeros(new_graph.n, dtype=bool)
    cand[:n_keep] = deg_kept[:n_keep] == np.diff(new_graph.indptr)[:n_keep]
    start = np.zeros(new_graph.n, dtype=np.int64)
    np.cumsum(deg_kept[:-1], out=start[1:])
    rank = np.arange(t2.shape[0], dtype=np.int64) - start[t2]
    sel = cand[t2]
    if not sel.any():
        return np.flatnonzero(~cand[:n_keep]).astype(np.int64)
    pos = (new_graph.indptr[t2] + rank)[sel]
    mism = (new_graph.adj[pos] != h2[sel]) | (
        new_ported.port_of_arc[pos] != p_old[sel]
    )
    drifted = np.unique(t2[sel][mism])
    # Degree-changed survivors are structurally touched; return them too
    # so the caller need not special-case (cheap union, mostly empty).
    return np.union1d(drifted, np.flatnonzero(~cand[:n_keep]).astype(np.int64))


def _map_levels(hierarchy: Hierarchy, id_map: np.ndarray, n_new: int):
    """Surviving landmark levels in new ids (level 0 is all vertices)."""
    levels = [np.arange(n_new, dtype=np.int64)]
    for i in range(1, hierarchy.k):
        mapped = id_map[hierarchy.levels[i]]
        mapped = np.sort(mapped[mapped >= 0])
        if mapped.shape[0] == 0:
            raise PreprocessingError(
                f"delta drops every level-{i} landmark: the surviving "
                "hierarchy is degenerate — rebuild with fresh sampling"
            )
        levels.append(mapped)
    return levels


def _touched_set(
    arrays: SchemeArrays,
    graph: Graph,
    new_graph: Graph,
    delta: GraphDelta,
    id_map: np.ndarray,
    h_new: Hierarchy,
    ported: PortedGraph,
    new_ported: PortedGraph,
    old_of: np.ndarray,
) -> np.ndarray:
    """The witness set ``S`` in new ids (see module docstring)."""
    n_old, n_new = graph.n, new_graph.n
    n_keep = old_of.shape[0]
    s = set()

    def mapped(x: int) -> int:
        return int(id_map[x]) if x < n_old else x - n_old + n_keep

    for u, v, _w in delta.weight_updates:
        s.update((int(id_map[u]), int(id_map[v])))
    for u, v in delta.drop_edges:
        s.update((int(id_map[u]), int(id_map[v])))
    for u, v, _w in delta.add_edges:
        s.update((mapped(u), mapped(v)))
    for d in delta.drop_nodes:
        s.update(int(x) for x in id_map[graph.neighbors(d)])
    s.discard(-1)
    s.update(range(n_keep, n_new))  # added nodes

    # X: vertices whose distance-to-level (cluster threshold) changed.
    x_mask = np.zeros(n_new, dtype=bool)
    x_mask[n_keep:] = True
    for i in range(1, h_new.k):
        x_mask[:n_keep] |= h_new.dist[i][:n_keep] != arrays.hierarchy.dist[i][old_of]
    xs = np.flatnonzero(x_mask)
    s.update(xs.tolist())
    if xs.shape[0]:  # membership can spread one hop from X in the new graph
        arcs = _segment_indices(new_graph.indptr[xs], np.diff(new_graph.indptr)[xs])
        s.update(np.unique(new_graph.adj[arcs]).tolist())

    s.update(
        _port_changed_vertices(graph, new_graph, ported, new_ported, id_map, n_keep).tolist()
    )
    return np.array(sorted(x for x in s if 0 <= x < n_new), dtype=np.int64)


def _exonerate_unbounded(
    arrays: SchemeArrays,
    graph: Graph,
    delta: GraphDelta,
    h_new: Hierarchy,
    dirty_new: np.ndarray,
) -> np.ndarray:
    """Weight-only deltas: clear top-level centers no updated edge is
    *relevant* to.

    A top-level cluster is unbounded (``C(c) = V``), so its stored rows
    are exactly ``c``'s shortest-path tree — distances, deterministic
    parents and the port-bearing §2 records derived from them.
    Membership and thresholds cannot move it, and the caller has already
    checked that no port row drifted.  For an update ``w_old → w_new``
    on ``{u, v}`` that tree can only change when the edge carries (or
    comes to carry) a shortest path:
    ``d(c,u) + min(w_old, w_new) <= d(c,v)`` or symmetrically.  An
    increase needs the old edge *tight* (``==`` by the triangle
    inequality) to lose a path or a parent tie-break; a decrease needs a
    new relaxation or tie (``<=``) to gain one.  If every updated edge
    fails both tests against ``c``'s stored distances, the old field
    still satisfies Bellman optimality on the new graph with an
    unchanged tight-edge set, so every stored byte survives and the
    cluster splices instead of rebuilding.  (All comparisons are exact:
    patching requires float64-exact weights, so the distances are
    integer-valued.)  Bounded lower-level clusters stay conservative —
    their membership thresholds can move.
    """
    k = arrays.k
    top = dirty_new[h_new.level_of[dirty_new] == k - 1]
    if top.shape[0] == 0:
        return dirty_new
    ci = arrays.cl_indptr
    # A full cluster holds every vertex in member order, so (c, x) sits
    # at ``ci[c] + x`` — no search.  Anything smaller (impossible for a
    # top-level center, but cheap to verify) just stays dirty.
    relevant = ci[top + 1] - ci[top] != arrays.n
    base = ci[top]
    last = max(arrays.entry_count - 1, 0)
    for u, v, w_new in delta.weight_updates:
        w_min = min(graph.edge_weight(u, v), float(w_new))
        du = arrays.ent_dist[np.minimum(base + u, last)]
        dv = arrays.ent_dist[np.minimum(base + v, last)]
        relevant |= (du + w_min <= dv) | (dv + w_min <= du)
    if relevant.all():
        return dirty_new
    drop = np.zeros(arrays.n, dtype=bool)
    drop[top[~relevant]] = True
    TELEMETRY.count("patch.exonerated_clusters", int((~relevant).sum()))
    return dirty_new[~drop[dirty_new]]


def patch_arrays(
    arrays: SchemeArrays,
    graph: Graph,
    delta: GraphDelta,
    *,
    ported: PortedGraph,
    new_ported: Optional[PortedGraph] = None,
    mode: str = "auto",
    kernel: str = "auto",
) -> PatchResult:
    """Incrementally rebuild ``arrays`` (built on ``graph`` with
    ``ported``) after ``delta``; see the module docstring for the
    classification argument.

    ``new_ported`` defaults to ``assign_ports(new_graph, "sorted")``; a
    caller with its own assignment passes it explicitly (assignments
    that renumber untouched rows simply enlarge the dirty set).  Raises
    :class:`PreprocessingError` when the delta leaves incremental
    maintenance undefined — non-float64-exact weights, a disconnected
    mutated graph, or a hierarchy level losing its last landmark — and
    the caller decides whether to fall back to a full rebuild.
    """
    if arrays.n != graph.n:
        raise PreprocessingError(
            f"arrays were built for n={arrays.n}, got a graph with n={graph.n}"
        )
    if mode not in ("auto", "full", "pruned"):
        raise PreprocessingError(f"unknown patch builder mode {mode!r}")
    kernel = resolve_kernel(kernel)
    tm = TELEMETRY

    new_graph, id_map = apply_delta(graph, delta)
    if not _is_float64_exact(graph) or not _is_float64_exact(new_graph):
        raise PreprocessingError(
            "incremental patching requires float64-exact (integer-valued) "
            "edge weights; rebuild from scratch instead"
        )
    if not new_graph.is_connected():
        raise PreprocessingError(
            "delta disconnects the graph: TZ routing requires a connected graph"
        )
    weight_only = not (
        delta.add_edges or delta.drop_edges or delta.drop_nodes or delta.add_nodes
    )
    if new_ported is None:
        # Weight changes leave every adjacency row — and hence every
        # "sorted" port — untouched, so the assignment rebinds in O(1).
        # (This also preserves non-"sorted" assignments across
        # weight-only deltas, keeping their clusters spliceable.)
        new_ported = (
            ported.rebind(new_graph)
            if weight_only
            else assign_ports(new_graph, "sorted")
        )
    old_of = np.flatnonzero(id_map >= 0)
    n_keep = int(old_of.shape[0])
    n2 = np.int64(new_graph.n)
    k = arrays.k

    with tm.span("patch.classify"):
        h_new = hierarchy_from_levels(new_graph, _map_levels(arrays.hierarchy, id_map, new_graph.n))
        s_new = _touched_set(
            arrays, graph, new_graph, delta, id_map, h_new, ported, new_ported, old_of
        )
        # Dirty centers: every cluster that contains a witness, read off
        # the stored bunches (the membership transpose), plus the
        # clusters of dropped vertices and the added nodes' own clusters.
        s_old = old_of[s_new[s_new < n_keep]]
        sources = np.unique(
            np.concatenate([s_old, np.asarray(delta.drop_nodes, dtype=np.int64)])
        ).astype(np.int64)
        bi = arrays.bunch_indptr
        dirty_old = np.unique(
            arrays.bunch_centers[
                _segment_indices(bi[sources], bi[sources + 1] - bi[sources])
            ]
        )
        mapped_dirty = id_map[dirty_old] if dirty_old.shape[0] else dirty_old
        dirty_new = np.unique(
            np.concatenate(
                [
                    mapped_dirty[mapped_dirty >= 0],
                    np.arange(n_keep, new_graph.n, dtype=np.int64),
                ]
            )
        ).astype(np.int64)
        if weight_only and (
            new_ported.port_of_arc is ported.port_of_arc
            or np.array_equal(ported.port_of_arc, new_ported.port_of_arc)
        ):
            dirty_new = _exonerate_unbounded(arrays, graph, delta, h_new, dirty_new)
        dirty_mask = np.zeros(new_graph.n, dtype=bool)
        dirty_mask[dirty_new] = True
        clean_new = np.flatnonzero(~dirty_mask).astype(np.int64)

    # ------------------------------------------------------------------
    # Rebuild: dirty clusters re-grown level by level with the same
    # engines as a fresh build (per-center output is engine-invariant).
    # ------------------------------------------------------------------
    with tm.span("patch.rebuild", clusters=int(dirty_new.shape[0])):
        key_parts, dist_parts, parent_parts = [], [], []
        for i in range(k):
            centers = dirty_new[h_new.level_of[dirty_new] == i]
            if centers.shape[0] == 0:
                continue
            thr = h_new.dist[i + 1]
            unbounded = bool(np.all(np.isinf(thr)))
            use_full = mode == "full" or unbounded or (
                mode == "auto" and centers.shape[0] <= FULL_CENTER_LIMIT
            )
            if use_full:
                keys, dist = _full_level(new_graph, centers, thr)
            else:
                with tm.span(
                    "kernel.frontier_sweep",
                    impl=kernel,
                    level=i,
                    centers=int(centers.shape[0]),
                ):
                    keys, dist = (
                        frontier_sweep_native(new_graph, centers, thr)
                        if kernel == "native"
                        else _pruned_level(new_graph, centers, thr)
                    )
            key_parts.append(keys)
            dist_parts.append(dist)
            parent_parts.append(_level_parents(new_graph, keys, dist))
        d_keys = np.concatenate(key_parts) if key_parts else np.zeros(0, dtype=np.int64)
        d_dist = np.concatenate(dist_parts) if dist_parts else np.zeros(0)
        d_parent = (
            np.concatenate(parent_parts) if parent_parts else np.zeros(0, dtype=np.int64)
        )
        order = np.argsort(d_keys, kind="stable")
        d_keys, d_dist, d_parent = d_keys[order], d_dist[order], d_parent[order]
        d_center = d_keys // n2
        d_member = d_keys - d_center * n2
        cl_dirty = np.zeros(new_graph.n + 1, dtype=np.int64)
        np.cumsum(np.bincount(d_center, minlength=new_graph.n), out=cl_dirty[1:])
        tree = _tree_arrays(
            new_graph, new_ported, d_keys, d_center, d_member, d_parent, cl_dirty
        )

    # ------------------------------------------------------------------
    # Identity fast path: when no vertex was relabeled and every rebuilt
    # cluster kept its exact member set, every entry keeps its global
    # position — overwrite the dirty rows in copies of the old columns
    # instead of re-gathering and re-merging all E entries.
    # ------------------------------------------------------------------
    ci = arrays.cl_indptr
    ed = int(d_keys.shape[0])
    hv_new = tree["heavy_vertex"]
    identity = new_graph.n == graph.n and n_keep == graph.n
    if identity:
        d_lens = ci[dirty_new + 1] - ci[dirty_new]
        dirty_epos = _segment_indices(ci[dirty_new], d_lens)
        identity = ed == int(dirty_epos.shape[0]) and np.array_equal(
            d_keys, arrays.entry_keys[dirty_epos]
        )
    if identity:
        with tm.span("patch.assemble", mode="in-place"):
            E = arrays.entry_count
            ec = E - ed

            def patched(col, dvals, dtype):
                # Copy-on-write: arrays are append-only once assembled,
                # so a column whose dirty rows came back byte-identical
                # is shared verbatim — the common case for exonerated
                # weight deltas, where copying 8B·E per column would
                # dominate the whole patch.
                if np.array_equal(col[dirty_epos], dvals):
                    return col
                out = np.array(col, dtype=dtype)
                out[dirty_epos] = dvals
                return out

            # Entry links survive verbatim (positions are unchanged);
            # dirty rows re-locate within the same key array.
            new_pe = np.full(ed, -1, dtype=np.int64)
            hasp = d_parent >= 0
            new_pe[hasp] = np.searchsorted(
                arrays.entry_keys, d_center[hasp] * n2 + d_parent[hasp]
            )
            new_he = np.full(ed, -1, dtype=np.int64)
            hash_ = hv_new >= 0
            new_he[hash_] = np.searchsorted(
                arrays.entry_keys, d_center[hash_] * n2 + hv_new[hash_]
            )
            tr_light_depth = patched(
                arrays.tr_light_depth, tree["tr_light_depth"], np.int64
            )
            d_lp_lens = np.diff(tree["lp_indptr"])
            if tr_light_depth is arrays.tr_light_depth:
                # Unchanged lengths: same lp layout; share the payload
                # too when the dirty sequences came back identical.
                lp_indptr = arrays.lp_indptr
                old_lp = arrays.lp_data[
                    _segment_indices(arrays.lp_indptr[dirty_epos], d_lp_lens)
                ]
                if np.array_equal(old_lp, tree["lp_data"]):
                    lp_data = arrays.lp_data
                else:
                    lp_data = arrays.lp_data.copy()
                    _scatter_segments(
                        lp_data,
                        lp_indptr[dirty_epos],
                        tree["lp_data"],
                        tree["lp_indptr"][:-1],
                        d_lp_lens,
                    )
            else:
                lp_indptr = np.zeros(E + 1, dtype=np.int64)
                np.cumsum(tr_light_depth, out=lp_indptr[1:])
                clean_mask = np.ones(E, dtype=bool)
                clean_mask[dirty_epos] = False
                ce_pos = np.flatnonzero(clean_mask)
                lp_data = np.zeros(int(lp_indptr[-1]), dtype=np.int64)
                _scatter_segments(
                    lp_data,
                    lp_indptr[ce_pos],
                    arrays.lp_data,
                    arrays.lp_indptr[ce_pos],
                    arrays.tr_light_depth[ce_pos],
                )
                _scatter_segments(
                    lp_data,
                    lp_indptr[dirty_epos],
                    tree["lp_data"],
                    tree["lp_indptr"][:-1],
                    d_lp_lens,
                )

            new_arrays = assemble_arrays(
                new_graph,
                new_ported,
                h_new,
                cl_indptr=ci,
                ent_member=arrays.ent_member,
                ent_dist=patched(arrays.ent_dist, d_dist, np.float64),
                ent_parent=patched(arrays.ent_parent, d_parent, np.int64),
                tr_f=patched(arrays.tr_f, tree["tr_f"], np.int64),
                tr_finish=patched(arrays.tr_finish, tree["tr_finish"], np.int64),
                tr_heavy_finish=patched(
                    arrays.tr_heavy_finish, tree["tr_heavy_finish"], np.int64
                ),
                tr_light_depth=tr_light_depth,
                tr_parent_port=patched(
                    arrays.tr_parent_port, tree["tr_parent_port"], np.int64
                ),
                tr_heavy_port=patched(
                    arrays.tr_heavy_port, tree["tr_heavy_port"], np.int64
                ),
                lp_indptr=lp_indptr,
                lp_data=lp_data,
                ent_parent_epos=patched(arrays.ent_parent_epos, new_pe, np.int64),
                ent_heavy_epos=patched(arrays.ent_heavy_epos, new_he, np.int64),
                # Membership is unchanged on this path, so the old bunch
                # permutation is exactly the CSR→CSC order of the new
                # entries.
                bunch_order=arrays.bunch_epos,
            )
        return _finish(
            tm, new_graph, new_ported, h_new, new_arrays, id_map, s_new,
            dirty_new, clean_new, ed, ec,
        )

    # ------------------------------------------------------------------
    # Splice: untouched clusters cross over with ids remapped and every
    # distance / tree record / port byte preserved verbatim.
    # ------------------------------------------------------------------
    with tm.span("patch.splice", clusters=int(clean_new.shape[0])):
        clean_old = old_of[clean_new]
        lens = ci[clean_old + 1] - ci[clean_old]
        epos = _segment_indices(ci[clean_old], lens)
        c_member = id_map[arrays.ent_member[epos]]
        if c_member.shape[0] and c_member.min() < 0:
            raise PreprocessingError(
                "patch classification missed a dropped member in a clean "
                "cluster (incremental maintenance invariant violated)"
            )
        c_center = np.repeat(clean_new, lens)
        c_keys = c_center * n2 + c_member
        old_parent = arrays.ent_parent[epos]
        c_parent = np.where(old_parent >= 0, id_map[np.maximum(old_parent, 0)], -1)
        heavy_epos = arrays.ent_heavy_epos[epos]
        c_heavy = np.where(
            heavy_epos >= 0, id_map[arrays.ent_member[np.maximum(heavy_epos, 0)]], -1
        )
        c_lp_lens = arrays.tr_light_depth[epos]
        c_lp = arrays.lp_data[_segment_indices(arrays.lp_indptr[epos], c_lp_lens)]

    # ------------------------------------------------------------------
    # Merge into global entry order.  Clean and dirty center sets are
    # disjoint and both runs are key-sorted, so two searchsorted calls
    # give every entry's final position.
    # ------------------------------------------------------------------
    with tm.span("patch.assemble", mode="merge"):
        ec = int(c_keys.shape[0])
        pos_c = np.arange(ec, dtype=np.int64) + np.searchsorted(d_keys, c_keys)
        pos_d = np.arange(ed, dtype=np.int64) + np.searchsorted(c_keys, d_keys)
        total = ec + ed

        def merge(cvals, dvals, dtype):
            out = np.empty(total, dtype=dtype)
            out[pos_c] = cvals
            out[pos_d] = dvals
            return out

        ent_member = merge(c_member, d_member, np.int64)
        ent_dist = merge(arrays.ent_dist[epos], d_dist, np.float64)
        ent_parent = merge(c_parent, d_parent, np.int64)
        heavy_vertex = merge(c_heavy, hv_new, np.int64)
        tr_f = merge(arrays.tr_f[epos], tree["tr_f"], np.int64)
        tr_finish = merge(arrays.tr_finish[epos], tree["tr_finish"], np.int64)
        tr_heavy_finish = merge(
            arrays.tr_heavy_finish[epos], tree["tr_heavy_finish"], np.int64
        )
        tr_light_depth = merge(c_lp_lens, tree["tr_light_depth"], np.int64)
        tr_parent_port = merge(
            arrays.tr_parent_port[epos], tree["tr_parent_port"], np.int64
        )
        tr_heavy_port = merge(arrays.tr_heavy_port[epos], tree["tr_heavy_port"], np.int64)

        lp_indptr = np.zeros(total + 1, dtype=np.int64)
        np.cumsum(tr_light_depth, out=lp_indptr[1:])
        lp_data = np.zeros(int(lp_indptr[-1]), dtype=np.int64)
        c_lp_ex = np.cumsum(c_lp_lens) - c_lp_lens
        _scatter_segments(lp_data, lp_indptr[pos_c], c_lp, c_lp_ex, c_lp_lens)
        _scatter_segments(
            lp_data,
            lp_indptr[pos_d],
            tree["lp_data"],
            tree["lp_indptr"][:-1],
            np.diff(tree["lp_indptr"]),
        )

        ent_center = merge(c_center, d_center, np.int64)
        cl_indptr = np.zeros(new_graph.n + 1, dtype=np.int64)
        np.cumsum(np.bincount(ent_center, minlength=new_graph.n), out=cl_indptr[1:])

        # Entry links: clean parents/heavy children live in the same
        # clean cluster (old positions known), dirty ones in the same
        # rebuilt cluster — map both through the final positions instead
        # of letting assemble_arrays re-locate all E of them.
        old_to_new = np.full(arrays.entry_count, -1, dtype=np.int64)
        old_to_new[epos] = pos_c
        ope = arrays.ent_parent_epos[epos]
        c_pe = np.where(ope >= 0, old_to_new[np.maximum(ope, 0)], -1)
        ohe = arrays.ent_heavy_epos[epos]
        c_he = np.where(ohe >= 0, old_to_new[np.maximum(ohe, 0)], -1)
        d_pe = np.full(ed, -1, dtype=np.int64)
        m_p = d_parent >= 0
        d_pe[m_p] = pos_d[np.searchsorted(d_keys, d_center[m_p] * n2 + d_parent[m_p])]
        d_he = np.full(ed, -1, dtype=np.int64)
        m_h = hv_new >= 0
        d_he[m_h] = pos_d[np.searchsorted(d_keys, d_center[m_h] * n2 + hv_new[m_h])]

        new_arrays = assemble_arrays(
            new_graph,
            new_ported,
            h_new,
            cl_indptr=cl_indptr,
            ent_member=ent_member,
            ent_dist=ent_dist,
            ent_parent=ent_parent,
            heavy_vertex=heavy_vertex,
            tr_f=tr_f,
            tr_finish=tr_finish,
            tr_heavy_finish=tr_heavy_finish,
            tr_light_depth=tr_light_depth,
            tr_parent_port=tr_parent_port,
            tr_heavy_port=tr_heavy_port,
            lp_indptr=lp_indptr,
            lp_data=lp_data,
            ent_parent_epos=merge(c_pe, d_pe, np.int64),
            ent_heavy_epos=merge(c_he, d_he, np.int64),
        )

    return _finish(
        tm, new_graph, new_ported, h_new, new_arrays, id_map, s_new,
        dirty_new, clean_new, ed, ec,
    )


def _finish(
    tm,
    new_graph: Graph,
    new_ported: PortedGraph,
    h_new: Hierarchy,
    new_arrays: SchemeArrays,
    id_map: np.ndarray,
    s_new: np.ndarray,
    dirty_new: np.ndarray,
    clean_new: np.ndarray,
    ed: int,
    ec: int,
) -> PatchResult:
    stats = {
        "touched_vertices": int(s_new.shape[0]),
        "dirty_clusters": int(dirty_new.shape[0]),
        "clean_clusters": int(clean_new.shape[0]),
        "entries_rebuilt": ed,
        "entries_reused": ec,
    }
    tm.count("patch.dirty_clusters", stats["dirty_clusters"])
    tm.count("patch.entries_rebuilt", ed)
    tm.count("patch.entries_reused", ec)
    return PatchResult(
        graph=new_graph,
        ported=new_ported,
        hierarchy=h_new,
        arrays=new_arrays,
        id_map=id_map,
        stats=stats,
    )
