"""The paper's primary contribution: landmark hierarchies, clusters, and
the compact routing schemes of TZ SPAA'01 §3–§4."""

from .clusters import Cluster, compute_cluster, compute_all_clusters, bunches
from .landmarks import (
    Hierarchy,
    center,
    sample_hierarchy,
    compute_pivots,
)
from .router import RouteHeader, RoutingScheme
from .scheme_k import TZRoutingScheme, build_tz_scheme
from .scheme_k2 import build_stretch3_scheme
from .handshake import HandshakeRoutingScheme
from .build import SchemeArrays, build_arrays, build_scheme

__all__ = [
    "SchemeArrays",
    "build_arrays",
    "build_scheme",
    "Cluster",
    "compute_cluster",
    "compute_all_clusters",
    "bunches",
    "Hierarchy",
    "center",
    "sample_hierarchy",
    "compute_pivots",
    "RouteHeader",
    "RoutingScheme",
    "TZRoutingScheme",
    "build_tz_scheme",
    "build_stretch3_scheme",
    "HandshakeRoutingScheme",
]
