"""The handshaking variant (TZ SPAA'01 §4, Theorem 4.2): stretch 2k−1.

Without handshaking the source commits to a tree using only the
destination's *label*; the one-sided pivot chain costs stretch 4k−5.
With a **handshake** — one control round trip before the data flows —
source and destination jointly run the distance-oracle pivot alternation:

::

    w ← u;  i ← 0;  (x, y) ← (u, v)
    while w ∉ B(y):                     # i.e. y has no record for T_w
        i ← i + 1;  (x, y) ← (y, x);  w ← p_i(x)

The loop terminates by level ``k−1`` (top-level clusters span the graph)
and the exit ``w`` satisfies ``d(u,w) + d(w,v) ≤ (2k−1)·d(u,v)`` — the
classic alternation argument: each swap increases ``d(w, x)`` by at most
``d(u, v)``, so ``d(w, x) ≤ i·Δ`` and the final ``i ≤ k−1``.  Both
endpoints lie in ``C(w)`` (``x`` by pivot consistency, ``y`` by the exit
condition), so the data message tree-routes inside ``T_w`` at cost at
most ``d(u,w) + d(w,v)``.

During the handshake the destination returns ``(w, μ(T_w, v))`` — at most
``O(log n) + |μ|`` bits, within the paper's o(k·log² n) header budget.
The handshake itself travels over the base 4k−5 scheme; experiments
report the data-path stretch (the paper's measure) and, separately, the
total including the handshake round trip.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..errors import RoutingError
from .router import RouteHeader, RoutingScheme
from .scheme_k import TZRoutingScheme


class HandshakeRoutingScheme(RoutingScheme):
    """Wraps a compiled :class:`TZRoutingScheme` with the §4 handshake."""

    def __init__(self, base: TZRoutingScheme) -> None:
        self.base = base
        self.n = base.n
        self.k = base.k
        self.name = f"tz-k{base.k}-handshake"

    # ------------------------------------------------------------------
    def handshake_tree(self, source: int, dest: int) -> int:
        """Run the pivot alternation; returns the agreed tree root ``w``.

        Uses the tables of both endpoints — exactly the information the
        physical handshake exchange makes available.
        """
        x, y = source, dest
        w = x  # p_0(x) = x
        i = 0
        while w not in self.base.tables[y].trees:
            i += 1
            if i >= self.base.k:
                raise RoutingError(
                    f"handshake between {source} and {dest} did not "
                    "converge: top-level cluster does not span the graph"
                )
            x, y = y, x
            w = int(self.base.hierarchy.pivot[i, x])
        return w

    def initial_header(self, source: int, dest: int) -> RouteHeader:
        if source == dest:
            return RouteHeader(dest=dest)
        w = self.handshake_tree(source, dest)
        # The destination returns μ(T_w, dest) from its own table's
        # per-tree own_labels — strictly local information.
        mu = self.base.tables[dest].own_labels.get(w)
        if mu is None:
            raise RoutingError(
                f"handshake chose tree {w} that does not contain {dest}"
            )
        return RouteHeader(dest=dest, tree=w, tree_label=mu)

    def decide(
        self, u: int, header: RouteHeader
    ) -> Tuple[Optional[int], RouteHeader]:
        # After the handshake the header always pins a tree; forwarding is
        # pure §2 tree routing via the base tables.
        return self.base.decide(u, header)

    def compile_batch(self, ported=None):
        """Batch-engine export: the base scheme's arrays with the
        handshake tree selection enabled (the alternation itself is
        vectorized inside the engine)."""
        return self.base.compile_batch(ported).with_handshake()

    # ------------------------------------------------------------------
    def table_bits(self, u: int) -> int:
        return self.base.table_bits(u)

    def label_bits(self, v: int) -> int:
        return self.base.label_bits(v)

    def header_bits(self, header: RouteHeader) -> int:
        return self.base.header_bits(header)

    def stretch_bound(self) -> float:
        if self.k == 1:
            return 1.0
        return float(2 * self.k - 1)

    def handshake_hops(self, source: int, dest: int) -> int:
        """Number of alternation steps (≤ k−1); a proxy for handshake
        control complexity reported by experiment F6."""
        x, y = source, dest
        w = x
        i = 0
        while w not in self.base.tables[y].trees:
            i += 1
            x, y = y, x
            w = int(self.base.hierarchy.pivot[i, x])
        return i
