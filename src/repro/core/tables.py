"""Per-vertex routing tables of the general TZ scheme.

The table of a vertex ``u`` (§3–§4 of the paper) contains:

* ``trees`` — for every tree ``T_w`` with ``u ∈ C(w)`` (i.e. every
  ``w ∈ B(u)``, plus every top-level landmark), ``u``'s O(1)-word tree
  record.  This is what lets ``u`` *forward* inside those trees.
* ``own_labels`` — ``u``'s own tree label ``μ(T_w, u)`` for each of
  those trees: what ``u`` hands back during a handshake so the peer can
  route to it inside ``T_w``.
* ``members`` — ``u`` roots its own cluster tree ``T_u``; it stores, for
  every ``v`` in its **level-0 cluster** ``C_0(u) = {v : d(u,v) < d₁(v)}``,
  the pair ``(v, μ(T_u, v))``.  This is what lets a *source* answer "is
  the destination in my (level-0) cluster?" and, if so, route it along
  an exact shortest path.  The restriction to level 0 is load-bearing:
  the cluster of a landmark at its own level spans far more (the whole
  graph at the top level), but the 4k−5 proof only ever uses the
  level-0 check, and level-0 clusters of landmarks are empty — which is
  precisely why landmark tables stay small.
* ``pivots`` — ``u``'s own pivot list ``p_1(u)..p_{k-1}(u)`` (used by the
  handshaking variant).

Expected sizes (the paper's accounting, validated by experiments F3–F5):
``|trees| ≤ |B(u)| = O(k·n^{1/k})`` w.h.p. and
``|members| = |C_0(u)| ≤ 4n/s`` under ``center()`` selection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..trees.label_codec import TreeLabel, tree_label_bits
from ..trees.tz_tree import TreeLocalRecord


@dataclass
class VertexTable:
    """Compiled routing table of one vertex (see module docstring)."""

    u: int
    trees: Dict[int, TreeLocalRecord]
    own_labels: Dict[int, TreeLabel]
    members: Dict[int, TreeLabel]
    pivots: Tuple[int, ...]

    def size_bits(
        self,
        n: int,
        tree_sizes: Dict[int, int],
        own_tree_size: int,
        max_port: int,
    ) -> int:
        """Measured table size in bits.

        Each ``trees`` entry costs an id, the O(1)-word record
        (fixed-width fields sized for its tree), and ``u``'s own tree
        label in that tree; each ``members`` entry costs an id plus the
        member's encoded tree label; pivots cost one id each.
        """
        id_bits = (max(n - 1, 0)).bit_length()
        bits = 0
        for w, record in self.trees.items():
            bits += id_bits
            bits += record.size_bits(tree_sizes[w], max_port)
            bits += tree_label_bits(self.own_labels[w], tree_sizes[w])
        for _v, label in self.members.items():
            bits += id_bits
            bits += tree_label_bits(label, own_tree_size)
        bits += id_bits * len(self.pivots)
        return bits
