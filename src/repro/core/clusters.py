"""Clusters and bunches — the landmark geometry of Thorup–Zwick.

For a vertex ``w`` at hierarchy level ``i`` (``w ∈ A_i \\ A_{i+1}``), its
**cluster** is

.. math:: C(w) = \\{ v : d(w, v) < d(A_{i+1}, v) \\},

the set of vertices strictly closer to ``w`` than to the next landmark
level.  The **bunch** of ``v`` is the dual set
``B(v) = {w : v ∈ C(w)}``; tables are bunch-indexed, so
``Σ_w |C(w)| = Σ_v |B(v)|`` is the total table volume.

The property everything rests on (proved in TZ; verified by property
tests here): *if* ``v ∈ C(w)`` *then every vertex on every shortest
w→v path is in* ``C(w)``.  Proof sketch: for ``x`` on such a path,
``d(w,x) = d(w,v) − d(x,v)`` and
``d(A_{i+1},x) ≥ d(A_{i+1},v) − d(x,v) > d(w,v) − d(x,v) = d(w,x)``,
strictly, because cluster membership is strict.  Hence a shortest-path
tree of ``w`` restricted to ``C(w)`` exists and truncated Dijkstra
computes it with exact distances.

Two implementations, cross-validated by tests:

* ``method="sparse"`` — one truncated Dijkstra per cluster (pure Python,
  O(Σ|C(w)|·deg·log n), memory-light);
* ``method="dense"`` — one vectorized scipy all-pairs run, then clusters
  fall out of row-wise comparisons (the HPC-guide path: push the hot loop
  into C).  Chosen automatically for modest ``n``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..errors import GraphError
from ..graphs.graph import Graph
from ..graphs.shortest_paths import truncated_dijkstra
from ..graphs.trees import RootedTree, tree_from_parents

#: Above this vertex count the dense (all-pairs) method is not attempted.
DENSE_LIMIT = 3072


@dataclass
class Cluster:
    """A computed cluster: exact in-cluster distances and SPT parents."""

    center: int
    dist: Dict[int, float]
    parent: Dict[int, int]

    def __len__(self) -> int:
        return len(self.dist)

    def __contains__(self, v: int) -> bool:
        return v in self.dist

    def members(self) -> List[int]:
        return sorted(self.dist)

    def tree(self) -> RootedTree:
        """The shortest-path tree of the center spanning the cluster."""
        return tree_from_parents(self.center, self.parent)


def compute_cluster(
    graph: Graph,
    w: int,
    threshold: np.ndarray,
) -> Cluster:
    """Cluster of ``w`` under per-vertex thresholds (strict ``<``).

    ``threshold[v]`` is ``d(A_{i+1}, v)`` in the TZ construction —
    ``np.inf`` entries make ``v`` unconditionally admissible (top level).
    ``w`` itself is always a member.
    """
    dist, parent, _ = truncated_dijkstra(graph, w, threshold)
    return Cluster(w, dist, parent)


def compute_all_clusters(
    graph: Graph,
    centers: Sequence[int],
    thresholds: np.ndarray,
    *,
    method: str = "auto",
) -> Dict[int, Cluster]:
    """Clusters for many centers.

    ``thresholds`` has shape ``(len(centers), n)`` or ``(n,)`` (shared).
    ``method`` is ``"auto"``, ``"sparse"``, or ``"dense"``.
    """
    centers = [int(w) for w in centers]
    thresholds = np.asarray(thresholds, dtype=np.float64)
    if thresholds.ndim == 1:
        thresholds = np.broadcast_to(thresholds, (len(centers), graph.n))
    if thresholds.shape != (len(centers), graph.n):
        raise GraphError(
            f"thresholds must have shape ({len(centers)}, {graph.n})"
        )
    if method == "auto":
        method = "dense" if graph.n <= DENSE_LIMIT else "sparse"
    if method == "sparse":
        return {
            w: compute_cluster(graph, w, thresholds[idx])
            for idx, w in enumerate(centers)
        }
    if method != "dense":
        raise GraphError(f"unknown cluster method {method!r}")

    dist_rows, pred_rows = graph.csr().sssp_batch(
        np.asarray(centers, dtype=np.int64)
    )
    out: Dict[int, Cluster] = {}
    for idx, w in enumerate(centers):
        row = dist_rows[idx]
        member_mask = row < thresholds[idx]
        member_mask[w] = True
        members = np.flatnonzero(member_mask)
        dist = {int(v): float(row[v]) for v in members}
        parent = {}
        for v in members:
            v = int(v)
            parent[v] = -1 if v == w else int(pred_rows[idx][v])
        out[w] = Cluster(w, dist, parent)
    return out


def bunches(clusters: Dict[int, Cluster]) -> Dict[int, Dict[int, float]]:
    """Invert clusters into bunches: ``B(v) = {w: d(w, v)}``."""
    out: Dict[int, Dict[int, float]] = {}
    for w, cluster in clusters.items():
        for v, d in cluster.dist.items():
            out.setdefault(v, {})[w] = d
    return out


def check_subpath_closure(cluster: Cluster) -> None:
    """Verify that SPT parents of members are members with consistent
    distances — the invariant routing correctness rests on."""
    for v, p in cluster.parent.items():
        if v == cluster.center:
            continue
        if p not in cluster.dist:
            raise GraphError(
                f"cluster of {cluster.center}: parent {p} of member {v} "
                "is not a member (subpath closure violated)"
            )
        if cluster.dist[p] >= cluster.dist[v]:
            raise GraphError(
                f"cluster of {cluster.center}: distances not increasing "
                f"along the tree edge ({p}, {v})"
            )


def cluster_size_histogram(clusters: Dict[int, Cluster]) -> np.ndarray:
    """Sorted array of cluster sizes (for the F3 experiment)."""
    return np.sort(np.array([len(c) for c in clusters.values()], dtype=np.int64))
