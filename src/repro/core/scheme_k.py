"""The general Thorup–Zwick compact routing scheme (SPAA'01 §4).

Preprocessing
-------------
1. Sample the hierarchy ``A_0 = V ⊇ A_1 ⊇ … ⊇ A_{k-1}`` and resolve
   distances ``d_i(v) = d(A_i, v)`` and consistent pivots ``p_i(v)``.
2. For every vertex ``w`` (at its top level ``i``), grow the cluster
   ``C(w) = {v : d(w,v) < d_{i+1}(v)}`` and its shortest-path tree
   ``T_w`` (top-level clusters span the whole graph).
3. Compile each ``T_w`` with the §2 tree-routing scheme: every member
   gets an O(1)-word record, every member a tree label.
4. Tables and labels as described in :mod:`repro.core.tables` and
   :mod:`repro.core.labels`.

Routing (source ``u``, destination label ``L(v)``)
--------------------------------------------------
::

    if v == u:            arrived
    elif v in members(u): route down T_u using the stored μ(T_u, v)
    else: for i = 1..k-1 (smallest first):
        w = p_i(v)        # from L(v)
        if u has a record for T_w:       # i.e. u ∈ C(w)
            route inside T_w toward μ(T_w, v)   # from L(v)

Stretch ``4k−5`` (reproduced from the paper; ``Δ = d(u, v)``):
if the route commits at level ``i ≥ 1`` then ``v ∉ C(u)`` gives
``d_1(v) ≤ Δ``, and each failed level ``j < i`` gives
``d_{j+1}(u) ≤ d(p_j(v), u) ≤ d_j(v) + Δ`` and
``d_{j+1}(v) ≤ d_{j+1}(u) + Δ``, so inductively ``d_i(v) ≤ (2i−1)Δ``.
The tree route inside ``T_{p_i(v)}`` costs at most
``d(u, p_i(v)) + d(p_i(v), v) ≤ 2·d_i(v) + Δ ≤ (4i−1)Δ ≤ (4k−5)Δ``.
Level 0 (``v ∈ C(u)``) routes along an exact shortest path.

``k = 1`` degenerates to full shortest-path tables with stretch 1, and
``k = 2`` is exactly the §3 stretch-3 scheme (see
:mod:`repro.core.scheme_k2` for the landmark-selection specialization).
"""

from __future__ import annotations

import warnings
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import PreprocessingError, RoutingError
from ..graphs.graph import Graph
from ..graphs.ports import PortedGraph
from ..rng import RngLike, make_rng
from ..trees.label_codec import TreeLabel, tree_label_bits
from ..trees.tz_tree import TreeRouter, build_tree_router, decide_from_record
from .clusters import Cluster, compute_all_clusters
from .landmarks import Hierarchy, build_hierarchy
from .labels import LabelEntry, TZLabel, label_size_bits
from .router import RouteHeader, RoutingScheme
from .tables import VertexTable


class TZRoutingScheme(RoutingScheme):
    """A compiled TZ scheme over a ported graph (see module docstring)."""

    def __init__(
        self,
        graph: Graph,
        ported: PortedGraph,
        hierarchy: Hierarchy,
        tables: Dict[int, VertexTable],
        labels: Dict[int, TZLabel],
        tree_sizes: Dict[int, int],
        tree_labels: Dict[int, Dict[int, TreeLabel]],
    ) -> None:
        self.graph = graph
        self.ported = ported
        self.hierarchy = hierarchy
        self.tables = tables
        self.labels = labels
        self.tree_sizes = tree_sizes
        self.tree_labels = tree_labels
        self.n = graph.n
        self.k = hierarchy.k
        self.name = f"tz-k{self.k}"
        #: Array form of the scheme (set by the vectorized builder); lets
        #: the batch engine compile without walking the dict tables.
        self._arrays = None
        degs = graph.degrees()
        self._max_port = int(degs.max()) if degs.size else 1

    # ------------------------------------------------------------------
    # Runtime interface
    # ------------------------------------------------------------------
    def initial_header(self, source: int, dest: int) -> RouteHeader:
        return RouteHeader(dest=dest)

    def decide(
        self, u: int, header: RouteHeader
    ) -> Tuple[Optional[int], RouteHeader]:
        if u == header.dest:
            return None, header
        if header.tree == -1:
            header = self._commit(u, header)
        table = self.tables[u]
        record = table.trees.get(header.tree)
        if record is None:
            raise RoutingError(
                f"vertex {u} has no record for tree {header.tree}: the "
                "message left the cluster (scheme invariant violated)"
            )
        port = decide_from_record(record, header.tree_label)
        if port is None:
            # Tree routing arrived but this is not the destination vertex:
            # only possible on corrupted labels.
            raise RoutingError(
                f"tree routing terminated at {u}, destination is {header.dest}"
            )
        return port, header

    def _commit(self, u: int, header: RouteHeader) -> RouteHeader:
        """The source's strategy: own cluster first, then v's pivots by
        increasing level — this exact order is what the 4k−5 proof needs.
        """
        v = header.dest
        table = self.tables[u]
        member_label = table.members.get(v)
        if member_label is not None:
            return header.with_tree(u, member_label)
        dest_label = self.labels[v]
        for i in range(1, self.k):
            entry = dest_label.entry(i)
            if entry.pivot in table.trees:
                return header.with_tree(entry.pivot, entry.tree_label)
        raise RoutingError(
            f"no usable tree from {u} to {v}: graph must be connected and "
            "the top hierarchy level non-empty"
        )

    # ------------------------------------------------------------------
    # Batch-engine export
    # ------------------------------------------------------------------
    def compile_batch(self, ported: Optional[PortedGraph] = None):
        """The dense-array form of this scheme for the batch engine.

        Materializes (and caches, per port assignment) every tree's
        records, labels and member maps as the columnar arrays that
        :class:`repro.sim.engine.batch.BatchRouter` routes on.  The
        export is derived from the same compiled tables the hop-by-hop
        path reads, so both runtimes forward over identical state.
        """
        from ..sim.engine.compile import compile_scheme

        target = self.ported if ported is None else ported
        cached = getattr(self, "_batch_compiled", None)
        if cached is not None and cached[0] is target:
            return cached[1]
        compiled = compile_scheme(self, target)
        self._batch_compiled = (target, compiled)
        return compiled

    # ------------------------------------------------------------------
    # Size accounting
    # ------------------------------------------------------------------
    def table_bits(self, u: int) -> int:
        return self.tables[u].size_bits(
            self.n, self.tree_sizes, self.tree_sizes[u], self._max_port
        )

    def label_bits(self, v: int) -> int:
        return label_size_bits(self.labels[v], self.n, self.tree_sizes)

    def header_bits(self, header: RouteHeader) -> int:
        id_bits = self._id_bits()
        bits = 2 * id_bits  # dest id + tree id
        if header.tree_label is not None:
            bits += tree_label_bits(
                header.tree_label, self.tree_sizes[header.tree]
            )
        return bits

    def stretch_bound(self) -> float:
        if self.k == 1:
            return 1.0
        return float(4 * self.k - 5)

    # ------------------------------------------------------------------
    # Introspection used by experiments/tests
    # ------------------------------------------------------------------
    def bunch_size(self, u: int) -> int:
        """|{w : u ∈ C(w)}| — the number of trees u participates in."""
        return len(self.tables[u].trees)

    def cluster_size(self, w: int) -> int:
        return self.tree_sizes[w]

    def landmark_count(self) -> int:
        return int(self.hierarchy.top_level().size)


def build_tz_scheme(
    graph: Graph,
    ported: Optional[PortedGraph] = None,
    *,
    k: int = 2,
    rng: RngLike = None,
    sampling: str = "bernoulli",
    levels: Optional[Sequence[np.ndarray]] = None,
    consistent_pivots: bool = True,
    cluster_method: str = "auto",
    builder: str = "reference",
    kernel: str = "auto",
) -> TZRoutingScheme:
    """Preprocess ``graph`` into a :class:`TZRoutingScheme`.

    Parameters
    ----------
    ported:
        Port assignment; defaults to the deterministic ``"sorted"`` one.
    k:
        Number of hierarchy levels (stretch ``4k−5``; ``k=2`` → 3).
    sampling:
        ``"bernoulli"`` or ``"capped"`` (see
        :func:`repro.core.landmarks.build_hierarchy`); ignored when
        explicit ``levels`` are given (used by the §3 specialization).
    consistent_pivots:
        Must stay ``True`` for correctness; exposed for ablation A2.
    builder:
        ``"reference"`` (the per-node construction below) or
        ``"vectorized"`` — the array-program pipeline of
        :mod:`repro.core.build`, which produces a bit-identical scheme
        (and caches its array form for the batch-engine compile);
        ``cluster_method`` only applies to the per-node path.
        ``"pernode"`` is the deprecated spelling of ``"reference"``.
    kernel:
        Frontier-sweep backend of the vectorized builder
        (``"numpy"``/``"native"``/``"auto"``, see :mod:`repro.kernels`);
        ignored by the reference path.  Bit-identical output either way.
    """
    from ..graphs.ports import assign_ports

    if builder == "pernode":
        warnings.warn(
            'builder="pernode" is deprecated; use builder="reference"',
            DeprecationWarning,
            stacklevel=2,
        )
        builder = "reference"
    if builder not in ("reference", "vectorized"):
        raise PreprocessingError(f"unknown builder {builder!r}")
    if not graph.is_connected():
        raise PreprocessingError(
            "TZ routing requires a connected graph; take "
            "graph.largest_component() first"
        )
    if ported is None:
        ported = assign_ports(graph, "sorted")
    gen = make_rng(rng)

    if levels is not None:
        from .landmarks import hierarchy_from_levels

        hierarchy = hierarchy_from_levels(graph, levels, consistent=consistent_pivots)
    else:
        hierarchy = build_hierarchy(
            graph,
            k,
            gen,
            sampling=sampling,
            consistent_pivots=consistent_pivots,
        )

    if builder == "vectorized":
        from .build.arrays import scheme_from_arrays
        from .build.vectorized import vectorized_arrays

        arrays = vectorized_arrays(graph, ported, hierarchy, kernel=kernel)
        scheme = scheme_from_arrays(graph, ported, arrays)
        scheme._arrays = arrays
        return scheme

    # --- clusters, level by level (shared threshold row per level) -----
    clusters: Dict[int, Cluster] = {}
    for i in range(hierarchy.k):
        centers = [
            int(w) for w in hierarchy.levels[i] if hierarchy.level_of[w] == i
        ]
        if not centers:
            continue
        threshold = hierarchy.dist[i + 1]
        clusters.update(
            compute_all_clusters(graph, centers, threshold, method=cluster_method)
        )

    # --- compile one tree router per cluster ---------------------------
    routers: Dict[int, TreeRouter] = {}
    tree_sizes: Dict[int, int] = {}
    tree_labels: Dict[int, Dict[int, TreeLabel]] = {}
    tables: Dict[int, VertexTable] = {
        u: VertexTable(u=u, trees={}, own_labels={}, members={}, pivots=tuple())
        for u in range(graph.n)
    }
    # Level-0 distances bound the source-side member maps: the 4k−5
    # strategy only ever asks "is v in my *level-0* cluster?", and
    # level-0 clusters of landmarks are (nearly) empty — storing the
    # full level-i cluster at a top-level vertex would cost Θ(n).
    d1 = hierarchy.dist[1] if hierarchy.k >= 2 else np.full(graph.n, np.inf)
    for w, cluster in clusters.items():
        router = build_tree_router(cluster.tree(), ported, port_model="fixed")
        routers[w] = router
        tree_sizes[w] = len(cluster)
        tree_labels[w] = router.labels
        for x, record in router.records.items():
            tables[x].trees[w] = record
            tables[x].own_labels[w] = router.labels[x]
        tables[w].members = {
            v: mu
            for v, mu in router.labels.items()
            if v == w or cluster.dist[v] < d1[v]
        }

    # --- pivots per vertex, and the destination labels -----------------
    labels: Dict[int, TZLabel] = {}
    for v in range(graph.n):
        tables[v].pivots = tuple(
            int(hierarchy.pivot[i, v]) for i in range(1, hierarchy.k)
        )
        entries: List[LabelEntry] = []
        for i in range(1, hierarchy.k):
            w = int(hierarchy.pivot[i, v])
            mu = tree_labels.get(w, {}).get(v)
            if mu is None:
                raise PreprocessingError(
                    f"vertex {v} is not in the cluster of its level-{i} "
                    f"pivot {w}: pivots are inconsistent (see DESIGN.md §3)"
                )
            entries.append(LabelEntry(w, mu))
        labels[v] = TZLabel(v, tuple(entries))

    return TZRoutingScheme(
        graph, ported, hierarchy, tables, labels, tree_sizes, tree_labels
    )
