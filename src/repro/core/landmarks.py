"""Landmark hierarchies, the ``center`` algorithm, and consistent pivots.

Three ingredients of TZ SPAA'01 §3–§4 live here:

1. :func:`sample_hierarchy` — the sampling
   ``A_0 = V ⊇ A_1 ⊇ … ⊇ A_{k-1}``, each level keeping vertices of the
   previous one independently with probability ``n^{-1/k}`` (retried
   until ``A_{k-1} ≠ ∅``, as in the paper).

2. :func:`center` — the landmark-selection algorithm of §3 (Theorem 3.1):
   repeatedly sample ``s/|W|``-rate subsets of the still-uncovered
   vertices ``W`` and recompute cluster sizes, until every cluster has at
   most ``4n/s`` members.  Returns A with ``E[|A|] = O(s·log n)``.

3. :func:`compute_pivots` — the *consistent* pivots ``p_i(v)``:
   ``p_i(v)`` is the nearest ``A_i`` vertex, except that whenever
   ``d(A_i, v) = d(A_{i+1}, v)`` we force ``p_i(v) = p_{i+1}(v)``.
   Consistency is what guarantees ``v ∈ C(p_i(v))`` for every level
   (either the inequality ``d_i(v) < d_{i+1}(v)`` is strict — making
   ``v`` a cluster member outright — or the pivot chain escalates to the
   top level, whose clusters span everything).  Ablation A2 switches this
   off and watches label construction break.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import PreprocessingError
from ..graphs.graph import Graph
from ..graphs.shortest_paths import truncated_dijkstra
from ..rng import RngLike, make_rng
from .clusters import DENSE_LIMIT


@dataclass
class Hierarchy:
    """A fully-resolved landmark hierarchy over a graph.

    ``dist`` has shape ``(k+1, n)``: ``dist[i, v] = d(A_i, v)`` with the
    sentinel row ``dist[k] = inf`` (``A_k = ∅``).  ``pivot`` has shape
    ``(k, n)`` and holds the consistent pivots.  ``level_of[v]`` is the
    highest level containing ``v``.
    """

    k: int
    levels: List[np.ndarray]
    dist: np.ndarray
    pivot: np.ndarray
    level_of: np.ndarray

    @property
    def n(self) -> int:
        return self.level_of.shape[0]

    def top_level(self) -> np.ndarray:
        return self.levels[self.k - 1]

    def threshold_for(self, w: int) -> int:
        """Index of the distance row bounding ``w``'s cluster:
        ``C(w) = {v : d(w,v) < dist[level_of[w]+1, v]}``."""
        return int(self.level_of[w]) + 1

    def sizes(self) -> List[int]:
        return [int(a.size) for a in self.levels]


def sample_hierarchy(
    n: int,
    k: int,
    rng: RngLike = None,
    *,
    q: Optional[float] = None,
    max_retries: int = 200,
) -> List[np.ndarray]:
    """Sample level sets ``A_0 ⊇ … ⊇ A_{k-1}`` (Bernoulli ``n^{-1/k}``).

    Retries until the top level is non-empty; the paper conditions on the
    same event.  Raises :class:`PreprocessingError` if the retry budget is
    exhausted (only possible for adversarially tiny ``n``/huge ``k``).
    """
    if k < 1:
        raise PreprocessingError(f"k must be >= 1, got {k}")
    if n < 1:
        raise PreprocessingError(f"n must be >= 1, got {n}")
    gen = make_rng(rng)
    prob = float(n ** (-1.0 / k)) if q is None else float(q)
    for _ in range(max_retries):
        levels = [np.arange(n, dtype=np.int64)]
        ok = True
        for _i in range(1, k):
            prev = levels[-1]
            keep = prev[gen.random(prev.size) < prob]
            if keep.size == 0:
                ok = False
                break
            levels.append(keep)
        if ok:
            return levels
    raise PreprocessingError(
        f"could not sample a non-empty {k}-level hierarchy on {n} vertices "
        f"within {max_retries} attempts"
    )


def center(
    graph: Graph,
    s: float,
    rng: RngLike = None,
    *,
    cap_factor: float = 4.0,
    max_rounds: int = 200,
    dist_matrix: Optional[np.ndarray] = None,
) -> np.ndarray:
    """TZ §3 landmark selection (Theorem 3.1).

    Returns a sorted landmark array ``A`` such that every ``w ∉ A`` has
    ``|C(w)| = |{v : d(w,v) < d(A,v)}| ≤ cap_factor·n/s``; the expected
    size of ``A`` is ``O(s·log n)``.

    With ``dist_matrix`` (an ``(n, n)`` all-pairs array) or for
    ``n ≤ DENSE_LIMIT`` the per-round cluster sizes are computed by one
    vectorized comparison; otherwise capped truncated Dijkstra runs are
    used per uncovered vertex.
    """
    gen = make_rng(rng)
    n = graph.n
    if s <= 0:
        raise PreprocessingError(f"s must be positive, got {s}")
    cap = cap_factor * n / s
    dense = dist_matrix is not None or n <= DENSE_LIMIT
    D = dist_matrix
    if dense and D is None:
        from ..graphs.shortest_paths import all_pairs_shortest_paths

        D = all_pairs_shortest_paths(graph)

    in_A = np.zeros(n, dtype=bool)
    W = np.arange(n, dtype=np.int64)
    for _round in range(max_rounds):
        if W.size == 0:
            break
        p = min(1.0, s / W.size)
        picked = W[gen.random(W.size) < p]
        if picked.size == 0 and W.size > 0:
            # Ensure progress: force one uniformly random pick.
            picked = np.array([W[int(gen.integers(0, W.size))]], dtype=np.int64)
        in_A[picked] = True
        A = np.flatnonzero(in_A)
        if dense:
            dA = D[A].min(axis=0)
            # |C(w)| per remaining vertex, vectorized row comparisons.
            candidates = W[~in_A[W]]
            if candidates.size:
                sizes = (D[candidates] < dA[None, :]).sum(axis=1)
                W = candidates[sizes > cap]
            else:
                W = candidates
        else:
            # Witness-free batched sweep: one C-level pass per round.
            dA = graph.csr().multi_source_distances(A)
            still = []
            limit = int(np.floor(cap))
            for w in W:
                w = int(w)
                if in_A[w]:
                    continue
                _, _, capped = truncated_dijkstra(graph, w, dA, cap=limit)
                if capped:
                    still.append(w)
            W = np.array(still, dtype=np.int64)
    else:
        raise PreprocessingError(
            f"center() did not converge within {max_rounds} rounds"
        )
    return np.flatnonzero(in_A)


def compute_pivots(
    graph: Graph,
    levels: Sequence[np.ndarray],
    *,
    consistent: bool = True,
) -> Tuple[np.ndarray, np.ndarray]:
    """Distances to every level and the (consistent) pivots.

    Returns ``(dist, pivot)`` of shapes ``(k+1, n)`` and ``(k, n)``.
    ``consistent=False`` reproduces the naive "nearest witness per level"
    choice — exactly the bug ablation A2 quantifies.
    """
    k = len(levels)
    n = graph.n
    dist = np.full((k + 1, n), np.inf)
    witness = np.full((k, n), -1, dtype=np.int64)
    kernel = graph.csr()
    for i in range(k):
        # Batched multi-source sweep per level: the landmark distance
        # table d(A_i, ·) plus the deterministic nearest-landmark witness.
        di, wi = kernel.multi_source(levels[i])
        dist[i] = di
        witness[i] = wi
    pivot = witness.copy()
    if consistent:
        for i in range(k - 2, -1, -1):
            same = dist[i] == dist[i + 1]
            pivot[i][same] = pivot[i + 1][same]
    return dist, pivot


def hierarchy_from_levels(
    graph: Graph,
    levels: Sequence[np.ndarray],
    *,
    consistent: bool = True,
) -> Hierarchy:
    """Resolve explicit level sets into a full :class:`Hierarchy`
    (distances, consistent pivots, top level per vertex)."""
    levels = [np.asarray(a, dtype=np.int64) for a in levels]
    k = len(levels)
    dist, pivot = compute_pivots(graph, levels, consistent=consistent)
    level_of = np.zeros(graph.n, dtype=np.int64)
    for i in range(1, k):
        level_of[levels[i]] = i
    return Hierarchy(k=k, levels=levels, dist=dist, pivot=pivot, level_of=level_of)


def build_hierarchy(
    graph: Graph,
    k: int,
    rng: RngLike = None,
    *,
    sampling: str = "bernoulli",
    consistent_pivots: bool = True,
    cap_factor: float = 4.0,
    max_attempts: int = 8,
) -> Hierarchy:
    """Sample levels and resolve distances/pivots into a :class:`Hierarchy`.

    ``sampling``:

    * ``"bernoulli"`` — the paper's basic ``n^{-1/k}`` sampling (bunch
      sizes bounded in expectation / w.h.p.).
    * ``"capped"`` — draw ``max_attempts`` independent Bernoulli
      hierarchies and keep the one minimizing the largest bunch
      (heuristic variant for ablation A1; see DESIGN.md §2.5).
    """
    gen = make_rng(rng)
    n = graph.n

    def resolve(levels: List[np.ndarray]) -> Hierarchy:
        return hierarchy_from_levels(graph, levels, consistent=consistent_pivots)

    if sampling == "bernoulli":
        return resolve(sample_hierarchy(n, k, gen))
    if sampling == "capped":
        best: Optional[Hierarchy] = None
        best_score = np.inf
        for _ in range(max_attempts):
            h = resolve(sample_hierarchy(n, k, gen))
            score = _max_bunch_size(h)
            if score < best_score:
                best, best_score = h, score
        assert best is not None
        return best
    raise PreprocessingError(f"unknown sampling strategy {sampling!r}")


def _max_bunch_size(h: Hierarchy) -> int:
    """Largest bunch size implied by a hierarchy: for each v, the number
    of (level, landmark) pairs with d(w, v) < d_{i+1}(v).  Computed
    approximately from level sizes when exact clusters are unavailable;
    used only to rank candidate hierarchies in "capped" sampling."""
    # Cheap proxy: sum over levels of the count of level members strictly
    # closer than the next level. Exact bunches need all-pairs distances;
    # the proxy (number of levels with strict progress, weighted by level
    # size ratio) correlates well and is enough to rank candidates.
    score = 0
    for i in range(h.k - 1):
        strict = h.dist[i] < h.dist[i + 1]
        ratio = max(1, h.levels[i].size // max(1, h.levels[i + 1].size))
        score += int(strict.sum()) * ratio
    return score
