"""Vertex labels of the general TZ scheme.

The label of ``v`` (§4 of the paper) is::

    L(v) = ( v,
             (p_1(v), μ(T_{p_1(v)}, v)),
             ...,
             (p_{k-1}(v), μ(T_{p_{k-1}(v)}, v)) )

where ``μ(T, v)`` is ``v``'s tree-routing label inside ``T`` (§2).  The
level-0 entry ``(v, μ(T_v, v))`` is omitted: ``v`` is the root of its own
tree, so its label there is the trivial ``TreeLabel(0, ())``.

Consistent pivots (see :mod:`repro.core.landmarks`) guarantee
``v ∈ C(p_i(v))`` for every ``i``, i.e. every ``μ`` in the label exists.
When consecutive pivots coincide (``p_i(v) = p_{i+1}(v)``), the entry is
stored once with a repeat flag — the bit accounting reflects that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..bitio import BitReader, BitWriter
from ..errors import LabelError
from ..trees.label_codec import (
    TreeLabel,
    decode_tree_label,
    encode_tree_label,
    tree_label_bits,
)


@dataclass(frozen=True)
class LabelEntry:
    """One per-level label entry: the pivot and v's label in its tree."""

    pivot: int
    tree_label: TreeLabel


@dataclass(frozen=True)
class TZLabel:
    """Full routing label of one vertex (entries for levels 1..k-1)."""

    v: int
    entries: Tuple[LabelEntry, ...]

    @property
    def k(self) -> int:
        return len(self.entries) + 1

    def entry(self, i: int) -> LabelEntry:
        """Entry for level ``i`` (``1 <= i <= k-1``)."""
        if not 1 <= i <= len(self.entries):
            raise LabelError(f"no label entry for level {i}")
        return self.entries[i - 1]


def label_size_bits(
    label: TZLabel,
    n: int,
    tree_sizes: Dict[int, int],
) -> int:
    """Measured size of ``label`` in bits.

    Layout: vertex id (⌈log n⌉ bits); then per level a repeat flag (1
    bit); for non-repeated levels the pivot id (⌈log n⌉ bits) and the
    encoded tree label.  ``tree_sizes[w]`` is ``|C(w)|``, needed for the
    fixed-width DFS field of each tree label.
    """
    id_bits = (max(n - 1, 0)).bit_length()
    bits = id_bits
    prev: LabelEntry = None  # type: ignore[assignment]
    for e in label.entries:
        bits += 1  # repeat flag
        if prev is not None and e.pivot == prev.pivot:
            prev = e
            continue
        bits += id_bits
        bits += tree_label_bits(e.tree_label, tree_sizes[e.pivot])
        prev = e
    return bits


def encode_label(label: TZLabel, n: int, tree_sizes: Dict[int, int]) -> BitWriter:
    """Materialize the label as actual bits (round-trip tested)."""
    id_bits = (max(n - 1, 0)).bit_length()
    w = BitWriter()
    w.write_uint(label.v, id_bits)
    prev: LabelEntry = None  # type: ignore[assignment]
    for e in label.entries:
        if prev is not None and e.pivot == prev.pivot:
            w.write_bit(1)
        else:
            w.write_bit(0)
            w.write_uint(e.pivot, id_bits)
            w.extend(encode_tree_label(e.tree_label, tree_sizes[e.pivot]))
        prev = e
    return w


def decode_label(
    reader: BitReader, n: int, k: int, tree_sizes: Dict[int, int]
) -> TZLabel:
    """Inverse of :func:`encode_label` (needs the shared ``tree_sizes``)."""
    id_bits = (max(n - 1, 0)).bit_length()
    v = reader.read_uint(id_bits)
    entries = []
    prev: LabelEntry = None  # type: ignore[assignment]
    for _ in range(k - 1):
        if reader.read_bit() == 1:
            if prev is None:
                raise LabelError("repeat flag on the first label entry")
            entries.append(prev)
            continue
        pivot = reader.read_uint(id_bits)
        tl = decode_tree_label(reader, tree_sizes[pivot])
        prev = LabelEntry(pivot, tl)
        entries.append(prev)
    return TZLabel(v, tuple(entries))
