"""Vectorized batch machinery shared by the oracle and the labeling.

Both structures answer a query by the same alternation loop: read the
level-``i`` pivot ``w`` of one side, test ``w`` against the other side's
bunch, and on a hit return ``d_i(x) + bunch(y)[w]``.  The batch path runs
that loop over *arrays of pairs*: per level, one vectorized bunch lookup
resolves every pair whose pivot hits, and only the misses (a
geometrically shrinking set — most pairs resolve at low levels) continue.

The bunch hash tables are flattened once into a sorted composite-key
array (``v * n + w``), so a level's membership tests are a single
``np.searchsorted`` — no per-pair Python dict work.
"""

from __future__ import annotations

from typing import Mapping, Tuple, Type

import numpy as np


class FlatBunches:
    """All per-vertex bunches packed into one binary-searchable array.

    ``composite`` holds ``v * n + w`` for every bunch entry ``w ∈ B(v)``,
    globally sorted (segments ordered by ``v``, keys sorted within each
    segment), with ``values`` aligned.  Lookup of ``m`` pairs is one
    vectorized ``searchsorted`` over the packed array.
    """

    __slots__ = ("n", "composite", "values")

    def __init__(self, n: int, composite: np.ndarray, values: np.ndarray) -> None:
        self.n = n
        self.composite = composite
        self.values = values

    @classmethod
    def from_dicts(
        cls, bunch: Mapping[int, Mapping[int, float]], n: int
    ) -> "FlatBunches":
        composite: list = []
        values: list = []
        for v in range(n):
            entries = bunch.get(v)
            if not entries:
                continue
            for w in sorted(entries):
                composite.append(v * n + w)
                values.append(entries[w])
        return cls(
            n,
            np.asarray(composite, dtype=np.int64),
            np.asarray(values, dtype=np.float64),
        )

    def lookup(self, w: np.ndarray, v: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Membership mask and values for pairs ``(w[i], v[i])``.

        Returns ``(hit, val)``: ``hit[i]`` iff ``w[i] ∈ B(v[i])``, and
        ``val[i] = d(w[i], v[i])`` where hit (undefined elsewhere).
        """
        query = v * np.int64(self.n) + w
        idx = np.searchsorted(self.composite, query)
        idx_c = np.minimum(idx, max(self.composite.size - 1, 0))
        if self.composite.size:
            hit = (idx < self.composite.size) & (self.composite[idx_c] == query)
            # An out-of-range key (e.g. a -1 pivot sentinel in a hand-built
            # structure) must be a miss, as in the scalar dict lookup — the
            # composite encoding would otherwise alias it to another pair.
            hit &= (w >= 0) & (w < self.n)
        else:
            hit = np.zeros(query.shape, dtype=bool)
        val = np.where(hit, self.values[idx_c] if self.values.size else 0.0, 0.0)
        return hit, val


def batched_tz_query(
    pivot_id: np.ndarray,
    pivot_dist: np.ndarray,
    flat: FlatBunches,
    sources,
    targets,
    error: Type[Exception],
    message: str,
) -> np.ndarray:
    """The TZ alternation loop over arrays of (source, target) pairs.

    ``pivot_id``/``pivot_dist`` have shape ``(k, n)``: the pivot and its
    distance per level per vertex (for the oracle, level 0 is the vertex
    itself at distance 0).  ``sources``/``targets`` broadcast against
    each other; the result has the broadcast shape.  Pairs that fail to
    resolve within ``k`` levels (inconsistent structures) raise
    ``error(message)`` — the same condition the scalar query raises on.
    """
    k, n = pivot_id.shape
    u_in, v_in = np.broadcast_arrays(
        np.asarray(sources, dtype=np.int64), np.asarray(targets, dtype=np.int64)
    )
    shape = u_in.shape
    x = u_in.ravel().copy()
    y = v_in.ravel().copy()
    if x.size and (
        x.min(initial=0) < 0
        or y.min(initial=0) < 0
        or x.max(initial=0) >= n
        or y.max(initial=0) >= n
    ):
        raise error("query vertex id out of range")
    out = np.zeros(x.size, dtype=np.float64)
    active = np.flatnonzero(x != y)
    for i in range(k):
        if active.size == 0:
            break
        w = pivot_id[i, x[active]]
        hit, val = flat.lookup(w, y[active])
        resolved = active[hit]
        out[resolved] = pivot_dist[i, x[resolved]] + val[hit]
        active = active[~hit]
        # Alternate sides for the pairs that missed.
        x[active], y[active] = y[active], x[active]
    if active.size:
        raise error(message)
    return out.reshape(shape)
