"""Approximate distance *labels* — the fully distributed companion.

Where the oracle (:mod:`repro.oracles.distance_oracle`) is a centralized
structure, distance labels shard it: each vertex carries a label of
``Õ(n^{1/k})`` bits, and the 2k−1-approximate distance between ``u`` and
``v`` is computable from **the two labels alone** — no global state, no
graph access.  This is the TZ STOC'01 distance-labeling corollary, and
conceptually it is exactly what the routing handshake exchanges.

Label of ``v``::

    L(v) = ( v,
             [(p_i(v), d_i(v)) for i in 0..k-1],      # pivot column
             {w: d(w, v) for w in B(v)} )             # bunch hash

Query(L(u), L(v))::

    i ← 0; (x, y) ← (u, v)
    while p_i(x) not in bunch(y):
        i ← i+1; (x, y) ← (y, x)
    return d_i(x) + bunch(y)[p_i(x)]

The alternation terminates because the top-level pivot of either side is
in *every* bunch (its cluster spans the graph), and the returned value is
sound (a real path through the pivot) and ≤ (2k−1)·d(u,v) by the same
argument as the oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from ..errors import LabelError, PreprocessingError
from ..graphs.graph import Graph
from ..rng import RngLike, make_rng
from ..core.clusters import bunches, compute_all_clusters
from ..core.landmarks import build_hierarchy
from ._batch import FlatBunches, batched_tz_query


@dataclass(frozen=True)
class DistanceLabel:
    """One vertex's distance label (see module docstring)."""

    v: int
    pivots: Tuple[Tuple[int, float], ...]  # (p_i(v), d_i(v)) for each level
    bunch: Dict[int, float]  # w -> d(w, v), for w in B(v) (incl. v: 0)

    @property
    def k(self) -> int:
        return len(self.pivots)

    def size_bits(self, n: int, dist_bits: int = 32) -> int:
        """Measured label size: ids at ⌈log n⌉ bits, distances at
        ``dist_bits`` (32 covers integer weights up to 2³² here)."""
        id_bits = (max(n - 1, 0)).bit_length()
        entry = id_bits + dist_bits
        return id_bits + entry * (len(self.pivots) + len(self.bunch))


def query_labels(lu: DistanceLabel, lv: DistanceLabel) -> float:
    """2k−1-approximate distance from two labels alone."""
    if lu.v == lv.v:
        return 0.0
    if lu.k != lv.k:
        raise LabelError("labels come from different constructions")
    x, y = lu, lv
    for i in range(lu.k):
        w, dw = x.pivots[i]
        hit = y.bunch.get(w)
        if hit is not None:
            return dw + hit
        x, y = y, x
    raise LabelError(
        "label query did not converge: top-level pivot missing from the "
        "peer bunch (labels are inconsistent)"
    )


def query_steps(lu: DistanceLabel, lv: DistanceLabel) -> int:
    """Number of alternation steps the query needed (≤ k−1)."""
    x, y = lu, lv
    for i in range(lu.k):
        w, _ = x.pivots[i]
        if w in y.bunch:
            return i
        x, y = y, x
    raise LabelError("label query did not converge")


class DistanceLabeling:
    """The full labeling of a graph plus convenience accessors."""

    def __init__(self, k: int, n: int, labels: Dict[int, DistanceLabel]) -> None:
        self.k = k
        self.n = n
        self.labels = labels
        self._batch_cache = None

    def query(self, u: int, v: int) -> float:
        return query_labels(self.labels[u], self.labels[v])

    def query_many(self, sources, targets) -> np.ndarray:
        """Vectorized batch of :meth:`query` calls.

        ``sources``/``targets`` broadcast; the result matches per-pair
        :func:`query_labels` results exactly.  Labels are columnized into
        ``(k, n)`` pivot arrays plus one flat bunch table on first use.
        """
        flat, pivot_id, pivot_dist = self._batch_arrays()
        return batched_tz_query(
            pivot_id,
            pivot_dist,
            flat,
            sources,
            targets,
            LabelError,
            "label query did not converge: top-level pivot missing from "
            "the peer bunch (labels are inconsistent)",
        )

    def _batch_arrays(self):
        if self._batch_cache is None:
            pivot_id = np.empty((self.k, self.n), dtype=np.int64)
            pivot_dist = np.empty((self.k, self.n), dtype=np.float64)
            for v in range(self.n):
                for i, (w, dw) in enumerate(self.labels[v].pivots):
                    pivot_id[i, v] = w
                    pivot_dist[i, v] = dw
            flat = FlatBunches.from_dicts(
                {v: self.labels[v].bunch for v in range(self.n)}, self.n
            )
            self._batch_cache = (flat, pivot_id, pivot_dist)
        return self._batch_cache

    def stretch_bound(self) -> float:
        return 1.0 if self.k == 1 else float(2 * self.k - 1)

    def label_bits(self, v: int, dist_bits: int = 32) -> int:
        return self.labels[v].size_bits(self.n, dist_bits)

    def max_label_bits(self, dist_bits: int = 32) -> int:
        return max(self.label_bits(v, dist_bits) for v in range(self.n))

    def avg_label_bits(self, dist_bits: int = 32) -> float:
        return sum(self.label_bits(v, dist_bits) for v in range(self.n)) / max(
            1, self.n
        )


def build_distance_labels(
    graph: Graph,
    k: int = 2,
    rng: RngLike = None,
    *,
    sampling: str = "bernoulli",
    cluster_method: str = "auto",
) -> DistanceLabeling:
    """Assign every vertex its TZ distance label.

    The crucial consistency requirement: the pivot column stores
    ``d_i(v) = d(p_i(v), v)`` with *consistent* pivots, so that whenever
    the query reads ``(w, d_i(x))`` from ``x``'s label, ``w`` really is
    at distance ``d_i(x)`` from ``x`` — soundness of the estimate.
    """
    if not graph.is_connected():
        raise PreprocessingError("distance labels require a connected graph")
    gen = make_rng(rng)
    hierarchy = build_hierarchy(graph, k, gen, sampling=sampling)
    clusters = {}
    for i in range(hierarchy.k):
        centers = [
            int(w) for w in hierarchy.levels[i] if hierarchy.level_of[w] == i
        ]
        if not centers:
            continue
        clusters.update(
            compute_all_clusters(
                graph, centers, hierarchy.dist[i + 1], method=cluster_method
            )
        )
    bunch_map = bunches(clusters)
    labels: Dict[int, DistanceLabel] = {}
    for v in range(graph.n):
        pivots = tuple(
            (int(hierarchy.pivot[i, v]), float(hierarchy.dist[i, v]))
            for i in range(hierarchy.k)
        )
        bunch = dict(bunch_map.get(v, {}))
        bunch[v] = 0.0
        labels[v] = DistanceLabel(v, pivots, bunch)
    return DistanceLabeling(k=hierarchy.k, n=graph.n, labels=labels)
