"""Thorup–Zwick approximate distance oracles (the STOC'01 companion).

The routing paper's handshaking bound (2k−1) *is* the oracle's query
bound; this module provides the standalone oracle so experiments can
compare the two directly (F8) and the handshake logic can be validated
against an independent implementation.

Structure (for stretch parameter ``k``):

* hierarchy ``A_0 ⊇ … ⊇ A_{k-1}`` with consistent pivots ``p_i(v)`` and
  distances ``d_i(v)``;
* per-vertex **bunch** ``B(v) = ∪_i {w ∈ A_i\\A_{i+1} : d(w,v) < d_{i+1}(v)}``
  stored as a hash table ``w → d(w, v)``.

Query(u, v)::

    w ← u; i ← 0
    while w ∉ B(v):
        i ← i+1; (u, v) ← (v, u); w ← p_i(u)
    return d(w, u) + d(w, v)

Both distances are local: ``d(w,u) = d_i(u)`` is stored with the pivots,
``d(w,v)`` is in ``v``'s bunch.  The alternation argument gives
``answer ≤ (2k−1)·d(u,v)``; expected space is ``O(k·n^{1+1/k})`` words.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..errors import PreprocessingError
from ..graphs.graph import Graph
from ..rng import RngLike, make_rng
from ..core.clusters import bunches, compute_all_clusters
from ..core.landmarks import Hierarchy, build_hierarchy
from ._batch import FlatBunches, batched_tz_query


@dataclass
class DistanceOracle:
    """A compiled oracle; see module docstring for the query algorithm."""

    k: int
    n: int
    hierarchy: Hierarchy
    bunch: Dict[int, Dict[int, float]]

    def query(self, u: int, v: int) -> float:
        """2k−1-approximate distance between ``u`` and ``v``."""
        if u == v:
            return 0.0
        w = u
        i = 0
        while w not in self.bunch[v]:
            i += 1
            if i >= self.k:
                raise PreprocessingError(
                    "oracle query did not converge: top level empty?"
                )
            u, v = v, u
            w = int(self.hierarchy.pivot[i, u])
        return float(self.hierarchy.dist[_level_index(self, w, i)][u]) + float(
            self.bunch[v][w]
        )

    def query_many(self, sources, targets) -> np.ndarray:
        """Vectorized batch of :meth:`query` calls.

        ``sources`` and ``targets`` are arrays (or scalars) of vertex ids
        that broadcast against each other; the result has the broadcast
        shape and matches per-pair ``query`` results exactly.  The bunch
        hash tables are flattened into a binary-searchable array on first
        use, so each alternation level costs one vectorized lookup for
        the still-unresolved pairs instead of a Python loop.
        """
        flat, pivot_id, pivot_dist = self._batch_arrays()
        return batched_tz_query(
            pivot_id,
            pivot_dist,
            flat,
            sources,
            targets,
            PreprocessingError,
            "oracle query did not converge: top level empty?",
        )

    def _batch_arrays(self):
        cached = getattr(self, "_batch_cache", None)
        if cached is None:
            # Level-0 "pivot" of u is u itself (the query starts at w=u);
            # dist row 0 is d(A_0, ·) = 0, matching the scalar path.
            pivot_id = np.vstack(
                [np.arange(self.n, dtype=np.int64), self.hierarchy.pivot[1:]]
            )
            pivot_dist = np.asarray(self.hierarchy.dist[: self.k], dtype=np.float64)
            flat = FlatBunches.from_dicts(self.bunch, self.n)
            cached = (flat, pivot_id, pivot_dist)
            self._batch_cache = cached
        return cached

    def stretch_bound(self) -> float:
        return 1.0 if self.k == 1 else float(2 * self.k - 1)

    # -- size accounting ------------------------------------------------
    def size_words(self) -> int:
        """Total stored words: bunch entries + pivot/distance rows."""
        return sum(len(b) for b in self.bunch.values()) + 2 * self.k * self.n

    def size_bits(self, dist_bits: int = 32) -> int:
        id_bits = (max(self.n - 1, 0)).bit_length()
        entry = id_bits + dist_bits
        return self.size_words() * entry

    def bunch_size(self, v: int) -> int:
        return len(self.bunch[v])

    def max_bunch_size(self) -> int:
        return max(len(b) for b in self.bunch.values())

    def avg_bunch_size(self) -> float:
        return sum(len(b) for b in self.bunch.values()) / max(1, self.n)


def _level_index(oracle: DistanceOracle, w: int, i: int) -> int:
    """Distance row for the pivot used at alternation step ``i``.

    ``d(w, u) = d_i(u)`` holds because ``w = p_i(u)``; for ``i = 0`` the
    pivot is ``u`` itself and the row is all zeros.
    """
    return i


def build_distance_oracle(
    graph: Graph,
    k: int = 2,
    rng: RngLike = None,
    *,
    sampling: str = "bernoulli",
    cluster_method: str = "auto",
) -> DistanceOracle:
    """Preprocess ``graph`` into a :class:`DistanceOracle`.

    Bunches are obtained by inverting clusters (``w ∈ B(v) ⟺ v ∈ C(w)``),
    reusing the exact cluster engine the routing schemes are built on —
    so oracle tests double as cluster-correctness tests.
    """
    if not graph.is_connected():
        raise PreprocessingError("distance oracle requires a connected graph")
    gen = make_rng(rng)
    hierarchy = build_hierarchy(graph, k, gen, sampling=sampling)
    clusters = {}
    for i in range(hierarchy.k):
        centers = [
            int(w) for w in hierarchy.levels[i] if hierarchy.level_of[w] == i
        ]
        if not centers:
            continue
        clusters.update(
            compute_all_clusters(
                graph, centers, hierarchy.dist[i + 1], method=cluster_method
            )
        )
    bunch = bunches(clusters)
    for v in range(graph.n):
        bunch.setdefault(v, {})[v] = 0.0
    return DistanceOracle(k=hierarchy.k, n=graph.n, hierarchy=hierarchy, bunch=bunch)
