"""Approximate distance oracles, distance labels, and spanners — the
TZ STOC'01 companion structures sharing the bunch machinery with the
routing schemes."""

from .distance_oracle import DistanceOracle, build_distance_oracle
from .distance_labels import (
    DistanceLabel,
    DistanceLabeling,
    build_distance_labels,
    query_labels,
    query_steps,
)
from .spanner import build_spanner, spanner_size_bound

__all__ = [
    "DistanceOracle",
    "build_distance_oracle",
    "DistanceLabel",
    "DistanceLabeling",
    "build_distance_labels",
    "query_labels",
    "query_steps",
    "build_spanner",
    "spanner_size_bound",
]
