"""(2k−1)-spanners from the TZ cluster machinery.

A *t-spanner* of a weighted graph is a subgraph whose distances are at
most ``t`` times the originals.  The TZ construction is free once the
clusters exist: take the union of all cluster shortest-path-tree edges,

.. math:: H = \\bigcup_w E(T_w).

Size: ``Σ_w (|C(w)|−1) = Σ_v |B(v)| − n ≤ k·n^{1+1/k}`` edges in
expectation.  Stretch ``2k−1``: for any pair ``(u, v)``, the oracle
alternation yields a pivot ``w`` with ``u, v ∈ C(w)`` and
``d(u,w) + d(w,v) ≤ (2k−1)·d(u,v)``; both tree paths ``u→w`` and
``w→v`` live inside ``T_w ⊆ H``.  (Applying the argument edge-by-edge
along a shortest path gives the same bound for all pairs.)

This is the spanner corollary of TZ STOC'01 — included because the
routing paper's tree infrastructure *is* the spanner, and because it
gives the experiments an independent structural check on the clusters.
"""

from __future__ import annotations

from typing import Set, Tuple

from ..errors import PreprocessingError
from ..graphs.graph import Graph
from ..rng import RngLike, make_rng
from ..core.clusters import compute_all_clusters
from ..core.landmarks import build_hierarchy


def build_spanner(
    graph: Graph,
    k: int = 2,
    rng: RngLike = None,
    *,
    sampling: str = "bernoulli",
    cluster_method: str = "auto",
) -> Graph:
    """Build the (2k−1)-spanner ``H = ∪_w E(T_w)`` of ``graph``.

    Returns a new :class:`Graph` on the same vertex set whose edge set is
    the union of all cluster-tree edges (with original weights).
    """
    if not graph.is_connected():
        raise PreprocessingError("spanner construction requires a connected graph")
    gen = make_rng(rng)
    hierarchy = build_hierarchy(graph, k, gen, sampling=sampling)
    edges: Set[Tuple[int, int]] = set()
    for i in range(hierarchy.k):
        centers = [
            int(w) for w in hierarchy.levels[i] if hierarchy.level_of[w] == i
        ]
        if not centers:
            continue
        clusters = compute_all_clusters(
            graph, centers, hierarchy.dist[i + 1], method=cluster_method
        )
        for w, cluster in clusters.items():
            for v, p in cluster.parent.items():
                if p != -1:
                    edges.add((v, p) if v < p else (p, v))
    edge_list = sorted(edges)
    weights = [graph.edge_weight(a, b) for a, b in edge_list]
    return Graph(graph.n, edge_list, weights)


def spanner_size_bound(n: int, k: int) -> float:
    """The expected-size reference curve ``k·n^{1+1/k}`` edges."""
    return k * n ** (1.0 + 1.0 / k)
