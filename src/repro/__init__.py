"""repro — a reproduction of Thorup & Zwick, *Compact routing schemes*
(SPAA 2001).

Public API tour
---------------
Graphs and ports::

    from repro import Graph, assign_ports
    from repro.graphs import generators

Tree routing (§2)::

    from repro import build_tree_router, designer_ports_for_tree

Compact routing (§3–§4)::

    from repro import build_stretch3_scheme, build_tz_scheme
    from repro import HandshakeRoutingScheme

Simulation and measurement::

    from repro import Network, measure_scheme, space_stats

Baselines, the distance oracle, and the experiment suite live in
``repro.baselines``, ``repro.oracles``, and ``repro.analysis``.

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record; ``python -m repro all`` regenerates the latter.
"""

from ._version import __version__
from .errors import (
    DeliveryError,
    DisconnectedGraphError,
    EncodingError,
    GraphError,
    LabelError,
    PortError,
    PreprocessingError,
    ReproError,
    RoutingError,
)
from .graphs.graph import Graph, GraphBuilder
from .graphs.ports import PortedGraph, assign_ports, designer_ports_for_tree
from .graphs.trees import RootedTree, tree_from_parents, tree_from_predecessors
from .trees.tz_tree import TreeRouter, build_tree_router
from .trees.interval import IntervalRoutingScheme
from .core.router import RouteHeader, RoutingScheme
from .core.scheme_k import TZRoutingScheme, build_tz_scheme
from .core.scheme_k2 import build_stretch3_scheme
from .core.handshake import HandshakeRoutingScheme
from .core.landmarks import center, build_hierarchy, sample_hierarchy
from .baselines.shortest_path_routing import build_shortest_path_scheme
from .baselines.tree_spanner import build_single_tree_scheme
from .baselines.cowen import build_cowen_scheme
from .oracles.distance_oracle import DistanceOracle, build_distance_oracle
from .oracles.distance_labels import (
    DistanceLabel,
    DistanceLabeling,
    build_distance_labels,
    query_labels,
)
from .oracles.spanner import build_spanner
from .sim.network import Network, RouteResult
from .sim.runner import measure_scheme, run_pairs
from .sim.stats import space_stats, stretch_stats

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "GraphError",
    "DisconnectedGraphError",
    "PortError",
    "RoutingError",
    "DeliveryError",
    "LabelError",
    "PreprocessingError",
    "EncodingError",
    # graphs
    "Graph",
    "GraphBuilder",
    "PortedGraph",
    "assign_ports",
    "designer_ports_for_tree",
    "RootedTree",
    "tree_from_parents",
    "tree_from_predecessors",
    # tree routing
    "TreeRouter",
    "build_tree_router",
    "IntervalRoutingScheme",
    # core schemes
    "RouteHeader",
    "RoutingScheme",
    "TZRoutingScheme",
    "build_tz_scheme",
    "build_stretch3_scheme",
    "HandshakeRoutingScheme",
    "center",
    "build_hierarchy",
    "sample_hierarchy",
    # baselines
    "build_shortest_path_scheme",
    "build_single_tree_scheme",
    "build_cowen_scheme",
    # oracle & companions
    "DistanceOracle",
    "build_distance_oracle",
    "DistanceLabel",
    "DistanceLabeling",
    "build_distance_labels",
    "query_labels",
    "build_spanner",
    # simulation
    "Network",
    "RouteResult",
    "measure_scheme",
    "run_pairs",
    "space_stats",
    "stretch_stats",
]
