"""Command-line entry point: ``python -m repro`` / ``repro``.

Regenerates any experiment of DESIGN.md §4 from the terminal::

    repro list
    repro run f4 --scale small --seed 0
    repro all --scale full --markdown

``all --markdown`` emits the exact tables recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from .analysis.experiments import EXPERIMENTS, run_experiment
from .analysis.reporting import render_markdown_table, render_table


def _cmd_list(_args) -> int:
    print("experiment ids (DESIGN.md §4):")
    for exp_id in EXPERIMENTS:
        doc = (EXPERIMENTS[exp_id].__doc__ or "").strip().splitlines()[0]
        print(f"  {exp_id:4s} {doc}")
    return 0


def _print_result(result, markdown: bool) -> None:
    print()
    if markdown:
        print(f"### {result.title}\n")
        print(render_markdown_table(result.rows))
        if result.notes:
            print(f"\n*{result.notes}*")
    else:
        print(render_table(result.rows, title=result.title))
        if result.notes:
            print(f"note: {result.notes}")


def _cmd_run(args) -> int:
    t0 = time.time()
    result = run_experiment(args.exp_id, scale=args.scale, seed=args.seed)
    _print_result(result, args.markdown)
    print(f"\n[{args.exp_id} finished in {time.time() - t0:.1f}s]")
    return 0


def _cmd_all(args) -> int:
    for exp_id in EXPERIMENTS:
        t0 = time.time()
        result = run_experiment(exp_id, scale=args.scale, seed=args.seed)
        _print_result(result, args.markdown)
        print(f"\n[{exp_id} finished in {time.time() - t0:.1f}s]", file=sys.stderr)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Thorup-Zwick 'Compact routing schemes' reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiment ids").set_defaults(func=_cmd_list)

    p_run = sub.add_parser("run", help="run one experiment")
    p_run.add_argument("exp_id", choices=sorted(EXPERIMENTS))
    p_run.add_argument("--scale", default="small", choices=["small", "full"])
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument("--markdown", action="store_true")
    p_run.set_defaults(func=_cmd_run)

    p_all = sub.add_parser("all", help="run every experiment")
    p_all.add_argument("--scale", default="small", choices=["small", "full"])
    p_all.add_argument("--seed", type=int, default=0)
    p_all.add_argument("--markdown", action="store_true")
    p_all.set_defaults(func=_cmd_all)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
