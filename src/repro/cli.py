"""Command-line entry point: ``python -m repro`` / ``repro``.

Regenerates any experiment of DESIGN.md §4 from the terminal::

    repro list
    repro run f4 --scale small --seed 0
    repro all --scale full --markdown

``all --markdown`` emits the exact tables recorded in EXPERIMENTS.md.

``repro route`` batch-routes a whole traffic matrix through a compiled
scheme (``--engine batch`` by default; ``--engine reference`` drives the
hop-by-hop ground-truth simulator) and prints stretch and hop-count
percentiles plus throughput::

    repro route --graph gnp --n 1024 --pairs 100000 --scheme k2

``repro scenarios`` expands a declarative grid of resilience scenarios
(graph family × k × workload × failure model) and sweeps each one's
failure trials simultaneously through the vectorized engine::

    repro scenarios --graphs gnp grid --k 2 3 --failures iid-edges churn

The full flag-by-flag reference of every subcommand lives in
``docs/cli.md``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis.experiments import EXPERIMENTS, run_experiment
from .analysis.reporting import (
    render_markdown_table,
    render_stretch_summary,
    render_table,
)
from .obs import TELEMETRY, timed, write_metrics, write_trace
from .sim.workloads import WORKLOADS

#: Graph families accepted by ``repro route`` (see ``reference_graph``).
ROUTE_GRAPHS = ("gnp", "ba", "as-like", "grid", "geometric")


def _cmd_list(_args) -> int:
    print("experiment ids (DESIGN.md §4):")
    for exp_id in EXPERIMENTS:
        doc = (EXPERIMENTS[exp_id].__doc__ or "").strip().splitlines()[0]
        print(f"  {exp_id:4s} {doc}")
    return 0


def _print_result(result, markdown: bool) -> None:
    print()
    if markdown:
        print(f"### {result.title}\n")
        print(render_markdown_table(result.rows))
        if result.notes:
            print(f"\n*{result.notes}*")
    else:
        print(render_table(result.rows, title=result.title))
        if result.notes:
            print(f"note: {result.notes}")


def _cmd_run(args) -> int:
    with timed("cli.run", exp=args.exp_id) as tsp:
        result = run_experiment(args.exp_id, scale=args.scale, seed=args.seed)
        _print_result(result, args.markdown)
    print(f"\n[{args.exp_id} finished in {tsp.seconds:.1f}s]")
    return 0


def _cmd_all(args) -> int:
    for exp_id in EXPERIMENTS:
        with timed("cli.run", exp=exp_id) as tsp:
            result = run_experiment(exp_id, scale=args.scale, seed=args.seed)
            _print_result(result, args.markdown)
        print(f"\n[{exp_id} finished in {tsp.seconds:.1f}s]", file=sys.stderr)
    return 0


def _cmd_route(args) -> int:
    import numpy as np

    from .analysis.experiments import reference_graph
    from .core.handshake import HandshakeRoutingScheme
    from .core.scheme_k import build_tz_scheme
    from .core.scheme_k2 import build_stretch3_scheme
    from .graphs.ports import assign_ports
    from .rng import derive
    from .sim.runner import measure_scheme
    from .sim.workloads import make_workload

    graph = reference_graph(args.graph, args.n, args.seed).largest_component()
    ported = assign_ports(graph, "random", rng=derive(args.seed, "route-ports"))

    with timed("cli.build_scheme", scheme=args.scheme) as t_build:
        if args.scheme == "k2":
            scheme = build_stretch3_scheme(
                graph, ported, rng=derive(args.seed, "route-scheme")
            )
        else:
            scheme = build_tz_scheme(
                graph,
                ported,
                k=args.k,
                rng=derive(args.seed, "route-scheme"),
                kernel=args.kernel,
            )
        if args.handshake:
            scheme = HandshakeRoutingScheme(scheme)

    pairs = make_workload(
        graph, args.workload, args.pairs, derive(args.seed, "route-pairs")
    )

    with timed("cli.compile") as t_compile:
        if args.engine != "reference":
            scheme.compile_batch(ported)  # count compile separately from routing
    with timed("cli.route", engine=args.engine) as t_route:
        stats = measure_scheme(
            ported,
            scheme,
            pairs=pairs,
            strict=False,
            engine=args.engine,
            kernel=args.kernel,
        )

    print(
        render_stretch_summary(
            stats,
            title=f"{scheme.name} on {args.graph} "
            f"(n={graph.n}, m={graph.m}, workload={args.workload})",
        )
    )
    rate = len(np.asarray(pairs)) / max(t_route.seconds, 1e-9)
    print(
        f"\npreprocess {t_build.seconds:.2f}s | "
        f"engine compile {t_compile.seconds:.2f}s | "
        f"route {t_route.seconds:.2f}s ({rate:,.0f} pairs/s, "
        f"engine={args.engine}, kernel={args.kernel})"
    )
    return 0


def _cmd_serve_daemon(args) -> int:
    """The ``serve --daemon`` path: run the persistent route server."""
    from pathlib import Path

    from .analysis.experiments import reference_graph
    from .graphs.ports import assign_ports
    from .rng import derive
    from .serve import run_daemon
    from .store import SchemeStore

    store = SchemeStore(args.store)
    scheme = args.scheme
    if scheme is None:
        # No tenant named: make sure the (graph, k, seed) scheme exists
        # as a published lineage, then serve that lineage by default.
        graph = reference_graph(args.graph, args.n, args.seed).largest_component()
        ported = assign_ports(graph, "random", rng=derive(args.seed, "serve-ports"))
        key = store.key_for(graph, args.k, args.seed, ported)
        if store.current(key) is None:
            with timed("cli.store_open") as t_open:
                stored = store.get_or_build(
                    graph,
                    args.k,
                    args.seed,
                    ported=ported,
                    strict=args.strict_verify,
                    kernel=args.kernel,
                )
                store.publish(
                    graph,
                    ported,
                    stored.arrays,
                    seed=args.seed,
                    compiled=stored.compiled,
                    strict=args.strict_verify,
                )
            print(
                f"published lineage {key} "
                f"(n={graph.n}, k={args.k}, {t_open.seconds:.2f}s)",
                flush=True,
            )
        scheme = key

    def on_ready(daemon) -> None:
        host, port = daemon.address
        print(f"serving {scheme} on {host}:{port}", flush=True)
        if args.port_file:
            Path(args.port_file).write_text(f"{port}\n")

    stats = run_daemon(
        args.store,
        host=args.host,
        port=args.port,
        default_scheme=scheme,
        lru_capacity=args.lru_capacity,
        queue_limit=args.queue_limit,
        timeout=args.timeout,
        workers=args.workers,
        kernel=args.kernel,
        on_ready=on_ready,
    )
    print(
        f"daemon drained: {stats['requests']} requests, "
        f"{stats['routed_pairs']:,} pairs, {stats['shed']} shed, "
        f"{stats['timeouts']} timed out, {stats['errors']} errors"
    )
    return 0


def _cmd_serve(args) -> int:
    import numpy as np

    from .analysis.experiments import reference_graph
    from .graphs.ports import assign_ports
    from .rng import derive
    from .sim.runner import pair_true_distances, _stretch_values
    from .sim.stats import stretch_stats
    from .sim.workloads import make_workload
    from .store import RouteService, SchemeStore

    if args.daemon:
        return _cmd_serve_daemon(args)

    graph = reference_graph(args.graph, args.n, args.seed).largest_component()
    ported = assign_ports(graph, "random", rng=derive(args.seed, "serve-ports"))

    store = SchemeStore(args.store)
    key = store.key_for(graph, args.k, args.seed, ported)
    hit = key in store
    with timed("cli.store_open", hit=hit) as t_open:
        stored = store.get_or_build(
            graph,
            args.k,
            args.seed,
            ported=ported,
            strict=args.strict_verify,
            kernel=args.kernel,
        )
    print(
        f"store {'hit' if hit else 'miss (built and saved)'}: "
        f"{stored.path.name} ({stored.path.stat().st_size / 1e6:.1f} MB, "
        f"{stored.meta['entries']:,} entries) opened in {t_open.seconds:.3f}s"
        + (" [strict-verified]" if args.strict_verify else "")
    )

    pairs = make_workload(
        graph, args.workload, args.pairs, derive(args.seed, "serve-pairs")
    )

    service = RouteService(stored.path, kernel=args.kernel)
    with timed("cli.route", shards=args.shards) as t_route:
        result = service.route(pairs, shards=args.shards)

    true_d = pair_true_distances(graph, pairs)
    stats = stretch_stats(
        _stretch_values(result.weight, true_d)[result.delivered],
        delivered=result.delivered_count,
        attempted=result.attempted,
        bound=float(4 * args.k - 5) if args.k > 1 else 1.0,
        hops=result.hops[result.delivered],
    )
    print(
        render_stretch_summary(
            stats,
            title=f"stored tz-k{args.k} on {args.graph} "
            f"(n={graph.n}, m={graph.m}, workload={args.workload})",
        )
    )
    rate = len(np.asarray(pairs)) / max(t_route.seconds, 1e-9)
    print(
        f"\nserve: route {t_route.seconds:.2f}s ({rate:,.0f} pairs/s, "
        f"shards={args.shards}, kernel={args.kernel})"
    )
    return 0


def _cmd_loadgen(args) -> int:
    import json
    from pathlib import Path

    from .serve import run_loadgen

    with timed("cli.loadgen", connections=args.connections) as tsp:
        report = run_loadgen(
            args.host,
            args.port,
            scheme=args.scheme,
            users=args.users,
            connections=args.connections,
            requests=args.requests,
            batch=args.batch,
            zipf_s=args.zipf_s,
            seed=args.seed,
            ttl=args.ttl,
            timeout=args.timeout,
        )

    doc = report.to_dict()
    print(
        f"loadgen: {report.requests} requests x {report.batch} pairs from "
        f"{report.users} users over {report.connections} connections "
        f"(zipf s={report.zipf_s})"
    )
    delivery = doc["delivery_rate"]
    print(
        f"  {report.pairs_per_second:,.0f} pairs/s | latency "
        f"p50 {report.p50 * 1e3:.2f} ms, p99 {report.p99 * 1e3:.2f} ms | "
        f"delivery {'n/a' if delivery is None else f'{delivery:.1%}'}"
    )
    if report.errors:
        codes = ", ".join(
            f"{code}={count}" for code, count in sorted(report.error_codes.items())
        )
        print(f"  {report.errors} failed requests ({codes})")
    print(f"  [{tsp.seconds:.1f}s wall]")
    if args.json:
        out = Path(args.json)
        out.write_text(json.dumps(doc, indent=2) + "\n")
        print(f"wrote {out}")
    return 0


def _cmd_update(args) -> int:
    import json

    from .analysis.experiments import reference_graph
    from .analysis.reporting import render_table
    from .scenarios import run_churn

    graph = reference_graph(args.graph, args.n, args.seed).largest_component()
    print(f"[{args.graph}: n={graph.n} m={graph.m}]", file=sys.stderr)

    store = None
    if args.store is not None:
        from .store import SchemeStore

        store = SchemeStore(args.store)

    with timed("cli.update", epochs=args.epochs, policy=args.policy) as tsp:
        result = run_churn(
            graph,
            k=args.k,
            seed=args.seed,
            epochs=args.epochs,
            pairs=args.pairs,
            policy=args.policy,
            store=store,
            kernel=args.kernel,
            workload=args.workload,
            graph_label=args.graph,
            max_versions=args.max_versions,
        )

    print(
        render_table(
            result.rows(),
            title=(
                f"churn sweep: {args.graph} n={graph.n} k={args.k} "
                f"policy={args.policy}"
            ),
        )
    )
    print(
        f"\n[{len(result.epochs)} epochs, {result.patched_epochs} patched, "
        f"mean update {result.mean_update_seconds * 1e3:.1f} ms, "
        f"initial build {result.build_seconds:.2f}s, in {tsp.seconds:.1f}s]"
        + (f" lineage={result.lineage[:16]}…" if result.lineage else "")
    )
    if args.json:
        from pathlib import Path

        out = Path(args.json)
        out.write_text(json.dumps(result.to_dict(), indent=2) + "\n")
        print(f"wrote {out}")
    return 0


def _cmd_store(args) -> int:
    import json

    from .analysis.reporting import render_table
    from .store import SchemeStore

    store = SchemeStore(args.dir)
    if args.action == "ls":
        rows = []
        for lineage in store.lineages():
            current = store.current(lineage)
            for meta in store.versions(lineage):
                key = meta.get("key", "")
                rows.append(
                    {
                        "lineage": lineage[:12],
                        "v": meta.get("version", 0),
                        "key": key[:12],
                        "n": meta.get("n"),
                        "m": meta.get("m"),
                        "k": meta.get("k"),
                        "builder": meta.get("builder"),
                        "current": "*" if key == current else "",
                    }
                )
        versioned = {m.get("key") for lg in store.lineages() for m in store.versions(lg)}
        legacy = [k for k in store.keys() if k not in versioned]
        print(render_table(rows, title=f"store {store.root} ({len(rows)} versions)"))
        if legacy:
            print(f"\n[{len(legacy)} unversioned container(s) not shown: "
                  + ", ".join(k[:12] for k in legacy) + "]")
        return 0
    if args.action == "info":
        if not args.key:
            print("store info requires a key argument", file=sys.stderr)
            return 2
        if args.key not in store:
            print(f"no stored scheme {args.key!r} in {store.root}", file=sys.stderr)
            return 1
        print(json.dumps(store.info(args.key), indent=2, sort_keys=True))
        return 0
    if args.action == "gc":
        removed = []
        lineages = [args.key] if args.key else store.lineages()
        for lineage in lineages:
            removed.extend(store.gc(lineage, args.max_versions))
        print(
            f"gc: removed {len(removed)} version(s) across "
            f"{len(lineages)} lineage(s), keeping {args.max_versions} each"
        )
        for key in removed:
            print(f"  - {key}")
        return 0
    print(f"unknown store action {args.action!r}", file=sys.stderr)
    return 2


def _cmd_scenarios(args) -> int:
    from .analysis.scenario_report import (
        render_scenario_table,
        write_scenario_json,
        write_scenario_markdown,
    )
    from .scenarios import expand_grid, run_scenarios

    failure_params = {}
    if args.rate is not None:
        failure_params["iid-edges"] = {"rate": args.rate}
    if args.radius is not None:
        failure_params["geo-ball"] = {"radius": args.radius}
    specs = expand_grid(
        graphs=args.graphs,
        ks=args.k,
        workloads=args.workloads,
        failure_models=args.failures,
        n=args.n,
        pairs=args.pairs,
        trials=args.trials,
        seed=args.seed,
        handshake=args.handshake,
        engine=args.engine,
        kernel=args.kernel,
        failure_params=failure_params,
    )

    store = None
    if args.store is not None:
        from .store import SchemeStore

        store = SchemeStore(args.store)

    with timed("cli.scenarios", scenarios=len(specs)) as tsp:
        results = run_scenarios(
            specs,
            store=store,
            progress=lambda s: print(f"[{s.name}]", file=sys.stderr),
        )

    print(render_scenario_table(results, title=f"scenario sweep ({len(results)} scenarios)"))
    print(f"\n[{len(results)} scenarios, {sum(r.spec.trials for r in results)} "
          f"trials total in {tsp.seconds:.1f}s]")
    if args.json:
        print(f"wrote {write_scenario_json(results, args.json)}")
    if args.markdown:
        print(f"wrote {write_scenario_markdown(results, args.markdown)}")
    return 0


def _cmd_frontier(args) -> int:
    from .analysis.experiments import reference_graph
    from .analysis.frontier_report import (
        render_frontier_table,
        write_frontier_json,
        write_frontier_markdown,
    )
    from .backends.frontier import run_frontier

    graphs = []
    for family in args.graphs:
        graph = reference_graph(family, args.n, args.seed).largest_component()
        graphs.append((family, graph))
        print(f"[{family}: n={graph.n} m={graph.m}]", file=sys.stderr)
    with timed("cli.frontier", graphs=len(graphs)) as tsp:
        points = run_frontier(
            graphs,
            ks=args.k,
            backends=args.backends,
            seed=args.seed,
            n_pairs=args.pairs,
        )

    print(render_frontier_table(points, title=f"backend frontier ({len(points)} points)"))
    front = sum(1 for p in points if p.pareto)
    print(f"\n[{len(points)} points, {front} on the Pareto frontier, in {tsp.seconds:.1f}s]")
    if args.json:
        print(f"wrote {write_frontier_json(points, args.json)}")
    if args.markdown:
        print(f"wrote {write_frontier_markdown(points, args.markdown)}")
    return 0


def _cmd_build(args) -> int:
    import json

    from .analysis.experiments import reference_graph
    from .core.build import build_arrays
    from .core.build.arrays import scheme_from_arrays
    from .core.landmarks import build_hierarchy
    from .graphs.ports import assign_ports
    from .rng import derive

    builder = args.builder
    if args.method is not None:
        print("--method is deprecated; use --builder", file=sys.stderr)
        if builder is None:
            builder = args.method
    if builder is None:
        builder = "vectorized"

    graph = reference_graph(args.graph, args.n, args.seed).largest_component()
    ported = assign_ports(graph, "random", rng=derive(args.seed, "build-ports"))
    hierarchy = build_hierarchy(graph, args.k, derive(args.seed, "build-hierarchy"))

    builders = ["vectorized", "reference"] if builder == "both" else [builder]
    stats = {"graph": args.graph, "n": graph.n, "m": graph.m, "k": args.k}
    arrays = None
    for method in builders:
        with timed("cli.build", builder=method) as tsp:
            arrays = build_arrays(
                graph,
                ported=ported,
                hierarchy=hierarchy,
                builder=method,
                kernel=args.kernel,
            )
        stats[f"{method}_build_seconds"] = round(tsp.seconds, 3)
    bunch = arrays.bunch_sizes()
    label_bits = arrays.label_bits()
    stats.update(
        entries=arrays.entry_count,
        bunch_mean=round(float(bunch.mean()), 2),
        bunch_max=int(bunch.max()),
        label_bits_mean=round(float(label_bits.mean()), 1),
        label_bits_max=int(label_bits.max()),
        landmarks=int(hierarchy.top_level().size),
    )
    if len(builders) == 2:
        stats["speedup"] = round(
            stats["reference_build_seconds"] / max(stats["vectorized_build_seconds"], 1e-9), 1
        )
    if args.materialize:
        with timed("cli.materialize") as tsp:
            scheme_from_arrays(graph, ported, arrays)
        stats["materialize_seconds"] = round(tsp.seconds, 3)

    width = max(len(k) for k in stats)
    for key, value in stats.items():
        print(f"{key:<{width}}  {value}")
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(stats, fh, indent=2)
        print(f"wrote {args.json}")
    return 0


def _cmd_profile(args) -> int:
    import tempfile

    from .analysis.experiments import reference_graph
    from .analysis.obs_report import render_metrics, render_span_tree
    from .graphs.ports import assign_ports
    from .rng import derive
    from .sim.workloads import make_workload
    from .store import RouteService, SchemeStore

    tmp = None
    store_dir = args.store
    if store_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="tzprofile-")
        store_dir = tmp.name
    try:
        with timed("profile", graph=args.graph, k=args.k) as tsp:
            graph = reference_graph(
                args.graph, args.n, args.seed
            ).largest_component()
            ported = assign_ports(
                graph, "random", rng=derive(args.seed, "profile-ports")
            )
            stored = SchemeStore(store_dir).get_or_build(
                graph, args.k, args.seed, ported=ported, kernel=args.kernel
            )
            pairs = make_workload(
                graph, args.workload, args.pairs, derive(args.seed, "profile-pairs")
            )
            service = RouteService(stored.path, kernel=args.kernel)
            result = service.route(pairs, shards=args.shards)
    finally:
        if tmp is not None:
            tmp.cleanup()

    wall = tsp.seconds
    print(
        render_span_tree(
            title=f"profile: {args.graph} n={graph.n} m={graph.m} "
            f"k={args.k} pairs={pairs.shape[0]}"
        )
    )
    print()
    print(render_metrics())
    total_self = sum(sp.self_ns for sp, _ in TELEMETRY.spans()) / 1e9
    coverage = 100.0 * total_self / max(wall, 1e-9)
    from .kernels import resolve_kernel

    print(
        f"\n[wall {wall:.3f}s, instrumented self-time {total_self:.3f}s "
        f"({coverage:.1f}% coverage), kernel={resolve_kernel(args.kernel)}, "
        f"delivered {int(result.delivered.sum())}/{pairs.shape[0]}]"
    )
    return 0


def _add_kernel_flag(parser: argparse.ArgumentParser) -> None:
    """Attach the compute-kernel selector to one subparser."""
    parser.add_argument(
        "--kernel",
        default="auto",
        choices=["auto", "native", "numpy"],
        help=(
            "compute kernel for the router hop loop and builder frontier "
            "sweep (auto = native when the compiled backend loads, else "
            "numpy; see repro.kernels)"
        ),
    )


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    """Attach the shared telemetry-export flags to one subparser."""
    parser.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="record telemetry and write the JSON-lines span trace here",
    )
    parser.add_argument(
        "--metrics",
        default=None,
        metavar="FILE",
        help="record telemetry and write the metrics JSON document here",
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Thorup-Zwick 'Compact routing schemes' reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiment ids").set_defaults(func=_cmd_list)

    p_run = sub.add_parser("run", help="run one experiment")
    p_run.add_argument("exp_id", choices=sorted(EXPERIMENTS))
    p_run.add_argument("--scale", default="small", choices=["small", "full"])
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument("--markdown", action="store_true")
    p_run.set_defaults(func=_cmd_run)

    p_all = sub.add_parser("all", help="run every experiment")
    p_all.add_argument("--scale", default="small", choices=["small", "full"])
    p_all.add_argument("--seed", type=int, default=0)
    p_all.add_argument("--markdown", action="store_true")
    p_all.set_defaults(func=_cmd_all)

    p_route = sub.add_parser(
        "route",
        help="batch-route a traffic matrix through a compiled scheme",
        description=(
            "Compile a TZ routing scheme on a generated graph, route a "
            "whole traffic matrix through it, and print stretch/hop "
            "percentiles plus pairs/sec throughput."
        ),
        epilog=(
            "Engines: 'batch' compiles the scheme into dense arrays and "
            "advances all pairs one synchronized hop per numpy step "
            "(default; handles 10^5-10^6 pairs); 'reference' drives the "
            "hop-by-hop Network simulator — the adversarial ground "
            "truth, bit-for-bit identical but orders of magnitude "
            "slower, for validating schemes or debugging the engine; "
            "'auto' picks batch whenever the scheme supports it."
        ),
    )
    p_route.add_argument("--graph", default="gnp", choices=ROUTE_GRAPHS)
    p_route.add_argument("--n", type=int, default=1024, help="vertex count")
    p_route.add_argument(
        "--scheme",
        default="k2",
        choices=["k2", "k"],
        help="k2 = §3 stretch-3 scheme; k = general scheme (see --k)",
    )
    p_route.add_argument(
        "--k", type=int, default=3, help="hierarchy levels for --scheme k"
    )
    p_route.add_argument(
        "--handshake",
        action="store_true",
        help="wrap the scheme with the §4 handshake (stretch 2k-1)",
    )
    p_route.add_argument(
        "--pairs", type=int, default=100_000, help="traffic matrix size"
    )
    p_route.add_argument(
        "--workload",
        default="uniform",
        choices=list(WORKLOADS),
        help="traffic model (see repro.sim.workloads)",
    )
    p_route.add_argument(
        "--engine",
        default="batch",
        choices=["auto", "batch", "reference"],
        help="execution engine (see epilog)",
    )
    p_route.add_argument("--seed", type=int, default=0)
    _add_kernel_flag(p_route)
    _add_obs_flags(p_route)
    p_route.set_defaults(func=_cmd_route)

    p_serve = sub.add_parser(
        "serve",
        help="serve traffic from the persistent scheme store (one batch or --daemon)",
        description=(
            "Answer a traffic matrix from a persisted scheme: the store "
            "is checked first (content-addressed by graph, k, seed and "
            "port assignment) and only a miss pays the build; hits "
            "memory-map the saved arrays and route immediately. "
            "--daemon instead starts the persistent asyncio TCP server "
            "over the store directory and serves until SIGTERM (or a "
            "protocol 'shutdown' request), draining in-flight batches."
        ),
        epilog=(
            "The store keeps one .tzs container per scheme, holding "
            "both the canonical array form and the compiled batch-"
            "engine form; --shards N splits the matrix by source "
            "across N worker processes that all mmap the same file. "
            "--strict-verify replays the bit-exact core.serialize "
            "codec over the loaded arrays and compares the recorded "
            "digest before serving. In --daemon mode requests name any "
            "lineage/key in the store (multi-tenant, LRU-bounded by "
            "--lru-capacity); lineage tenants hot-reload when their "
            ".current pointer repoints, the --queue-limit bounded "
            "request queue sheds overload with an explicit "
            "backpressure error, and --timeout caps each request's "
            "enqueue-to-response budget. Drive it with repro loadgen."
        ),
    )
    p_serve.add_argument("--graph", default="gnp", choices=ROUTE_GRAPHS)
    p_serve.add_argument("--n", type=int, default=1024, help="vertex count")
    p_serve.add_argument("--k", type=int, default=2, help="hierarchy levels")
    p_serve.add_argument(
        "--store", default=".tzstore", help="scheme store directory"
    )
    p_serve.add_argument(
        "--pairs", type=int, default=100_000, help="traffic matrix size"
    )
    p_serve.add_argument(
        "--workload",
        default="uniform",
        choices=list(WORKLOADS),
        help="traffic model (see repro.sim.workloads)",
    )
    p_serve.add_argument(
        "--shards",
        type=int,
        default=1,
        help="worker processes source-sharding the matrix (1 = in-process)",
    )
    p_serve.add_argument(
        "--strict-verify",
        action="store_true",
        help="replay the bit-exact serialization codec before serving",
    )
    p_serve.add_argument(
        "--daemon",
        action="store_true",
        help="run the persistent TCP serving daemon instead of one batch",
    )
    p_serve.add_argument(
        "--host", default="127.0.0.1", help="daemon bind address"
    )
    p_serve.add_argument(
        "--port", type=int, default=0, help="daemon port (0 = ephemeral)"
    )
    p_serve.add_argument(
        "--port-file",
        default=None,
        metavar="FILE",
        help="write the bound port here once listening (for scripts/tests)",
    )
    p_serve.add_argument(
        "--scheme",
        default=None,
        help=(
            "default tenant to serve (lineage id, container key, or "
            "path); default: build/publish from the graph flags"
        ),
    )
    p_serve.add_argument(
        "--lru-capacity",
        type=int,
        default=4,
        help="max open tenants; least-recently-used is evicted (re-mmapped on next hit)",
    )
    p_serve.add_argument(
        "--queue-limit",
        type=int,
        default=64,
        help="bounded request queue; excess requests get a backpressure error",
    )
    p_serve.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        help="per-request budget in seconds, from enqueue to response",
    )
    p_serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help="concurrent route executors in the daemon",
    )
    p_serve.add_argument("--seed", type=int, default=0)
    _add_kernel_flag(p_serve)
    _add_obs_flags(p_serve)
    p_serve.set_defaults(func=_cmd_serve)

    p_load = sub.add_parser(
        "loadgen",
        help="replay Zipf-skewed traffic against a running serve daemon",
        description=(
            "Connect to a repro serve --daemon instance and replay "
            "Zipf-skewed source/destination traffic from N simulated "
            "users over M concurrent connections, recording every "
            "request's client-observed latency. Prints pairs/s "
            "throughput plus p50/p99 latency; --json writes the full "
            "tz-loadgen-report document."
        ),
        epilog=(
            "Traffic is pre-generated from --seed before the clock "
            "starts: sources are drawn Zipf(s)-ranked from --users "
            "vertices, destinations from an independent Zipf ranking "
            "over the whole graph (the daemon's describe op supplies "
            "the vertex count). Failed requests (backpressure, "
            "timeout) are counted per error code, not raised."
        ),
    )
    p_load.add_argument("--host", default="127.0.0.1", help="daemon address")
    p_load.add_argument("--port", type=int, required=True, help="daemon port")
    p_load.add_argument(
        "--scheme",
        default=None,
        help="tenant to route on (default: the daemon's default scheme)",
    )
    p_load.add_argument(
        "--users", type=int, default=100, help="simulated users (Zipf sources)"
    )
    p_load.add_argument(
        "--connections", type=int, default=4, help="concurrent client connections"
    )
    p_load.add_argument(
        "--requests", type=int, default=64, help="total route requests"
    )
    p_load.add_argument(
        "--batch", type=int, default=256, help="pairs per route request"
    )
    p_load.add_argument(
        "--zipf-s", type=float, default=1.2, help="Zipf skew exponent"
    )
    p_load.add_argument(
        "--ttl", type=int, default=None, help="per-pair routing TTL"
    )
    p_load.add_argument(
        "--timeout", type=float, default=60.0, help="client socket timeout (s)"
    )
    p_load.add_argument("--json", default=None, help="write the report here")
    p_load.add_argument("--seed", type=int, default=0)
    p_load.set_defaults(func=_cmd_loadgen)

    p_upd = sub.add_parser(
        "update",
        help="churn sweep: mutate the graph each epoch, patch or rebuild the scheme",
        description=(
            "Run the incremental-maintenance loop: build a scheme, then "
            "for each epoch draw a random connectivity-preserving graph "
            "delta (weight changes, edge adds/drops), refresh the scheme "
            "by patching only the dirty clusters (or a full rebuild, per "
            "--policy), and route a traffic matrix on the mutated graph. "
            "Each epoch reports update cost (wall time, dirty clusters, "
            "reused-entry fraction) and routing quality (delivery, "
            "stretch against exact distances)."
        ),
        epilog=(
            "With --store DIR every version is published into one "
            "versioned lineage (atomic .current pointer, parent links, "
            "delta digests) and traffic is answered by a hot-swapping "
            "RouteService following the pointer — the serving path a "
            "long-running server would use. --max-versions N garbage-"
            "collects older versions as the lineage grows."
        ),
    )
    p_upd.add_argument("--graph", default="gnp", choices=ROUTE_GRAPHS)
    p_upd.add_argument("--n", type=int, default=512, help="vertex count")
    p_upd.add_argument("--k", type=int, default=2, help="hierarchy levels")
    p_upd.add_argument(
        "--epochs", type=int, default=4, help="number of mutation rounds"
    )
    p_upd.add_argument(
        "--pairs", type=int, default=1024, help="traffic matrix size per epoch"
    )
    p_upd.add_argument(
        "--policy",
        default="auto",
        choices=["auto", "patch", "rebuild"],
        help=(
            "maintenance strategy: patch dirty clusters, full rebuild, "
            "or auto (patch with rebuild fallback)"
        ),
    )
    p_upd.add_argument(
        "--workload",
        default="uniform",
        choices=list(WORKLOADS),
        help="traffic model (see repro.sim.workloads)",
    )
    p_upd.add_argument(
        "--store",
        default=None,
        help="publish versions into this store directory and serve via its pointer",
    )
    p_upd.add_argument(
        "--max-versions",
        type=int,
        default=None,
        help="garbage-collect the lineage down to this many versions",
    )
    p_upd.add_argument("--json", default=None, help="write the churn report here")
    p_upd.add_argument("--seed", type=int, default=0)
    _add_kernel_flag(p_upd)
    _add_obs_flags(p_upd)
    p_upd.set_defaults(func=_cmd_update)

    p_store = sub.add_parser(
        "store",
        help="inspect and garbage-collect a versioned scheme store",
        description=(
            "Operate on a scheme store directory: 'ls' tables every "
            "version of every lineage (current versions starred), "
            "'info KEY' prints one container's header metadata plus "
            "file facts, 'gc' deletes old versions beyond "
            "--max-versions (the pointer target is never deleted)."
        ),
    )
    p_store.add_argument("action", choices=["ls", "info", "gc"])
    p_store.add_argument(
        "key",
        nargs="?",
        default=None,
        help="container key (info) or lineage id (gc; default: all lineages)",
    )
    p_store.add_argument(
        "--dir", default=".tzstore", help="scheme store directory"
    )
    p_store.add_argument(
        "--max-versions",
        type=int,
        default=4,
        help="versions to keep per lineage when gc-ing",
    )
    p_store.set_defaults(func=_cmd_store)

    p_scen = sub.add_parser(
        "scenarios",
        help="run declarative failure/churn scenario sweeps",
        description=(
            "Expand a scenario grid (graph families x k x workloads x "
            "failure models), run every scenario's multi-trial failure "
            "sweep through the vectorized resilience engine (all trials "
            "advance simultaneously; schemes come from --store when "
            "given), and report per-scenario delivery statistics."
        ),
        epilog=(
            "Failure models: 'iid-edges' kills each edge independently "
            "(--rate); 'geo-ball' kills one distance ball around a "
            "random epicenter per trial (--radius); 'node-down' crashes "
            "random vertices; 'churn' traces a progressive degradation "
            "curve over nested failure sets. Delivery rates count only "
            "pairs still connected in the surviving graph."
        ),
    )
    p_scen.add_argument(
        "--graphs", nargs="+", default=["gnp"], choices=ROUTE_GRAPHS,
        help="graph families to sweep",
    )
    p_scen.add_argument("--n", type=int, default=512, help="vertex count")
    p_scen.add_argument(
        "--k", nargs="+", type=int, default=[2], help="hierarchy levels to sweep"
    )
    p_scen.add_argument(
        "--handshake", action="store_true",
        help="use the §4 handshake variant of each scheme",
    )
    p_scen.add_argument(
        "--workloads", nargs="+", default=["uniform"],
        choices=list(WORKLOADS),
        help="traffic models to sweep (see repro.sim.workloads)",
    )
    p_scen.add_argument(
        "--pairs", type=int, default=2000, help="traffic matrix size per scenario"
    )
    p_scen.add_argument(
        "--failures", nargs="+", default=["iid-edges"],
        choices=["iid-edges", "geo-ball", "node-down", "churn"],
        help="failure models to sweep (see epilog)",
    )
    p_scen.add_argument(
        "--trials", type=int, default=32, help="failure trials per scenario"
    )
    p_scen.add_argument(
        "--rate", type=float, default=None,
        help="iid-edges death probability (default 0.02)",
    )
    p_scen.add_argument(
        "--radius", type=float, default=None,
        help="geo-ball outage radius (default: the median edge weight)",
    )
    p_scen.add_argument(
        "--store", default=None,
        help="scheme store directory (schemes are fetched/saved there)",
    )
    p_scen.add_argument(
        "--engine", default="auto", choices=["auto", "batch", "reference"],
        help="sweep engine (reference = per-trial hop-by-hop ground truth)",
    )
    p_scen.add_argument("--json", default=None, help="write the JSON report here")
    p_scen.add_argument(
        "--markdown", default=None, help="write the markdown report here"
    )
    p_scen.add_argument("--seed", type=int, default=0)
    _add_kernel_flag(p_scen)
    _add_obs_flags(p_scen)
    p_scen.set_defaults(func=_cmd_scenarios)

    p_front = sub.add_parser(
        "frontier",
        help="sweep registered backends into a space/stretch/time Pareto report",
        description=(
            "Build every registered backend (TZ scheme, Cowen, single "
            "tree, shortest-path tables, distance oracle, distance "
            "labels, spanner) on a grid of graph families, answer one "
            "shared sampled pair set per graph, and report measured "
            "size, observed stretch and query throughput with Pareto-"
            "frontier points starred."
        ),
        epilog=(
            "Backends whose construction ignores k (cowen, tree, "
            "shortest-path) are built once per graph; the others are "
            "built once per k. The Pareto pass runs per graph over "
            "(size_bits, observed max stretch, query seconds): a point "
            "is starred iff nothing on the same graph is at least as "
            "good on all three axes and strictly better on one. "
            "--json/--markdown write the full report documents."
        ),
    )
    p_front.add_argument(
        "--graphs", nargs="+", default=["gnp", "ba", "grid"], choices=ROUTE_GRAPHS,
        help="graph families to sweep",
    )
    p_front.add_argument("--n", type=int, default=400, help="vertex count")
    p_front.add_argument(
        "--k", nargs="+", type=int, default=[2, 3],
        help="hierarchy levels to sweep (k-using backends only)",
    )
    p_front.add_argument(
        "--backends", nargs="+", default=None,
        help="backend names to include (default: all registered)",
    )
    p_front.add_argument(
        "--pairs", type=int, default=400, help="sampled query pairs per graph"
    )
    p_front.add_argument("--json", default=None, help="write the JSON report here")
    p_front.add_argument(
        "--markdown", default=None, help="write the markdown report here"
    )
    p_front.add_argument("--seed", type=int, default=0)
    _add_obs_flags(p_front)
    p_front.set_defaults(func=_cmd_frontier)

    p_build = sub.add_parser(
        "build",
        help="construct a TZ scheme and report builder timings",
        description=(
            "Construct a Thorup-Zwick scheme on a generated graph with "
            "the selected builder and print structure statistics "
            "(entries, bunch sizes, label bits) plus construction time."
        ),
        epilog=(
            "Builders: 'vectorized' constructs the whole scheme as "
            "array programs (batched cluster sweeps, all heavy-light "
            "trees at once); 'reference' is the per-node ground truth "
            "(one truncated Dijkstra + tree compile per vertex) — "
            "bit-identical output, orders of magnitude slower at scale; "
            "'both' runs the two and reports the speedup."
        ),
    )
    p_build.add_argument("--graph", default="gnp", choices=ROUTE_GRAPHS)
    p_build.add_argument("--n", type=int, default=4096, help="vertex count")
    p_build.add_argument("--k", type=int, default=2, help="hierarchy levels")
    p_build.add_argument(
        "--builder",
        default=None,
        choices=["vectorized", "reference", "both"],
        help="construction pipeline (default vectorized; see epilog)",
    )
    p_build.add_argument(
        "--method",
        default=None,
        choices=["vectorized", "reference", "both"],
        help="deprecated alias for --builder",
    )
    p_build.add_argument(
        "--materialize",
        action="store_true",
        help="also time materializing the dict-based routing tables",
    )
    p_build.add_argument("--json", default=None, help="write stats to this file")
    p_build.add_argument("--seed", type=int, default=0)
    _add_kernel_flag(p_build)
    _add_obs_flags(p_build)
    p_build.set_defaults(func=_cmd_build)

    p_prof = sub.add_parser(
        "profile",
        help="run an instrumented build/store/route pipeline and print the span tree",
        description=(
            "Run the whole pipeline — generate a graph, build the "
            "scheme, persist it through the store, open it back and "
            "route a traffic matrix — with telemetry enabled, then "
            "print the span tree (cumulative/self wall time per phase), "
            "the collected counters and histograms, and the share of "
            "wall time the instrumentation accounts for."
        ),
        epilog=(
            "The store defaults to a temporary directory so every "
            "profile pays the full build; point --store at a persistent "
            "directory to profile the hit path instead. --trace/"
            "--metrics additionally export the machine-readable forms."
        ),
    )
    p_prof.add_argument("--graph", default="gnp", choices=ROUTE_GRAPHS)
    p_prof.add_argument("--n", type=int, default=2000, help="vertex count")
    p_prof.add_argument("--k", type=int, default=3, help="hierarchy levels")
    p_prof.add_argument(
        "--pairs", type=int, default=20_000, help="traffic matrix size"
    )
    p_prof.add_argument(
        "--workload",
        default="uniform",
        choices=list(WORKLOADS),
        help="traffic model (see repro.sim.workloads)",
    )
    p_prof.add_argument(
        "--shards",
        type=int,
        default=1,
        help="worker processes source-sharding the matrix (1 = in-process)",
    )
    p_prof.add_argument(
        "--store",
        default=None,
        help="scheme store directory (default: a throwaway temp dir)",
    )
    p_prof.add_argument("--seed", type=int, default=0)
    _add_kernel_flag(p_prof)
    _add_obs_flags(p_prof)
    p_prof.set_defaults(func=_cmd_profile)

    args = parser.parse_args(argv)
    trace = getattr(args, "trace", None)
    metrics = getattr(args, "metrics", None)
    observing = bool(trace or metrics) or args.command == "profile"
    if observing:
        # One registry per CLI invocation: drop anything a prior in-
        # process main() call recorded, then record this command.
        TELEMETRY.reset()
        TELEMETRY.enable()
    try:
        rc = args.func(args)
    finally:
        TELEMETRY.disable()
    if observing:
        if trace:
            print(f"wrote {write_trace(trace)}")
        if metrics:
            print(f"wrote {write_metrics(metrics)}")
        TELEMETRY.reset()
    return rc


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
