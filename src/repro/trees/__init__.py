"""Tree routing schemes (TZ SPAA'01 §2) and the classic interval-routing
baseline."""

from .interval import IntervalRoutingScheme
from .label_codec import TreeLabel, decode_tree_label, encode_tree_label, tree_label_bits
from .tz_tree import TreeLocalRecord, TreeRouter, build_tree_router

__all__ = [
    "IntervalRoutingScheme",
    "TreeLabel",
    "TreeLocalRecord",
    "TreeRouter",
    "build_tree_router",
    "encode_tree_label",
    "decode_tree_label",
    "tree_label_bits",
]
