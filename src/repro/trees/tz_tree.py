"""The Thorup–Zwick tree-routing scheme (SPAA'01 §2).

Each vertex keeps an **O(1)-word local record** per tree it participates
in; the destination's **label** carries everything else.  A forwarding
decision is a constant number of integer comparisons:

at vertex ``u`` with record ``R`` and destination label ``L``::

    if L.f == R.f:                       arrived
    elif L.f outside [R.f, R.finish]:    port to parent  (t not below u)
    elif L.f in heavy child's interval:  port to heavy child
    else:                                L.light_ports[R.light_depth]

The last case is the heart of the scheme: since ``u`` lies on the
root→``t`` path, the light edges above ``u`` on that path are exactly the
light edges on root→``u``; hence the *next* light edge out of ``u`` is
entry ``light_depth(u)`` of the destination's light-port sequence.

The same machinery serves two deployments:

* a standalone tree network (experiment F2) with either designer or
  fixed ports, and
* the cluster/landmark trees inside the general TZ schemes (§3–§4),
  where ports come from the shared fixed-port graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..bitio import uint_cost
from ..errors import LabelError, RoutingError
from ..graphs.ports import PortedGraph
from ..graphs.trees import RootedTree
from .label_codec import TreeLabel, tree_label_bits


@dataclass(frozen=True)
class TreeLocalRecord:
    """The O(1) words a vertex stores for one tree.

    ``heavy_finish`` is the end of the heavy child's DFS interval, which
    starts at ``f + 1`` because the heavy-first DFS visits it immediately
    after its parent; for leaves it equals ``f`` so the heavy-interval
    test is vacuously false.  ``parent_port`` is 0 at the root (never
    used: every in-tree destination lies inside the root's interval).
    """

    f: int
    finish: int
    parent_port: int
    heavy_port: int
    heavy_finish: int
    light_depth: int

    def size_bits(self, tree_size: int, max_port: int) -> int:
        """Measured size of this record with fixed-width fields."""
        fw = (max(tree_size - 1, 0)).bit_length()
        pw = max(1, max_port.bit_length())
        return (
            uint_cost(self.f, fw)
            + uint_cost(self.finish, fw)
            + uint_cost(self.heavy_finish, fw)
            + uint_cost(self.parent_port, pw)
            + uint_cost(self.heavy_port, pw)
            + uint_cost(self.light_depth, fw)
        )


class TreeRouter:
    """A compiled tree-routing instance: records + labels for one tree.

    ``decide`` implements the forwarding rule; the simulator calls it at
    every hop.  ``records``/``labels`` are keyed by graph vertex id.
    """

    __slots__ = ("tree_size", "records", "labels", "root")

    def __init__(
        self,
        root: int,
        tree_size: int,
        records: Dict[int, TreeLocalRecord],
        labels: Dict[int, TreeLabel],
    ) -> None:
        self.root = root
        self.tree_size = tree_size
        self.records = records
        self.labels = labels

    def decide(self, u: int, target: TreeLabel) -> Optional[int]:
        """Port to forward on at ``u``, or ``None`` when ``u`` is the
        destination.  Raises :class:`RoutingError` if ``u`` has no record
        (it is not in this tree)."""
        record = self.records.get(u)
        if record is None:
            raise RoutingError(f"vertex {u} is not in the tree rooted at {self.root}")
        return decide_from_record(record, target)

    def label_bits(self, v: int) -> int:
        return tree_label_bits(self.labels[v], self.tree_size)

    def max_label_bits(self) -> int:
        return max(self.label_bits(v) for v in self.labels)

    def record_bits(self, v: int, max_port: int) -> int:
        return self.records[v].size_bits(self.tree_size, max_port)


def decide_from_record(record: TreeLocalRecord, target: TreeLabel) -> Optional[int]:
    """The O(1) forwarding rule shared by all deployments."""
    tf = target.f
    if tf == record.f:
        return None  # arrived
    if not (record.f <= tf <= record.finish):
        if record.parent_port == 0:
            raise RoutingError(
                f"destination f={tf} outside the tree of a root record"
            )
        return record.parent_port
    if record.f + 1 <= tf <= record.heavy_finish:
        return record.heavy_port
    # t lies in a light subtree below u: the next light edge on the
    # root->t path leaves u and is entry light_depth(u) of the sequence.
    idx = record.light_depth
    if idx >= len(target.light_ports):
        raise LabelError(
            f"label carries {len(target.light_ports)} light ports, "
            f"need index {idx}: label/tree mismatch"
        )
    return target.light_ports[idx]


def records_to_arrays(
    records: Sequence[TreeLocalRecord],
) -> Dict[str, np.ndarray]:
    """Columnar export of tree records for the batch routing engine.

    Returns one int64 array per :class:`TreeLocalRecord` field, aligned
    with the input order, so the §2 forwarding rule can run as array
    comparisons over every in-flight message at once (see
    :mod:`repro.sim.engine.compile`).
    """
    count = len(records)
    return {
        "f": np.fromiter((r.f for r in records), np.int64, count),
        "finish": np.fromiter((r.finish for r in records), np.int64, count),
        "parent_port": np.fromiter(
            (r.parent_port for r in records), np.int64, count
        ),
        "heavy_port": np.fromiter(
            (r.heavy_port for r in records), np.int64, count
        ),
        "heavy_finish": np.fromiter(
            (r.heavy_finish for r in records), np.int64, count
        ),
        "light_depth": np.fromiter(
            (r.light_depth for r in records), np.int64, count
        ),
    }


def build_tree_router(
    tree: RootedTree,
    ported: PortedGraph,
    *,
    port_model: str = "fixed",
) -> TreeRouter:
    """Compile records and labels for ``tree`` over ``ported``.

    ``port_model`` selects how light-edge ports enter the labels:

    * ``"fixed"`` — physical port numbers from ``ported`` (arbitrary;
      labels cost up to O(log² n) bits).  Required when the tree shares
      its ports with other trees, i.e. inside the general TZ schemes.
    * ``"designer"`` — asserts that the physical port of each light edge
      equals the child rank (as produced by
      :func:`repro.graphs.ports.designer_ports_for_tree`), which is what
      yields (1+o(1))·log n-bit labels.
    """
    if port_model not in ("fixed", "designer"):
        raise LabelError(f"unknown port model {port_model!r}")
    records: Dict[int, TreeLocalRecord] = {}
    labels: Dict[int, TreeLabel] = {}
    light_ports_of: Dict[int, Tuple[int, ...]] = {}
    for v in tree.order:  # DFS pre-order: parents before children
        parent = tree.parent[v]
        if parent == -1:
            parent_port = 0
            light_ports_of[v] = ()
        else:
            parent_port = ported.port(v, parent)
            down_port = ported.port(parent, v)
            if tree.heavy[parent] == v:
                light_ports_of[v] = light_ports_of[parent]
            else:
                if port_model == "designer" and down_port != tree.child_rank[v]:
                    raise LabelError(
                        "designer model requires port==rank at light edge "
                        f"({parent},{v}): port {down_port}, rank {tree.child_rank[v]}"
                    )
                light_ports_of[v] = light_ports_of[parent] + (down_port,)
        heavy = tree.heavy[v]
        if heavy == -1:
            heavy_port = 0
            heavy_finish = tree.dfs[v]
        else:
            heavy_port = ported.port(v, heavy)
            heavy_finish = tree.finish[heavy]
        records[v] = TreeLocalRecord(
            f=tree.dfs[v],
            finish=tree.finish[v],
            parent_port=parent_port,
            heavy_port=heavy_port,
            heavy_finish=heavy_finish,
            light_depth=tree.light_depth[v],
        )
        labels[v] = TreeLabel(tree.dfs[v], light_ports_of[v])
    return TreeRouter(tree.root, len(tree), records, labels)
