"""Bit-exact encoding of TZ tree-routing labels.

A tree label (§2 of the paper) identifies a destination ``t`` inside one
rooted tree by:

* ``f`` — ``t``'s DFS number in the heavy-first numbering, and
* ``light_ports`` — for every *light* edge on the root→``t`` path, the
  port taken (root-to-leaf order).

In the **designer-port** model the port at a light edge equals the child
rank ``r >= 2``, and ranks along a root path multiply to at most the tree
size, so the Elias-gamma-coded sequence costs at most
``2·log2(size) + light_depth`` bits; with ``f`` that gives labels of
``(1 + o(1))·c·log n`` bits for a small constant ``c`` — we *measure* the
constant (experiment F2) rather than replicate the paper's word-RAM
encoding tricks (DESIGN.md §2.5, substitution 1).

In the **fixed-port** model ports are arbitrary numbers up to the degree,
so each costs up to ``2·log2(deg)`` gamma bits and the label degrades to
``O(log² n)`` — exactly the asymptotic separation the paper proves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..bitio import BitReader, BitWriter, delta_cost, gamma_cost, uint_cost
from ..errors import LabelError


@dataclass(frozen=True)
class TreeLabel:
    """Routing label of one vertex within one rooted tree."""

    f: int
    light_ports: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.f < 0:
            raise LabelError(f"DFS number must be non-negative, got {self.f}")
        for p in self.light_ports:
            if p < 1:
                raise LabelError(f"ports are 1-based, got {p}")


def _f_width(tree_size: int) -> int:
    """Fixed width used for the DFS number: ``ceil(log2(tree_size))``.

    A single-vertex tree needs 0 bits — its only DFS number is 0.
    """
    if tree_size < 1:
        raise LabelError(f"tree size must be positive, got {tree_size}")
    return (tree_size - 1).bit_length()


def encode_tree_label(label: TreeLabel, tree_size: int) -> BitWriter:
    """Encode ``label`` prefix-free given the tree size (shared context)."""
    if label.f >= tree_size:
        raise LabelError(f"DFS number {label.f} out of range for size {tree_size}")
    w = BitWriter()
    w.write_uint(label.f, _f_width(tree_size))
    w.write_delta0(len(label.light_ports))
    for p in label.light_ports:
        w.write_gamma(p)
    return w


def decode_tree_label(reader: BitReader, tree_size: int) -> TreeLabel:
    """Inverse of :func:`encode_tree_label`."""
    f = reader.read_uint(_f_width(tree_size))
    count = reader.read_delta0()
    ports = tuple(reader.read_gamma() for _ in range(count))
    return TreeLabel(f, ports)


def tree_label_bits(label: TreeLabel, tree_size: int) -> int:
    """Exact bit size of the encoded label (without materializing it)."""
    return (
        uint_cost(label.f, _f_width(tree_size))
        + delta_cost(len(label.light_ports) + 1)
        + sum(gamma_cost(p) for p in label.light_ports)
    )


def _bit_length_array(a: np.ndarray) -> np.ndarray:
    """Vectorized ``int.bit_length`` for positive int64 (< 2^53)."""
    return np.frexp(a.astype(np.float64))[1].astype(np.int64)


def tree_label_bits_array(
    f_width: np.ndarray, lp_indptr: np.ndarray, lp_data: np.ndarray
) -> np.ndarray:
    """Batched :func:`tree_label_bits` over a light-port CSR.

    ``f_width[e]`` is the fixed DFS-field width of entry ``e``'s tree;
    the formula mirrors the scalar one exactly: Elias-delta coded
    ``len(light_ports) + 1``, then one Elias-gamma code per port
    (``delta_cost(c + 1) = gamma_cost(bl) + bl - 1`` with
    ``bl = bit_length(c + 1)``).
    """
    counts = np.diff(lp_indptr)
    bl = _bit_length_array(counts + 1)
    delta = (2 * (_bit_length_array(bl) - 1) + 1) + bl - 1
    gamma = 2 * (_bit_length_array(lp_data) - 1) + 1
    gsum = np.concatenate(([0], np.cumsum(gamma)))
    return f_width + delta + gsum[lp_indptr[1:]] - gsum[lp_indptr[:-1]]
