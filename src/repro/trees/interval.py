"""Classic DFS interval routing — the pre-TZ baseline for trees.

Santoro–Khatib-style interval routing: labels are bare DFS numbers
(⌈log₂ n⌉ bits — even smaller than TZ labels), but each vertex must store
one ``(interval, port)`` entry *per incident tree edge*, i.e. Θ(deg·log n)
bits.  TZ §2 beats this with O(1)-word records by moving the light-edge
ports into the label.  Experiment F2 contrasts the two.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..bitio import uint_cost
from ..errors import RoutingError
from ..graphs.ports import PortedGraph
from ..graphs.trees import RootedTree


@dataclass(frozen=True)
class IntervalEntry:
    """One child interval with its port."""

    lo: int
    hi: int
    port: int


@dataclass
class IntervalRecord:
    """Everything a vertex stores: its own DFS number/interval, the port
    to its parent, and one entry per child."""

    f: int
    finish: int
    parent_port: int
    entries: Tuple[IntervalEntry, ...]

    def size_bits(self, tree_size: int, max_port: int) -> int:
        fw = (max(tree_size - 1, 0)).bit_length()
        pw = max(1, max_port.bit_length())
        bits = 2 * fw + pw
        for e in self.entries:
            bits += 2 * fw + uint_cost(e.port, pw)
        return bits


class IntervalRoutingScheme:
    """Compiled interval routing for one tree."""

    __slots__ = ("root", "tree_size", "records")

    def __init__(self, tree: RootedTree, ported: PortedGraph) -> None:
        self.root = tree.root
        self.tree_size = len(tree)
        records: Dict[int, IntervalRecord] = {}
        for v in tree.order:
            parent = tree.parent[v]
            parent_port = 0 if parent == -1 else ported.port(v, parent)
            entries: List[IntervalEntry] = []
            for c in tree.children[v]:
                entries.append(
                    IntervalEntry(tree.dfs[c], tree.finish[c], ported.port(v, c))
                )
            records[v] = IntervalRecord(
                tree.dfs[v], tree.finish[v], parent_port, tuple(entries)
            )
        self.records = records

    def label(self, v: int) -> int:
        """Labels are bare DFS numbers."""
        return self.records[v].f

    def label_bits(self) -> int:
        return (max(self.tree_size - 1, 0)).bit_length()

    def decide(self, u: int, target_f: int) -> Optional[int]:
        record = self.records.get(u)
        if record is None:
            raise RoutingError(f"vertex {u} is not in this tree")
        if target_f == record.f:
            return None
        if not (record.f <= target_f <= record.finish):
            if record.parent_port == 0:
                raise RoutingError("destination outside the tree at the root")
            return record.parent_port
        for e in record.entries:
            if e.lo <= target_f <= e.hi:
                return e.port
        raise RoutingError(
            f"DFS number {target_f} in {u}'s interval but in no child interval"
        )

    def record_bits(self, v: int, max_port: int) -> int:
        return self.records[v].size_bits(self.tree_size, max_port)

    def max_record_bits(self, max_port: int) -> int:
        return max(self.record_bits(v, max_port) for v in self.records)
