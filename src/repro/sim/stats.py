"""Statistics over measured routes and compiled schemes."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np


@dataclass
class StretchStats:
    """Distribution summary of per-pair multiplicative stretch.

    Means alone hide the tail (the batch engine makes million-pair
    samples cheap, and worst-case guarantees live in the tail), so the
    summary carries p50/p95/p99 stretch and, when the caller provides
    per-pair hop counts, the hop-count distribution as well.
    """

    count: int
    delivered: int
    max: float
    mean: float
    median: float
    p95: float
    p99: float
    violations: int  # pairs exceeding the scheme's proven bound
    bound: float
    hop_mean: float = 0.0
    hop_p50: float = 0.0
    hop_p95: float = 0.0
    hop_p99: float = 0.0
    hop_max: int = 0
    #: Whether the caller supplied per-pair hop counts at all.  The hop
    #: columns are gated on this, not on ``hop_max`` — a delivered
    #: workload whose routes all took 0 hops (self-pairs, single-node
    #: graphs) is still a measured hop distribution.
    has_hops: bool = False

    @property
    def p50(self) -> float:
        """Median stretch (alias, matching the p95/p99 naming)."""
        return self.median

    @classmethod
    def empty(cls, bound: float = float("inf")) -> "StretchStats":
        return cls(0, 0, 0.0, 0.0, 0.0, 0.0, 0.0, 0, bound)

    def row(self) -> Dict[str, float]:
        row: Dict[str, float] = {
            "pairs": self.count,
            "delivered": self.delivered,
            "max_stretch": self.max,
            "avg_stretch": self.mean,
            "p50_stretch": self.median,
            "p95_stretch": self.p95,
            "p99_stretch": self.p99,
            "bound": self.bound,
            "violations": self.violations,
        }
        if self.has_hops or self.hop_max:
            row.update(
                {
                    "avg_hops": self.hop_mean,
                    "p50_hops": self.hop_p50,
                    "p95_hops": self.hop_p95,
                    "p99_hops": self.hop_p99,
                    "max_hops": self.hop_max,
                }
            )
        return row


def stretch_stats(
    stretches: Sequence[float],
    *,
    delivered: Optional[int] = None,
    attempted: Optional[int] = None,
    bound: float = float("inf"),
    tol: float = 1e-9,
    hops: Optional[Sequence[int]] = None,
) -> StretchStats:
    """Summarize per-pair stretch values against a proven ``bound``.

    ``tol`` absorbs float rounding when comparing to the bound (distance
    arithmetic is exact for integer weights, but stretch is a ratio).
    ``hops`` optionally carries the delivered pairs' hop counts; when
    given, the summary includes the hop-count distribution.
    """
    arr = np.asarray(list(stretches), dtype=np.float64)
    count = attempted if attempted is not None else arr.size
    deliv = delivered if delivered is not None else arr.size
    hop_stats = {}
    if hops is not None:
        hop_stats = {"has_hops": True}
        harr = np.asarray(list(hops), dtype=np.float64)
        if harr.size:
            hop_stats.update(
                hop_mean=float(harr.mean()),
                hop_p50=float(np.median(harr)),
                hop_p95=float(np.percentile(harr, 95)),
                hop_p99=float(np.percentile(harr, 99)),
                hop_max=int(harr.max()),
            )
    if arr.size == 0:
        return StretchStats(
            count, deliv, 0.0, 0.0, 0.0, 0.0, 0.0, 0, bound, **hop_stats
        )
    return StretchStats(
        count=count,
        delivered=deliv,
        max=float(arr.max()),
        mean=float(arr.mean()),
        median=float(np.median(arr)),
        p95=float(np.percentile(arr, 95)),
        p99=float(np.percentile(arr, 99)),
        violations=int((arr > bound * (1 + tol)).sum()),
        bound=bound,
        **hop_stats,
    )


@dataclass
class SpaceStats:
    """Bit-size summary of a compiled scheme."""

    n: int
    max_table_bits: int
    avg_table_bits: float
    total_table_bits: int
    max_label_bits: int
    avg_label_bits: float

    def row(self) -> Dict[str, float]:
        return {
            "n": self.n,
            "max_table_bits": self.max_table_bits,
            "avg_table_bits": round(self.avg_table_bits, 1),
            "total_table_Mbits": round(self.total_table_bits / 1e6, 3),
            "max_label_bits": self.max_label_bits,
            "avg_label_bits": round(self.avg_label_bits, 1),
        }


def space_stats(scheme) -> SpaceStats:
    """Measure a compiled scheme's tables and labels (exact bit counts)."""
    n = int(getattr(scheme, "n"))
    table_bits = [scheme.table_bits(u) for u in range(n)]
    label_bits = [scheme.label_bits(v) for v in range(n)]
    return SpaceStats(
        n=n,
        max_table_bits=int(max(table_bits)) if table_bits else 0,
        avg_table_bits=float(np.mean(table_bits)) if table_bits else 0.0,
        total_table_bits=int(np.sum(table_bits)) if table_bits else 0,
        max_label_bits=int(max(label_bits)) if label_bits else 0,
        avg_label_bits=float(np.mean(label_bits)) if label_bits else 0.0,
    )
