"""Edge-failure injection: what TZ compact routing does *not* survive.

The TZ schemes are static: tables are compiled against a fixed graph,
and a failed edge silently breaks every route whose committed tree used
it.  Quantifying that fragility is the standard motivation for the
fault-tolerant compact-routing line of work that followed the paper
(e.g. forbidden-set labeling and FT routing schemes), so this module
makes the limitation measurable:

* :class:`FaultyNetwork` — a simulator whose ``route`` drops messages at
  dead edges (the packet reaches the endpoint, finds the link down, and
  the static scheme has no recourse);
* :func:`survivability` — delivered fraction under ``f`` random edge
  failures, counted only over pairs that remain connected in ``G∖F``
  (disconnected pairs are excluded: no scheme could deliver those).

Expected shape (verified by tests): single-tree routing collapses worst
(every tree edge is a single point of failure for Θ(n²) pairs), the TZ
schemes degrade in proportion to how many committed trees touch the dead
edges, and recompiling on the surviving graph restores 100% delivery —
the "preprocessing is the fault boundary" statement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Optional, Tuple

import numpy as np

from ..core.router import RoutingScheme
from ..errors import RoutingError
from ..graphs.graph import Graph
from ..graphs.ports import PortedGraph
from ..rng import RngLike, make_rng
from .network import SCHEME_FAULTS, Network, RouteResult


def _canon(u: int, v: int) -> Tuple[int, int]:
    return (u, v) if u < v else (v, u)


class FaultyNetwork(Network):
    """A :class:`~repro.sim.network.Network` with dead edges.

    A message that tries to cross a dead edge is dropped with failure
    reason ``"dead link"`` — modeling a router that sees the interface
    down and has no alternate entry in its static table.
    """

    def __init__(
        self,
        ported: PortedGraph,
        scheme: RoutingScheme,
        dead_edges: Iterable[Tuple[int, int]],
    ) -> None:
        super().__init__(ported, scheme)
        self.dead: FrozenSet[Tuple[int, int]] = frozenset(
            _canon(int(a), int(b)) for a, b in dead_edges
        )

    def route(
        self,
        source: int,
        dest: int,
        *,
        ttl: Optional[int] = None,
        strict: bool = False,
    ) -> RouteResult:
        n = self.ported.n
        if ttl is None:
            ttl = 4 * n + 16
        path = [source]
        weight = 0.0
        u = source
        max_header = 0
        try:
            header = self.scheme.initial_header(source, dest)
            max_header = self.scheme.header_bits(header)
            for _ in range(ttl):
                port, header = self.scheme.decide(u, header)
                max_header = max(max_header, self.scheme.header_bits(header))
                if port is None:
                    if u != dest:
                        raise RoutingError(
                            f"scheme declared delivery at {u}, wanted {dest}"
                        )
                    return RouteResult(
                        source, dest, True, path, weight, None, max_header
                    )
                v = self.ported.step(u, port)
                if _canon(u, v) in self.dead:
                    raise RoutingError(f"dead link ({u},{v})")
                weight += self.ported.step_weight(u, port)
                u = v
                path.append(u)
            raise RoutingError(f"TTL of {ttl} hops exhausted")
        except SCHEME_FAULTS as exc:
            if strict:
                raise
            return RouteResult(
                source, dest, False, path, weight, str(exc), max_header
            )


@dataclass
class SurvivabilityReport:
    """Outcome of a failure experiment."""

    failed_edges: Tuple[Tuple[int, int], ...]
    attempted: int
    connected_pairs: int
    delivered: int

    @property
    def delivery_rate(self) -> float:
        """Delivered fraction among still-connected pairs."""
        if self.connected_pairs == 0:
            return 1.0
        return self.delivered / self.connected_pairs


def sample_edge_failures(
    graph: Graph, f: int, rng: RngLike = None
) -> Tuple[Tuple[int, int], ...]:
    """``f`` distinct random edges (as canonical endpoint pairs)."""
    gen = make_rng(rng)
    if f > graph.m:
        raise ValueError(f"cannot fail {f} of {graph.m} edges")
    picks = gen.choice(graph.m, size=f, replace=False)
    return tuple(
        (int(graph.edges[e, 0]), int(graph.edges[e, 1])) for e in picks
    )


def surviving_graph(graph: Graph, dead: Iterable[Tuple[int, int]]) -> Graph:
    """``G ∖ F``: the graph with the dead edges removed."""
    dead_set = {_canon(int(a), int(b)) for a, b in dead}
    keep = [
        eid
        for eid in range(graph.m)
        if _canon(int(graph.edges[eid, 0]), int(graph.edges[eid, 1]))
        not in dead_set
    ]
    return Graph(
        graph.n,
        graph.edges[keep],
        graph.edge_weights[keep],
    )


def survivability(
    ported: PortedGraph,
    scheme: RoutingScheme,
    dead: Iterable[Tuple[int, int]],
    pairs: np.ndarray,
    *,
    engine: str = "auto",
) -> SurvivabilityReport:
    """Delivered fraction under failures, over still-connected pairs.

    ``engine="auto"`` routes the still-connected pairs through the batch
    engine (dead edges are dropped at the same point the hop-by-hop
    :class:`FaultyNetwork` drops them) when the scheme compiles, and
    falls back to the reference simulator otherwise;
    ``engine="reference"`` forces the hop-by-hop path.
    """
    dead = tuple(_canon(int(a), int(b)) for a, b in dead)
    remaining = surviving_graph(ported.graph, dead)
    _, labels = remaining.connected_components()
    pair_arr = np.asarray(pairs, dtype=np.int64)
    if pair_arr.size == 0:
        return SurvivabilityReport(dead, 0, 0, 0)
    conn_mask = labels[pair_arr[:, 0]] == labels[pair_arr[:, 1]]
    connected = int(conn_mask.sum())

    from .runner import _resolve_engine

    router = _resolve_engine(scheme, ported, engine)
    if router is not None:
        batch = router.route_pairs(pair_arr[conn_mask], dead_edges=dead)
        delivered = batch.delivered_count
    else:
        net = FaultyNetwork(ported, scheme, dead)
        delivered = sum(
            1
            for s, t in pair_arr[conn_mask]
            if net.route(int(s), int(t)).delivered
        )
    return SurvivabilityReport(
        failed_edges=dead,
        attempted=len(pair_arr),
        connected_pairs=connected,
        delivered=delivered,
    )
