"""Edge-failure injection: what TZ compact routing does *not* survive.

The TZ schemes are static: tables are compiled against a fixed graph,
and a failed edge silently breaks every route whose committed tree used
it.  Quantifying that fragility is the standard motivation for the
fault-tolerant compact-routing line of work that followed the paper
(e.g. forbidden-set labeling and FT routing schemes), so this module
makes the limitation measurable:

* :class:`FaultyNetwork` — a simulator whose ``route`` drops messages at
  dead edges (the packet reaches the endpoint, finds the link down, and
  the static scheme has no recourse);
* :func:`survivability` — delivered fraction under ``f`` random edge
  failures, counted only over pairs that remain connected in ``G∖F``
  (disconnected pairs are excluded: no scheme could deliver those);
* the **failure models** (:data:`FAILURE_MODELS`) — generators of
  ``(trials, m)`` boolean dead-edge matrices: i.i.d. edge death
  (:func:`iid_edge_trials`), correlated geographic outages via
  distance balls (:func:`geographic_failure_trials`), node crashes
  (:func:`node_failure_trials`), and progressive churn curves
  (:func:`churn_trials`);
* :func:`survivability_sweep` — the multi-trial vectorized resilience
  engine: all trials of a failure sweep advance through one
  :meth:`~repro.sim.engine.batch.BatchRouter.route_trials` call
  (scheme compiled once, trials as an extra array axis), bit-for-bit
  identical per (trial, pair) to routing each trial through
  :class:`FaultyNetwork` — the per-trial reference this module started
  from.

Expected shape (verified by tests): single-tree routing collapses worst
(every tree edge is a single point of failure for Θ(n²) pairs), the TZ
schemes degrade in proportion to how many committed trees touch the dead
edges, and recompiling on the surviving graph restores 100% delivery —
the "preprocessing is the fault boundary" statement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Iterable, Optional, Tuple

import numpy as np

from ..core.router import RoutingScheme
from ..errors import RoutingError
from ..graphs.graph import Graph
from ..graphs.ports import PortedGraph
from ..rng import RngLike, make_rng, spawn
from .network import SCHEME_FAULTS, Network, RouteResult


def _canon(u: int, v: int) -> Tuple[int, int]:
    return (u, v) if u < v else (v, u)


class FaultyNetwork(Network):
    """A :class:`~repro.sim.network.Network` with dead edges.

    A message that tries to cross a dead edge is dropped with failure
    reason ``"dead link"`` — modeling a router that sees the interface
    down and has no alternate entry in its static table.
    """

    def __init__(
        self,
        ported: PortedGraph,
        scheme: RoutingScheme,
        dead_edges: Iterable[Tuple[int, int]],
    ) -> None:
        super().__init__(ported, scheme)
        self.dead: FrozenSet[Tuple[int, int]] = frozenset(
            _canon(int(a), int(b)) for a, b in dead_edges
        )

    def route(
        self,
        source: int,
        dest: int,
        *,
        ttl: Optional[int] = None,
        strict: bool = False,
    ) -> RouteResult:
        n = self.ported.n
        if ttl is None:
            ttl = 4 * n + 16
        path = [source]
        weight = 0.0
        u = source
        max_header = 0
        try:
            header = self.scheme.initial_header(source, dest)
            max_header = self.scheme.header_bits(header)
            for _ in range(ttl):
                port, header = self.scheme.decide(u, header)
                max_header = max(max_header, self.scheme.header_bits(header))
                if port is None:
                    if u != dest:
                        raise RoutingError(
                            f"scheme declared delivery at {u}, wanted {dest}"
                        )
                    return RouteResult(
                        source, dest, True, path, weight, None, max_header
                    )
                v = self.ported.step(u, port)
                if _canon(u, v) in self.dead:
                    raise RoutingError(f"dead link ({u},{v})")
                weight += self.ported.step_weight(u, port)
                u = v
                path.append(u)
            raise RoutingError(f"TTL of {ttl} hops exhausted")
        except SCHEME_FAULTS as exc:
            if strict:
                raise
            return RouteResult(
                source, dest, False, path, weight, str(exc), max_header
            )


@dataclass
class SurvivabilityReport:
    """Outcome of a failure experiment."""

    failed_edges: Tuple[Tuple[int, int], ...]
    attempted: int
    connected_pairs: int
    delivered: int

    @property
    def delivery_rate(self) -> float:
        """Delivered fraction among still-connected pairs."""
        if self.connected_pairs == 0:
            return 1.0
        return self.delivered / self.connected_pairs


def sample_edge_failures(
    graph: Graph, f: int, rng: RngLike = None
) -> Tuple[Tuple[int, int], ...]:
    """``f`` distinct random edges (as canonical endpoint pairs).

    ``f = 0`` returns the empty tuple without touching the generator's
    stream (so it is well defined on edgeless graphs too); ``f = m``
    fails every edge.
    """
    if f < 0:
        raise ValueError(f"cannot fail a negative number of edges ({f})")
    if f > graph.m:
        raise ValueError(f"cannot fail {f} of {graph.m} edges")
    if f == 0:
        return ()
    gen = make_rng(rng)
    picks = gen.choice(graph.m, size=f, replace=False)
    return tuple(
        (int(graph.edges[e, 0]), int(graph.edges[e, 1])) for e in picks
    )


def dead_edge_mask(graph: Graph, dead: Iterable[Tuple[int, int]]) -> np.ndarray:
    """``(m,)`` boolean mask of the listed edges, by canonical edge id.

    Endpoint order does not matter: ``(u, v)`` and ``(v, u)`` flag the
    same undirected edge (``graph.edge_id`` canonicalizes).
    """
    mask = np.zeros(graph.m, dtype=bool)
    for a, b in dead:
        mask[graph.edge_id(int(a), int(b))] = True
    return mask


def edges_from_mask(graph: Graph, mask: np.ndarray) -> Tuple[Tuple[int, int], ...]:
    """The flagged edges of one mask row, as canonical endpoint pairs."""
    ids = np.flatnonzero(np.asarray(mask, dtype=bool))
    return tuple(
        _canon(int(graph.edges[e, 0]), int(graph.edges[e, 1])) for e in ids
    )


# ----------------------------------------------------------------------
# Failure models: (trials, m) dead-edge matrices
# ----------------------------------------------------------------------
def _check_trials(trials: int) -> None:
    """Reject negative trial counts uniformly across the failure models."""
    if trials < 0:
        raise ValueError(f"trial count must be non-negative, got {trials}")


def iid_edge_trials(
    graph: Graph,
    trials: int,
    *,
    f: Optional[int] = None,
    rate: Optional[float] = None,
    rng: RngLike = None,
) -> np.ndarray:
    """``trials`` independent i.i.d. edge-failure sets as a mask matrix.

    Exactly one of ``f`` (fail exactly that many edges per trial — each
    trial draws through its own :func:`repro.rng.spawn` child stream, so
    trial ``t`` reproduces ``sample_edge_failures(graph, f, child_t)``
    bit for bit) and ``rate`` (each edge dies independently with that
    probability; ``0.0`` kills nothing, ``1.0`` kills everything) must
    be given.
    """
    _check_trials(trials)
    if (f is None) == (rate is None):
        raise ValueError("give exactly one of f= (count) or rate= (probability)")
    if rate is not None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"failure rate must be in [0, 1], got {rate}")
        return make_rng(rng).random((trials, graph.m)) < rate
    masks = np.zeros((trials, graph.m), dtype=bool)
    for t, child in enumerate(spawn(make_rng(rng), trials)):
        masks[t] = dead_edge_mask(graph, sample_edge_failures(graph, f, child))
    return masks


def node_failure_trials(
    graph: Graph, trials: int, *, f: int = 1, rng: RngLike = None
) -> np.ndarray:
    """Per trial, crash ``f`` random vertices: every incident edge dies.

    A crashed router drops all its links, so pairs whose endpoint is
    down become disconnected in ``G∖F`` and are excluded from delivery
    rates automatically (the vertex is isolated).
    """
    _check_trials(trials)
    if not 0 <= f <= graph.n:
        raise ValueError(f"cannot crash {f} of {graph.n} vertices")
    masks = np.zeros((trials, graph.m), dtype=bool)
    down = np.zeros(graph.n, dtype=bool)
    for t, child in enumerate(spawn(make_rng(rng), trials)):
        down[:] = False
        if f:
            down[child.choice(graph.n, size=f, replace=False)] = True
        if graph.m:
            masks[t] = down[graph.edges[:, 0]] | down[graph.edges[:, 1]]
    return masks


def geographic_failure_trials(
    graph: Graph,
    trials: int,
    *,
    radius: float,
    rng: RngLike = None,
    epicenters: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Correlated regional outages: one distance ball dies per trial.

    Each trial picks a random epicenter vertex (or uses the given
    ``epicenters``) and kills every edge **both** of whose endpoints lie
    within shortest-path distance ``radius`` of it — the landmark-ball
    locality the TZ clusters themselves are built from, so a single
    outage takes out a coherent region instead of scattered links.
    Balls come from one batched Dijkstra over all epicenters.
    """
    _check_trials(trials)
    if radius < 0:
        raise ValueError(f"ball radius must be non-negative, got {radius}")
    if trials == 0:
        return np.zeros((0, graph.m), dtype=bool)
    if epicenters is None:
        epicenters = make_rng(rng).integers(0, graph.n, size=trials)
    centers = np.asarray(epicenters, dtype=np.int64)
    if centers.shape != (trials,):
        raise ValueError(f"need {trials} epicenters, got shape {centers.shape}")
    if graph.m == 0:
        return np.zeros((trials, 0), dtype=bool)
    dist, _ = graph.csr().sssp_batch(centers)
    in_ball = dist <= radius
    return in_ball[:, graph.edges[:, 0]] & in_ball[:, graph.edges[:, 1]]


def churn_trials(
    graph: Graph,
    trials: int,
    *,
    f_final: Optional[int] = None,
    rng: RngLike = None,
) -> np.ndarray:
    """A progressive churn curve: nested failure sets of growing size.

    One random edge order is drawn; trial ``t`` kills the first
    ``count_t`` edges of it, with counts ramping linearly from 0 to
    ``f_final`` (default ``m // 10``).  Trial ``t``'s dead set contains
    trial ``t-1``'s, so the sweep traces a monotone degradation curve —
    "how does delivery decay as the network churns out from under the
    static tables".
    """
    _check_trials(trials)
    if f_final is None:
        f_final = graph.m // 10
    if not 0 <= f_final <= graph.m:
        raise ValueError(f"cannot churn {f_final} of {graph.m} edges")
    if trials == 0:
        return np.zeros((0, graph.m), dtype=bool)
    perm = make_rng(rng).permutation(graph.m)
    rank = np.empty(graph.m, dtype=np.int64)
    rank[perm] = np.arange(graph.m, dtype=np.int64)
    if trials == 1:
        counts = np.array([f_final], dtype=np.int64)
    else:
        counts = np.rint(np.linspace(0.0, float(f_final), trials)).astype(np.int64)
    return rank[None, :] < counts[:, None]


#: Named failure models usable by the scenario lab and the CLI.  Each
#: maps ``(graph, trials, rng=..., **params) -> (trials, m) bool``.
FAILURE_MODELS: Dict[str, Callable[..., np.ndarray]] = {
    "iid-edges": iid_edge_trials,
    "geo-ball": geographic_failure_trials,
    "node-down": node_failure_trials,
    "churn": churn_trials,
}


def failure_trials(
    graph: Graph, model: str, trials: int, rng: RngLike = None, **params
) -> np.ndarray:
    """Build the ``(trials, m)`` dead-edge matrix of one named model.

    ``model`` is a :data:`FAILURE_MODELS` key; ``params`` are forwarded
    to the model function (e.g. ``rate=`` for ``iid-edges``,
    ``radius=`` for ``geo-ball``).
    """
    try:
        fn = FAILURE_MODELS[model]
    except KeyError:
        raise ValueError(
            f"unknown failure model {model!r}; "
            f"known: {', '.join(sorted(FAILURE_MODELS))}"
        ) from None
    return fn(graph, trials, rng=rng, **params)


def surviving_graph(graph: Graph, dead: Iterable[Tuple[int, int]]) -> Graph:
    """``G ∖ F``: the graph with the dead edges removed."""
    dead_set = {_canon(int(a), int(b)) for a, b in dead}
    keep = [
        eid
        for eid in range(graph.m)
        if _canon(int(graph.edges[eid, 0]), int(graph.edges[eid, 1]))
        not in dead_set
    ]
    return Graph(
        graph.n,
        graph.edges[keep],
        graph.edge_weights[keep],
    )


def survivability(
    ported: PortedGraph,
    scheme: RoutingScheme,
    dead: Iterable[Tuple[int, int]],
    pairs: np.ndarray,
    *,
    engine: str = "auto",
) -> SurvivabilityReport:
    """Delivered fraction under failures, over still-connected pairs.

    ``engine="auto"`` routes the still-connected pairs through the batch
    engine (dead edges are dropped at the same point the hop-by-hop
    :class:`FaultyNetwork` drops them) when the scheme compiles, and
    falls back to the reference simulator otherwise;
    ``engine="reference"`` forces the hop-by-hop path.
    """
    dead = tuple(_canon(int(a), int(b)) for a, b in dead)
    pair_arr = np.asarray(pairs, dtype=np.int64)
    if pair_arr.size == 0:
        return SurvivabilityReport(dead, 0, 0, 0)
    mask = dead_edge_mask(ported.graph, dead)
    conn_mask = _connected_matrix(ported.graph, mask[None, :], pair_arr)[0]
    connected = int(conn_mask.sum())

    from .runner import _resolve_engine

    router = _resolve_engine(scheme, ported, engine)
    if router is not None:
        batch = router.route_pairs(pair_arr[conn_mask], dead_edges=dead)
        delivered = batch.delivered_count
    else:
        net = FaultyNetwork(ported, scheme, dead)
        delivered = sum(
            1
            for s, t in pair_arr[conn_mask]
            if net.route(int(s), int(t)).delivered
        )
    return SurvivabilityReport(
        failed_edges=dead,
        attempted=len(pair_arr),
        connected_pairs=connected,
        delivered=delivered,
    )


# ----------------------------------------------------------------------
# Multi-trial vectorized resilience engine
# ----------------------------------------------------------------------
def _connected_matrix(
    graph: Graph, masks: np.ndarray, pair_arr: np.ndarray
) -> np.ndarray:
    """``(T, P)`` pair-connectivity in ``G∖F_t``, one CC pass per trial.

    This is the *only* "pair connectivity under failures" implementation
    in the module — the classic :func:`survivability` routes through it
    with a one-row mask — so the sweep and the single-trial report can
    never diverge.  Surviving edges go straight into one sparse CC pass
    per trial (no ``Graph`` object is built: at 32+ trials the CSR/edge
    -index construction would dominate the whole sweep).
    """
    from scipy.sparse import coo_matrix
    from scipy.sparse.csgraph import connected_components

    T = masks.shape[0]
    out = np.zeros((T, pair_arr.shape[0]), dtype=bool)
    for t in range(T):
        keep = ~masks[t]
        u = graph.edges[keep, 0]
        v = graph.edges[keep, 1]
        adj = coo_matrix(
            (np.ones(u.shape[0]), (u, v)), shape=(graph.n, graph.n)
        )
        _, labels = connected_components(adj, directed=False)
        out[t] = labels[pair_arr[:, 0]] == labels[pair_arr[:, 1]]
    return out


@dataclass
class SweepResult:
    """Per-(trial, pair) outcome of a multi-trial failure sweep.

    ``delivered``/``weight``/``hops`` have shape ``(T, P)`` — trial
    axis first, matching
    :class:`~repro.sim.engine.batch.TrialSweepResult` — and are
    bit-for-bit identical between the vectorized engine and the
    per-trial :class:`FaultyNetwork` reference (the differential suite
    in ``tests/test_scenarios.py`` enforces it).  ``connected`` marks
    the pairs still connected in each trial's surviving graph; delivery
    rates count only those, exactly as :func:`survivability` does.
    """

    dead_masks: np.ndarray  # (T, m) bool
    edges: np.ndarray  # (m, 2) graph edge endpoints (for reports)
    source: np.ndarray  # (P,)
    dest: np.ndarray  # (P,)
    delivered: np.ndarray  # (T, P) bool
    weight: np.ndarray  # (T, P) float64
    hops: np.ndarray  # (T, P) int64
    connected: np.ndarray  # (T, P) bool
    engine: str  # "batch" or "reference"

    @property
    def trials(self) -> int:
        """Number of failure trials (first axis)."""
        return int(self.dead_masks.shape[0])

    @property
    def pair_count(self) -> int:
        """Number of routed pairs per trial (second axis)."""
        return int(self.source.shape[0])

    @property
    def delivery_rates(self) -> np.ndarray:
        """Per-trial delivered fraction among still-connected pairs.

        Trials with no connected pair report 1.0, matching
        :attr:`SurvivabilityReport.delivery_rate`.
        """
        connected = self.connected.sum(axis=1).astype(np.float64)
        delivered = (self.delivered & self.connected).sum(axis=1)
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(connected > 0, delivered / np.maximum(connected, 1), 1.0)

    def report(self, t: int) -> SurvivabilityReport:
        """Trial ``t`` summarized as a classic :class:`SurvivabilityReport`."""
        ids = np.flatnonzero(self.dead_masks[t])
        failed = tuple(
            _canon(int(self.edges[e, 0]), int(self.edges[e, 1])) for e in ids
        )
        return SurvivabilityReport(
            failed_edges=failed,
            attempted=self.pair_count,
            connected_pairs=int(self.connected[t].sum()),
            delivered=int((self.delivered[t] & self.connected[t]).sum()),
        )


def survivability_sweep(
    ported: PortedGraph,
    scheme: Optional[RoutingScheme],
    dead_masks: np.ndarray,
    pairs: np.ndarray,
    *,
    engine: str = "auto",
    ttl: Optional[int] = None,
    router=None,
    kernel: str = "auto",
) -> SweepResult:
    """Route one pair set under many failure trials at once.

    The vectorized path (``engine="auto"``/``"batch"``) compiles the
    scheme once and advances **all trials simultaneously** through
    :meth:`~repro.sim.engine.batch.BatchRouter.route_trials` — the
    per-trial dead-edge mask is just one more gather in the hop loop.
    ``engine="reference"`` replays the sweep the way it was done before
    this engine existed: one :class:`FaultyNetwork` per trial, one
    Python hop loop per pair — the differential ground truth.

    ``dead_masks`` is a ``(T, m)`` boolean matrix (see
    :func:`failure_trials`).  ``router`` optionally supplies a
    pre-built :class:`~repro.sim.engine.batch.BatchRouter` (e.g. over a
    store-loaded compiled scheme), in which case ``scheme`` may be
    ``None``.  ``kernel`` picks the batch hop-loop backend
    (:mod:`repro.kernels`; ignored with a pre-built ``router`` or the
    reference engine).  All pairs are routed in every trial;
    ``connected`` and the per-trial reports restrict to still-connected
    pairs exactly as :func:`survivability` does.
    """
    from .runner import ENGINES

    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; use one of {ENGINES}")
    graph = ported.graph
    masks = np.ascontiguousarray(np.asarray(dead_masks, dtype=bool))
    if masks.ndim != 2 or masks.shape[1] != graph.m:
        raise ValueError(
            f"dead_masks must have shape (trials, {graph.m}), "
            f"got {masks.shape}"
        )
    pair_arr = np.asarray(pairs, dtype=np.int64)
    if pair_arr.size == 0:
        pair_arr = pair_arr.reshape(0, 2)
    T = masks.shape[0]
    P = pair_arr.shape[0]
    connected = _connected_matrix(graph, masks, pair_arr)

    if router is None and engine != "reference":
        from .runner import _resolve_engine

        if scheme is None:
            raise ValueError('scheme may only be None when router= is given')
        router = _resolve_engine(scheme, ported, engine, kernel)
    if engine == "reference":
        router = None

    if router is not None:
        res = router.route_trials(pair_arr, masks, ttl=ttl)
        return SweepResult(
            dead_masks=masks,
            edges=graph.edges,
            source=res.source,
            dest=res.dest,
            delivered=res.delivered,
            weight=res.weight,
            hops=res.hops,
            connected=connected,
            engine="batch",
        )

    if scheme is None:
        raise ValueError('engine="reference" needs the scheme object')
    delivered = np.zeros((T, P), dtype=bool)
    weight = np.zeros((T, P))
    hops = np.zeros((T, P), dtype=np.int64)
    for t in range(T):
        net = FaultyNetwork(ported, scheme, edges_from_mask(graph, masks[t]))
        for i in range(P):
            res = net.route(int(pair_arr[i, 0]), int(pair_arr[i, 1]), ttl=ttl)
            delivered[t, i] = res.delivered
            weight[t, i] = res.weight
            hops[t, i] = res.hops
    return SweepResult(
        dead_masks=masks,
        edges=graph.edges,
        source=np.ascontiguousarray(pair_arr[:, 0]),
        dest=np.ascontiguousarray(pair_arr[:, 1]),
        delivered=delivered,
        weight=weight,
        hops=hops,
        connected=connected,
        engine="reference",
    )
