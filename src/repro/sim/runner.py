"""Drive many routed pairs through a scheme and summarize the outcome.

Two execution engines serve every entry point here:

* ``"batch"`` — the vectorized :class:`~repro.sim.engine.BatchRouter`:
  the scheme is compiled to dense arrays once and the whole pair set
  advances one synchronized hop per numpy step.  This is the default for
  every compiled TZ scheme and what makes 10⁵–10⁶-pair traffic matrices
  routine.
* ``"reference"`` — the hop-by-hop :class:`~repro.sim.network.Network`,
  the adversarial ground truth.  It is the only engine that can drive
  arbitrary (including pathological test) schemes, and the batch engine
  is required to agree with it bit-for-bit on delivered/weight/hops.

``engine="auto"`` picks the batch engine whenever the scheme compiles
(see :meth:`~repro.core.router.RoutingScheme.compile_batch`) and falls
back to the reference simulator otherwise.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..core.router import RoutingScheme
from ..errors import DeliveryError
from ..graphs.graph import Graph
from ..graphs.ports import PortedGraph
from ..rng import RngLike, make_rng, sample_pairs
from .network import Network, RouteResult
from .stats import StretchStats, stretch_stats

ENGINES = ("auto", "batch", "reference")


def pair_true_distances(
    graph: Graph,
    pairs: np.ndarray,
    true_dist: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Exact shortest-path distance of every ``(s, t)`` row of ``pairs``.

    With ``true_dist`` (a full all-pairs matrix, if the caller already
    has one) this is a gather.  Without it, distances are computed with
    one batched Dijkstra over the *unique sources only* —
    ``O(k·m log n)`` for ``k`` distinct sources instead of the
    ``O(n·m log n)`` full matrix, which is what keeps sampled pair sets
    on large graphs cheap.
    """
    pair_arr = np.asarray(pairs, dtype=np.int64)
    if pair_arr.size == 0:
        return np.zeros(0)
    if true_dist is not None:
        return np.asarray(true_dist)[pair_arr[:, 0], pair_arr[:, 1]].astype(
            np.float64
        )
    sources = np.unique(pair_arr[:, 0])
    dist, _ = graph.csr().sssp_batch(sources)
    rows = np.searchsorted(sources, pair_arr[:, 0])
    return dist[rows, pair_arr[:, 1]].astype(np.float64)


def _resolve_engine(
    scheme: RoutingScheme, ported: PortedGraph, engine: str, kernel: str = "auto"
):
    """Returns a compiled :class:`BatchRouter` or ``None`` (reference).

    ``kernel`` selects the router's hop-loop backend
    (``"numpy"``/``"native"``/``"auto"``, see :mod:`repro.kernels`); the
    reference engine ignores it.
    """
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; use one of {ENGINES}")
    if engine == "reference":
        return None
    from .engine import BatchRouter

    compiled = scheme.compile_batch(ported)
    if compiled is None:
        if engine == "batch":
            from ..errors import RoutingError

            raise RoutingError(
                f"scheme {scheme.name!r} has no batch form; use "
                'engine="reference"'
            )
        return None
    return BatchRouter(ported, scheme, kernel=kernel)


def _stretch_values(
    weights: np.ndarray, true_d: np.ndarray
) -> np.ndarray:
    """Per-pair stretch with the 0-distance convention (stretch 1)."""
    with np.errstate(divide="ignore", invalid="ignore"):
        return np.where(true_d > 0, weights / np.maximum(true_d, 1e-300), 1.0)


def _route_batch_checked(router, pair_arr, *, strict, ttl=None):
    """Route through the batch engine, enforcing strict delivery."""
    batch = router.route_pairs(pair_arr, ttl=ttl)
    if strict and not batch.delivered.all():
        bad = int(np.flatnonzero(~batch.delivered)[0])
        raise DeliveryError(
            f"pair ({batch.source[bad]},{batch.dest[bad]}) undelivered: "
            f"{batch.failure(bad)}"
        )
    return batch


def run_pairs(
    ported: PortedGraph,
    scheme: RoutingScheme,
    pairs: np.ndarray,
    *,
    true_dist: Optional[np.ndarray] = None,
    strict: bool = True,
    engine: str = "auto",
    ttl: Optional[int] = None,
    kernel: str = "auto",
) -> Tuple[List[RouteResult], List[float]]:
    """Route every ``(s, t)`` pair; returns results and per-pair stretch.

    ``true_dist`` is an optional all-pairs distance matrix; without it,
    true distances come from a batched Dijkstra over the pair set's
    unique sources (see :func:`pair_true_distances`).  With
    ``strict=True`` a routing failure raises — experiments must not
    silently drop undeliverable pairs (coverage principle); property
    tests that *expect* failures pass ``strict=False``.  ``engine``
    selects the execution path (module docstring) and ``kernel`` the
    batch engine's hop-loop backend (:mod:`repro.kernels`); ``ttl`` caps
    the hop budget per message (default ``4·n + 16``, as in the
    simulator).
    """
    graph = ported.graph
    pair_arr = np.asarray(pairs, dtype=np.int64)
    router = _resolve_engine(scheme, ported, engine, kernel)
    if router is not None:
        batch = _route_batch_checked(router, pair_arr, strict=strict, ttl=ttl)
        true_d = pair_true_distances(graph, pair_arr, true_dist)
        values = _stretch_values(batch.weight, true_d)
        stretches = [float(v) for v in values[batch.delivered]]
        return batch.to_route_results(), stretches

    true_d = pair_true_distances(graph, pair_arr, true_dist)
    net = Network(ported, scheme)
    results: List[RouteResult] = []
    stretches: List[float] = []
    for i, (s, t) in enumerate(pair_arr):
        s, t = int(s), int(t)
        res = net.route(s, t, ttl=ttl, strict=strict)
        results.append(res)
        if res.delivered:
            d = float(true_d[i])
            if d <= 0:
                stretches.append(1.0)
            else:
                stretches.append(res.weight / d)
        elif strict:
            raise DeliveryError(f"pair ({s},{t}) undelivered: {res.failure}")
    return results, stretches


def measure_scheme(
    ported: PortedGraph,
    scheme: RoutingScheme,
    *,
    pairs: Optional[np.ndarray] = None,
    n_pairs: int = 500,
    rng: RngLike = None,
    true_dist: Optional[np.ndarray] = None,
    strict: bool = True,
    engine: str = "auto",
    kernel: str = "auto",
) -> StretchStats:
    """Sample pairs (or use the given ones) and return stretch statistics
    checked against the scheme's proven bound.

    On the batch engine the whole measurement stays columnar (no
    per-pair Python objects), so six-figure samples are routine; the
    summary includes hop-count percentiles either way.
    """
    gen = make_rng(rng)
    n = ported.n
    if pairs is None:
        pairs = sample_pairs(gen, n, n_pairs)
    pair_arr = np.asarray(pairs, dtype=np.int64)

    router = _resolve_engine(scheme, ported, engine, kernel)
    if router is not None:
        batch = _route_batch_checked(router, pair_arr, strict=strict)
        true_d = pair_true_distances(ported.graph, pair_arr, true_dist)
        values = _stretch_values(batch.weight, true_d)
        return stretch_stats(
            values[batch.delivered],
            delivered=batch.delivered_count,
            attempted=batch.attempted,
            bound=scheme.stretch_bound(),
            hops=batch.hops[batch.delivered],
        )

    results, stretches = run_pairs(
        ported,
        scheme,
        pair_arr,
        true_dist=true_dist,
        strict=strict,
        engine="reference",
    )
    delivered = sum(1 for r in results if r.delivered)
    return stretch_stats(
        stretches,
        delivered=delivered,
        attempted=len(results),
        bound=scheme.stretch_bound(),
        hops=[r.hops for r in results if r.delivered],
    )
