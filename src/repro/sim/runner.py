"""Drive many routed pairs through a scheme and summarize the outcome."""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..core.router import RoutingScheme
from ..errors import DeliveryError
from ..graphs.ports import PortedGraph
from ..graphs.shortest_paths import all_pairs_shortest_paths
from ..rng import RngLike, make_rng, sample_pairs
from .network import Network, RouteResult
from .stats import StretchStats, stretch_stats


def run_pairs(
    ported: PortedGraph,
    scheme: RoutingScheme,
    pairs: np.ndarray,
    *,
    true_dist: Optional[np.ndarray] = None,
    strict: bool = True,
) -> Tuple[List[RouteResult], List[float]]:
    """Route every ``(s, t)`` pair; returns results and per-pair stretch.

    ``true_dist`` is the all-pairs distance matrix (computed on demand).
    With ``strict=True`` a routing failure raises — experiments must not
    silently drop undeliverable pairs (coverage principle); property
    tests that *expect* failures pass ``strict=False``.
    """
    graph = ported.graph
    if true_dist is None:
        true_dist = all_pairs_shortest_paths(graph)
    net = Network(ported, scheme)
    results: List[RouteResult] = []
    stretches: List[float] = []
    for s, t in pairs:
        s, t = int(s), int(t)
        res = net.route(s, t, strict=strict)
        results.append(res)
        if res.delivered:
            d = float(true_dist[s, t])
            if d <= 0:
                stretches.append(1.0)
            else:
                stretches.append(res.weight / d)
        elif strict:
            raise DeliveryError(f"pair ({s},{t}) undelivered: {res.failure}")
    return results, stretches


def measure_scheme(
    ported: PortedGraph,
    scheme: RoutingScheme,
    *,
    pairs: Optional[np.ndarray] = None,
    n_pairs: int = 500,
    rng: RngLike = None,
    true_dist: Optional[np.ndarray] = None,
    strict: bool = True,
) -> StretchStats:
    """Sample pairs (or use the given ones) and return stretch statistics
    checked against the scheme's proven bound."""
    gen = make_rng(rng)
    n = ported.n
    if pairs is None:
        pairs = sample_pairs(gen, n, n_pairs)
    results, stretches = run_pairs(
        ported, scheme, pairs, true_dist=true_dist, strict=strict
    )
    delivered = sum(1 for r in results if r.delivered)
    return stretch_stats(
        stretches,
        delivered=delivered,
        attempted=len(results),
        bound=scheme.stretch_bound(),
    )
