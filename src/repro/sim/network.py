"""Hop-by-hop message forwarding — the ground truth for every stretch
number reported in EXPERIMENTS.md.

The simulator is deliberately dumb: at each vertex it hands the scheme
only the current vertex id and the message header, receives a port,
physically crosses that port, and accumulates the traversed weight.  A
scheme cannot cheat — if its tables/labels are inconsistent the message
loops (caught by TTL) or the scheme raises, and the experiment records a
delivery failure instead of a stretch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core.router import RoutingScheme
from ..errors import DeliveryError, LabelError, PortError, RoutingError
from ..graphs.ports import PortedGraph

#: A scheme with inconsistent tables/labels surfaces as any of these at
#: route time; all three are recorded as a delivery failure (module
#: docstring), matching the batch engine's failure codes bit-for-bit.
SCHEME_FAULTS = (RoutingError, LabelError, PortError)


@dataclass
class RouteResult:
    """Outcome of routing one message.

    ``path`` is the full vertex sequence when the hop-by-hop simulator
    produced the result; the batch engine does not materialize paths and
    instead records the crossing count in ``hop_count`` (with an empty
    ``path``).  ``hops`` reads the same either way.
    """

    source: int
    dest: int
    delivered: bool
    path: List[int]
    weight: float
    failure: Optional[str] = None
    max_header_bits: int = 0
    hop_count: Optional[int] = None

    @property
    def hops(self) -> int:
        if self.hop_count is not None:
            return self.hop_count
        return max(0, len(self.path) - 1)


class Network:
    """A simulated network: a ported graph plus a compiled scheme."""

    def __init__(self, ported: PortedGraph, scheme: RoutingScheme) -> None:
        self.ported = ported
        self.scheme = scheme

    def route(
        self,
        source: int,
        dest: int,
        *,
        ttl: Optional[int] = None,
        strict: bool = False,
    ) -> RouteResult:
        """Route one message; never raises unless ``strict=True``.

        ``ttl`` defaults to ``4·n + 16`` hops — far beyond any legal TZ
        route (at most the graph's weighted diameter times the stretch
        bound in hops on unit weights), so only genuine loops trip it.
        """
        n = self.ported.n
        if ttl is None:
            ttl = 4 * n + 16
        path = [source]
        weight = 0.0
        u = source
        header = None
        max_header = 0
        try:
            header = self.scheme.initial_header(source, dest)
            max_header = self.scheme.header_bits(header)
            for _ in range(ttl):
                port, header = self.scheme.decide(u, header)
                max_header = max(max_header, self.scheme.header_bits(header))
                if port is None:
                    if u != dest:
                        raise RoutingError(
                            f"scheme declared delivery at {u}, wanted {dest}"
                        )
                    return RouteResult(
                        source, dest, True, path, weight, None, max_header
                    )
                weight += self.ported.step_weight(u, port)
                u = self.ported.step(u, port)
                path.append(u)
            raise DeliveryError(f"TTL of {ttl} hops exhausted (routing loop?)")
        except SCHEME_FAULTS as exc:
            if strict:
                raise
            return RouteResult(
                source, dest, False, path, weight, str(exc), max_header
            )
