"""Advance a whole traffic matrix one synchronized hop per array step.

:class:`BatchRouter` is the vectorized counterpart of
:class:`~repro.sim.network.Network`: the same per-hop forwarding rule,
applied to every in-flight message at once with numpy gathers instead of
a Python loop.  Each step it

1. retires rows that sit at their destination (delivered),
2. looks up each active row's record in its committed tree
   (``searchsorted`` on the compiled entry keys),
3. classifies the §2 forwarding rule per row — parent / heavy child /
   light-port — and gathers the next vertex, edge weight and edge id,
4. drops rows that violate a scheme invariant (no record, root exit,
   label mismatch) or try to cross a dead edge, and
5. accumulates weights and advances the survivors.

Because weights accumulate in the same per-row order as the reference
simulator, delivered/weight/hops are **bit-for-bit identical** to
:meth:`Network.route` — enforced by the equivalence suite in
``tests/test_batch_engine.py``.  Failure *reasons* are coarser (codes,
not the reference's prose), which is the only sanctioned difference.

**Trial-axis convention.**  Failure sweeps add one more array axis:
:meth:`BatchRouter.route_trials` routes the *same* pair set under ``T``
independent dead-edge masks at once.  Internally the trials are
flattened into ``T·P`` rows carrying a per-row trial index, the tree
commitment is computed once per pair and tiled (it does not depend on
the failure set), and the one hop loop advances every (trial, pair) row
together — the dead-link check simply gathers
``dead_masks[trial, edge]`` instead of ``dead_mask[edge]``.  Rows are
independent, so each trial's slice of a :class:`TrialSweepResult` is
bit-for-bit what :meth:`route_pairs` returns for that trial's dead-edge
set alone (and hence bit-for-bit the reference
:class:`~repro.sim.failures.FaultyNetwork` outcome) — enforced by
``tests/test_scenarios.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

import numpy as np

from ...core.router import RoutingScheme
from ...errors import RoutingError
from ...graphs.ports import PortedGraph
from ...kernels import resolve_kernel
from ...kernels.hop import hop_loop_native
from ...obs import TELEMETRY
from ..network import RouteResult
from .compile import CompiledScheme, compile_scheme

#: Failure codes recorded per undelivered row (0 = delivered / in flight).
FAIL_NONE = 0
FAIL_NO_TREE = 1  # no usable tree from source to destination
FAIL_NO_RECORD = 2  # message left its committed cluster
FAIL_ROOT_EXIT = 3  # destination DFS number outside a root record
FAIL_LABEL = 4  # light-port index beyond the destination label
FAIL_PORT = 5  # label carried a port the vertex does not have
FAIL_DEAD_LINK = 6  # next hop crosses a failed edge
FAIL_TTL = 7  # TTL exhausted (routing loop)

FAILURE_TEXT = {
    FAIL_NONE: None,
    FAIL_NO_TREE: "no usable tree (scheme invariant violated)",
    FAIL_NO_RECORD: "message left the cluster (scheme invariant violated)",
    FAIL_ROOT_EXIT: "destination f outside the tree of a root record",
    FAIL_LABEL: "light-port index beyond the destination label",
    FAIL_PORT: "label carried an out-of-range port",
    FAIL_DEAD_LINK: "dead link",
    FAIL_TTL: "TTL exhausted (routing loop?)",
}

#: ``cur`` sentinel: the message crossed into a vertex with no record in
#: its tree (only possible when routing over a port assignment the
#: scheme was not compiled for); the landed vertex lives in ``lost_v``.
_LOST = -2


@dataclass
class BatchResult:
    """Columnar outcome of one :meth:`BatchRouter.route_pairs` call.

    All arrays are per-pair, aligned with the input order.  ``weight``
    and ``hops`` are valid for failed rows too (the prefix walked before
    the failure), matching the reference simulator.
    """

    source: np.ndarray
    dest: np.ndarray
    delivered: np.ndarray  # bool
    weight: np.ndarray  # float64
    hops: np.ndarray  # int64
    tree: np.ndarray  # committed tree root, -1 if never committed
    max_header_bits: np.ndarray  # int64
    failure_code: np.ndarray  # int8, FAIL_* values

    @property
    def attempted(self) -> int:
        """Number of routed pairs (rows of the input matrix)."""
        return int(self.source.shape[0])

    @property
    def delivered_count(self) -> int:
        """Number of pairs that reached their destination."""
        return int(self.delivered.sum())

    def failure(self, row: int) -> Optional[str]:
        """Human-readable failure reason of one row (None if delivered)."""
        return FAILURE_TEXT[int(self.failure_code[row])]

    def to_route_results(self) -> List[RouteResult]:
        """Materialize per-pair :class:`RouteResult` objects.

        The engine does not record full vertex paths (that is the
        reference simulator's job); results carry an empty ``path`` and
        an explicit ``hop_count`` instead.
        """
        out: List[RouteResult] = []
        for i in range(self.attempted):
            out.append(
                RouteResult(
                    source=int(self.source[i]),
                    dest=int(self.dest[i]),
                    delivered=bool(self.delivered[i]),
                    path=[],
                    weight=float(self.weight[i]),
                    failure=self.failure(i),
                    max_header_bits=int(self.max_header_bits[i]),
                    hop_count=int(self.hops[i]),
                )
            )
        return out


@dataclass
class TrialSweepResult:
    """Columnar outcome of one :meth:`BatchRouter.route_trials` call.

    The trial axis comes first: every per-outcome array has shape
    ``(T, P)`` for ``T`` dead-edge trials over ``P`` pairs, while
    ``source``/``dest`` stay ``(P,)`` (the pair set is shared across
    trials).  Row ``[t, i]`` is bit-for-bit what
    :meth:`BatchRouter.route_pairs` would report for pair ``i`` under
    trial ``t``'s dead edges alone.
    """

    source: np.ndarray  # (P,)
    dest: np.ndarray  # (P,)
    delivered: np.ndarray  # (T, P) bool
    weight: np.ndarray  # (T, P) float64
    hops: np.ndarray  # (T, P) int64
    tree: np.ndarray  # (T, P) committed tree (trial-invariant)
    max_header_bits: np.ndarray  # (T, P) int64
    failure_code: np.ndarray  # (T, P) int8, FAIL_* values

    @property
    def trials(self) -> int:
        """Number of failure trials (first axis)."""
        return int(self.delivered.shape[0])

    @property
    def pair_count(self) -> int:
        """Number of routed pairs per trial (second axis)."""
        return int(self.source.shape[0])

    @property
    def delivered_per_trial(self) -> np.ndarray:
        """Delivered pair count of each trial, shape ``(T,)``."""
        return self.delivered.sum(axis=1)

    def trial(self, t: int) -> BatchResult:
        """One trial's slice as a plain :class:`BatchResult` (views)."""
        return BatchResult(
            source=self.source,
            dest=self.dest,
            delivered=self.delivered[t],
            weight=self.weight[t],
            hops=self.hops[t],
            tree=self.tree[t],
            max_header_bits=self.max_header_bits[t],
            failure_code=self.failure_code[t],
        )


class BatchRouter:
    """Route traffic matrices through a compiled scheme, vectorized.

    Parameters
    ----------
    ported:
        The simulated network's port assignment (the physical links the
        messages cross — normally the one the scheme was compiled on).
    scheme:
        A compiled routing scheme.  Schemes expose their dense-array
        form through :meth:`~repro.core.router.RoutingScheme.compile_batch`;
        schemes that return ``None`` there (custom/pathological test
        schemes) cannot be batch-routed — use the reference simulator.
    kernel:
        Hop-loop backend: ``"numpy"`` (the bit-for-bit differential
        reference), ``"native"`` (the compiled C kernel; raises
        :class:`~repro.errors.KernelError` when no toolchain is
        available) or ``"auto"`` (native when it loads, else numpy —
        see :mod:`repro.kernels`).  Outcomes are identical either way.
    """

    def __init__(
        self, ported: PortedGraph, scheme: RoutingScheme, *, kernel: str = "auto"
    ) -> None:
        """Compile ``scheme`` against ``ported`` (cached on the scheme)."""
        self.ported: Optional[PortedGraph] = ported
        self.scheme: Optional[RoutingScheme] = scheme
        compiled = scheme.compile_batch(ported)
        if compiled is None:
            compiled = compile_scheme(scheme, ported)  # raises RoutingError
        self.compiled: CompiledScheme = compiled
        self.kernel: str = resolve_kernel(kernel)

    @classmethod
    def from_compiled(
        cls,
        compiled: CompiledScheme,
        ported: Optional[PortedGraph] = None,
        *,
        kernel: str = "auto",
    ) -> "BatchRouter":
        """A router over an already-compiled (e.g. mmap-loaded) scheme.

        The compiled arrays carry the resolved step tables, so no graph
        or scheme object is needed to route; ``ported`` is only required
        for ``dead_edges`` simulation (edge ids come from the graph).
        """
        router = cls.__new__(cls)
        router.ported = ported
        router.scheme = None
        router.compiled = compiled
        router.kernel = resolve_kernel(kernel)
        return router

    # ------------------------------------------------------------------
    # Input validation / shared pieces
    # ------------------------------------------------------------------
    def _validate_pairs(self, pairs: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """``(src, dst)`` columns of a checked ``(P, 2)`` pair matrix."""
        pair_arr = np.asarray(pairs, dtype=np.int64)
        if pair_arr.size == 0:
            pair_arr = pair_arr.reshape(0, 2)
        if pair_arr.ndim != 2 or pair_arr.shape[1] != 2:
            raise RoutingError("pairs must be an (m, 2) integer array")
        src = np.ascontiguousarray(pair_arr[:, 0])
        dst = np.ascontiguousarray(pair_arr[:, 1])
        n = self.compiled.n
        if src.shape[0] and (
            src.min() < 0 or src.max() >= n or dst.min() < 0 or dst.max() >= n
        ):
            raise RoutingError("pair endpoint out of range")
        return src, dst

    def _edge_mask(self, dead_edges: Iterable[Tuple[int, int]]) -> np.ndarray:
        """``(m,)`` boolean mask of the listed edges (canonical ids)."""
        from ..failures import dead_edge_mask

        if self.ported is None:
            raise RoutingError(
                "dead_edges needs the ported graph (edge ids); "
                "construct the router with one"
            )
        return dead_edge_mask(self.ported.graph, dead_edges)

    def _commit(
        self, src: np.ndarray, dst: np.ndarray
    ) -> Tuple[np.ndarray, ...]:
        """Commit every pair to a tree (the 4k−5 / §4 source strategy).

        Returns the per-row routing state consumed by :meth:`_hop_loop`:
        ``(fail, tree, header, dest_f, lp_lo, lp_hi, epos_src,
        epos_dst)``.  Pure per row — the state of a pair does not depend
        on any other row, which is what lets :meth:`route_trials`
        compute it once and tile it across trials.
        """
        cs = self.compiled
        count = src.shape[0]
        fail = np.zeros(count, dtype=np.int8)
        header = np.full(count, 2 * cs.id_bits, dtype=np.int64)
        tree = np.full(count, -1, dtype=np.int64)
        dest_f = np.zeros(count, dtype=np.int64)
        lp_lo = np.zeros(count, dtype=np.int64)
        lp_hi = np.zeros(count, dtype=np.int64)
        # Routing state is entry-indexed: a message at vertex u inside
        # committed tree w is "at" the compiled entry (w, u); arrival is
        # entry equality with the destination's entry.  Trivial (s == t)
        # pairs share a sentinel so the first arrival check retires them.
        epos_src = np.full(count, -7, dtype=np.int64)
        epos_dst = np.full(count, -7, dtype=np.int64)
        nontrivial = np.flatnonzero(src != dst)
        if nontrivial.size:
            if cs.handshake:
                sel = cs.select_trees_handshake(src[nontrivial], dst[nontrivial])
            else:
                sel = cs.select_trees(src[nontrivial], dst[nontrivial])
            sel_tree, sel_epos, sel_spos, sel_ok = sel
            fail[nontrivial[~sel_ok]] = FAIL_NO_TREE
            good = nontrivial[sel_ok]
            epos = sel_epos[sel_ok]
            tree[good] = sel_tree[sel_ok]
            header[good] = 2 * cs.id_bits + cs.ent_label_bits[epos]
            dest_f[good] = cs.ent_f[epos]
            lp_lo[good] = cs.lp_indptr[epos]
            lp_hi[good] = cs.lp_indptr[epos + 1]
            epos_src[good] = sel_spos[sel_ok]
            epos_dst[good] = epos
        return fail, tree, header, dest_f, lp_lo, lp_hi, epos_src, epos_dst

    # ------------------------------------------------------------------
    # Public entry points
    # ------------------------------------------------------------------
    def route_pairs(
        self,
        pairs: np.ndarray,
        *,
        ttl: Optional[int] = None,
        dead_edges: Optional[Iterable[Tuple[int, int]]] = None,
    ) -> BatchResult:
        """Route every ``(s, t)`` row of ``pairs``; never raises per-pair.

        ``ttl`` matches the reference default (``4·n + 16`` forwarding
        decisions).  ``dead_edges`` drops any row whose next hop crosses
        a listed edge, mirroring :class:`~repro.sim.failures.FaultyNetwork`.
        """
        tm = TELEMETRY
        with tm.span("route.route_pairs", pairs=int(np.asarray(pairs).shape[0])):
            src, dst = self._validate_pairs(pairs)
            dead_masks: Optional[np.ndarray] = None
            trial: Optional[np.ndarray] = None
            if dead_edges is not None:
                dead_list = list(dead_edges)
                if dead_list:
                    dead_masks = self._edge_mask(dead_list)[None, :]
                    trial = np.zeros(src.shape[0], dtype=np.int64)
            with tm.span("route.commit"):
                state = self._commit(src, dst)
            with tm.span("route.hop_loop"):
                return self._hop_loop(src, dst, state, ttl, dead_masks, trial)

    def route_trials(
        self,
        pairs: np.ndarray,
        dead_edge_masks: np.ndarray,
        *,
        ttl: Optional[int] = None,
    ) -> TrialSweepResult:
        """Route the same pairs under ``T`` dead-edge trials at once.

        ``dead_edge_masks`` is a ``(T, m)`` boolean matrix — row ``t``
        flags the canonical edge ids dead in trial ``t`` (build it with
        :func:`repro.sim.failures.failure_trials` or
        :func:`repro.sim.failures.dead_edge_mask`).  The scheme stays
        compiled once and the tree commitment is computed once per pair;
        only the hop loop carries the trial axis.  Slice ``t`` of the
        result is bit-for-bit ``route_pairs(pairs, dead_edges=<trial
        t's edges>)``.
        """
        cs = self.compiled
        src, dst = self._validate_pairs(pairs)
        masks = np.ascontiguousarray(np.asarray(dead_edge_masks, dtype=bool))
        if masks.ndim != 2:
            raise RoutingError(
                "dead_edge_masks must be a (trials, m) boolean matrix"
            )
        if self.ported is not None and masks.shape[1] != self.ported.graph.m:
            raise RoutingError(
                f"dead_edge_masks has {masks.shape[1]} edge columns, "
                f"graph has {self.ported.graph.m} edges"
            )
        # Every edge id the hop loop can gather must be in range: the
        # step tables cover all graph edges, but guard the tree-link
        # columns too for schemes compiled from foreign containers.
        for edge_ids in (cs.step_edge, cs.ent_parent_edge, cs.ent_heavy_edge):
            if edge_ids.size and masks.shape[1] <= int(edge_ids.max()):
                raise RoutingError(
                    "dead_edge_masks has fewer edge columns than the "
                    "compiled scheme's edge ids"
                )
        T = masks.shape[0]
        P = src.shape[0]
        tm = TELEMETRY
        with tm.span("route.trials", trials=T, pairs=P):
            with tm.span("route.commit"):
                state = self._commit(src, dst)
            tiled = tuple(np.tile(a, T) for a in state)
            with tm.span("route.hop_loop"):
                flat = self._hop_loop(
                    np.tile(src, T),
                    np.tile(dst, T),
                    tiled,
                    ttl,
                    masks,
                    np.repeat(np.arange(T, dtype=np.int64), P),
                )
        return TrialSweepResult(
            source=src,
            dest=dst,
            delivered=flat.delivered.reshape(T, P),
            weight=flat.weight.reshape(T, P),
            hops=flat.hops.reshape(T, P),
            tree=flat.tree.reshape(T, P),
            max_header_bits=flat.max_header_bits.reshape(T, P),
            failure_code=flat.failure_code.reshape(T, P),
        )

    # ------------------------------------------------------------------
    # The synchronized hop loop
    # ------------------------------------------------------------------
    def _hop_loop(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        state: Tuple[np.ndarray, ...],
        ttl: Optional[int],
        dead_masks: Optional[np.ndarray],
        trial: Optional[np.ndarray],
    ) -> BatchResult:
        """Advance all committed rows to their outcomes (kernel dispatch).

        ``state`` is :meth:`_commit`'s output (owned by this call — the
        ``fail`` column is mutated in place).  ``dead_masks`` is a
        ``(T, m)`` boolean matrix and ``trial`` the per-row trial index
        into it (both ``None`` when no edges are dead); plain
        single-failure-set routing passes a one-row matrix.  The numpy
        and native kernels return bit-for-bit identical columns.
        """
        if ttl is None:
            ttl = 4 * self.compiled.n + 16
        tm = TELEMETRY
        with tm.span(
            "kernel.hop_step", impl=self.kernel, rows=int(src.shape[0])
        ):
            if self.kernel == "native":
                return self._hop_loop_c(src, dst, state, ttl, dead_masks, trial)
            return self._hop_loop_numpy(src, dst, state, ttl, dead_masks, trial)

    def _hop_loop_c(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        state: Tuple[np.ndarray, ...],
        ttl: int,
        dead_masks: Optional[np.ndarray],
        trial: Optional[np.ndarray],
    ) -> BatchResult:
        """The compiled per-row walk (see :mod:`repro.kernels.hop`)."""
        _fail, tree, header, *_rest = state
        delivered, weight, hops, fail, rounds = hop_loop_native(
            self.compiled, dst, state, ttl, dead_masks, trial
        )
        tm = TELEMETRY
        if tm.enabled:
            tm.count("route.hop_iterations", rounds)
            tm.count("route.pairs_routed", int(src.shape[0]))
            tm.count("route.delivered", int(delivered.sum()))
        return BatchResult(
            source=src,
            dest=dst,
            delivered=delivered,
            weight=weight,
            hops=hops,
            tree=tree,
            max_header_bits=header,
            failure_code=fail,
        )

    def _hop_loop_numpy(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        state: Tuple[np.ndarray, ...],
        ttl: int,
        dead_masks: Optional[np.ndarray],
        trial: Optional[np.ndarray],
    ) -> BatchResult:
        """The synchronized numpy reference loop (one hop per array step)."""
        cs = self.compiled
        count = src.shape[0]
        fail, tree, header, dest_f, lp_lo, lp_hi, epos_src, epos_dst = state
        delivered = np.zeros(count, dtype=bool)
        weight = np.zeros(count)
        hops = np.zeros(count, dtype=np.int64)

        # --- synchronized hop stepping (state compacted as rows retire) -
        rows = np.flatnonzero(fail == FAIL_NONE)
        cur = epos_src[rows]
        dst_e = epos_dst[rows]
        dsts = dst[rows]
        target_f = dest_f[rows]
        trees = tree[rows]
        lo = lp_lo[rows]
        hi = lp_hi[rows]
        lost_v = np.full(rows.shape[0], -1, dtype=np.int64)
        tri = trial[rows] if trial is not None else None

        def _compact(keep: np.ndarray) -> None:
            """Drop retired rows from every live state column."""
            nonlocal rows, cur, dst_e, dsts, target_f, trees, lo, hi, lost_v, tri
            rows = rows[keep]
            cur = cur[keep]
            dst_e = dst_e[keep]
            dsts = dsts[keep]
            target_f = target_f[keep]
            trees = trees[keep]
            lo = lo[keep]
            hi = hi[keep]
            lost_v = lost_v[keep]
            if tri is not None:
                tri = tri[keep]

        rounds = 0
        for _ in range(ttl):
            if rows.size == 0:
                break
            rounds += 1
            # Arrival is checked before anything else (as in the
            # reference decide): entry equality, or — for messages that
            # crossed into a recordless vertex — landing on the
            # destination itself, which needs no record to terminate.
            lost = cur == _LOST
            arrived = (cur == dst_e) | (lost & (lost_v == dsts))
            if arrived.any():
                delivered[rows[arrived]] = True
                _compact(~arrived)
                lost = lost[~arrived]
                if rows.size == 0:
                    break
            if lost.any():
                fail[rows[lost]] = FAIL_NO_RECORD
                _compact(~lost)
                if rows.size == 0:
                    break
            rec_f = cs.ent_f[cur]
            # §2 forwarding rule.  target_f == rec_f would mean arrival
            # (DFS numbers are unique per tree) and was handled above.
            outside = (target_f < rec_f) | (target_f > cs.ent_finish[cur])
            heavy = ~outside & (target_f >= rec_f + 1)
            heavy &= target_f <= cs.ent_heavy_finish[cur]
            light = ~(outside | heavy)

            nxt = np.empty(rows.shape[0], dtype=np.int64)
            wts = np.empty(rows.shape[0])
            edge = np.full(rows.shape[0], -1, dtype=np.int64)
            code = np.zeros(rows.shape[0], dtype=np.int8)
            new_lost = np.full(rows.shape[0], -1, dtype=np.int64)

            pe = cur[outside]
            nxt[outside] = cs.ent_parent_epos[pe]
            wts[outside] = cs.ent_parent_wt[pe]
            if dead_masks is not None:
                edge[outside] = cs.ent_parent_edge[pe]
            he = cur[heavy]
            nxt[heavy] = cs.ent_heavy_epos[he]
            wts[heavy] = cs.ent_heavy_wt[he]
            if dead_masks is not None:
                edge[heavy] = cs.ent_heavy_edge[he]
            code[outside & (nxt == -1)] = FAIL_ROOT_EXIT
            # heavy with no heavy child (-1) means a corrupted record
            # (heavy_finish > f on a leaf); the reference hits PortError
            # stepping on port 0, before crossing — match that.
            code[heavy & (nxt == -1)] = FAIL_PORT
            # A _LOST transition still crosses the physical edge (the
            # reference only discovers the missing record at the next
            # decide); record the landed vertex and keep the row moving.
            went_lost = (outside | heavy) & (nxt == _LOST)
            if went_lost.any():
                om = outside & went_lost
                new_lost[om] = cs.ent_parent_next[cur[om]]
                hm = heavy & went_lost
                new_lost[hm] = cs.ent_heavy_next[cur[hm]]

            if light.any():
                li = np.flatnonzero(light)
                lp_pos = lo[li] + cs.ent_light_depth[cur[li]]
                in_label = lp_pos < hi[li]
                code[li[~in_label]] = FAIL_LABEL
                li = li[in_label]
                lp_pos = lp_pos[in_label]
                if li.size:
                    port = cs.lp_data[lp_pos]
                    at = cs.ent_vertex[cur[li]]
                    step = cs.g_indptr[at] + port - 1
                    port_ok = (port >= 1) & (step < cs.g_indptr[at + 1])
                    code[li[~port_ok]] = FAIL_PORT
                    li = li[port_ok]
                    step = step[port_ok]
                    # Light hops cross a physical port; resolve the
                    # landed vertex back to its entry in the tree.
                    landed_v = cs.step_next[step]
                    landed, found = cs.entry_pos(trees[li], landed_v)
                    nxt[li] = np.where(found, landed, _LOST)
                    new_lost[li] = np.where(found, -1, landed_v)
                    wts[li] = cs.step_wt[step]
                    if dead_masks is not None:
                        edge[li] = cs.step_edge[step]

            if dead_masks is not None:
                crossing = (code == FAIL_NONE) & (edge >= 0)
                dead_hit = crossing & dead_masks[tri, np.maximum(edge, 0)]
                code[dead_hit] = FAIL_DEAD_LINK

            bad = code != FAIL_NONE
            if bad.any():
                fail[rows[bad]] = code[bad]
                keep = ~bad
                moving = rows[keep]
                weight[moving] += wts[keep]
                hops[moving] += 1
                cur = nxt
                lost_v = new_lost
                _compact(keep)
            else:
                weight[rows] += wts
                hops[rows] += 1
                cur = nxt
                lost_v = new_lost

        fail[rows] = FAIL_TTL

        tm = TELEMETRY
        if tm.enabled:
            tm.count("route.hop_iterations", rounds)
            tm.count("route.pairs_routed", count)
            tm.count("route.delivered", int(delivered.sum()))
        return BatchResult(
            source=src,
            dest=dst,
            delivered=delivered,
            weight=weight,
            hops=hops,
            tree=tree,
            max_header_bits=header,
            failure_code=fail,
        )
