"""Vectorized batch routing engine.

Compiles a :class:`~repro.core.router.RoutingScheme` into dense numpy
arrays (:mod:`repro.sim.engine.compile`) and routes whole traffic
matrices by advancing every in-flight message one synchronized hop per
array step (:mod:`repro.sim.engine.batch`) — no Python per-hop loop.

The hop-by-hop :class:`~repro.sim.network.Network` remains the
adversarial ground truth: the engine is required (and tested) to agree
with it bit-for-bit on ``(delivered, weight, hops)`` for every compiled
scheme.  Use ``engine="reference"`` in :func:`repro.sim.runner.run_pairs`
to route through the reference simulator instead.

Failure sweeps ride the same loop with one extra array axis:
:meth:`BatchRouter.route_trials` advances all trials of a multi-trial
dead-edge experiment simultaneously (trial-axis convention documented
in :mod:`repro.sim.engine.batch`), returning a :class:`TrialSweepResult`
whose per-trial slices are bit-for-bit single-trial results.
"""

from .batch import BatchResult, BatchRouter, TrialSweepResult
from .compile import CompiledScheme, compile_scheme

__all__ = [
    "BatchResult",
    "BatchRouter",
    "CompiledScheme",
    "TrialSweepResult",
    "compile_scheme",
]
