"""Compile a routing scheme into the dense arrays the batch engine routes on.

The Thorup–Zwick model is table-driven: every forwarding decision at a
vertex ``u`` inside a committed tree ``T_w`` is a constant number of
integer comparisons against ``u``'s O(1)-word record plus one indexed
read of the destination's light-port sequence.  That makes the whole
runtime state *columnar*: a :class:`CompiledScheme` materializes

* one **entry** per (tree ``w``, member ``u``) pair — the record fields
  plus the parent/heavy next-hop **resolved to concrete neighbors,
  weights and edge ids** through the shared port assignment;
* the light-port sequences of every member-as-destination, flattened
  into a CSR-style ``(lp_indptr, lp_data)`` pair;
* the level-0 **member maps** (the source-side "is the destination in my
  cluster?" check) as a sorted key array;
* the **pivot matrix** of the hierarchy (which trees a destination's
  label advertises, level by level);
* the global ``(vertex, port) -> (neighbor, weight, edge)`` step tables
  of the ported graph, so label-carried light ports resolve with one
  gather.

Entries are keyed by ``w * n + u`` in one sorted int64 array, so "does
``u`` have a record for ``T_w``" — the membership test behind both the
4k−5 commit strategy and the §4 handshake alternation — is a vectorized
``searchsorted`` over arbitrarily many messages at once.

:func:`compile_scheme` accepts the general :class:`TZRoutingScheme`
(``scheme_k`` for any k, hence also the §3 stretch-3 ``scheme_k2``
specialization) and the §4 :class:`HandshakeRoutingScheme` wrapper.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

import numpy as np

from ...errors import RoutingError
from ...graphs.ports import PortedGraph
from ...obs import TELEMETRY
from ...trees.label_codec import tree_label_bits_array
from ...trees.tz_tree import records_to_arrays


def _resolve_ports(
    graph, ent_vertex: np.ndarray, port: np.ndarray, step_next, step_wt, step_edge
):
    """Resolve per-entry port numbers to ``(neighbor, weight, edge)``
    through the target port assignment's step tables (0 = no port)."""
    count = port.shape[0]
    nxt = np.full(count, -1, dtype=np.int64)
    wt = np.zeros(count)
    edge = np.full(count, -1, dtype=np.int64)
    have = port > 0
    pos = graph.indptr[ent_vertex[have]] + port[have] - 1
    nxt[have] = step_next[pos]
    wt[have] = step_wt[pos]
    edge[have] = step_edge[pos]
    return nxt, wt, edge


def _link_entries(
    entry_keys: np.ndarray, entry_tree: np.ndarray, n: int, nxt: np.ndarray
) -> np.ndarray:
    """Entry index of each resolved neighbor in the same tree: ``-1`` for
    no transition, ``-2`` when the neighbor has no record there (only
    possible under a foreign port assignment)."""
    link = np.full(nxt.shape[0], -1, dtype=np.int64)
    have = nxt >= 0
    if have.any() and entry_keys.size:
        keys = entry_tree[have] * np.int64(n) + nxt[have]
        pos = np.minimum(np.searchsorted(entry_keys, keys), entry_keys.shape[0] - 1)
        found = entry_keys[pos] == keys
        link[have] = np.where(found, pos, -2)
    elif have.any():
        link[have] = -2
    return link


@dataclass
class CompiledScheme:
    """Dense-array export of a compiled TZ routing scheme (see module doc).

    All ``ent_*`` arrays are aligned with ``entry_keys`` (sorted by
    ``tree * n + vertex``); ``-1`` marks an absent parent (the root) or
    heavy child (a leaf).
    """

    n: int
    k: int
    id_bits: int
    handshake: bool
    # -- entries: one row per (tree, member) pair -----------------------
    entry_keys: np.ndarray  # (E,) int64, sorted: tree * n + vertex
    ent_vertex: np.ndarray  # (E,) the member vertex of each entry
    ent_f: np.ndarray  # (E,) DFS number of the member in its tree
    ent_finish: np.ndarray  # (E,) end of the member's DFS interval
    ent_heavy_finish: np.ndarray  # (E,) end of the heavy child's interval
    ent_light_depth: np.ndarray  # (E,) light edges above the member
    ent_parent_next: np.ndarray  # (E,) neighbor behind parent_port (-1 root)
    ent_parent_wt: np.ndarray  # (E,) weight of that edge
    ent_parent_edge: np.ndarray  # (E,) canonical edge id (-1 root)
    ent_heavy_next: np.ndarray  # (E,) neighbor behind heavy_port (-1 leaf)
    ent_heavy_wt: np.ndarray
    ent_heavy_edge: np.ndarray
    # Entry-to-entry transition links: the entry index of the parent /
    # heavy-child *in the same tree* (-1 = absent i.e. root/leaf, -2 =
    # the resolved neighbor has no record in the tree, which only
    # happens when routing over a port assignment the scheme was not
    # compiled for).  These let the hop loop step without any lookup.
    ent_parent_epos: np.ndarray  # (E,) int64
    ent_heavy_epos: np.ndarray  # (E,) int64
    ent_label_bits: np.ndarray  # (E,) encoded tree-label bits (as dest)
    root_epos: np.ndarray  # (n,) entry index of (tree=v, v), -1 if none
    # -- light-port sequences of members-as-destinations ----------------
    lp_indptr: np.ndarray  # (E+1,) int64
    lp_data: np.ndarray  # (L,) port numbers, root-to-leaf order
    # -- source-side level-0 member maps --------------------------------
    mem_keys: np.ndarray  # (M,) int64, sorted: source * n + member
    mem_epos: np.ndarray  # (M,) entry index of (tree=source, member)
    # -- destination labels: pivots per level ---------------------------
    pivot: np.ndarray  # (k, n) int64; row 0 unused
    # -- ported-graph step tables (indexed indptr[u] + port - 1) --------
    g_indptr: np.ndarray  # (n+1,)
    step_next: np.ndarray  # (2m,) neighbor reached by (u, port)
    step_wt: np.ndarray  # (2m,) edge weight
    step_edge: np.ndarray  # (2m,) canonical edge id

    @property
    def entry_count(self) -> int:
        """Total number of (tree, member) entries in the scheme."""
        return int(self.entry_keys.shape[0])

    def with_handshake(self) -> "CompiledScheme":
        """The same arrays with the §4 handshake tree selection."""
        return replace(self, handshake=True)

    # ------------------------------------------------------------------
    # Vectorized lookups
    # ------------------------------------------------------------------
    def entry_pos(
        self, tree: np.ndarray, vertex: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(positions, found)`` of ``(tree, vertex)`` entries, batched.

        ``positions`` is only meaningful where ``found`` is True; the
        test "``vertex`` has a record for ``T_tree``" is exactly
        ``found`` (the cluster-membership check of the paper).
        """
        if self.entry_count == 0:
            z = np.zeros(np.shape(tree), dtype=np.int64)
            return z, np.zeros(np.shape(tree), dtype=bool)
        keys = np.asarray(tree, dtype=np.int64) * self.n + vertex
        pos = np.searchsorted(self.entry_keys, keys)
        pos = np.minimum(pos, self.entry_count - 1)
        return pos, self.entry_keys[pos] == keys

    def select_trees(
        self, s: np.ndarray, t: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """The 4k−5 source strategy, batched: own cluster first, then the
        destination's pivots by increasing level.

        Returns ``(tree, epos_dest, epos_src, ok)``: the committed tree
        root, the entry indices of the destination (its tree label) and
        of the source inside it, and whether any usable tree exists.
        Mirrors :meth:`repro.core.scheme_k.TZRoutingScheme._commit`
        exactly.
        """
        count = s.shape[0]
        tree = np.full(count, -1, dtype=np.int64)
        epos = np.zeros(count, dtype=np.int64)
        spos = np.zeros(count, dtype=np.int64)
        ok = np.zeros(count, dtype=bool)
        # Level 0: destination in the source's own (level-0) cluster.
        if self.mem_keys.shape[0]:
            keys = s * self.n + t
            j = np.minimum(
                np.searchsorted(self.mem_keys, keys), self.mem_keys.shape[0] - 1
            )
            hit = self.mem_keys[j] == keys
            tree[hit] = s[hit]
            epos[hit] = self.mem_epos[j[hit]]
            spos[hit] = self.root_epos[s[hit]]
            ok[hit] = True
        else:
            hit = np.zeros(count, dtype=bool)
        undecided = ~hit
        # Levels 1..k-1: commit to the first pivot tree the source is in.
        for level in range(1, self.k):
            if not undecided.any():
                break
            rows = np.flatnonzero(undecided)
            w = self.pivot[level, t[rows]]
            src_pos, in_tree = self.entry_pos(w, s[rows])
            commit = rows[in_tree]
            dpos, dfound = self.entry_pos(w[in_tree], t[rows][in_tree])
            good = commit[dfound]
            tree[good] = w[in_tree][dfound]
            epos[good] = dpos[dfound]
            spos[good] = src_pos[in_tree][dfound]
            ok[good] = True
            # Rows whose source is in the pivot tree are decided either
            # way; a missing destination label means a corrupted scheme
            # and the row fails (ok stays False).
            undecided[commit] = False
        return tree, epos, spos, ok

    def select_trees_handshake(
        self, s: np.ndarray, t: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """The §4 handshake pivot alternation, batched.

        Mirrors :meth:`repro.core.handshake.HandshakeRoutingScheme.handshake_tree`:
        start from ``w = source`` and alternate endpoints, moving ``w`` to
        the active endpoint's next-level pivot until the passive endpoint
        has a record for ``T_w``.  Same return shape as
        :meth:`select_trees`.
        """
        count = s.shape[0]
        x = s.copy()
        y = t.copy()
        w = s.copy()
        ok = np.ones(count, dtype=bool)
        _, found = self.entry_pos(w, y)
        active = ~found
        level = 0
        while active.any():
            level += 1
            if level >= self.k:
                ok[active] = False
                break
            rows = np.flatnonzero(active)
            x[rows], y[rows] = y[rows], x[rows].copy()
            w[rows] = self.pivot[level, x[rows]]
            _, found = self.entry_pos(w[rows], y[rows])
            active[rows[found]] = False
        epos, dfound = self.entry_pos(w, t)
        spos, sfound = self.entry_pos(w, s)
        ok &= dfound & sfound
        return w, epos, spos, ok


def compile_scheme(
    scheme, ported: Optional[PortedGraph] = None
) -> CompiledScheme:
    """Compile ``scheme`` into a :class:`CompiledScheme`.

    ``ported`` defaults to the port assignment the scheme was built on;
    pass the simulator's assignment explicitly if it differs (forwarding
    then crosses exactly the same physical links the reference simulator
    would).  Raises :class:`~repro.errors.RoutingError` for schemes the
    engine cannot compile (use ``engine="reference"`` for those).
    """
    from ...core.handshake import HandshakeRoutingScheme
    from ...core.scheme_k import TZRoutingScheme

    if isinstance(scheme, HandshakeRoutingScheme):
        return compile_scheme(scheme.base, ported).with_handshake()
    if not isinstance(scheme, TZRoutingScheme):
        raise RoutingError(
            f"batch engine cannot compile {type(scheme).__name__}: only "
            "TZ table/label schemes have the dense-array form "
            '(route it with engine="reference")'
        )
    if ported is None:
        ported = scheme.ported
    if getattr(scheme, "_arrays", None) is not None:
        # Vectorized-builder schemes carry their array form already; the
        # export is a resolution pass over those arrays instead of a
        # Python walk of every (tree, member) dict entry.
        return compile_from_arrays(scheme._arrays, ported)
    with TELEMETRY.span("engine.compile", source="tables"):
        return _compile_tables(scheme, ported)


def _compile_tables(scheme, ported: PortedGraph) -> CompiledScheme:
    """Dict-walk export of a table scheme (the non-array slow path)."""
    graph = ported.graph
    n = scheme.n

    # -- global (vertex, port) step tables ------------------------------
    arc = ported.arc_of_port
    step_next = graph.adj[arc]
    step_wt = graph.adj_weights[arc]
    step_edge = graph.arc_edge[arc]

    # -- entries, tree by tree (ids ascending => keys sorted) ------------
    tree_ids = sorted(scheme.tree_labels)
    key_parts, field_parts = [], []
    u_parts, pport_parts, hport_parts = [], [], []
    fwidth_parts, lp_count_parts, lp_chunks = [], [], []
    for w in tree_ids:
        labels_w = scheme.tree_labels[w]
        members = np.fromiter(sorted(labels_w), dtype=np.int64, count=len(labels_w))
        recs = records_to_arrays(
            [scheme.tables[int(u)].trees[w] for u in members]
        )
        key_parts.append(w * n + members)
        u_parts.append(members)
        field_parts.append(
            (recs["f"], recs["finish"], recs["heavy_finish"], recs["light_depth"])
        )
        pport_parts.append(recs["parent_port"])
        hport_parts.append(recs["heavy_port"])
        fw = (max(scheme.tree_sizes[w] - 1, 0)).bit_length()
        fwidth_parts.append(np.full(members.shape[0], fw, dtype=np.int64))
        counts = np.empty(members.shape[0], dtype=np.int64)
        for i, u in enumerate(members):
            ports = labels_w[int(u)].light_ports
            counts[i] = len(ports)
            if ports:
                lp_chunks.append(np.asarray(ports, dtype=np.int64))
        lp_count_parts.append(counts)

    def _cat(parts, dtype=np.int64):
        """Concatenate chunks (empty-safe) into one typed array."""
        if not parts:
            return np.zeros(0, dtype=dtype)
        return np.concatenate(parts).astype(dtype, copy=False)

    entry_keys = _cat(key_parts)
    ent_u = _cat(u_parts)
    ent_f = _cat([p[0] for p in field_parts])
    ent_finish = _cat([p[1] for p in field_parts])
    ent_heavy_finish = _cat([p[2] for p in field_parts])
    ent_light_depth = _cat([p[3] for p in field_parts])
    parent_port = _cat(pport_parts)
    heavy_port = _cat(hport_parts)
    f_width = _cat(fwidth_parts)
    lp_counts = _cat(lp_count_parts)
    lp_indptr = np.zeros(entry_keys.shape[0] + 1, dtype=np.int64)
    np.cumsum(lp_counts, out=lp_indptr[1:])
    lp_data = _cat(lp_chunks)

    # -- resolve parent/heavy ports to neighbors through the ports ------
    parent_next, parent_wt, parent_edge = _resolve_ports(
        graph, ent_u, parent_port, step_next, step_wt, step_edge
    )
    heavy_next, heavy_wt, heavy_edge = _resolve_ports(
        graph, ent_u, heavy_port, step_next, step_wt, step_edge
    )

    # Entry-to-entry links: resolve each transition's target vertex back
    # to its entry row in the same tree (one sorted lookup at compile
    # time saves one per hop at route time).
    entry_tree = entry_keys // n if entry_keys.size else entry_keys
    parent_epos = _link_entries(entry_keys, entry_tree, n, parent_next)
    heavy_epos = _link_entries(entry_keys, entry_tree, n, heavy_next)

    root_epos = np.full(n, -1, dtype=np.int64)
    if entry_keys.size:
        verts = np.arange(n, dtype=np.int64)
        keys = verts * n + verts
        pos = np.minimum(
            np.searchsorted(entry_keys, keys), entry_keys.shape[0] - 1
        )
        found = entry_keys[pos] == keys
        root_epos[found] = pos[found]

    ent_label_bits = tree_label_bits_array(f_width, lp_indptr, lp_data)

    # -- level-0 member maps (the source-side cluster check) -------------
    mem_key_list, mem_pos_list = [], []
    for u in range(n):
        members = scheme.tables[u].members
        if not members:
            continue
        targets = np.fromiter(sorted(members), dtype=np.int64, count=len(members))
        mem_key_list.append(u * np.int64(n) + targets)
        pos = np.searchsorted(entry_keys, u * np.int64(n) + targets)
        mem_pos_list.append(pos)
    mem_keys = _cat(mem_key_list)
    mem_epos = _cat(mem_pos_list)

    pivot = np.ascontiguousarray(scheme.hierarchy.pivot, dtype=np.int64)

    id_bits = (max(n - 1, 0)).bit_length()

    return CompiledScheme(
        n=n,
        k=scheme.k,
        id_bits=id_bits,
        handshake=False,
        entry_keys=entry_keys,
        ent_vertex=ent_u,
        ent_f=ent_f,
        ent_finish=ent_finish,
        ent_heavy_finish=ent_heavy_finish,
        ent_light_depth=ent_light_depth,
        ent_parent_next=parent_next,
        ent_parent_wt=parent_wt,
        ent_parent_edge=parent_edge,
        ent_heavy_next=heavy_next,
        ent_heavy_wt=heavy_wt,
        ent_heavy_edge=heavy_edge,
        ent_parent_epos=parent_epos,
        ent_heavy_epos=heavy_epos,
        ent_label_bits=ent_label_bits,
        root_epos=root_epos,
        lp_indptr=lp_indptr,
        lp_data=lp_data,
        mem_keys=mem_keys,
        mem_epos=mem_epos,
        pivot=pivot,
        g_indptr=graph.indptr,
        step_next=step_next,
        step_wt=step_wt,
        step_edge=step_edge,
    )


def compile_single_tree(router, ported: PortedGraph) -> CompiledScheme:
    """Compile one spanning tree (§2 routing) for the batch engine.

    Single-tree routing is the degenerate TZ scheme with exactly one
    tree: every vertex holds a record for ``T_r`` and every destination
    label advertises ``r``.  Encoding it that way — entries keyed
    ``r * n + v``, an *empty* level-0 member map, and pivot row 1 pinned
    to ``r`` — makes :meth:`CompiledScheme.select_trees` commit every
    pair to ``T_r`` at level 1 and the unchanged hop loop do the rest,
    so the baseline rides the same vectorized runtime as the real
    schemes (delivered/weight/hops bit-for-bit the reference simulator).

    ``router`` is a spanning :class:`~repro.trees.tz_tree.TreeRouter`
    over ``ported`` (every vertex must have a record).
    """
    graph = ported.graph
    n = ported.n
    r = int(router.root)
    if router.tree_size != n:
        raise RoutingError(
            f"single-tree compile needs a spanning tree: {router.tree_size} "
            f"records for {n} vertices"
        )

    arc = ported.arc_of_port
    step_next = graph.adj[arc]
    step_wt = graph.adj_weights[arc]
    step_edge = graph.arc_edge[arc]

    members = np.arange(n, dtype=np.int64)
    recs = records_to_arrays([router.records[int(v)] for v in range(n)])
    entry_keys = r * np.int64(n) + members  # ascending: sorted by vertex

    parent_next, parent_wt, parent_edge = _resolve_ports(
        graph, members, recs["parent_port"], step_next, step_wt, step_edge
    )
    heavy_next, heavy_wt, heavy_edge = _resolve_ports(
        graph, members, recs["heavy_port"], step_next, step_wt, step_edge
    )
    # Entry position of vertex v is v itself (one tree, all vertices),
    # so the transition links are the resolved neighbors directly.
    parent_epos = np.where(parent_next >= 0, parent_next, -1)
    heavy_epos = np.where(heavy_next >= 0, heavy_next, -1)

    lp_counts = np.fromiter(
        (len(router.labels[int(v)].light_ports) for v in range(n)), np.int64, n
    )
    lp_indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(lp_counts, out=lp_indptr[1:])
    lp_data = np.fromiter(
        (p for v in range(n) for p in router.labels[int(v)].light_ports),
        np.int64,
        int(lp_indptr[-1]),
    )
    f_width = np.full(n, (max(n - 1, 0)).bit_length(), dtype=np.int64)
    ent_label_bits = tree_label_bits_array(f_width, lp_indptr, lp_data)

    root_epos = np.full(n, -1, dtype=np.int64)
    root_epos[r] = r
    pivot = np.zeros((2, n), dtype=np.int64)
    pivot[1] = r

    return CompiledScheme(
        n=n,
        k=2,
        id_bits=(max(n - 1, 0)).bit_length(),
        handshake=False,
        entry_keys=entry_keys,
        ent_vertex=members,
        ent_f=recs["f"],
        ent_finish=recs["finish"],
        ent_heavy_finish=recs["heavy_finish"],
        ent_light_depth=recs["light_depth"],
        ent_parent_next=parent_next,
        ent_parent_wt=parent_wt,
        ent_parent_edge=parent_edge,
        ent_heavy_next=heavy_next,
        ent_heavy_wt=heavy_wt,
        ent_heavy_edge=heavy_edge,
        ent_parent_epos=parent_epos,
        ent_heavy_epos=heavy_epos,
        ent_label_bits=ent_label_bits,
        root_epos=root_epos,
        lp_indptr=lp_indptr,
        lp_data=lp_data,
        mem_keys=np.zeros(0, dtype=np.int64),
        mem_epos=np.zeros(0, dtype=np.int64),
        pivot=pivot,
        g_indptr=graph.indptr,
        step_next=step_next,
        step_wt=step_wt,
        step_edge=step_edge,
    )


def compile_from_arrays(arrays, ported: PortedGraph) -> CompiledScheme:
    """Export a :class:`~repro.core.build.arrays.SchemeArrays` scheme.

    The array form already *is* the entry layout the engine routes on
    (sorted ``tree * n + vertex`` keys, record columns, light-port CSR,
    member maps, pivots); what remains is resolving the stored parent and
    heavy ports through ``ported``'s step tables — the same pass
    :func:`compile_scheme` runs, so routing over a foreign port
    assignment crosses exactly the same physical links either way.
    """
    with TELEMETRY.span(
        "engine.compile", source="arrays", entries=int(arrays.entry_keys.shape[0])
    ):
        return _compile_arrays(arrays, ported)


def _compile_arrays(arrays, ported: PortedGraph) -> CompiledScheme:
    """The resolution pass behind :func:`compile_from_arrays`."""
    graph = ported.graph
    n = arrays.n
    arc = ported.arc_of_port
    step_next = graph.adj[arc]
    step_wt = graph.adj_weights[arc]
    step_edge = graph.arc_edge[arc]

    entry_keys = arrays.entry_keys
    ent_u = arrays.ent_member

    parent_next, parent_wt, parent_edge = _resolve_ports(
        graph, ent_u, arrays.tr_parent_port, step_next, step_wt, step_edge
    )
    heavy_next, heavy_wt, heavy_edge = _resolve_ports(
        graph, ent_u, arrays.tr_heavy_port, step_next, step_wt, step_edge
    )
    entry_tree = arrays.ent_center

    return CompiledScheme(
        n=n,
        k=arrays.k,
        id_bits=(max(n - 1, 0)).bit_length(),
        handshake=False,
        entry_keys=entry_keys,
        ent_vertex=ent_u,
        ent_f=arrays.tr_f,
        ent_finish=arrays.tr_finish,
        ent_heavy_finish=arrays.tr_heavy_finish,
        ent_light_depth=arrays.tr_light_depth,
        ent_parent_next=parent_next,
        ent_parent_wt=parent_wt,
        ent_parent_edge=parent_edge,
        ent_heavy_next=heavy_next,
        ent_heavy_wt=heavy_wt,
        ent_heavy_edge=heavy_edge,
        ent_parent_epos=_link_entries(entry_keys, entry_tree, n, parent_next),
        ent_heavy_epos=_link_entries(entry_keys, entry_tree, n, heavy_next),
        ent_label_bits=arrays.entry_label_bits(),
        root_epos=np.ascontiguousarray(arrays.lab_epos[0]),
        lp_indptr=arrays.lp_indptr,
        lp_data=arrays.lp_data,
        mem_keys=arrays.mem_keys,
        mem_epos=arrays.mem_epos,
        pivot=np.ascontiguousarray(arrays.hierarchy.pivot, dtype=np.int64),
        g_indptr=graph.indptr,
        step_next=step_next,
        step_wt=step_wt,
        step_edge=step_edge,
    )
