"""Message-level network simulation: hop-by-hop forwarding over ports,
the vectorized batch routing engine, traffic workloads, failure
injection, and stretch/space statistics."""

from .engine import (
    BatchResult,
    BatchRouter,
    CompiledScheme,
    TrialSweepResult,
    compile_scheme,
)
from .network import Network, RouteResult
from .runner import measure_scheme, pair_true_distances, run_pairs
from .stats import SpaceStats, StretchStats, space_stats, stretch_stats
from .workloads import (
    WORKLOADS,
    adversarial_pairs,
    all_to_one,
    gravity_pairs,
    locality_pairs,
    make_workload,
    uniform_pairs,
)
from .failures import (
    FAILURE_MODELS,
    FaultyNetwork,
    SurvivabilityReport,
    SweepResult,
    churn_trials,
    dead_edge_mask,
    edges_from_mask,
    failure_trials,
    geographic_failure_trials,
    iid_edge_trials,
    node_failure_trials,
    sample_edge_failures,
    survivability,
    survivability_sweep,
    surviving_graph,
)

__all__ = [
    "Network",
    "RouteResult",
    "BatchRouter",
    "BatchResult",
    "CompiledScheme",
    "compile_scheme",
    "run_pairs",
    "measure_scheme",
    "pair_true_distances",
    "StretchStats",
    "SpaceStats",
    "stretch_stats",
    "space_stats",
    "uniform_pairs",
    "gravity_pairs",
    "all_to_one",
    "locality_pairs",
    "adversarial_pairs",
    "FaultyNetwork",
    "SurvivabilityReport",
    "sample_edge_failures",
    "survivability",
    "surviving_graph",
    "TrialSweepResult",
    "SweepResult",
    "survivability_sweep",
    "FAILURE_MODELS",
    "failure_trials",
    "iid_edge_trials",
    "geographic_failure_trials",
    "node_failure_trials",
    "churn_trials",
    "dead_edge_mask",
    "edges_from_mask",
    "WORKLOADS",
    "make_workload",
]
