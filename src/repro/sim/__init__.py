"""Message-level network simulation: hop-by-hop forwarding over ports,
the vectorized batch routing engine, traffic workloads, failure
injection, and stretch/space statistics."""

from .engine import BatchResult, BatchRouter, CompiledScheme, compile_scheme
from .network import Network, RouteResult
from .runner import measure_scheme, pair_true_distances, run_pairs
from .stats import SpaceStats, StretchStats, space_stats, stretch_stats
from .workloads import (
    adversarial_pairs,
    all_to_one,
    gravity_pairs,
    locality_pairs,
    uniform_pairs,
)
from .failures import (
    FaultyNetwork,
    SurvivabilityReport,
    sample_edge_failures,
    survivability,
    surviving_graph,
)

__all__ = [
    "Network",
    "RouteResult",
    "BatchRouter",
    "BatchResult",
    "CompiledScheme",
    "compile_scheme",
    "run_pairs",
    "measure_scheme",
    "pair_true_distances",
    "StretchStats",
    "SpaceStats",
    "stretch_stats",
    "space_stats",
    "uniform_pairs",
    "gravity_pairs",
    "all_to_one",
    "locality_pairs",
    "adversarial_pairs",
    "FaultyNetwork",
    "SurvivabilityReport",
    "sample_edge_failures",
    "survivability",
    "surviving_graph",
]
