"""Traffic workloads: which (source, destination) pairs to route.

Uniform random pairs (the default everywhere) answer "what is the
stretch of a typical pair", but routing papers' motivations are rarely
uniform: Internet traffic concentrates on popular destinations, local
traffic dominates physical networks.  These generators let experiments
ask sharper questions:

* :func:`uniform_pairs` — the baseline.
* :func:`gravity_pairs` — endpoints drawn ∝ degree^α (hub-heavy, the
  classic gravity model of Internet traffic).
* :func:`all_to_one` — everyone talks to one server (stress on a single
  landmark tree).
* :func:`zipf_pairs` — endpoints drawn from a Zipf(``s``) popularity
  law over a seeded random vertex ranking (the serving daemon's load
  model: a few hot sources and destinations dominate).
* :func:`locality_pairs` — destination within a bounded distance of the
  source (stresses the cluster/member path of the schemes, which should
  route such pairs exactly).
* :func:`adversarial_pairs` — the pairs with the worst oracle estimate,
  a cheap proxy for where routing stretch concentrates.

The generators that need only a graph, a count and randomness are also
reachable by name through :func:`make_workload` (registry
:data:`WORKLOADS`) — the dispatch the CLI and the scenario lab share.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..graphs.graph import Graph
from ..rng import RngLike, make_rng


def uniform_pairs(graph: Graph, count: int, rng: RngLike = None) -> np.ndarray:
    """Uniform random ordered pairs with distinct endpoints."""
    from ..rng import sample_pairs

    return sample_pairs(make_rng(rng), graph.n, count)


def gravity_pairs(
    graph: Graph,
    count: int,
    rng: RngLike = None,
    *,
    alpha: float = 1.0,
) -> np.ndarray:
    """Endpoints drawn independently with probability ∝ degree^alpha."""
    gen = make_rng(rng)
    weights = graph.degrees().astype(np.float64) ** alpha
    if weights.sum() <= 0:
        raise ValueError("graph has no edges; gravity weights are all zero")
    p = weights / weights.sum()
    src = gen.choice(graph.n, size=count, p=p)
    dst = gen.choice(graph.n, size=count, p=p)
    bad = src == dst
    while bad.any():
        dst[bad] = gen.choice(graph.n, size=int(bad.sum()), p=p)
        bad = src == dst
    return np.stack([src, dst], axis=1).astype(np.int64)


def all_to_one(
    graph: Graph, target: Optional[int] = None, *, rng: RngLike = None
) -> np.ndarray:
    """Every vertex sends to one destination (default: max-degree hub)."""
    t = int(np.argmax(graph.degrees())) if target is None else int(target)
    sources = np.array([v for v in range(graph.n) if v != t], dtype=np.int64)
    return np.stack([sources, np.full(sources.size, t, dtype=np.int64)], axis=1)


def zipf_pairs(
    graph: Graph,
    count: int,
    rng: RngLike = None,
    *,
    s: float = 1.2,
    users: Optional[int] = None,
) -> np.ndarray:
    """Zipf-skewed endpoints: rank ``r`` is drawn with probability ∝ 1/r^s.

    Sources come from ``users`` simulated users (default: every vertex)
    Zipf-ranked along one seeded permutation; destinations follow an
    independent Zipf ranking over all vertices.  ``s`` is the skew
    exponent (≈1.2 matches classic web/DNS popularity measurements;
    0 degenerates to uniform).  Self-pairs are resampled.
    """
    from ..serve.loadgen import zipf_weights

    if graph.n < 2:
        raise ValueError(f"need at least two vertices, got {graph.n}")
    gen = make_rng(rng)
    n_users = graph.n if users is None else max(1, min(int(users), graph.n))
    user_vertices = gen.permutation(graph.n)[:n_users]
    dest_ranking = gen.permutation(graph.n)
    src_p = zipf_weights(n_users, s)
    dst_p = zipf_weights(graph.n, s)
    src = user_vertices[gen.choice(n_users, size=count, p=src_p)]
    dst = dest_ranking[gen.choice(graph.n, size=count, p=dst_p)]
    bad = src == dst
    while bad.any():
        dst[bad] = dest_ranking[gen.choice(graph.n, size=int(bad.sum()), p=dst_p)]
        bad = src == dst
    return np.stack([src, dst], axis=1).astype(np.int64)


def locality_pairs(
    graph: Graph,
    count: int,
    radius: float,
    rng: RngLike = None,
    *,
    dist_matrix: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Pairs whose true distance is at most ``radius``.

    Rejection-samples sources then picks a uniform in-radius destination;
    raises if some source has no neighbor within the radius.
    """
    from ..graphs.shortest_paths import all_pairs_shortest_paths

    gen = make_rng(rng)
    D = all_pairs_shortest_paths(graph) if dist_matrix is None else dist_matrix
    pairs = np.empty((count, 2), dtype=np.int64)
    for i in range(count):
        for _attempt in range(64):
            s = int(gen.integers(0, graph.n))
            near = np.flatnonzero((D[s] <= radius) & (D[s] > 0))
            if near.size:
                pairs[i] = (s, int(near[int(gen.integers(0, near.size))]))
                break
        else:
            raise ValueError(
                f"no vertex has a neighbor within radius {radius}"
            )
    return pairs


#: Workload names accepted by :func:`make_workload` (the self-contained
#: generators; ``locality``/``adversarial`` need extra inputs and are
#: called directly).
WORKLOADS = ("uniform", "gravity", "all-to-one", "zipf")


def make_workload(
    graph: Graph, name: str, count: int, rng: RngLike = None, **params
) -> np.ndarray:
    """Generate a named traffic matrix: the CLI/scenario-lab dispatch.

    ``name`` is a :data:`WORKLOADS` key; ``params`` forward to the
    generator (e.g. ``alpha=`` for ``gravity``, ``target=`` for
    ``all-to-one``).  ``all-to-one`` ignores ``count`` — it is always
    the full n−1 sources (truncating would keep a biased low-id
    prefix).
    """
    if name == "uniform":
        return uniform_pairs(graph, count, rng, **params)
    if name == "gravity":
        return gravity_pairs(graph, count, rng, **params)
    if name == "all-to-one":
        return all_to_one(graph, rng=rng, **params)
    if name == "zipf":
        return zipf_pairs(graph, count, rng, **params)
    raise ValueError(
        f"unknown workload {name!r}; known: {', '.join(WORKLOADS)}"
    )


def adversarial_pairs(
    graph: Graph,
    count: int,
    oracle,
    rng: RngLike = None,
    *,
    candidates: int = 4096,
    dist_matrix: Optional[np.ndarray] = None,
) -> np.ndarray:
    """The ``count`` worst pairs by oracle-estimate ratio among a random
    candidate set — a cheap probe for where stretch concentrates."""
    from ..graphs.shortest_paths import all_pairs_shortest_paths
    from ..rng import sample_pairs

    gen = make_rng(rng)
    D = all_pairs_shortest_paths(graph) if dist_matrix is None else dist_matrix
    cand = sample_pairs(gen, graph.n, candidates)
    ratios = np.empty(cand.shape[0])
    for i, (s, t) in enumerate(cand):
        d = float(D[int(s), int(t)])
        ratios[i] = oracle.query(int(s), int(t)) / d if d > 0 else 1.0
    order = np.argsort(-ratios)
    return cand[order[:count]]
