"""Exception hierarchy for the ``repro`` package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause without swallowing programming errors such as
``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class GraphError(ReproError):
    """A graph is malformed or an operation received an invalid graph."""


class DisconnectedGraphError(GraphError):
    """An operation that requires a connected graph received one that isn't."""


class PortError(ReproError):
    """A port number does not correspond to an edge at the given vertex."""


class RoutingError(ReproError):
    """A routing scheme failed to make a forwarding decision."""


class DeliveryError(RoutingError):
    """A simulated message was not delivered (loop, TTL expiry, dead end)."""


class LabelError(ReproError):
    """A routing label is malformed or cannot be decoded."""


class PreprocessingError(ReproError):
    """Scheme preprocessing failed (e.g. landmark selection cannot satisfy
    its guarantees within the retry budget)."""


class EncodingError(ReproError):
    """Bit-level encoding or decoding failed."""


class KernelError(ReproError):
    """A compute-kernel selection is invalid or the requested backend is
    unavailable (e.g. ``kernel="native"`` with no C toolchain)."""


class ProtocolError(ReproError):
    """A serving-protocol frame is malformed (bad length, garbage JSON,
    mid-frame hangup) or violates the daemon's size limits."""
