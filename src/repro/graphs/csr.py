"""CSR shortest-path kernel — the array-backed engine behind the package.

:class:`CSRKernel` freezes a graph into three contiguous numpy arrays
(``indptr``, ``indices``, ``weights``) and provides every shortest-path
primitive the Thorup–Zwick pipeline is built on:

* :meth:`CSRKernel.sssp` — heap-based single-source Dijkstra over the raw
  CSR arrays, with the package's deterministic ``(dist, id)`` tie-break
  (the pure-Python reference path; also used for early-stop queries).
* :meth:`CSRKernel.sssp_batch` — batched single-source runs from a whole
  vertex set in one ``scipy.sparse.csgraph`` call (one C-level pass),
  returning per-source distance and predecessor matrices.  This is the
  landmark-distance-table primitive.
* :meth:`CSRKernel.multi_source` — the bunch/cluster primitive of TZ:
  ``dist[v] = d(A, v)`` together with the argmin center (*witness*)
  realizing it, computed as one C-level multi-source sweep followed by a
  vectorized tight-arc witness propagation that reproduces the
  deterministic ``(priority, id)`` tie-break of the pure-Python
  implementation *exactly*.
* :meth:`CSRKernel.all_pairs` — vectorized APSP.

Determinism contract: for integer-valued (hence float64-exact) edge
weights the fast paths return bit-identical results to the heap-based
reference (``method="heap"``).  If exactness is unavailable (irrational
float weights can make ``d(u) + w != d(v)`` for a tight arc), witness
propagation detects the gap and transparently falls back to the heap.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra as _scipy_dijkstra

from ..errors import GraphError
from ..obs import TELEMETRY

INF = np.inf

#: Sentinel used by scipy for unreachable predecessor entries.
_SCIPY_NULL = -9999


class CSRKernel:
    """Immutable CSR arrays plus the shortest-path kernels over them.

    Parameters
    ----------
    n:
        Vertex count; vertices are ``0..n-1``.
    indptr:
        ``(n+1,)`` int64 row-pointer array.
    indices:
        ``(nnz,)`` int64 arc-target array (both directions of every
        undirected edge).
    weights:
        ``(nnz,)`` float64 positive arc weights aligned with ``indices``.

    Use :meth:`from_graph` to wrap an existing :class:`~repro.graphs.graph.Graph`
    without copying (the Graph already stores validated CSR arrays).
    """

    __slots__ = ("n", "indptr", "indices", "weights", "_matrix", "_arc_src")

    def __init__(
        self,
        n: int,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: np.ndarray,
        *,
        validate: bool = True,
    ) -> None:
        indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        indices = np.ascontiguousarray(indices, dtype=np.int64)
        weights = np.ascontiguousarray(weights, dtype=np.float64)
        if validate:
            if n < 0:
                raise GraphError(f"vertex count must be non-negative, got {n}")
            if indptr.shape != (n + 1,):
                raise GraphError(f"indptr must have shape ({n + 1},)")
            if indptr[0] != 0 or np.any(np.diff(indptr) < 0):
                raise GraphError("indptr must be non-decreasing and start at 0")
            nnz = int(indptr[-1])
            if indices.shape != (nnz,) or weights.shape != (nnz,):
                raise GraphError(f"indices/weights must have shape ({nnz},)")
            if nnz and (np.any(indices < 0) or np.any(indices >= n)):
                raise GraphError("arc target out of range")
            if nnz and (not np.all(np.isfinite(weights)) or np.any(weights <= 0)):
                raise GraphError("arc weights must be finite and strictly positive")
        self.n = int(n)
        self.indptr = indptr
        self.indices = indices
        self.weights = weights
        self._matrix: Optional[csr_matrix] = None
        self._arc_src: Optional[np.ndarray] = None

    @classmethod
    def from_graph(cls, graph) -> "CSRKernel":
        """Wrap a :class:`Graph`'s already-validated CSR arrays (no copy)."""
        return cls(
            graph.n, graph.indptr, graph.adj, graph.adj_weights, validate=False
        )

    # ------------------------------------------------------------------
    # Cached derived arrays
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of directed arcs (``2m`` for an undirected graph)."""
        return int(self.indices.shape[0])

    def matrix(self) -> csr_matrix:
        """Cached ``scipy.sparse.csr_matrix`` over this kernel's arrays."""
        if self._matrix is None:
            self._matrix = csr_matrix(
                (self.weights, self.indices, self.indptr), shape=(self.n, self.n)
            )
        return self._matrix

    def arc_sources(self) -> np.ndarray:
        """Cached ``(nnz,)`` array: source vertex of every arc."""
        if self._arc_src is None:
            self._arc_src = np.repeat(
                np.arange(self.n, dtype=np.int64), np.diff(self.indptr)
            )
            self._arc_src.setflags(write=False)
        return self._arc_src

    # ------------------------------------------------------------------
    # Single-source
    # ------------------------------------------------------------------
    def sssp(
        self, source: int, *, target: Optional[int] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Heap Dijkstra from ``source`` with deterministic tie-breaking.

        Returns ``(dist, parent)`` of length ``n``; ``parent`` is ``-1``
        at the source and at unreachable vertices.  With ``target``,
        stops as soon as the target settles.  Equal-distance parents are
        broken toward the smaller parent id, making the shortest-path
        tree reproducible across runs and platforms.
        """
        n = self.n
        if not 0 <= source < n:
            raise GraphError(f"source {source} out of range")
        dist = np.full(n, INF)
        parent = np.full(n, -1, dtype=np.int64)
        done = np.zeros(n, dtype=bool)
        dist[source] = 0.0
        heap: List[Tuple[float, int]] = [(0.0, source)]
        indptr, indices, wts = self.indptr, self.indices, self.weights
        pops = 0
        while heap:
            d, u = heapq.heappop(heap)
            if done[u]:
                continue
            done[u] = True
            pops += 1
            if u == target:
                break
            for i in range(indptr[u], indptr[u + 1]):
                v = indices[i]
                nd = d + wts[i]
                if nd < dist[v] or (nd == dist[v] and parent[v] > u and not done[v]):
                    dist[v] = nd
                    parent[v] = u
                    heapq.heappush(heap, (nd, v))
        tm = TELEMETRY
        if tm.enabled:
            tm.count("csr.sssp_calls")
            tm.count("csr.dijkstra_pops", pops)
        return dist, parent

    def sssp_batch(
        self, sources: Sequence[int]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Batched single-source runs, one C-level scipy call.

        Returns ``(dist, pred)`` of shape ``(len(sources), n)``; ``pred``
        entries are ``-9999`` where scipy reports no predecessor.  The
        per-tree tie-breaking is scipy's (any valid SPT), which is what
        the landmark tables need — distances are exact either way.
        """
        src = np.asarray(sources, dtype=np.int64)
        if src.ndim != 1:
            raise GraphError("sources must be a 1-D sequence")
        if src.size == 0:
            return (
                np.zeros((0, self.n)),
                np.zeros((0, self.n), dtype=np.int64),
            )
        if np.any(src < 0) or np.any(src >= self.n):
            raise GraphError("source out of range")
        tm = TELEMETRY
        with tm.span("csr.sssp_batch", sources=int(src.size)):
            dist, pred = _scipy_dijkstra(
                self.matrix(), directed=False, indices=src, return_predecessors=True
            )
        tm.count("csr.batch_sources", int(src.size))
        return np.atleast_2d(dist), np.atleast_2d(pred).astype(np.int64)

    def all_pairs(self) -> np.ndarray:
        """All-pairs distances as an ``(n, n)`` float array."""
        if self.n == 0:
            return np.zeros((0, 0))
        return _scipy_dijkstra(self.matrix(), directed=False)

    # ------------------------------------------------------------------
    # Batched multi-source (the TZ bunch/cluster primitive)
    # ------------------------------------------------------------------
    def multi_source_distances(self, sources: Sequence[int]) -> np.ndarray:
        """``dist[v] = min_{a in sources} d(a, v)`` in one C-level sweep.

        The witness-free fast path for callers (like the ``center``
        algorithm) that only need the distance field.
        """
        src = self._check_sources(sources)
        if src.size == 0 or self.n == 0:
            return np.full(self.n, INF)
        return np.asarray(
            _scipy_dijkstra(self.matrix(), directed=False, indices=src, min_only=True)
        )

    def multi_source(
        self,
        sources: Sequence[int],
        *,
        witness_priority: Optional[Dict[int, int]] = None,
        method: str = "auto",
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Distances to the nearest source plus the argmin center.

        Returns ``(dist, witness)``: ``witness[v]`` is the source
        realizing ``dist[v]``, ties broken toward the smallest
        ``(priority, id)`` pair (priority defaults to the id itself), and
        ``-1`` for unreachable vertices.  This equals the lexicographic
        argmin ``min_a (d(a, v), priority(a), a)``, which is exactly what
        the heap-based reference computes.

        ``method``:

        * ``"auto"`` — C-level sweep + vectorized witness propagation,
          falling back to the heap if float inexactness breaks the
          tight-arc test (impossible for integer-valued weights);
        * ``"scipy"`` — the fast path, error if propagation is incomplete;
        * ``"heap"`` — the pure-Python reference implementation.
        """
        if method not in ("auto", "scipy", "heap"):
            raise GraphError(f"unknown multi_source method {method!r}")
        src = self._check_sources(sources)
        n = self.n
        if src.size == 0 or n == 0:
            return np.full(n, INF), np.full(n, -1, dtype=np.int64)
        if method == "heap":
            return self._multi_source_heap(src, witness_priority)
        with TELEMETRY.span("csr.multi_source", sources=int(src.size)):
            dist = np.asarray(
                _scipy_dijkstra(
                    self.matrix(), directed=False, indices=src, min_only=True
                )
            )
            witness, complete = self._propagate_witnesses(dist, src, witness_priority)
        if complete:
            return dist, witness
        if method == "scipy":
            raise GraphError(
                "witness propagation incomplete: edge weights are not "
                "float64-exact (use method='heap' or 'auto')"
            )
        return self._multi_source_heap(src, witness_priority)

    def _check_sources(self, sources: Sequence[int]) -> np.ndarray:
        src = np.unique(np.asarray(sources, dtype=np.int64).ravel())
        if src.size and (src[0] < 0 or src[-1] >= self.n):
            bad = src[0] if src[0] < 0 else src[-1]
            raise GraphError(f"source {bad} out of range")
        return src

    def _propagate_witnesses(
        self,
        dist: np.ndarray,
        src: np.ndarray,
        witness_priority: Optional[Dict[int, int]],
    ) -> Tuple[np.ndarray, bool]:
        """Deterministic witnesses from a finished distance field.

        A source ``a`` realizes ``dist[v]`` iff some shortest ``a → v``
        path exists, and every arc ``(u, v)`` on it is *tight*
        (``dist[u] + w == dist[v]``).  Processing vertices in increasing
        distance order (tight arcs always go strictly uphill, weights
        being positive) and taking the minimum ``(priority, id)`` witness
        over tight in-arcs therefore computes the lexicographic argmin —
        the same tie-break the heap reference propagates.
        """
        n = self.n
        # Rank sources by (priority, id); propagate small ranks.
        if witness_priority:
            prio = np.array(
                [witness_priority.get(int(a), int(a)) for a in src], dtype=np.int64
            )
            order = np.lexsort((src, prio))
        else:
            order = np.arange(src.size)
        ranked = src[order]
        sentinel = src.size
        rank = np.full(n, sentinel, dtype=np.int64)
        rank[ranked] = np.arange(src.size, dtype=np.int64)

        arc_src = self.arc_sources()
        arc_dst = self.indices
        finite_src = np.isfinite(dist[arc_src])
        tight = np.flatnonzero(
            finite_src & (dist[arc_src] + self.weights == dist[arc_dst])
        )
        if tight.size:
            # Group tight arcs by target distance, ascending: every head
            # is strictly downhill, so its rank is final when its group runs.
            td = dist[arc_dst[tight]]
            grp = np.argsort(td, kind="stable")
            tight = tight[grp]
            td = td[grp]
            starts = np.concatenate(([0], np.flatnonzero(np.diff(td)) + 1))
            ends = np.concatenate((starts[1:], [td.size]))
            heads = arc_src[tight]
            tails = arc_dst[tight]
            for s, e in zip(starts, ends):
                np.minimum.at(rank, tails[s:e], rank[heads[s:e]])

        witness = np.full(n, -1, dtype=np.int64)
        assigned = rank < sentinel
        witness[assigned] = ranked[rank[assigned]]
        complete = bool(np.all(assigned | ~np.isfinite(dist)))
        return witness, complete

    def _multi_source_heap(
        self, src: np.ndarray, witness_priority: Optional[Dict[int, int]]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Pure-Python reference: heap ordered by ``(dist, prio, id)``."""
        n = self.n
        dist = np.full(n, INF)
        witness = np.full(n, -1, dtype=np.int64)
        done = np.zeros(n, dtype=bool)
        prio = witness_priority or {}
        heap: List[Tuple[float, int, int, int]] = []
        for a in src:
            a = int(a)
            heapq.heappush(heap, (0.0, prio.get(a, a), a, a))
            dist[a] = 0.0
        indptr, indices, wts = self.indptr, self.indices, self.weights
        pops = 0
        while heap:
            d, _, w, u = heapq.heappop(heap)
            if done[u]:
                continue
            done[u] = True
            pops += 1
            dist[u] = d
            witness[u] = w
            for i in range(indptr[u], indptr[u + 1]):
                v = indices[i]
                if done[v]:
                    continue
                nd = d + wts[i]
                if nd <= dist[v]:
                    dist[v] = nd
                    heapq.heappush(heap, (nd, prio.get(w, w), w, v))
        tm = TELEMETRY
        if tm.enabled:
            tm.count("csr.dijkstra_pops", pops)
        return dist, witness
