"""The port model of compact routing.

A router does not forward "to vertex v" — it forwards on a *port*, a
local link number in ``1..deg(u)``.  Thorup–Zwick distinguish two models:

* **fixed-port** — an adversary (or the hardware) fixed the port
  numbering; the scheme must cope with arbitrary assignments.  This is
  the model the general-graph schemes (§3–§4) are analyzed in.
* **designer-port** — the scheme designer chooses the numbering.  The
  (1+o(1))·log n tree-routing labels (§2) need this freedom: ports to
  children are assigned in order of decreasing subtree size, making port
  numbers along root paths multiply to at most ``n``.

:class:`PortedGraph` binds a :class:`~repro.graphs.graph.Graph` to a
concrete assignment and provides the two operations the simulator needs:
``step(u, port) -> v`` and ``port(u, v) -> port``.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..errors import GraphError, PortError
from ..rng import RngLike, make_rng
from .graph import Graph
from .trees import RootedTree


class PortedGraph:
    """A graph with a concrete port numbering.

    ``port_of_arc[i]`` is the port number (1-based) that the tail of CSR
    arc ``i`` uses for that arc; ``arc_of_port`` is its inverse laid out
    so that the arc for ``(u, port)`` sits at ``indptr[u] + port - 1``.
    """

    __slots__ = ("graph", "port_of_arc", "arc_of_port")

    def __init__(self, graph: Graph, port_of_arc: np.ndarray) -> None:
        if port_of_arc.shape != (2 * graph.m,):
            raise GraphError("port_of_arc must have one entry per directed arc")
        self.graph = graph
        self.port_of_arc = port_of_arc.astype(np.int64)
        arc_of_port = np.full(2 * graph.m, -1, dtype=np.int64)
        indptr = graph.indptr
        for u in range(graph.n):
            lo, hi = int(indptr[u]), int(indptr[u + 1])
            deg = hi - lo
            seen = np.zeros(deg, dtype=bool)
            for arc in range(lo, hi):
                p = int(self.port_of_arc[arc])
                if not 1 <= p <= deg:
                    raise PortError(
                        f"port {p} at vertex {u} outside 1..deg={deg}"
                    )
                if seen[p - 1]:
                    raise PortError(f"duplicate port {p} at vertex {u}")
                seen[p - 1] = True
                arc_of_port[lo + p - 1] = arc
        self.arc_of_port = arc_of_port

    def rebind(self, new_graph) -> "PortedGraph":
        """This port assignment attached to a topology-identical graph.

        O(1): shares ``port_of_arc``/``arc_of_port`` verbatim (both are
        treated as immutable), skipping the per-vertex validation loop.
        The graphs must share CSR topology — weight-only rebuilds via
        :meth:`Graph.with_edge_weights` qualify; anything else is
        rejected.
        """
        old = self.graph
        if new_graph.n != old.n or not (
            new_graph.indptr is old.indptr
            or (
                np.array_equal(new_graph.indptr, old.indptr)
                and np.array_equal(new_graph.adj, old.adj)
            )
        ):
            raise PortError("rebind requires an identical CSR topology")
        ported = object.__new__(PortedGraph)
        ported.graph = new_graph
        ported.port_of_arc = self.port_of_arc
        ported.arc_of_port = self.arc_of_port
        return ported

    @property
    def n(self) -> int:
        return self.graph.n

    @property
    def m(self) -> int:
        return self.graph.m

    def degree(self, u: int) -> int:
        return self.graph.degree(u)

    def step(self, u: int, port: int) -> int:
        """Follow ``port`` out of ``u``; returns the neighbor reached."""
        deg = self.degree(u)
        if not 1 <= port <= deg:
            raise PortError(f"vertex {u} has no port {port} (degree {deg})")
        arc = self.arc_of_port[self.graph.indptr[u] + port - 1]
        return int(self.graph.adj[arc])

    def step_weight(self, u: int, port: int) -> float:
        """Weight of the edge behind ``(u, port)``."""
        deg = self.degree(u)
        if not 1 <= port <= deg:
            raise PortError(f"vertex {u} has no port {port} (degree {deg})")
        arc = self.arc_of_port[self.graph.indptr[u] + port - 1]
        return float(self.graph.adj_weights[arc])

    def port(self, u: int, v: int) -> int:
        """Port number at ``u`` of the edge to neighbor ``v``."""
        row = self.graph.neighbors(u)
        i = int(np.searchsorted(row, v))
        if i >= row.size or row[i] != v:
            raise PortError(f"no edge between {u} and {v}")
        return int(self.port_of_arc[self.graph.indptr[u] + i])

    def max_port_bits(self) -> int:
        """Bits needed for the largest port number (fixed-width model)."""
        degs = self.graph.degrees()
        return int(max(1, int(degs.max()) if degs.size else 1).bit_length())


def assign_ports(
    graph: Graph,
    kind: str = "sorted",
    rng: RngLike = None,
) -> PortedGraph:
    """Create a port assignment of the given ``kind``.

    ``"sorted"``
        Port ``i`` goes to the ``i``-th smallest neighbor id — the
        deterministic default.
    ``"random"``
        An independent uniformly random permutation per vertex — the
        fixed-port adversary used in experiments (a scheme must not rely
        on lucky numbering).
    ``"reversed"``
        Port ``i`` goes to the ``i``-th *largest* neighbor id.
    """
    n, indptr = graph.n, graph.indptr
    port_of_arc = np.zeros(2 * graph.m, dtype=np.int64)
    gen = make_rng(rng) if kind == "random" else None
    for u in range(n):
        lo, hi = int(indptr[u]), int(indptr[u + 1])
        deg = hi - lo
        if deg == 0:
            continue
        if kind == "sorted":
            ports = np.arange(1, deg + 1)
        elif kind == "reversed":
            ports = np.arange(deg, 0, -1)
        elif kind == "random":
            ports = gen.permutation(deg) + 1
        else:
            raise GraphError(f"unknown port assignment kind {kind!r}")
        port_of_arc[lo:hi] = ports
    return PortedGraph(graph, port_of_arc)


def designer_ports_for_tree(graph: Graph, tree: RootedTree) -> PortedGraph:
    """Designer-port assignment optimized for ``tree`` (TZ §2).

    At each tree vertex the ports toward children follow the child rank
    (heavy child = port 1, rank-``r`` child = port ``r``); the port toward
    the parent comes right after the children; any non-tree edges fill the
    remaining port numbers in neighbor-id order.  With this assignment the
    port taken at a light edge equals the child rank, so port numbers
    along any root path multiply to at most ``n`` — the fact behind the
    (1+o(1))·log n label bound.
    """
    n, indptr = graph.n, graph.indptr
    port_of_arc = np.zeros(2 * graph.m, dtype=np.int64)
    for u in range(n):
        lo, hi = int(indptr[u]), int(indptr[u + 1])
        deg = hi - lo
        if deg == 0:
            continue
        neighbors = graph.adj[lo:hi]
        assigned: Dict[int, int] = {}
        next_port = 1
        if u in tree:
            for child in tree.children.get(u, []):
                assigned[child] = next_port
                next_port += 1
            parent = tree.parent.get(u, -1)
            if parent != -1:
                assigned[parent] = next_port
                next_port += 1
        for v in neighbors:
            v = int(v)
            if v not in assigned:
                assigned[v] = next_port
                next_port += 1
        for i, v in enumerate(neighbors):
            port_of_arc[lo + i] = assigned[int(v)]
    return PortedGraph(graph, port_of_arc)
